//! Ingress-style automatic incrementalization (paper §6: "we have
//! incorporated Ingress to facilitate algorithm auto-incrementalization,
//! supplementing the generality of GRAPE's PIE model").
//!
//! Ingress [VLDB'21] memoizes a converged run of an iterative algorithm and,
//! when the graph changes, propagates only *deltas* instead of recomputing
//! from scratch. We implement its monotone-ΔPageRank instantiation: the
//! converged state is kept as (rank, residual); edge insertions/deletions
//! inject corrective residuals at the affected sources, and the standard
//! delta-push loop re-converges touching only the affected region.

use gs_graph::csr::Csr;
use gs_graph::VId;
use std::collections::VecDeque;

/// A memoized PageRank instance that supports incremental updates.
pub struct IncrementalPageRank {
    n: usize,
    damping: f64,
    epsilon: f64,
    /// Adjacency as growable vectors (updates mutate it).
    adj: Vec<Vec<VId>>,
    rank: Vec<f64>,
    residual: Vec<f64>,
}

impl IncrementalPageRank {
    /// Builds and fully converges the initial instance.
    pub fn new(n: usize, edges: &[(VId, VId)], damping: f64, epsilon: f64) -> Self {
        let mut adj: Vec<Vec<VId>> = vec![Vec::new(); n];
        for &(s, d) in edges {
            adj[s.index()].push(d);
        }
        let mut me = Self {
            n,
            damping,
            epsilon,
            adj,
            rank: vec![0.0; n],
            residual: vec![(1.0 - damping) / n as f64; n],
        };
        me.push_to_convergence((0..n as u64).map(VId).collect());
        me
    }

    /// Current ranks.
    pub fn ranks(&self) -> &[f64] {
        &self.rank
    }

    /// Applies one edge insertion and re-converges incrementally. Returns
    /// the number of vertices touched (the paper's win: ≪ n for local
    /// changes).
    pub fn insert_edge(&mut self, s: VId, d: VId) -> usize {
        // s's old out-degree distributed rank over fewer edges; rebalance by
        // withdrawing the over-distributed mass and re-pushing with the new
        // degree. Withdraw: each old neighbor received damping*rank[s]/deg;
        // now they should receive damping*rank[s]/(deg+1).
        let old_deg = self.adj[s.index()].len() as f64;
        let rs = self.rank[s.index()];
        // every vertex whose residual we touch must seed the re-convergence
        let mut seeds = vec![s, d];
        if old_deg > 0.0 {
            let delta_per_nbr = self.damping * rs * (1.0 / (old_deg + 1.0) - 1.0 / old_deg);
            let nbrs = self.adj[s.index()].clone();
            for w in nbrs {
                self.residual[w.index()] += delta_per_nbr;
                seeds.push(w);
            }
        }
        self.adj[s.index()].push(d);
        self.residual[d.index()] += self.damping * rs / (old_deg + 1.0);
        self.push_to_convergence(seeds)
    }

    /// Applies one edge deletion (first matching edge) and re-converges.
    pub fn delete_edge(&mut self, s: VId, d: VId) -> usize {
        let Some(pos) = self.adj[s.index()].iter().position(|&w| w == d) else {
            return 0;
        };
        let old_deg = self.adj[s.index()].len() as f64;
        let rs = self.rank[s.index()];
        self.adj[s.index()].swap_remove(pos);
        // withdraw d's share entirely; redistribute to remaining neighbors
        self.residual[d.index()] -= self.damping * rs / old_deg;
        let mut seeds = vec![s, d];
        if old_deg > 1.0 {
            let delta_per_nbr = self.damping * rs * (1.0 / (old_deg - 1.0) - 1.0 / old_deg);
            let nbrs = self.adj[s.index()].clone();
            for w in nbrs {
                self.residual[w.index()] += delta_per_nbr;
                seeds.push(w);
            }
        }
        self.push_to_convergence(seeds)
    }

    /// Delta-push until all residuals are below epsilon; returns distinct
    /// vertices touched.
    fn push_to_convergence(&mut self, seeds: Vec<VId>) -> usize {
        let mut queue: VecDeque<VId> = seeds.into();
        let mut in_queue = vec![false; self.n];
        for v in &queue {
            in_queue[v.index()] = true;
        }
        let mut touched = vec![false; self.n];
        while let Some(v) = queue.pop_front() {
            in_queue[v.index()] = false;
            let r = self.residual[v.index()];
            if r.abs() < self.epsilon {
                continue;
            }
            touched[v.index()] = true;
            self.residual[v.index()] = 0.0;
            self.rank[v.index()] += r;
            let deg = self.adj[v.index()].len();
            if deg == 0 {
                continue;
            }
            let push = self.damping * r / deg as f64;
            let nbrs = self.adj[v.index()].clone();
            for w in nbrs {
                self.residual[w.index()] += push;
                if self.residual[w.index()].abs() >= self.epsilon && !in_queue[w.index()] {
                    in_queue[w.index()] = true;
                    queue.push_back(w);
                }
            }
        }
        touched.iter().filter(|&&t| t).count()
    }

    /// Full recomputation from scratch (the baseline Ingress avoids).
    pub fn recompute_from_scratch(&self) -> Vec<f64> {
        let edges: Vec<(VId, VId)> = self
            .adj
            .iter()
            .enumerate()
            .flat_map(|(s, ns)| ns.iter().map(move |&d| (VId(s as u64), d)))
            .collect();
        let fresh = Self::new(self.n, &edges, self.damping, self.epsilon);
        fresh.rank.clone()
    }
}

/// Convenience: converged delta-PageRank over a CSR (no incrementality).
pub fn pagerank_delta(csr: &Csr, damping: f64, epsilon: f64) -> Vec<f64> {
    let edges: Vec<(VId, VId)> = (0..csr.vertex_count())
        .flat_map(|v| {
            csr.neighbors(VId(v as u64))
                .iter()
                .map(move |&w| (VId(v as u64), w))
        })
        .collect();
    IncrementalPageRank::new(csr.vertex_count(), &edges, damping, epsilon)
        .ranks()
        .to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::reference;

    fn random_edges(n: u64, m: usize, seed: u64) -> Vec<(VId, VId)> {
        use rand::Rng;
        let mut rng = rand_pcg::Pcg64Mcg::new(seed as u128);
        (0..m)
            .map(|_| (VId(rng.gen_range(0..n)), VId(rng.gen_range(0..n))))
            .collect()
    }

    /// Without dangling vertices, delta-PR matches iterative PR.
    #[test]
    fn initial_convergence_matches_reference() {
        let mut edges = random_edges(80, 400, 1);
        edges.extend((0..80u64).map(|i| (VId(i), VId((i + 1) % 80))));
        let inc = IncrementalPageRank::new(80, &edges, 0.85, 1e-12);
        let want = reference::pagerank(80, &edges, 0.85, 200);
        for (a, b) in inc.ranks().iter().zip(&want) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn incremental_insert_matches_recompute() {
        let mut edges = random_edges(60, 300, 2);
        edges.extend((0..60u64).map(|i| (VId(i), VId((i + 1) % 60))));
        let mut inc = IncrementalPageRank::new(60, &edges, 0.85, 1e-12);
        for (s, d) in [(3u64, 40u64), (10, 20), (40, 3)] {
            inc.insert_edge(VId(s), VId(d));
        }
        let fresh = inc.recompute_from_scratch();
        for (a, b) in inc.ranks().iter().zip(&fresh) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn incremental_delete_matches_recompute() {
        let mut edges = random_edges(60, 300, 3);
        edges.extend((0..60u64).map(|i| (VId(i), VId((i + 1) % 60))));
        let mut inc = IncrementalPageRank::new(60, &edges, 0.85, 1e-12);
        let (s, d) = (edges[5].0, edges[5].1);
        inc.delete_edge(s, d);
        let fresh = inc.recompute_from_scratch();
        for (a, b) in inc.ranks().iter().zip(&fresh) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    /// The headline Ingress property: an incremental update touches far
    /// fewer vertices than the graph has.
    #[test]
    fn incremental_update_is_localized() {
        let n = 6000u64;
        // long cycle plus random chords: large diameter localizes updates
        let mut edges: Vec<(VId, VId)> = (0..n).map(|i| (VId(i), VId((i + 1) % n))).collect();
        edges.extend(random_edges(n, 200, 4));
        let mut inc = IncrementalPageRank::new(n as usize, &edges, 0.85, 1e-11);
        let touched = inc.insert_edge(VId(7), VId(1400));
        assert!(
            touched < n as usize / 2,
            "update touched {touched} of {n} vertices"
        );
        // and the result is still right (1% relative tolerance: both runs
        // truncate ε-level residuals at different places)
        let fresh = inc.recompute_from_scratch();
        for (a, b) in inc.ranks().iter().zip(&fresh) {
            assert!((a - b).abs() < 1e-8 + 0.01 * b, "{a} vs {b}");
        }
    }
}
