//! # gs-hiactor — HiActor, the high-concurrency OLTP engine
//!
//! HiActor (paper §5, after Alibaba's hiactor framework) targets the OLTP
//! side of graph querying: many small concurrent queries, each cheap, where
//! throughput and tail latency matter more than per-query parallelism. The
//! runtime is a set of *shard* actors — one OS thread each, processing its
//! mailbox sequentially — plus a stored-procedure registry, mirroring how
//! production deployments run parameterized queries at high QPS (§8
//! real-time fraud detection runs exactly this stack over GART).
//!
//! A query occupies exactly one shard (no cross-worker exchange), which is
//! the design contrast with Gaia: minimal coordination overhead per query,
//! no data parallelism within one.

use gs_chaos::{BreakerConfig, CircuitBreaker, RetryPolicy};
use gs_grin::GrinGraph;
use gs_ir::exec::execute;
use gs_ir::physical::PhysicalPlan;
use gs_ir::record::Record;
use gs_ir::{GraphError, Result, Value};
use gs_sanitizer::channel::{bounded, unbounded, RecvTimeoutError, TrackedReceiver, TrackedSender};
use gs_sanitizer::SharedCell;
use gs_telemetry::{counter, observe};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The shard-actor runtime.
pub struct HiActorRuntime {
    shards: Vec<TrackedSender<Job>>,
    /// Jobs currently waiting in (or running from) each shard's mailbox.
    depths: Vec<Arc<AtomicU64>>,
    /// Whether each shard's actor loop is still draining its mailbox.
    alive: Vec<Arc<AtomicBool>>,
    /// Kill switches checked by each loop before its next job.
    kills: Vec<Arc<AtomicBool>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    next: AtomicUsize,
}

impl HiActorRuntime {
    /// Spawns `shards` actor threads.
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        let alive: Vec<Arc<AtomicBool>> = (0..shards)
            .map(|_| Arc::new(AtomicBool::new(true)))
            .collect();
        let kills: Vec<Arc<AtomicBool>> = (0..shards)
            .map(|_| Arc::new(AtomicBool::new(false)))
            .collect();
        for i in 0..shards {
            let (tx, rx): (TrackedSender<Job>, TrackedReceiver<Job>) = unbounded("hiactor.mailbox");
            senders.push(tx);
            let alive = Arc::clone(&alive[i]);
            let kill = Arc::clone(&kills[i]);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("hiactor-shard-{i}"))
                    .spawn(move || {
                        // mark the shard dead on ANY exit path — and only
                        // after the mailbox receiver is gone, so a submitter
                        // that still sees `alive` has its send fail and its
                        // job dropped rather than stranded
                        struct AliveGuard(Arc<AtomicBool>);
                        impl Drop for AliveGuard {
                            fn drop(&mut self) {
                                self.0.store(false, Ordering::SeqCst);
                            }
                        }
                        let _guard = AliveGuard(alive);
                        // the actor loop: drain the mailbox sequentially. A
                        // panicking job must not take the whole shard down —
                        // its caller sees the dropped result channel as a
                        // structured error; the shard keeps serving.
                        let mut jobs_done: u64 = 0;
                        for job in rx {
                            if kill.load(Ordering::SeqCst) {
                                break;
                            }
                            if let Some(d) = gs_chaos::shard_delay(i) {
                                std::thread::sleep(d);
                            }
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                            jobs_done += 1;
                            if gs_chaos::shard_should_die(i, jobs_done) {
                                break;
                            }
                        }
                        // leaving the loop drops the mailbox receiver: jobs
                        // still queued are dropped, which disconnects their
                        // result channels — callers get the structured
                        // "terminated" error instead of blocking forever
                    })
                    .expect("spawn shard"),
            );
        }
        Self {
            shards: senders,
            depths: (0..shards).map(|_| Arc::new(AtomicU64::new(0))).collect(),
            alive,
            kills,
            handles,
            next: AtomicUsize::new(0),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Jobs currently queued on (or running from) shard `i`.
    pub fn queue_depth(&self, i: usize) -> u64 {
        self.depths[i % self.depths.len()].load(Ordering::Relaxed)
    }

    /// Whether shard `i`'s actor loop is still draining its mailbox.
    pub fn shard_alive(&self, i: usize) -> bool {
        self.alive[i % self.alive.len()].load(Ordering::SeqCst)
    }

    /// Kills shard `i`: its loop exits before running another job, and
    /// every job already queued there is dropped (each caller sees the
    /// structured "terminated" error). Used by tests and fault drills; the
    /// chaos layer's dead-shard schedule exercises the same exit path.
    pub fn kill_shard(&self, i: usize) {
        let i = i % self.shards.len();
        self.kills[i].store(true, Ordering::SeqCst);
        // wake the loop if it is parked on an empty mailbox; the no-op job
        // is never run — the kill check precedes it
        let _ = self.shards[i].send(Box::new(|| {}));
    }

    /// Resolves a submission target: an explicit dead shard is refused,
    /// and the round-robin path skips dead shards. `None` means no live
    /// shard can take the job.
    fn pick_shard(&self, shard: Option<usize>) -> Option<usize> {
        let n = self.shards.len();
        match shard {
            Some(i) => {
                let i = i % n;
                self.alive[i].load(Ordering::SeqCst).then_some(i)
            }
            None => (0..n)
                .map(|_| self.next.fetch_add(1, Ordering::Relaxed) % n)
                .find(|&i| self.alive[i].load(Ordering::SeqCst)),
        }
    }

    /// Submits a job to a specific shard (or round-robin when `None`);
    /// returns a completion receiver. Submitting to a dead shard (or when
    /// every shard is dead) yields an already-disconnected receiver, so
    /// the caller observes the structured "terminated" error promptly
    /// instead of parking on a mailbox nobody will ever drain.
    pub fn submit<T, F>(&self, shard: Option<usize>, f: F) -> TrackedReceiver<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (tx, rx) = bounded("hiactor.result", 1);
        let Some(idx) = self.pick_shard(shard) else {
            drop(tx);
            return rx;
        };
        let depth = Arc::clone(&self.depths[idx]);
        let d = depth.fetch_add(1, Ordering::Relaxed) + 1;
        observe!("hiactor.queue_depth", shard = idx; d);
        // the depth must come back down even when the job panics out of the
        // shard loop's catch_unwind, so decrement from a drop guard —
        // before publishing the result, so a caller that has observed
        // completion never sees this job still counted
        struct DepthGuard(Arc<AtomicU64>);
        impl Drop for DepthGuard {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::Relaxed);
            }
        }
        let guard = DepthGuard(depth);
        let job: Job = Box::new(move || {
            let out = f();
            drop(guard);
            let _ = tx.send(out);
        });
        // a dead shard drops the job here, which drops `tx`; the caller
        // observes a disconnected result channel and maps it to a
        // structured error instead of this send panicking
        let _ = self.shards[idx].send(job);
        rx
    }

    /// Blocks until all live shards have drained their current mailboxes.
    pub fn quiesce(&self) {
        let receivers: Vec<TrackedReceiver<()>> = (0..self.shards.len())
            .filter(|&i| self.shard_alive(i))
            .map(|i| self.submit(Some(i), || ()))
            .collect();
        for r in receivers {
            let _ = r.recv();
        }
    }
}

impl Drop for HiActorRuntime {
    fn drop(&mut self) {
        self.shards.clear(); // close mailboxes → actors exit
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The GRIN capabilities HiActor requires from a store: iterator access
/// plus properties, and external-id lookup so parameterized procedures can
/// seed traversals from user-supplied ids. Validated at
/// [`gs_ir::QueryEngine::execute`], mirroring Gaia.
pub const REQUIRED_CAPABILITIES: gs_grin::Capabilities = gs_grin::Capabilities::VERTEX_LIST_ITER
    .union(gs_grin::Capabilities::ADJ_LIST_ITER)
    .union(gs_grin::Capabilities::PROPERTY)
    .union(gs_grin::Capabilities::INDEX_EXTERNAL_ID);

/// A stored procedure: parameters in, records out.
pub type Procedure =
    Arc<dyn Fn(&HashMap<String, Value>) -> Result<Vec<Record>> + Send + Sync + 'static>;

/// A registry entry: the procedure plus whether it may be retried after a
/// transport-class failure (only idempotent procedures are safe to replay
/// — a crashed shard may or may not have applied the call's effects).
#[derive(Clone)]
struct ProcEntry {
    proc_: Procedure,
    idempotent: bool,
}

/// Robustness tuning for [`QueryService`] calls. The default is fully
/// permissive — no deadline, no retries, no shedding — matching the
/// behavior of a service constructed before this config existed.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Per-call deadline enforced by [`QueryService::call_sync`]; `None`
    /// waits indefinitely. A missed deadline surfaces as
    /// [`GraphError::Timeout`].
    pub deadline: Option<Duration>,
    /// Retry policy applied to transport-class failures (timeouts, shard
    /// deaths) of idempotent procedures. Application errors returned by
    /// the procedure itself are never retried.
    pub retry: RetryPolicy,
    /// Load-shedding watermark: once every live shard's queue depth is at
    /// or past it, new calls fail fast with [`GraphError::Overloaded`]
    /// instead of queueing unboundedly.
    pub overload_watermark: Option<u64>,
    /// Per-procedure circuit-breaker tuning; an open circuit rejects calls
    /// with [`GraphError::Unavailable`] until its cooldown lapses.
    pub breaker: BreakerConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            deadline: None,
            retry: RetryPolicy::none(),
            overload_watermark: None,
            breaker: BreakerConfig::default(),
        }
    }
}

/// The OLTP query service: a HiActor runtime plus a stored-procedure
/// registry. Procedures capture their own graph access (e.g. a GART store
/// they snapshot per call), exactly like registered procedures in a graph
/// database.
pub struct QueryService {
    runtime: Arc<HiActorRuntime>,
    procedures: SharedCell<HashMap<String, ProcEntry>>,
    breakers: gs_sanitizer::TrackedMutex<HashMap<String, CircuitBreaker>>,
    config: ServiceConfig,
    verify: gs_ir::VerifyLevel,
}

impl QueryService {
    /// Service over `shards` actor threads.
    pub fn new(shards: usize) -> Self {
        Self {
            runtime: Arc::new(HiActorRuntime::new(shards)),
            procedures: SharedCell::new("hiactor.procedures", HashMap::new()),
            breakers: gs_sanitizer::TrackedMutex::new("hiactor.breakers", HashMap::new()),
            config: ServiceConfig::default(),
            verify: gs_ir::VerifyLevel::default(),
        }
    }

    /// Sets the submit-time plan verification level for ad-hoc plans.
    pub fn with_verify(mut self, verify: gs_ir::VerifyLevel) -> Self {
        self.verify = verify;
        self
    }

    /// Sets deadlines, retry policy, shedding and breaker tuning.
    pub fn with_config(mut self, config: ServiceConfig) -> Self {
        self.config = config;
        self
    }

    /// The underlying runtime (for ad-hoc jobs).
    pub fn runtime(&self) -> &HiActorRuntime {
        &self.runtime
    }

    /// Registers a native stored procedure. Assumed non-idempotent: it is
    /// never retried after a transport failure.
    pub fn register(&self, name: &str, proc_: Procedure) {
        self.insert(name, proc_, false);
    }

    /// Registers a procedure the caller guarantees is idempotent, making
    /// it eligible for retry-with-backoff after transport failures.
    pub fn register_idempotent(&self, name: &str, proc_: Procedure) {
        self.insert(name, proc_, true);
    }

    /// Registers a pre-compiled physical plan as a procedure over a fixed
    /// graph handle (parameters are ignored — the plan is fully bound).
    /// Plans are pure reads over a snapshot, hence idempotent.
    pub fn register_plan(&self, name: &str, plan: PhysicalPlan, graph: Arc<dyn GrinGraph>) {
        let proc_: Procedure = Arc::new(move |_params| execute(&plan, graph.as_ref()));
        self.register_idempotent(name, proc_);
    }

    fn insert(&self, name: &str, proc_: Procedure, idempotent: bool) {
        self.procedures.update(|m| {
            m.insert(name.to_string(), ProcEntry { proc_, idempotent });
        });
    }

    /// Calls a procedure asynchronously; the result arrives on the returned
    /// channel. Unknown procedures and load shedding are reported through
    /// the channel.
    pub fn call(
        &self,
        name: &str,
        params: HashMap<String, Value>,
    ) -> TrackedReceiver<Result<Vec<Record>>> {
        let entry = self.procedures.read_with(|m| m.get(name).cloned());
        let primed = |err: GraphError| {
            let (tx, rx) = bounded("hiactor.result", 1);
            let _ = tx.send(Err(err));
            rx
        };
        match entry {
            Some(e) => {
                if let Err(err) = self.admit() {
                    return primed(err);
                }
                let name = name.to_string();
                let p = e.proc_;
                self.runtime.submit(None, move || {
                    let start = gs_telemetry::enabled().then(Instant::now);
                    let r = p(&params);
                    if let Some(t) = start {
                        observe!("hiactor.proc_ns", name = name; t.elapsed().as_nanos() as u64);
                    }
                    r
                })
            }
            None => primed(GraphError::Query(format!("unknown procedure `{name}`"))),
        }
    }

    /// Load shedding: refuse new work once every live shard's queue is at
    /// or past the watermark, so callers get backpressure they can act on
    /// instead of unbounded queueing behind a saturated cluster.
    fn admit(&self) -> Result<()> {
        let Some(watermark) = self.config.overload_watermark else {
            return Ok(());
        };
        let least_loaded = (0..self.runtime.shard_count())
            .filter(|&i| self.runtime.shard_alive(i))
            .map(|i| (self.runtime.queue_depth(i), i))
            .min();
        if let Some((depth, shard)) = least_loaded {
            if depth >= watermark {
                counter!("hiactor.shed");
                return Err(GraphError::Overloaded { shard, depth });
            }
        }
        Ok(())
    }

    /// Synchronous convenience wrapper with the service's full resilience
    /// ladder: per-call deadline, retry-with-backoff for idempotent
    /// procedures on transport failures, and a per-procedure circuit
    /// breaker. A procedure that panics (or a shard that shut down
    /// mid-call) surfaces as a structured [`GraphError`] rather than a
    /// caller-side panic.
    pub fn call_sync(&self, name: &str, params: HashMap<String, Value>) -> Result<Vec<Record>> {
        let idempotent = self
            .procedures
            .read_with(|m| m.get(name).map(|e| e.idempotent))
            .unwrap_or(false);
        if !self.breaker_admits(name) {
            return Err(GraphError::Unavailable(format!(
                "circuit open for procedure `{name}`"
            )));
        }
        let out = gs_chaos::with_retries(
            &self.config.retry,
            idempotent,
            std::thread::sleep,
            Self::is_transport_failure,
            |attempt| {
                counter!("hiactor.retry.attempts");
                if attempt > 1 {
                    counter!("hiactor.retry.retries");
                }
                self.call_attempt(name, params.clone())
            },
        );
        match &out {
            Ok(_) => self.breaker_note(name, true),
            Err(e) if Self::is_transport_failure(e) => {
                counter!("hiactor.retry.giveups");
                self.breaker_note(name, false);
            }
            // an application error means the transport is healthy — it
            // must not trip the breaker
            Err(_) => {}
        }
        out
    }

    /// One attempt of a call: submit, then await the reply under the
    /// configured deadline.
    fn call_attempt(&self, name: &str, params: HashMap<String, Value>) -> Result<Vec<Record>> {
        let rx = self.call(name, params);
        let outcome = match self.config.deadline {
            Some(deadline) => rx.recv_timeout(deadline).map_err(|e| match e {
                RecvTimeoutError::Timeout => GraphError::Timeout(format!(
                    "procedure `{name}` missed its {deadline:?} deadline"
                )),
                RecvTimeoutError::Disconnected => Self::terminated(),
            }),
            None => rx.recv().map_err(|_| Self::terminated()),
        };
        outcome?
    }

    fn terminated() -> GraphError {
        GraphError::Query(
            "hiactor shard worker terminated before replying \
             (procedure panicked or shard shut down)"
                .into(),
        )
    }

    /// Transport-class failures are the retryable/breaker-tripping kind:
    /// the shard died, shut down, or missed its deadline — as opposed to
    /// the procedure itself returning an error.
    fn is_transport_failure(e: &GraphError) -> bool {
        match e {
            GraphError::Timeout(_) => true,
            GraphError::Query(m) => m.contains("terminated before replying"),
            _ => false,
        }
    }

    fn breaker_admits(&self, name: &str) -> bool {
        let mut map = self.breakers.lock();
        map.entry(name.to_string())
            .or_insert_with(|| CircuitBreaker::new(self.config.breaker.clone()))
            .allow(Instant::now())
    }

    fn breaker_note(&self, name: &str, ok: bool) {
        let mut map = self.breakers.lock();
        let breaker = map
            .entry(name.to_string())
            .or_insert_with(|| CircuitBreaker::new(self.config.breaker.clone()));
        if ok {
            breaker.on_success();
        } else {
            let now = Instant::now();
            breaker.on_failure(now);
            if breaker.is_open(now) {
                counter!("hiactor.breaker.open");
            }
        }
    }
}

/// Runs one plan as a one-shot job on a shard actor, blocking until the
/// shard replies. Shared by the ad-hoc [`gs_ir::QueryEngine::execute`]
/// path and prepared-statement handles.
fn run_plan_on_shard(
    runtime: &HiActorRuntime,
    plan: &PhysicalPlan,
    graph: &dyn GrinGraph,
    metric_name: &'static str,
) -> Result<Vec<Record>> {
    // `submit` needs a 'static closure but `graph` is a borrow. Erase
    // the lifetime behind a Send-able raw pointer: sound because we
    // block on `recv()` below, so `graph` outlives every use — the
    // channel only resolves once the job (and its last use of the
    // pointer) is finished or dropped.
    struct SendPtr(*const (dyn GrinGraph + 'static));
    unsafe impl Send for SendPtr {}
    impl SendPtr {
        // method (not field) access, so the closure captures the whole
        // Send wrapper rather than the raw pointer field
        fn graph(&self) -> &dyn GrinGraph {
            unsafe { &*self.0 }
        }
    }
    let ptr = SendPtr(unsafe {
        std::mem::transmute::<*const (dyn GrinGraph + '_), *const (dyn GrinGraph + 'static)>(
            graph as *const _,
        )
    });
    let plan = plan.clone();
    let rx = runtime.submit(None, move || {
        let start = gs_telemetry::enabled().then(Instant::now);
        let r = execute(&plan, ptr.graph());
        if let Some(t) = start {
            observe!("hiactor.proc_ns", name = metric_name; t.elapsed().as_nanos() as u64);
        }
        r
    });
    rx.recv().map_err(|_| {
        GraphError::Query(
            "hiactor shard worker terminated before replying \
             (query panicked or shard shut down)"
                .into(),
        )
    })?
}

impl gs_ir::QueryEngine for QueryService {
    /// Runs the plan as a one-shot job on one shard actor (a query
    /// occupies exactly one shard — HiActor's OLTP contract), blocking
    /// until the shard replies.
    fn execute(&self, plan: &PhysicalPlan, graph: &dyn GrinGraph) -> Result<Vec<Record>> {
        graph.capabilities().require(REQUIRED_CAPABILITIES)?;
        gs_ir::verify::verify_on_submit(plan, graph.schema(), self.verify, "hiactor")?;
        run_plan_on_shard(&self.runtime, plan, graph, "adhoc")
    }

    fn name(&self) -> &'static str {
        "hiactor"
    }

    /// Prepared HiActor handle: the shard runtime is shared (`Arc`), the
    /// plan is bound once, and verification runs on the first execute
    /// only — the high-QPS prepared-procedure path of the §8 deployments.
    fn prepare(&self, plan: &PhysicalPlan) -> Result<Box<dyn gs_ir::PreparedQuery>> {
        struct HiActorPrepared {
            runtime: Arc<HiActorRuntime>,
            plan: PhysicalPlan,
            once: gs_ir::VerifyOnce,
        }
        impl gs_ir::PreparedQuery for HiActorPrepared {
            fn execute(&self, graph: &dyn GrinGraph) -> Result<Vec<Record>> {
                graph.capabilities().require(REQUIRED_CAPABILITIES)?;
                self.once.check(&self.plan, graph.schema(), "hiactor")?;
                run_plan_on_shard(&self.runtime, &self.plan, graph, "prepared")
            }

            fn plan(&self) -> &PhysicalPlan {
                &self.plan
            }

            fn engine_name(&self) -> &'static str {
                "hiactor"
            }
        }
        Ok(Box::new(HiActorPrepared {
            runtime: Arc::clone(&self.runtime),
            plan: plan.clone(),
            once: gs_ir::VerifyOnce::new(self.verify),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_grin::graph::mock::MockGraph;
    use gs_ir::physical::lower_naive;
    use gs_ir::PlanBuilder;

    fn graph() -> Arc<MockGraph> {
        Arc::new(MockGraph::new(
            100,
            &(0..300u64)
                .map(|i| (i % 100, (i * 13 + 1) % 100, 1.0))
                .collect::<Vec<_>>(),
        ))
    }

    #[test]
    fn runtime_executes_jobs_on_all_shards() {
        let rt = HiActorRuntime::new(4);
        let results: Vec<_> = (0..16)
            .map(|i| rt.submit(Some(i % 4), move || i * 2))
            .collect();
        let sum: usize = results.into_iter().map(|r| r.recv().unwrap()).sum();
        assert_eq!(sum, (0..16).map(|i| i * 2).sum());
    }

    #[test]
    fn shard_mailboxes_are_sequential() {
        // jobs on ONE shard must run in submission order
        let rt = HiActorRuntime::new(2);
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut rxs = Vec::new();
        for i in 0..50 {
            let log = Arc::clone(&log);
            rxs.push(rt.submit(Some(0), move || log.lock().push(i)));
        }
        for rx in rxs {
            rx.recv().unwrap();
        }
        assert_eq!(*log.lock(), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn queue_depth_drains_to_zero() {
        let rt = HiActorRuntime::new(2);
        let rxs: Vec<_> = (0..100)
            .map(|i| rt.submit(Some(i % 2), move || i))
            .collect();
        for rx in rxs {
            rx.recv().unwrap();
        }
        rt.quiesce();
        assert_eq!(rt.queue_depth(0), 0);
        assert_eq!(rt.queue_depth(1), 0);
    }

    #[test]
    fn plan_procedure_round_trip() {
        let g = graph();
        let s = g.schema().clone();
        let plan = lower_naive(&PlanBuilder::new(&s).scan("a", "V").unwrap().build()).unwrap();
        let svc = QueryService::new(2);
        svc.register_plan("all_vertices", plan, g);
        let rows = svc.call_sync("all_vertices", HashMap::new()).unwrap();
        assert_eq!(rows.len(), 100);
    }

    #[test]
    fn native_procedure_with_params() {
        let g = graph();
        let svc = QueryService::new(2);
        let gg = Arc::clone(&g);
        svc.register(
            "degree_of",
            Arc::new(move |params| {
                let id = params
                    .get("id")
                    .and_then(|v| v.as_int())
                    .ok_or_else(|| GraphError::Query("missing id".into()))?
                    as u64;
                let d = gg.degree(
                    gs_graph::VId(id),
                    gs_graph::LabelId(0),
                    gs_graph::LabelId(0),
                    gs_grin::Direction::Out,
                );
                Ok(vec![vec![Value::Int(d as i64)]])
            }),
        );
        let mut p = HashMap::new();
        p.insert("id".to_string(), Value::Int(0));
        let rows = svc.call_sync("degree_of", p).unwrap();
        assert_eq!(rows[0][0], Value::Int(3));
    }

    #[test]
    fn query_engine_runs_adhoc_plans() {
        use gs_ir::QueryEngine;
        let g = graph();
        let s = g.schema().clone();
        let plan = lower_naive(&PlanBuilder::new(&s).scan("a", "V").unwrap().build()).unwrap();
        let svc = QueryService::new(2);
        assert_eq!(QueryEngine::name(&svc), "hiactor");
        let rows = QueryEngine::execute(&svc, &plan, g.as_ref()).unwrap();
        assert_eq!(rows.len(), 100);
    }

    #[test]
    fn unknown_procedure_errors() {
        let svc = QueryService::new(1);
        assert!(svc.call_sync("ghost", HashMap::new()).is_err());
    }

    #[test]
    fn panicking_procedure_surfaces_structured_error() {
        let svc = QueryService::new(2);
        svc.register("boom", Arc::new(|_| panic!("procedure exploded")));
        svc.register("ok", Arc::new(|_| Ok(vec![vec![Value::Int(7)]])));
        // silence the panic backtrace this test deliberately provokes
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let err = svc.call_sync("boom", HashMap::new()).unwrap_err();
        std::panic::set_hook(prev);
        match &err {
            GraphError::Query(msg) => {
                assert!(msg.contains("terminated"), "unexpected message: {msg}")
            }
            other => panic!("expected Query error, got {other:?}"),
        }
        // the shard survived the panic and still serves calls
        for _ in 0..8 {
            let rows = svc.call_sync("ok", HashMap::new()).unwrap();
            assert_eq!(rows[0][0], Value::Int(7));
        }
    }

    #[test]
    fn adhoc_query_after_worker_death_reports_terminated() {
        use gs_ir::QueryEngine;
        let g = graph();
        let s = g.schema().clone();
        let plan = lower_naive(&PlanBuilder::new(&s).scan("a", "V").unwrap().build()).unwrap();
        let svc = QueryService::new(1);
        // kill the single shard mid-stream: a job that panics, then an
        // ad-hoc query right behind it on the same mailbox
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let dead = svc.runtime().submit(Some(0), || panic!("worker killed"));
        assert!(dead.recv().is_err(), "panicked job must not reply");
        std::panic::set_hook(prev);
        // the runtime absorbed the death; the next query still runs
        let rows = QueryEngine::execute(&svc, &plan, g.as_ref()).unwrap();
        assert_eq!(rows.len(), 100);
    }

    #[test]
    fn concurrent_calls_complete() {
        let g = graph();
        let svc = QueryService::new(4);
        let gg = Arc::clone(&g);
        svc.register(
            "noop",
            Arc::new(move |_| {
                // touch the graph so the closure isn't optimised away
                let _ = gg.vertex_count(gs_graph::LabelId(0));
                Ok(vec![])
            }),
        );
        let rxs: Vec<_> = (0..1000)
            .map(|_| svc.call("noop", HashMap::new()))
            .collect();
        for rx in rxs {
            rx.recv().unwrap().unwrap();
        }
        svc.runtime().quiesce();
    }

    /// Satellite: a submit to a dead shard must disconnect promptly, not
    /// park on a mailbox nobody drains; round-robin routes around corpses.
    #[test]
    fn submit_to_dead_shard_errors_promptly() {
        let rt = HiActorRuntime::new(2);
        rt.kill_shard(0);
        while rt.shard_alive(0) {
            std::thread::sleep(Duration::from_millis(1));
        }
        let t = Instant::now();
        let rx = rt.submit(Some(0), || 42);
        assert!(rx.recv().is_err(), "dead shard must not reply");
        assert!(t.elapsed() < Duration::from_secs(1), "error must be prompt");
        for i in 0..8 {
            assert_eq!(rt.submit(None, move || i).recv().unwrap(), i);
        }
    }

    /// Satellite: submits racing shard death all resolve — a value if the
    /// job got in before the kill, a disconnect otherwise. Never a hang.
    #[test]
    fn racing_submits_against_shard_death_never_hang() {
        let rt = Arc::new(HiActorRuntime::new(1));
        let rt2 = Arc::clone(&rt);
        let submitter = std::thread::spawn(move || {
            (0..400)
                .map(|i| rt2.submit(Some(0), move || i))
                .collect::<Vec<_>>()
        });
        std::thread::sleep(Duration::from_millis(2));
        rt.kill_shard(0);
        let rxs = submitter.join().unwrap();
        for rx in rxs {
            match rx.recv_timeout(Duration::from_secs(5)) {
                Ok(_) | Err(RecvTimeoutError::Disconnected) => {}
                Err(RecvTimeoutError::Timeout) => panic!("submission hung against shard death"),
            }
        }
    }

    #[test]
    fn missed_deadline_surfaces_as_timeout() {
        let svc = QueryService::new(1).with_config(ServiceConfig {
            deadline: Some(Duration::from_millis(20)),
            ..Default::default()
        });
        svc.register(
            "slow",
            Arc::new(|_| {
                std::thread::sleep(Duration::from_millis(300));
                Ok(vec![])
            }),
        );
        let err = svc.call_sync("slow", HashMap::new()).unwrap_err();
        assert!(matches!(err, GraphError::Timeout(_)), "got {err:?}");
        svc.runtime().quiesce();
    }

    #[test]
    fn idempotent_retries_mask_a_transient_crash() {
        let svc = QueryService::new(2).with_config(ServiceConfig {
            retry: RetryPolicy::new(3, Duration::from_millis(1)),
            ..Default::default()
        });
        let calls = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&calls);
        svc.register_idempotent(
            "flaky",
            Arc::new(move |_| {
                if c.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("transient crash");
                }
                Ok(vec![vec![Value::Int(1)]])
            }),
        );
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let rows = svc.call_sync("flaky", HashMap::new()).unwrap();
        std::panic::set_hook(prev);
        assert_eq!(rows[0][0], Value::Int(1));
        assert_eq!(calls.load(Ordering::SeqCst), 2, "exactly one retry");
    }

    /// Satellite: procedures registered as non-idempotent are never
    /// replayed, however generous the retry policy.
    #[test]
    fn non_idempotent_procedures_are_never_retried() {
        let svc = QueryService::new(1).with_config(ServiceConfig {
            retry: RetryPolicy::new(4, Duration::from_millis(1)),
            ..Default::default()
        });
        let calls = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&calls);
        svc.register(
            "mutate",
            Arc::new(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
                panic!("crash after side effect");
            }),
        );
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let err = svc.call_sync("mutate", HashMap::new()).unwrap_err();
        std::panic::set_hook(prev);
        assert!(
            matches!(&err, GraphError::Query(m) if m.contains("terminated")),
            "got {err:?}"
        );
        assert_eq!(calls.load(Ordering::SeqCst), 1, "must not replay");
    }

    #[test]
    fn breaker_opens_after_transport_failures_and_recovers() {
        let svc = QueryService::new(1).with_config(ServiceConfig {
            breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_millis(50),
            },
            ..Default::default()
        });
        let broken = Arc::new(std::sync::atomic::AtomicBool::new(true));
        let calls = Arc::new(AtomicUsize::new(0));
        let (b, c) = (Arc::clone(&broken), Arc::clone(&calls));
        svc.register(
            "edge",
            Arc::new(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
                if b.load(Ordering::SeqCst) {
                    panic!("dependency down");
                }
                Ok(vec![])
            }),
        );
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        assert!(svc.call_sync("edge", HashMap::new()).is_err());
        assert!(svc.call_sync("edge", HashMap::new()).is_err());
        std::panic::set_hook(prev);
        // two consecutive transport failures opened the circuit: the next
        // call is rejected without ever reaching the procedure
        let err = svc.call_sync("edge", HashMap::new()).unwrap_err();
        assert!(matches!(err, GraphError::Unavailable(_)), "got {err:?}");
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        // after the cooldown a half-open probe goes through, succeeds, and
        // closes the circuit again
        broken.store(false, Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(60));
        assert!(svc.call_sync("edge", HashMap::new()).is_ok());
        assert!(svc.call_sync("edge", HashMap::new()).is_ok());
    }

    #[test]
    fn saturated_service_sheds_calls_with_overloaded() {
        let svc = QueryService::new(1).with_config(ServiceConfig {
            overload_watermark: Some(3),
            ..Default::default()
        });
        let gate = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let g = Arc::clone(&gate);
        svc.register(
            "block",
            Arc::new(move |_| {
                while !g.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Ok(vec![])
            }),
        );
        // fill the queue exactly to the watermark (the gate holds all of
        // them in the mailbox), then the next call must be shed
        let held: Vec<_> = (0..3).map(|_| svc.call("block", HashMap::new())).collect();
        let err = svc.call_sync("block", HashMap::new()).unwrap_err();
        assert!(matches!(err, GraphError::Overloaded { .. }), "got {err:?}");
        gate.store(true, Ordering::SeqCst);
        for rx in held {
            rx.recv().unwrap().unwrap();
        }
    }

    #[cfg(feature = "chaos")]
    mod chaos_on {
        use super::*;
        use gs_chaos::FaultPlan;

        /// Graceful degradation under injected shard faults: a slow shard
        /// and a shard that dies mid-run are masked by deadlines, retries
        /// and dead-shard rerouting — every call still succeeds.
        #[test]
        fn service_rides_out_slow_and_dead_shards() {
            let plan = FaultPlan::new(0xC4A05)
                .slow_shard(0, Duration::from_millis(5))
                .dead_shard(1, 3);
            let (ok, stats) = gs_chaos::with_chaos(plan, || {
                let svc = QueryService::new(2).with_config(ServiceConfig {
                    deadline: Some(Duration::from_secs(2)),
                    retry: RetryPolicy::new(4, Duration::from_millis(2)),
                    ..Default::default()
                });
                svc.register_idempotent("ping", Arc::new(|_| Ok(vec![vec![Value::Int(1)]])));
                (0..24)
                    .filter(|_| svc.call_sync("ping", HashMap::new()).is_ok())
                    .count()
            });
            assert_eq!(ok, 24, "retries + rerouting must mask the faults");
            assert!(
                stats.shard_delays > 0 && stats.shard_deaths > 0,
                "both fault kinds must have fired: {stats:?}"
            );
        }
    }
}
