//! Kill-anywhere crash equivalence under seeded chaos: the process dies
//! at (or mid-) an arbitrary durable write, the store reopens, and the
//! recovered state must equal the committed prefix exactly.
//!
//! Lives in its own test binary (own process) because the chaos plan is
//! process-global: the `with_chaos` gate serialises these tests against
//! each other, and no other gs-gart test shares the process.
#![cfg(feature = "chaos")]

use gs_chaos::{is_chaos_unwind, with_chaos, FaultPlan};
use gs_gart::{DurabilityConfig, GartStore};
use gs_graph::schema::GraphSchema;
use gs_graph::ValueType;
use gs_grin::{GrinGraph, LabelId, PropId, Value};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn schema() -> (GraphSchema, LabelId, LabelId) {
    let mut s = GraphSchema::new();
    let v = s.add_vertex_label("V", &[("x", ValueType::Int)]);
    let e = s.add_edge_label("E", v, v, &[("w", ValueType::Float)]);
    (s, v, e)
}

fn tmpdir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "gs-gart-chaos-{}-{}-{}",
        tag,
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn digest(store: &Arc<GartStore>, vl: LabelId, el: LabelId) -> String {
    let snap = store.snapshot();
    let mut out = String::new();
    for v in snap.vertices(vl) {
        out.push_str(&format!(
            "V {} {:?}\n",
            snap.external_id(vl, v).unwrap(),
            snap.vertex_property(vl, v, PropId(0))
        ));
    }
    let mut rows = Vec::new();
    store.scan_edges(el, store.committed_version(), &mut |s, d, e| {
        rows.push((s, d, e));
    });
    for (s, d, e) in rows {
        out.push_str(&format!(
            "E {} {} {:?}\n",
            snap.external_id(vl, s).unwrap(),
            snap.external_id(vl, d).unwrap(),
            snap.edge_property(el, e, PropId(0))
        ));
    }
    out
}

/// The crash workload: three commits (vertices; edges; a delete each of
/// an edge and a vertex), run against `dir`. Returns the write-seam
/// coordinate after each commit, so a kill at write `n` is durable up to
/// the last commit whose coordinate is `<= n`.
fn workload(dir: &Path, vl: LabelId, el: LabelId) -> Vec<u64> {
    let (s, _, _) = schema();
    let store = GartStore::open(s, DurabilityConfig::new(dir)).unwrap();
    let mut seams = vec![store.wal_writes()]; // zero commits done
    for i in 1..=4 {
        store.add_vertex(vl, i, vec![Value::Int(i as i64)]).unwrap();
    }
    store.commit();
    seams.push(store.wal_writes());
    for (a, b) in [(1u64, 2u64), (2, 3), (3, 4)] {
        store
            .add_edge(el, a, b, vec![Value::Float(a as f64)])
            .unwrap();
    }
    store.commit();
    seams.push(store.wal_writes());
    assert!(store.delete_edge(el, 2, 3).unwrap());
    assert!(store.delete_vertex(vl, 4).unwrap());
    store.commit();
    seams.push(store.wal_writes());
    seams
}

/// Reference digests after 0, 1, 2, 3 commits, plus the seam coordinates
/// recorded by an uninterrupted run.
fn reference(vl: LabelId, el: LabelId) -> (Vec<String>, Vec<u64>) {
    let dir = tmpdir("ref");
    // an empty plan still takes the exclusive chaos gate, so reference
    // runs cannot race another test's installed plan
    let (seams, _) = with_chaos(FaultPlan::new(1), || workload(&dir, vl, el));
    // replay the run version-by-version to capture each prefix digest
    let (s, _, _) = schema();
    let store = GartStore::open(s, DurabilityConfig::new(&dir)).unwrap();
    let digests = (0..=3)
        .map(|commits| {
            // prefix digests come from pinned snapshots of the full run
            let snap = store.snapshot_at(commits);
            let mut out = String::new();
            for v in snap.vertices(vl) {
                out.push_str(&format!(
                    "V {} {:?}\n",
                    snap.external_id(vl, v).unwrap(),
                    snap.vertex_property(vl, v, PropId(0))
                ));
            }
            let mut rows = Vec::new();
            store.scan_edges(el, commits, &mut |s, d, e| rows.push((s, d, e)));
            for (s, d, e) in rows {
                out.push_str(&format!(
                    "E {} {} {:?}\n",
                    snap.external_id(vl, s).unwrap(),
                    snap.external_id(vl, d).unwrap(),
                    snap.edge_property(el, e, PropId(0))
                ));
            }
            out
        })
        .collect();
    let _ = std::fs::remove_dir_all(&dir);
    (digests, seams)
}

fn kill_sweep(torn: bool) {
    let (_, vl, el) = schema();
    let (prefix_digests, seams) = reference(vl, el);
    let total_writes = *seams.last().unwrap();
    assert!(total_writes > 4, "workload must span many durable writes");
    for kill_at in 0..total_writes {
        let dir = tmpdir(if torn { "torn" } else { "kill" });
        let mut plan = FaultPlan::new(0xC0FFEE + kill_at).wal_kill(kill_at);
        if torn {
            plan = plan.wal_torn_writes();
        }
        let (outcome, stats) = with_chaos(plan, || {
            catch_unwind(AssertUnwindSafe(|| workload(&dir, vl, el)))
        });
        let err = outcome.expect_err("the scheduled kill must fire");
        assert!(is_chaos_unwind(err.as_ref()), "only chaos unwinds expected");
        if torn {
            assert_eq!(stats.wal_torn_writes, 1);
        } else {
            assert_eq!(stats.wal_kills, 1);
        }
        // recovery runs with no plan installed — crashes never cascade
        let (s, _, _) = schema();
        let store = GartStore::open(s, DurabilityConfig::new(&dir)).unwrap();
        // the kill fired *before* write `kill_at`, so exactly the commits
        // whose final write landed strictly earlier are durable
        let commits = seams[1..].iter().filter(|&&s| s <= kill_at).count();
        assert_eq!(
            digest(&store, vl, el),
            prefix_digests[commits],
            "kill at write {kill_at} (torn={torn}) must recover exactly \
             the {commits}-commit prefix"
        );
        assert_eq!(store.committed_version(), commits as u64);
        // the recovered store accepts new work
        store.add_vertex(vl, 100, vec![Value::Int(100)]).unwrap();
        store.commit();
        assert!(store.snapshot().internal_id(vl, 100).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn kill_between_any_two_writes_recovers_the_committed_prefix() {
    kill_sweep(false);
}

#[test]
fn torn_write_at_any_point_recovers_the_committed_prefix() {
    kill_sweep(true);
}

#[test]
fn kill_during_checkpoint_falls_back_to_image_or_log() {
    // checkpoint chunks share the write seam: sweep kills across an
    // open() that folds a replayed log into a fresh checkpoint image
    let (s, vl, el) = schema();
    let seed_dir = tmpdir("ckpt-seed");
    let (expect, _) = with_chaos(FaultPlan::new(2), || {
        let store = GartStore::open(s.clone(), DurabilityConfig::new(&seed_dir)).unwrap();
        for i in 1..=3 {
            store.add_vertex(vl, i, vec![Value::Int(i as i64)]).unwrap();
            store.commit();
        }
        store.add_edge(el, 1, 2, vec![Value::Float(1.0)]).unwrap();
        store.commit();
        digest(&store, vl, el)
    });
    // reopening replays 4 commits and checkpoints; kill that checkpoint
    // at several write coordinates and verify a third open still lands
    // on the same state
    for kill_at in 0..6 {
        let dir = tmpdir("ckpt-kill");
        copy_dir(&seed_dir, &dir);
        let plan = FaultPlan::new(3).wal_kill(kill_at);
        let (outcome, _) = with_chaos(plan, || {
            catch_unwind(AssertUnwindSafe(|| {
                GartStore::open(s.clone(), DurabilityConfig::new(&dir))
                    .map(|st| digest(&st, vl, el))
            }))
        });
        match outcome {
            Ok(Ok(d)) => assert_eq!(d, expect, "undisturbed open at kill_at={kill_at}"),
            Ok(Err(e)) => panic!("open must not error under a kill plan: {e:?}"),
            Err(e) => assert!(is_chaos_unwind(e.as_ref())),
        }
        // whatever the checkpoint got to, a clean reopen recovers
        let store = GartStore::open(s.clone(), DurabilityConfig::new(&dir)).unwrap();
        assert_eq!(
            digest(&store, vl, el),
            expect,
            "state after checkpoint crash at write {kill_at}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&seed_dir);
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}
