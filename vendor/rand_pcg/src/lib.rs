//! Minimal in-tree replacement for the `rand_pcg` crate: just
//! [`Pcg64Mcg`], the PCG XSL-RR 128/64 (MCG) generator, which is the only
//! RNG the workspace constructs. Implements the real PCG output function,
//! so streams are high-quality and deterministic for a given seed.

use rand::RngCore;

const MULTIPLIER: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcc_f645;

/// PCG XSL-RR 128/64 with a multiplicative congruential state transition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pcg64Mcg {
    state: u128,
}

impl Pcg64Mcg {
    /// Creates a generator from a 128-bit seed. MCG state must be odd; the
    /// low bit is forced, matching upstream `rand_pcg`.
    pub fn new(state: u128) -> Self {
        Self { state: state | 1 }
    }
}

impl RngCore for Pcg64Mcg {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(MULTIPLIER);
        let rot = (self.state >> 122) as u32;
        let xsl = ((self.state >> 64) as u64) ^ (self.state as u64);
        xsl.rotate_right(rot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Pcg64Mcg::new(12345);
        let mut b = Pcg64Mcg::new(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg64Mcg::new(1);
        let mut b = Pcg64Mcg::new(2);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut rng = Pcg64Mcg::new(99);
        let v: u64 = rng.gen_range(0..10u64);
        assert!(v < 10);
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
