//! `gs-bench irlint` — run the GraphIR static verifier over every built-in
//! benchmark/example query and print a diagnostic table.
//!
//! The corpus covers all three places queries come from in this repo: the
//! 20 LDBC SNB BI plans (built directly with [`PlanBuilder`]), the §8
//! application queries that go through the frontends (the fraud Cypher
//! check, the cyber Gremlin sweep), and the quickstart example's
//! Cypher/Gremlin pair. Each plan is verified at three stages: the logical
//! plan, the naive physical lowering, and the RBO-optimized physical plan
//! — so a regression in any rewrite rule shows up here as a new row.
//!
//! [`PlanBuilder`]: gs_ir::PlanBuilder

use crate::util::TablePrinter;
use gs_graph::schema::GraphSchema;
use gs_graph::Value;
use gs_ir::physical::lower_naive;
use gs_ir::verify::{Severity, VerifyReport};
use gs_ir::{verify_logical, verify_physical, LogicalPlan};
use gs_optimizer::Optimizer;
use std::collections::HashMap;

/// One verified query: its name and the per-stage reports.
pub struct LintResult {
    pub query: String,
    /// `(stage name, report)` — logical, physical, optimized.
    pub stages: Vec<(&'static str, VerifyReport)>,
}

impl LintResult {
    /// Errors across all stages.
    pub fn error_count(&self) -> usize {
        self.stages.iter().map(|(_, r)| r.error_count()).sum()
    }

    /// Warnings across all stages.
    pub fn warning_count(&self) -> usize {
        self.stages.iter().map(|(_, r)| r.warning_count()).sum()
    }
}

/// Verifies one logical plan at all three stages.
fn lint_plan(name: &str, plan: &LogicalPlan, schema: &GraphSchema) -> LintResult {
    let mut stages = vec![("logical", verify_logical(plan, schema))];
    match lower_naive(plan) {
        Ok(phys) => stages.push(("physical", verify_physical(&phys, schema))),
        Err(e) => stages.push(("physical", lowering_failure(e))),
    }
    match Optimizer::rbo_only().optimize(plan) {
        Ok(opt) => stages.push(("optimized", verify_physical(&opt, schema))),
        Err(e) => stages.push(("optimized", lowering_failure(e))),
    }
    LintResult {
        query: name.to_string(),
        stages,
    }
}

/// A plan that failed to lower at all is reported as a layout error so it
/// lands in the same table instead of aborting the run.
fn lowering_failure(e: gs_graph::GraphError) -> VerifyReport {
    VerifyReport {
        diagnostics: vec![gs_ir::Diagnostic {
            code: gs_ir::verify::E_LAYOUT_MISMATCH,
            severity: Severity::Error,
            op_index: None,
            rule: None,
            message: format!("lowering failed: {e}"),
        }],
    }
}

/// Builds and verifies the whole built-in query corpus.
pub fn lint_all() -> Vec<LintResult> {
    let mut out = Vec::new();

    // ---- LDBC SNB BI 1..=20 ------------------------------------------
    let snb = gs_datagen::snb::generate(&gs_datagen::snb::SnbConfig::lite(10));
    let params = gs_flex::snb::BiParams::default();
    for n in 1..=gs_flex::snb::BI_COUNT {
        match gs_flex::snb::bi_plan(n, &snb.data.schema, &snb.labels, &params) {
            Ok(plan) => out.push(lint_plan(&format!("BI{n}"), &plan, &snb.data.schema)),
            Err(e) => out.push(LintResult {
                query: format!("BI{n}"),
                stages: vec![("logical", lowering_failure(e))],
            }),
        }
    }

    // ---- §8 fraud detection (Cypher frontend) ------------------------
    let fraud = gs_datagen::apps::fraud_graph(20, 10, 40, 0, 7);
    let fraud_q = "MATCH (v:Account {id: 0})-[b1:BUY]->(:Item)<-[b2:BUY]-(s:Account) \
                   WHERE s.id IN $SEEDS AND b1.date - b2.date < 3 AND b2.date - b1.date < 3 \
                   WITH v, COUNT(s) AS cnt1 \
                   MATCH (v)-[:KNOWS]-(f:Account), (f)-[b3:BUY]->(:Item)<-[b4:BUY]-(s2:Account) \
                   WHERE s2.id IN $SEEDS \
                   WITH v, cnt1, COUNT(s2) AS cnt2 \
                   WHERE 2 * cnt1 + 1 * cnt2 > 3 \
                   RETURN v";
    let mut fraud_params = HashMap::new();
    fraud_params.insert(
        "SEEDS".to_string(),
        Value::List(vec![Value::Int(1), Value::Int(2)]),
    );
    lint_frontend(
        &mut out,
        "fraud-cypher",
        gs_lang::parse_cypher(fraud_q, &fraud.data.schema, &fraud_params),
        &fraud.data.schema,
    );

    // ---- §8 cyber monitoring (Gremlin frontend) ----------------------
    let cyber = gs_datagen::apps::cyber_graph(4, 1, 1);
    let cyber_q = "g.V().hasLabel('Host').out('RUNS').out('CONNECTS').dedup()";
    lint_frontend(
        &mut out,
        "cyber-gremlin",
        gs_lang::parse_gremlin(cyber_q, &cyber.data.schema),
        &cyber.data.schema,
    );

    // ---- quickstart example (both frontends) -------------------------
    let schema = quickstart_schema();
    let cypher = "MATCH (a:Person {name: 'ann'})-[:KNOWS]-(f:Person)-[:BUY]->(i:Item) \
                  RETURN f.name AS friend, i.price AS price ORDER BY price DESC LIMIT 10";
    lint_frontend(
        &mut out,
        "quickstart-cypher",
        gs_lang::parse_cypher(cypher, &schema, &HashMap::new()),
        &schema,
    );
    let gremlin =
        "g.V().hasLabel('Person').has('name', 'ann').out('KNOWS').out('BUY').values('price')";
    lint_frontend(
        &mut out,
        "quickstart-gremlin",
        gs_lang::parse_gremlin(gremlin, &schema),
        &schema,
    );

    out
}

fn lint_frontend(
    out: &mut Vec<LintResult>,
    name: &str,
    parsed: gs_graph::Result<LogicalPlan>,
    schema: &GraphSchema,
) {
    match parsed {
        Ok(plan) => out.push(lint_plan(name, &plan, schema)),
        Err(e) => out.push(LintResult {
            query: name.to_string(),
            stages: vec![("logical", lowering_failure(e))],
        }),
    }
}

/// The schema from `examples/quickstart.rs`, rebuilt here so the example's
/// queries are linted without running the example.
fn quickstart_schema() -> GraphSchema {
    use gs_graph::value::ValueType;
    let mut schema = GraphSchema::new();
    let person = schema.add_vertex_label(
        "Person",
        &[("name", ValueType::Str), ("age", ValueType::Int)],
    );
    let item = schema.add_vertex_label("Item", &[("price", ValueType::Float)]);
    schema.add_edge_label("KNOWS", person, person, &[]);
    schema.add_edge_label("BUY", person, item, &[("date", ValueType::Date)]);
    schema
}

/// Prints the diagnostic table and returns the process exit code: nonzero
/// when any error was found, or (with `deny_warnings`) any diagnostic.
pub fn run(deny_warnings: bool) -> i32 {
    let results = lint_all();
    let mut table = TablePrinter::new(&["query", "stage", "code", "severity", "op", "message"]);
    let (mut errors, mut warnings) = (0usize, 0usize);
    for r in &results {
        for (stage, report) in &r.stages {
            // feed the ir.verify.* counters exactly as a submit would
            let _ = gs_ir::verify::enforce(report, gs_ir::VerifyLevel::Warn, stage);
            for d in &report.diagnostics {
                match d.severity {
                    Severity::Error => errors += 1,
                    Severity::Warning => warnings += 1,
                }
                table.row(vec![
                    r.query.clone(),
                    stage.to_string(),
                    d.code.to_string(),
                    match d.severity {
                        Severity::Error => "error".into(),
                        Severity::Warning => "warning".into(),
                    },
                    d.op_index.map(|i| i.to_string()).unwrap_or_default(),
                    d.message.clone(),
                ]);
            }
        }
    }
    if errors + warnings > 0 {
        table.print();
    }
    println!(
        "irlint: {} queries verified, {errors} errors, {warnings} warnings",
        results.len()
    );
    if errors > 0 || (deny_warnings && warnings > 0) {
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance gate: every built-in query passes verification with
    /// zero errors, and with zero warnings (the CI `--deny-warnings` bar).
    #[test]
    fn builtin_corpus_is_clean() {
        let results = lint_all();
        assert!(results.len() >= 24, "corpus size: {}", results.len());
        for r in &results {
            assert_eq!(r.stages.len(), 3, "{} missing stages", r.query);
            for (stage, report) in &r.stages {
                assert!(
                    report.is_clean(),
                    "{} [{stage}]: {}",
                    r.query,
                    report.render()
                );
            }
        }
    }
}
