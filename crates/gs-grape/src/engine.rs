//! The BSP core shared by all GRAPE programming models: per-fragment worker
//! threads, all-to-all compact-buffer message exchange, and barrier-based
//! global reductions.

use crate::fragment::Fragment;
use crate::messages::{MessageBlock, OutBuffers, Payload};
use gs_graph::VId;
use gs_sanitizer::channel::{unbounded, TrackedReceiver, TrackedSender};
use gs_sanitizer::{SharedCell, TrackedBarrier};
use gs_telemetry::counter;
use std::sync::Arc;
use std::time::Instant;

/// Double-barrier global reduction: every worker contributes a u64; all
/// observe the total.
///
/// The accumulator slots and the barrier go through `gs-sanitizer`'s
/// tracked wrappers: under `--features sanitize` the double-buffer
/// protocol below is verified against the happens-before order the
/// barriers provide (an accumulate racing a reset is an `S002`), at zero
/// cost otherwise.
pub struct GlobalSync {
    barrier: TrackedBarrier,
    /// Round-alternating accumulator slots. A slot is reset by the round's
    /// leader *after* the round's second barrier; the next round uses the
    /// other slot, so no worker can race a reset against an accumulate
    /// (the reset leader must pass the next round's first barrier before
    /// that slot is reused).
    totals: [SharedCell<u64>; 2],
    totals_f: [SharedCell<f64>; 2],
}

impl GlobalSync {
    pub fn new(workers: usize) -> Arc<Self> {
        Arc::new(Self {
            barrier: TrackedBarrier::new("grape.sync.barrier", workers),
            totals: [
                SharedCell::new("grape.sync.totals.0", 0),
                SharedCell::new("grape.sync.totals.1", 0),
            ],
            totals_f: [
                SharedCell::new("grape.sync.totals_f.0", 0.0),
                SharedCell::new("grape.sync.totals_f.1", 0.0),
            ],
        })
    }

    /// All-reduce sum at a given collective round. Every worker must call
    /// with the same monotonically increasing round number (see
    /// [`CommHandle::allreduce`], which manages the counter).
    pub fn sum_at(&self, round: u64, contribution: u64) -> u64 {
        let slot = (round % 2) as usize;
        self.totals[slot].update(|v| *v += contribution);
        self.barrier.wait();
        let result = self.totals[slot].get();
        let wait = self.barrier.wait();
        if wait.is_leader() {
            self.totals[slot].set(0);
        }
        result
    }

    /// f64 all-reduce at a collective round (PageRank dangling mass).
    pub fn sum_f64_at(&self, round: u64, contribution: f64) -> f64 {
        let slot = (round % 2) as usize;
        self.totals_f[slot].update(|v| *v += contribution);
        self.barrier.wait();
        let result = self.totals_f[slot].get();
        let wait = self.barrier.wait();
        if wait.is_leader() {
            self.totals_f[slot].set(0.0);
        }
        result
    }
}

/// Per-worker communication handle for all-to-all exchanges.
pub struct CommHandle {
    pub my_id: usize,
    pub workers: usize,
    senders: Vec<TrackedSender<(usize, MessageBlock)>>,
    receiver: TrackedReceiver<(usize, MessageBlock)>,
    pub sync: Arc<GlobalSync>,
    /// This worker's collective-round counter (each allreduce is one
    /// collective round; all workers must make the same sequence of calls).
    round: std::cell::Cell<u64>,
    /// Blocks received ahead of their exchange round, queued per sender.
    /// A fast peer may already have sent its round-(r+1) block while this
    /// worker is still collecting round r; per-sender FIFO order makes the
    /// n-th block from a peer its round-n block, so stashing extras here
    /// keeps rounds aligned without a global barrier.
    pending: std::cell::RefCell<Vec<std::collections::VecDeque<MessageBlock>>>,
}

impl CommHandle {
    /// Builds a `k`-worker cluster of connected handles.
    pub fn cluster(k: usize) -> Vec<CommHandle> {
        let mut senders = Vec::with_capacity(k);
        let mut receivers = Vec::with_capacity(k);
        for _ in 0..k {
            let (tx, rx) = unbounded("grape.exchange");
            senders.push(tx);
            receivers.push(rx);
        }
        let sync = GlobalSync::new(k);
        receivers
            .into_iter()
            .enumerate()
            .map(|(i, receiver)| CommHandle {
                my_id: i,
                workers: k,
                senders: senders.clone(),
                receiver,
                sync: Arc::clone(&sync),
                round: std::cell::Cell::new(0),
                pending: std::cell::RefCell::new(
                    (0..k).map(|_| std::collections::VecDeque::new()).collect(),
                ),
            })
            .collect()
    }

    /// Collective all-reduce sum (u64).
    pub fn allreduce(&self, contribution: u64) -> u64 {
        let r = self.round.get();
        self.round.set(r + 1);
        self.sync.sum_at(r, contribution)
    }

    /// Collective all-reduce sum (f64).
    pub fn allreduce_f64(&self, contribution: f64) -> f64 {
        let r = self.round.get();
        self.round.set(r + 1);
        self.sync.sum_f64_at(r, contribution)
    }

    /// All-to-all exchange: sends one block to every worker (including
    /// self), receives exactly one block *from* every worker for this
    /// round. Returns the received blocks (indexed by sender) and the total
    /// message count delivered to *this* worker.
    pub fn exchange(&self, out: &mut OutBuffers) -> (Vec<MessageBlock>, u64) {
        let blocks = out.take();
        if gs_telemetry::enabled() {
            counter!("grape.msgs_sent"; blocks.iter().map(|b| b.count).sum());
            counter!("grape.msg_bytes_raw"; blocks.iter().map(|b| b.raw_bytes).sum());
            counter!("grape.msg_bytes_encoded";
                blocks.iter().map(|b| b.bytes.len() as u64).sum());
        }
        for (to, block) in blocks.into_iter().enumerate() {
            self.senders[to]
                .send((self.my_id, block))
                .expect("worker alive");
        }
        let mut pending = self.pending.borrow_mut();
        let mut incoming: Vec<Option<MessageBlock>> = (0..self.workers).map(|_| None).collect();
        let mut got = 0;
        // blocks stashed by a previous over-receive are this round's
        for (from, q) in pending.iter_mut().enumerate() {
            if let Some(b) = q.pop_front() {
                incoming[from] = Some(b);
                got += 1;
            }
        }
        let stall_start = gs_telemetry::enabled().then(Instant::now);
        while got < self.workers {
            let (from, block) = self.receiver.recv().expect("exchange recv");
            if incoming[from].is_none() {
                incoming[from] = Some(block);
                got += 1;
            } else {
                // a peer raced ahead into the next round; keep for later
                pending[from].push_back(block);
            }
        }
        if let Some(t) = stall_start {
            counter!("grape.exchange_stall_ns"; t.elapsed().as_nanos() as u64);
        }
        let incoming: Vec<MessageBlock> = incoming
            .into_iter()
            .map(|b| b.expect("one per sender"))
            .collect();
        let count = incoming.iter().map(|b| b.count).sum();
        (incoming, count)
    }
}

/// The GRAPE engine: owns the fragments and runs programs over them, one
/// worker thread per fragment.
pub struct GrapeEngine {
    pub fragments: Vec<Fragment>,
}

impl GrapeEngine {
    /// Partitions a global edge list into `k` fragments.
    pub fn from_edges(n: usize, edges: &[(VId, VId)], k: usize) -> Self {
        Self {
            fragments: Fragment::partition_edges(n, edges, k),
        }
    }

    /// Partitions a weighted edge list.
    pub fn from_weighted_edges(n: usize, edges: &[(VId, VId)], weights: &[f64], k: usize) -> Self {
        Self {
            fragments: Fragment::partition_weighted(n, edges, Some(weights), k),
        }
    }

    /// Global vertex count.
    pub fn global_n(&self) -> usize {
        self.fragments.first().map_or(0, |f| f.global_n)
    }

    /// Runs a per-fragment worker function in parallel and gathers each
    /// fragment's `(global id, value)` results into one global vector.
    /// The worker receives `(fragment, comm)`.
    pub fn run<T, F>(&self, worker: F) -> Vec<T>
    where
        T: Clone + Default + Send + 'static,
        F: Fn(&Fragment, &CommHandle) -> Vec<(VId, T)> + Sync,
    {
        let k = self.fragments.len();
        let comms = CommHandle::cluster(k);
        let results: Vec<Vec<(VId, T)>> = crossbeam::thread::scope(|s| {
            let worker = &worker;
            let handles: Vec<_> = self
                .fragments
                .iter()
                .zip(comms)
                .map(|(frag, comm)| s.spawn(move |_| worker(frag, &comm)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("grape worker panicked"))
                .collect()
        })
        .expect("grape scope");
        let mut global = vec![T::default(); self.global_n()];
        for part in results {
            for (g, v) in part {
                global[g.index()] = v;
            }
        }
        global
    }
}

/// A Pregel ("think like a vertex") program.
pub trait PregelProgram: Sync {
    /// Message type exchanged along edges.
    type Msg: Payload;
    /// Per-vertex state.
    type Value: Clone + Default + Send + 'static;

    /// Initial value for a vertex.
    fn init(&self, g: VId, frag: &Fragment) -> Self::Value;

    /// One superstep for one vertex. Returning `true` keeps the vertex
    /// active; `false` votes to halt (it reactivates on incoming messages).
    fn compute(
        &self,
        step: usize,
        local: u32,
        value: &mut Self::Value,
        msgs: &[Self::Msg],
        ctx: &mut PregelContext<'_, Self::Msg>,
    ) -> bool;

    /// Optional associative message combiner (applied at the receiver).
    fn combine(&self, _a: Self::Msg, _b: Self::Msg) -> Option<Self::Msg> {
        None
    }
}

/// Context passed to [`PregelProgram::compute`].
pub struct PregelContext<'a, M: Payload> {
    pub frag: &'a Fragment,
    out: &'a mut OutBuffers,
    _marker: std::marker::PhantomData<M>,
}

impl<'a, M: Payload> PregelContext<'a, M> {
    /// Sends a message to a vertex by *global* id.
    #[inline]
    pub fn send(&mut self, target: VId, msg: M) {
        let to = self.frag.owner(target).index();
        self.out.send(to, target, msg);
    }

    /// Sends to every out-neighbor of a local vertex.
    #[inline]
    pub fn send_to_out_neighbors(&mut self, local: u32, msg: M) {
        let frag = self.frag;
        for &nbr in frag.out_neighbors(local) {
            let g = frag.global(nbr.0 as u32);
            let to = frag.owner(g).index();
            self.out.send(to, g, msg);
        }
    }
}

/// Runs a Pregel program to fixpoint (or `max_steps`), returning per-vertex
/// values indexed by global id.
pub fn run_pregel<P: PregelProgram>(
    engine: &GrapeEngine,
    program: &P,
    max_steps: usize,
) -> Vec<P::Value> {
    engine.run(|frag, comm| {
        let n_inner = frag.inner_count;
        let mut values: Vec<P::Value> = (0..n_inner)
            .map(|l| program.init(frag.global(l as u32), frag))
            .collect();
        let mut active = vec![true; n_inner];
        let mut inboxes: Vec<Vec<P::Msg>> = vec![Vec::new(); n_inner];
        let mut out = OutBuffers::new(comm.workers);

        for step in 0..max_steps {
            if comm.my_id == 0 {
                // one worker counts supersteps for the whole cluster
                counter!("grape.supersteps");
            }
            // compute phase
            let mut local_active = 0u64;
            for l in 0..n_inner {
                if !active[l] && inboxes[l].is_empty() {
                    continue;
                }
                let msgs = std::mem::take(&mut inboxes[l]);
                let mut ctx = PregelContext {
                    frag,
                    out: &mut out,
                    _marker: std::marker::PhantomData,
                };
                let keep = program.compute(step, l as u32, &mut values[l], &msgs, &mut ctx);
                active[l] = keep;
                if keep {
                    local_active += 1;
                }
            }
            // exchange phase
            let sent = out.total();
            let (blocks, _received) = comm.exchange(&mut out);
            for block in &blocks {
                block.for_each::<P::Msg>(|g, m| {
                    let l = frag.local(g).expect("message routed to owner") as usize;
                    debug_assert!(l < n_inner);
                    if let Some(last) = inboxes[l].pop() {
                        match program.combine(last, m) {
                            Some(c) => inboxes[l].push(c),
                            None => {
                                inboxes[l].push(last);
                                inboxes[l].push(m);
                            }
                        }
                    } else {
                        inboxes[l].push(m);
                    }
                });
            }
            // global termination: nobody active, nothing in flight
            let global_pending = comm.allreduce(local_active + sent);
            if global_pending == 0 {
                break;
            }
        }
        (0..n_inner)
            .map(|l| (frag.global(l as u32), values[l].clone()))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Max-value propagation: every vertex converges to the component max.
    struct MaxProp;
    impl PregelProgram for MaxProp {
        type Msg = u64;
        type Value = u64;
        fn init(&self, g: VId, _f: &Fragment) -> u64 {
            g.0
        }
        fn compute(
            &self,
            step: usize,
            local: u32,
            value: &mut u64,
            msgs: &[u64],
            ctx: &mut PregelContext<'_, u64>,
        ) -> bool {
            let before = *value;
            for &m in msgs {
                *value = (*value).max(m);
            }
            if step == 0 || *value > before {
                let v = *value;
                ctx.send_to_out_neighbors(local, v);
            }
            false // vote halt; reactivated by messages
        }
        fn combine(&self, a: u64, b: u64) -> Option<u64> {
            Some(a.max(b))
        }
    }

    #[test]
    fn max_propagation_on_ring() {
        let edges: Vec<(VId, VId)> = (0..40u64)
            .flat_map(|i| [(VId(i), VId((i + 1) % 40)), (VId((i + 1) % 40), VId(i))])
            .collect();
        for k in [1, 3, 4] {
            let engine = GrapeEngine::from_edges(40, &edges, k);
            let result = run_pregel(&engine, &MaxProp, 100);
            assert!(result.iter().all(|&v| v == 39), "k={k}: {result:?}");
        }
    }

    #[test]
    fn disconnected_components_get_their_own_max() {
        // two disjoint bidirectional paths: 0-1-2, 3-4
        let edges = vec![
            (VId(0), VId(1)),
            (VId(1), VId(0)),
            (VId(1), VId(2)),
            (VId(2), VId(1)),
            (VId(3), VId(4)),
            (VId(4), VId(3)),
        ];
        let engine = GrapeEngine::from_edges(5, &edges, 2);
        let result = run_pregel(&engine, &MaxProp, 50);
        assert_eq!(result, vec![2, 2, 2, 4, 4]);
    }

    #[test]
    fn global_sync_sums_across_workers() {
        let comms = CommHandle::cluster(4);
        let totals: Vec<u64> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|c| {
                    s.spawn(move |_| -> u64 {
                        (0..3).map(|_| c.allreduce(c.my_id as u64 + 1)).sum()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        // each round sums 1+2+3+4 = 10; three rounds = 30 per worker
        assert!(totals.iter().all(|&t| t == 30), "{totals:?}");
    }
}
