/root/repo/target/debug/deps/gs_graphar-44e8f1a236a9e7a8.d: crates/gs-graphar/src/lib.rs crates/gs-graphar/src/codec.rs crates/gs-graphar/src/csv.rs crates/gs-graphar/src/format.rs crates/gs-graphar/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libgs_graphar-44e8f1a236a9e7a8.rmeta: crates/gs-graphar/src/lib.rs crates/gs-graphar/src/codec.rs crates/gs-graphar/src/csv.rs crates/gs-graphar/src/format.rs crates/gs-graphar/src/store.rs Cargo.toml

crates/gs-graphar/src/lib.rs:
crates/gs-graphar/src/codec.rs:
crates/gs-graphar/src/csv.rs:
crates/gs-graphar/src/format.rs:
crates/gs-graphar/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
