//! # gs-flex — the LEGO assembly layer of GraphScope Flex
//!
//! Everything above the individual bricks:
//!
//! * [`flexbuild`] — component selection and deployment composition
//!   (paper §3's `flexbuild` utility);
//! * [`snb`] — the LDBC SNB interactive and BI workloads over the
//!   composable backends (Figs. 7f/7g);
//! * the four §8 production use cases, each on its own brick selection:
//!   [`fraud`] (HiActor + GART), [`equity`] (GRAPE + Vineyard),
//!   [`social`] (learning stack + Vineyard), and [`cyber`]
//!   (Gremlin → IR → Vineyard).

pub mod cyber;
pub mod equity;
pub mod flexbuild;
pub mod fraud;
pub mod snb;
pub mod social;

pub use cyber::CyberApp;
pub use equity::{equity_grape, equity_grape_over, equity_sql, Controllers};
pub use flexbuild::{Component, DeployTarget, Deployment, EngineChoice, FlexBuild};
pub use fraud::{FraudApp, FraudConfig};
pub use social::{train_social, SocialConfig};
