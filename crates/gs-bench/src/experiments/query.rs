//! Query-stack experiments: Figures 7(e)–7(g).

use crate::util::{fmt_duration, fmt_speedup, time_it, TablePrinter};
use gs_datagen::snb::{generate, SnbConfig, SnbGraph};
use gs_flex::snb::interactive::{self, UpdateIds};
use gs_flex::snb::SnbBackend;
use gs_flex::snb::{
    bi_plan, BiParams, FlexBackend, Params, TuBackend, COMPLEX_QUERIES, SHORT_QUERIES,
};
use gs_gaia::GaiaEngine;
use gs_graph::Value;
use gs_ir::exec::execute;
use gs_ir::expr::BinOp;
use gs_ir::logical::ProjectItem;
use gs_ir::physical::lower_naive;
use gs_ir::{Expr, LogicalPlan, Pattern, PlanBuilder};
use gs_optimizer::{GlogueCatalog, Optimizer, OptimizerConfig};
use gs_vineyard::VineyardGraph;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn snb(scale: f64, persons: usize) -> SnbGraph {
    generate(&SnbConfig::lite(((persons as f64) * scale) as usize))
}

/// Builds the Q1/Q2/Q3 optimization-probe query sets (paper's [24]): four
/// queries per set, each isolating one optimization.
fn probe_queries(g: &SnbGraph, set: usize, q: usize) -> LogicalPlan {
    let schema = &g.data.schema;
    let l = &g.labels;
    let b = PlanBuilder::new(schema);
    match set {
        // Q1: expand-heavy paths (EdgeVertexFusion targets) — chains of
        // expand+getvertex with varying length/labels.
        1 => {
            let hops: &[(&str, gs_grin::Direction)] = match q {
                0 => &[
                    ("KNOWS", gs_grin::Direction::Out),
                    ("KNOWS", gs_grin::Direction::Out),
                ],
                1 => &[
                    ("KNOWS", gs_grin::Direction::Out),
                    ("KNOWS", gs_grin::Direction::Out),
                    ("KNOWS", gs_grin::Direction::Out),
                ],
                2 => &[
                    ("KNOWS", gs_grin::Direction::Out),
                    ("LIKES", gs_grin::Direction::Out),
                ],
                _ => &[
                    ("KNOWS", gs_grin::Direction::Out),
                    ("KNOWS", gs_grin::Direction::Out),
                    ("LIKES", gs_grin::Direction::Out),
                ],
            };
            let mut builder = b.scan("a", "Person").unwrap();
            let mut prev = "a".to_string();
            for (i, (lbl, dir)) in hops.iter().enumerate() {
                let e = format!("e{i}");
                let v = format!("v{i}");
                builder = builder
                    .expand_edge(&prev, lbl, *dir, &e)
                    .unwrap()
                    .get_vertex(&e, &v)
                    .unwrap();
                prev = v;
            }
            let col = builder.col(&prev).unwrap();
            builder
                .project(vec![(ProjectItem::Expr(col), "out")])
                .unwrap()
                .build()
        }
        // Q2: selective point lookups (FilterPushIntoMatch targets) —
        // pattern plus a highly selective WHERE on one alias.
        2 => {
            let mut p = Pattern::new();
            let a = p.add_vertex("a", l.person);
            let f = p.add_vertex("f", l.person);
            p.add_edge(None, l.knows, a, f);
            if q >= 2 {
                let po = p.add_vertex("po", l.post);
                p.add_edge(None, l.has_creator_post, po, f);
            }
            let builder = b.match_pattern(p).unwrap();
            let pred = Expr::bin(
                BinOp::Eq,
                builder.prop("a", "id").unwrap(),
                Expr::Const(Value::Int((q as i64 + 1) * 3)),
            );
            builder
                .select(pred)
                .project(vec![(
                    ProjectItem::Agg(gs_ir::AggFunc::Count, Expr::Column(1)),
                    "n",
                )])
                .unwrap()
                .build()
        }
        // Q3: join-order-sensitive patterns (CBO targets) — patterns whose
        // written order anchors on huge labels while a selective vertex
        // exists elsewhere.
        _ => {
            let mut p = Pattern::new();
            // written order: comment → post → person (bad anchor first)
            let c = p.add_vertex("c", l.comment);
            let po = p.add_vertex("po", l.post);
            let a = p.add_vertex("a", l.person);
            p.add_edge(None, l.reply_of, c, po);
            p.add_edge(None, l.has_creator_post, po, a);
            if q % 2 == 1 {
                let t = p.add_vertex("t", l.tag);
                p.add_edge(None, l.has_tag_post, po, t);
            }
            // selective person
            p.and_vertex_predicate(
                p.vertex_index("a").unwrap(),
                Expr::bin(
                    BinOp::Eq,
                    Expr::VertexId {
                        col: 0,
                        label: l.person,
                    },
                    Expr::Const(Value::Int((q as i64 + 1) * 5)),
                ),
            );
            let builder = b.match_pattern(p).unwrap();
            let cnt = builder.col("c").unwrap();
            builder
                .project(vec![(ProjectItem::Agg(gs_ir::AggFunc::Count, cnt), "n")])
                .unwrap()
                .build()
        }
    }
}

/// Fig. 7(e): the contribution of each optimization rule.
pub fn fig7e(scale: f64) {
    println!("== Fig 7(e): query optimization — RBO (fusion, filter-push) and CBO ==");
    println!("paper shape: fusion ≈2.9×, filter-push ≈279×, CBO ≈11×\n");
    let g = snb(scale, 800);
    let store = VineyardGraph::build(&g.data).unwrap();
    let catalog = GlogueCatalog::build(&store, 500);
    let mut t = TablePrinter::new(&["set", "query", "unoptimized", "optimized", "speedup"]);
    for (set, rule) in [(1usize, "fusion"), (2, "filter-push"), (3, "CBO")] {
        // Each set isolates one rule: the baseline has it off, the
        // optimized side has it on; everything else is held equal. For CBO
        // (set 3) both sides keep filter pushdown — the paper's CBO isolates
        // *join ordering*, not predicate placement.
        let (base_config, opt_config) = match set {
            1 => (
                OptimizerConfig::none(),
                OptimizerConfig {
                    fusion: true,
                    filter_push: false,
                    cbo: false,
                },
            ),
            2 => (
                OptimizerConfig::none(),
                OptimizerConfig {
                    fusion: false,
                    filter_push: true,
                    cbo: false,
                },
            ),
            _ => (
                OptimizerConfig {
                    fusion: false,
                    filter_push: true,
                    cbo: false,
                },
                OptimizerConfig {
                    fusion: false,
                    filter_push: true,
                    cbo: true,
                },
            ),
        };
        for q in 0..4 {
            let plan = probe_queries(&g, set, q);
            let naive = Optimizer::with_config(base_config.clone(), Some(catalog.clone()))
                .optimize(&plan)
                .unwrap();
            let optimizer = Optimizer::with_config(opt_config.clone(), Some(catalog.clone()));
            let optimized = optimizer.optimize(&plan).unwrap();
            let (t_naive, base_rows) = time_it(3, || execute(&naive, &store).unwrap());
            let (t_opt, opt_rows) = time_it(3, || execute(&optimized, &store).unwrap());
            assert_eq!(base_rows.len(), opt_rows.len(), "Q{set}.{q} row count");
            t.row(vec![
                format!("Q{set} ({rule})"),
                format!("q{}", q + 1),
                fmt_duration(t_naive),
                fmt_duration(t_opt),
                fmt_speedup(t_naive, t_opt),
            ]);
        }
    }
    t.print();
}

/// Fig. 7(f): SNB Interactive — Flex (HiActor+GART) vs the TuGraph-like
/// baseline: per-query latency plus aggregate throughput.
pub fn fig7f(scale: f64) {
    println!("== Fig 7(f): SNB Interactive — Flex vs TuGraph-like ==");
    println!("paper shape: Flex faster on ~all queries (avg ≈8.9×), ≈2.45× throughput\n");
    let g = snb(scale, 500);
    let flex = Arc::new(FlexBackend::load(&g).unwrap());
    let tu = Arc::new(TuBackend::load(&g).unwrap());
    let mut t = TablePrinter::new(&["query", "Flex", "TuGraph-like", "speedup"]);
    let mk_params = |i: u64| Params {
        person: (i * 13) % g.persons as u64,
        person2: (i * 29 + 7) % g.persons as u64,
        date: 15200 + (i as i64 % 400),
        tag: i % g.tags as u64,
        forum: i % g.forums as u64,
        first_name: "Jan".to_string(),
        limit: 20,
    };
    let mut speedups = Vec::new();
    for (name, q) in COMPLEX_QUERIES.iter().chain(SHORT_QUERIES.iter()) {
        let (tf, _) = time_it(3, || {
            for i in 0..5u64 {
                q(flex.as_ref(), &mk_params(i));
            }
        });
        let (tt, _) = time_it(3, || {
            for i in 0..5u64 {
                q(tu.as_ref(), &mk_params(i));
            }
        });
        speedups.push(tt.as_secs_f64() / tf.as_secs_f64());
        t.row(vec![
            name.to_string(),
            fmt_duration(tf / 5),
            fmt_duration(tt / 5),
            fmt_speedup(tt, tf),
        ]);
    }
    // updates U1-U8 (fresh ids per system)
    for (ui, label) in (1..=8).zip([
        "U1 person",
        "U2 like",
        "U3 interest",
        "U4 forum",
        "U5 member",
        "U6 post",
        "U7 comment",
        "U8 knows",
    ]) {
        let run_updates = |b: &dyn SnbBackend, base: u64| {
            let mut ids = UpdateIds {
                next_person: 2_000_000 + base,
                next_post: 2_000_000 + base,
                next_comment: 2_000_000 + base,
                next_forum: 2_000_000 + base,
            };
            match ui {
                1 => {
                    interactive::iu1(b, &mut ids, 15500).unwrap();
                }
                2 => interactive::iu2(b, 1, 0, 15500).unwrap(),
                3 => interactive::iu3(b, 1, 1).unwrap(),
                4 => {
                    interactive::iu4(b, &mut ids, 15500).unwrap();
                }
                5 => interactive::iu5(b, 0, 2, 15500).unwrap(),
                6 => {
                    interactive::iu6(b, &mut ids, 1, 0, 15500).unwrap();
                }
                7 => {
                    interactive::iu7(b, &mut ids, 1, 0, 15500).unwrap();
                }
                _ => interactive::iu8(b, 3, 4, 15500).unwrap(),
            }
        };
        let counter = AtomicUsize::new(0);
        let (tf, _) = time_it(3, || {
            run_updates(
                flex.as_ref(),
                counter.fetch_add(1, Ordering::Relaxed) as u64 * 100,
            )
        });
        let (tt, _) = time_it(3, || {
            run_updates(
                tu.as_ref(),
                counter.fetch_add(1, Ordering::Relaxed) as u64 * 100,
            )
        });
        t.row(vec![
            label.to_string(),
            fmt_duration(tf),
            fmt_duration(tt),
            fmt_speedup(tt, tf),
        ]);
    }
    t.print();
    let geo: f64 = speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64;
    println!("read-query geomean speedup: {:.2}×", geo.exp());

    // throughput: mixed read workload on 4 client threads
    let ops = 400usize;
    let throughput = |run: &(dyn Fn(u64) + Sync)| {
        let next = AtomicUsize::new(0);
        let t0 = Instant::now();
        crossbeam::thread::scope(|s| {
            for _ in 0..4 {
                let next = &next;
                s.spawn(move |_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= ops {
                        break;
                    }
                    run(i as u64);
                });
            }
        })
        .unwrap();
        ops as f64 / t0.elapsed().as_secs_f64()
    };
    let flex2 = Arc::clone(&flex);
    let tp_flex = throughput(&move |i| {
        let q = SHORT_QUERIES[(i % 7) as usize].1;
        q(flex2.as_ref(), &mk_params(i));
    });
    let tu2 = Arc::clone(&tu);
    let tp_tu = throughput(&move |i| {
        let q = SHORT_QUERIES[(i % 7) as usize].1;
        q(tu2.as_ref(), &mk_params(i));
    });
    println!(
        "throughput (short-query mix, 4 clients): Flex {tp_flex:.0} ops/s vs TuGraph-like {tp_tu:.0} ops/s ({:.2}×)",
        tp_flex / tp_tu
    );
}

/// Fig. 7(g): SNB BI — Gaia (optimized, parallel) vs single-threaded naive
/// execution.
pub fn fig7g(scale: f64) {
    println!("== Fig 7(g): SNB BI — Flex/Gaia vs unoptimized single-threaded baseline ==");
    println!("paper shape: ≈10× average latency advantage\n");
    let g = snb(scale, 500);
    let store = VineyardGraph::build(&g.data).unwrap();
    let schema = g.data.schema.clone();
    let catalog = GlogueCatalog::build(&store, 300);
    let optimizer = Optimizer::new(catalog);
    let gaia = GaiaEngine::new(
        std::thread::available_parallelism()
            .map(|x| x.get())
            .unwrap_or(4),
    );
    let params = BiParams::default();
    let mut t = TablePrinter::new(&["query", "Flex (Gaia)", "baseline", "speedup"]);
    let mut speedups = Vec::new();
    for n in 1..=gs_flex::snb::BI_COUNT {
        let plan = bi_plan(n, &schema, &g.labels, &params).unwrap();
        let optimized = optimizer.optimize(&plan).unwrap();
        let naive = lower_naive(&plan).unwrap();
        let (t_fast, fast_rows) = time_it(3, || gaia.execute(&optimized, &store).unwrap());
        let (t_slow, slow_rows) = time_it(1, || execute(&naive, &store).unwrap());
        assert_eq!(fast_rows.len(), slow_rows.len(), "BI{n}");
        speedups.push(t_slow.as_secs_f64() / t_fast.as_secs_f64());
        t.row(vec![
            format!("BI{n}"),
            fmt_duration(t_fast),
            fmt_duration(t_slow),
            fmt_speedup(t_slow, t_fast),
        ]);
    }
    t.print();
    let geo: f64 = speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64;
    println!("BI geomean speedup: {:.2}×", geo.exp());
}
