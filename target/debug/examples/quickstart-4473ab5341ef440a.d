/root/repo/target/debug/examples/quickstart-4473ab5341ef440a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4473ab5341ef440a: examples/quickstart.rs

examples/quickstart.rs:
