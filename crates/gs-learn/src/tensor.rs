//! Minimal dense tensor library with hand-written backprop.
//!
//! Substitutes for the PyTorch/TensorFlow training backends (see
//! DESIGN.md): the learning-stack experiments measure *throughput shape*
//! (sampling/training balance, pipelining, scaling), which needs real
//! matrix math and a real optimizer, not a full autograd framework.

use rand::Rng;
use rand_pcg::Pcg64Mcg;

/// A row-major f32 matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Xavier-style random init (deterministic seed).
    pub fn xavier(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = Pcg64Mcg::new(seed as u128 | 0x9e37);
        let scale = (6.0 / (rows + cols) as f32).sqrt();
        Self {
            rows,
            cols,
            data: (0..rows * cols)
                .map(|_| rng.gen_range(-scale..scale))
                .collect(),
        }
    }

    /// Builds from rows.
    pub fn from_rows(rows: Vec<Vec<f32>>) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c);
            data.extend(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    /// Row slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self @ other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // ikj loop order for cache-friendly access
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.at(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                *out.at_mut(c, r) = self.at(r, c);
            }
        }
        out
    }

    /// Elementwise in-place ReLU; returns the activation mask for backprop.
    pub fn relu_inplace(&mut self) -> Vec<bool> {
        self.data
            .iter_mut()
            .map(|x| {
                if *x > 0.0 {
                    true
                } else {
                    *x = 0.0;
                    false
                }
            })
            .collect()
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn hconcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows);
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.data[r * out.cols..r * out.cols + self.cols].copy_from_slice(self.row(r));
            out.data[r * out.cols + self.cols..(r + 1) * out.cols].copy_from_slice(other.row(r));
        }
        out
    }

    /// Frobenius norm (diagnostics / gradient checks).
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

/// A dense layer `y = x @ w + b` with gradient accumulation and Adam state.
pub struct Linear {
    pub w: Matrix,
    pub b: Vec<f32>,
    grad_w: Matrix,
    grad_b: Vec<f32>,
    // Adam moments
    m_w: Matrix,
    v_w: Matrix,
    m_b: Vec<f32>,
    v_b: Vec<f32>,
    t: i32,
}

impl Linear {
    /// New layer `in_dim → out_dim`.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        Self {
            w: Matrix::xavier(in_dim, out_dim, seed),
            b: vec![0.0; out_dim],
            grad_w: Matrix::zeros(in_dim, out_dim),
            grad_b: vec![0.0; out_dim],
            m_w: Matrix::zeros(in_dim, out_dim),
            v_w: Matrix::zeros(in_dim, out_dim),
            m_b: vec![0.0; out_dim],
            v_b: vec![0.0; out_dim],
            t: 0,
        }
    }

    /// Forward pass.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w);
        for r in 0..y.rows {
            for c in 0..y.cols {
                *y.at_mut(r, c) += self.b[c];
            }
        }
        y
    }

    /// Backward pass: accumulates parameter grads, returns `dL/dx`.
    pub fn backward(&mut self, x: &Matrix, dy: &Matrix) -> Matrix {
        // grad_w += x^T @ dy ; grad_b += colsum(dy) ; dx = dy @ w^T
        let gw = x.transpose().matmul(dy);
        for (g, a) in self.grad_w.data.iter_mut().zip(&gw.data) {
            *g += a;
        }
        for r in 0..dy.rows {
            for c in 0..dy.cols {
                self.grad_b[c] += dy.at(r, c);
            }
        }
        dy.matmul(&self.w.transpose())
    }

    /// Adam step; clears gradients.
    pub fn adam_step(&mut self, lr: f32) {
        self.t += 1;
        let (b1, b2, eps) = (0.9f32, 0.999f32, 1e-8f32);
        let bc1 = 1.0 - b1.powi(self.t);
        let bc2 = 1.0 - b2.powi(self.t);
        for i in 0..self.w.data.len() {
            let g = self.grad_w.data[i];
            self.m_w.data[i] = b1 * self.m_w.data[i] + (1.0 - b1) * g;
            self.v_w.data[i] = b2 * self.v_w.data[i] + (1.0 - b2) * g * g;
            let mhat = self.m_w.data[i] / bc1;
            let vhat = self.v_w.data[i] / bc2;
            self.w.data[i] -= lr * mhat / (vhat.sqrt() + eps);
            self.grad_w.data[i] = 0.0;
        }
        for i in 0..self.b.len() {
            let g = self.grad_b[i];
            self.m_b[i] = b1 * self.m_b[i] + (1.0 - b1) * g;
            self.v_b[i] = b2 * self.v_b[i] + (1.0 - b2) * g * g;
            let mhat = self.m_b[i] / bc1;
            let vhat = self.v_b[i] / bc2;
            self.b[i] -= lr * mhat / (vhat.sqrt() + eps);
            self.grad_b[i] = 0.0;
        }
    }

    /// Copies parameters from another layer (parameter-server pull).
    pub fn copy_params_from(&mut self, other: &Linear) {
        self.w.data.copy_from_slice(&other.w.data);
        self.b.copy_from_slice(&other.b);
    }
}

/// Softmax + cross-entropy over logits; returns `(loss, dlogits)`.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    assert_eq!(logits.rows, labels.len());
    let mut dlogits = Matrix::zeros(logits.rows, logits.cols);
    let mut loss = 0.0f32;
    for r in 0..logits.rows {
        let row = logits.row(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        for (c, &e) in exps.iter().enumerate() {
            let p = e / sum;
            *dlogits.at_mut(r, c) =
                (p - if c == labels[r] { 1.0 } else { 0.0 }) / logits.rows as f32;
        }
        loss += -(exps[labels[r]] / sum).max(1e-12).ln();
    }
    (loss / logits.rows as f32, dlogits)
}

/// Sigmoid + binary cross-entropy over one logit column; returns
/// `(loss, dlogits)`. Used by NCN link prediction.
pub fn bce_with_logits(logits: &Matrix, targets: &[f32]) -> (f32, Matrix) {
    assert_eq!(logits.cols, 1);
    assert_eq!(logits.rows, targets.len());
    let mut d = Matrix::zeros(logits.rows, 1);
    let mut loss = 0.0f32;
    for (r, &y) in targets.iter().enumerate() {
        let z = logits.at(r, 0);
        let p = 1.0 / (1.0 + (-z).exp());
        loss += -(y * p.max(1e-7).ln() + (1.0 - y) * (1.0 - p).max(1e-7).ln());
        *d.at_mut(r, 0) = (p - y) / logits.rows as f32;
    }
    (loss / logits.rows as f32, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(vec![vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::xavier(3, 5, 1);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn hconcat_shapes() {
        let a = Matrix::from_rows(vec![vec![1.0], vec![2.0]]);
        let b = Matrix::from_rows(vec![vec![3.0, 4.0], vec![5.0, 6.0]]);
        let c = a.hconcat(&b);
        assert_eq!(c.row(0), &[1.0, 3.0, 4.0]);
        assert_eq!(c.row(1), &[2.0, 5.0, 6.0]);
    }

    #[test]
    fn linear_gradient_check() {
        // numerically verify dL/dw for L = sum(forward(x))
        let mut layer = Linear::new(3, 2, 7);
        let x = Matrix::from_rows(vec![vec![0.5, -1.0, 2.0]]);
        let y = layer.forward(&x);
        let dy = Matrix::from_rows(vec![vec![1.0, 1.0]]); // dL/dy = 1
        let _ = y;
        layer.backward(&x, &dy);
        let analytic = layer.grad_w.clone();
        let eps = 1e-3f32;
        for i in 0..layer.w.data.len() {
            let orig = layer.w.data[i];
            layer.w.data[i] = orig + eps;
            let lp: f32 = layer.forward(&x).data.iter().sum();
            layer.w.data[i] = orig - eps;
            let lm: f32 = layer.forward(&x).data.iter().sum();
            layer.w.data[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic.data[i]).abs() < 1e-2,
                "dw[{i}]: numeric {numeric} analytic {}",
                analytic.data[i]
            );
        }
    }

    #[test]
    fn adam_descends_on_quadratic() {
        // minimize ||x @ w - target||^2 for fixed x
        let mut layer = Linear::new(2, 1, 3);
        let x = Matrix::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]);
        let target = [2.0f32, -3.0];
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            let y = layer.forward(&x);
            let mut d = Matrix::zeros(2, 1);
            let mut loss = 0.0;
            for (r, &t) in target.iter().enumerate() {
                let e = y.at(r, 0) - t;
                loss += e * e;
                *d.at_mut(r, 0) = 2.0 * e;
            }
            layer.backward(&x, &d);
            layer.adam_step(0.05);
            last = loss;
        }
        assert!(last < 1e-3, "loss {last}");
    }

    #[test]
    fn softmax_ce_gradient_direction() {
        let logits = Matrix::from_rows(vec![vec![2.0, 0.0, 0.0]]);
        let (loss, d) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss > 0.0);
        assert!(d.at(0, 0) < 0.0, "true-class grad must be negative");
        assert!(d.at(0, 1) > 0.0);
    }

    #[test]
    fn bce_gradient_direction() {
        let logits = Matrix::from_rows(vec![vec![0.0], vec![0.0]]);
        let (loss, d) = bce_with_logits(&logits, &[1.0, 0.0]);
        assert!((loss - std::f32::consts::LN_2).abs() < 1e-3);
        assert!(d.at(0, 0) < 0.0);
        assert!(d.at(1, 0) > 0.0);
    }

    #[test]
    fn relu_masks() {
        let mut m = Matrix::from_rows(vec![vec![-1.0, 2.0]]);
        let mask = m.relu_inplace();
        assert_eq!(m.data, vec![0.0, 2.0]);
        assert_eq!(mask, vec![false, true]);
    }
}
