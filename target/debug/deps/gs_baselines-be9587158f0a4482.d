/root/repo/target/debug/deps/gs_baselines-be9587158f0a4482.d: crates/gs-baselines/src/lib.rs crates/gs-baselines/src/gemini.rs crates/gs-baselines/src/gpu_baselines.rs crates/gs-baselines/src/livegraph.rs crates/gs-baselines/src/powergraph.rs crates/gs-baselines/src/sqlengine.rs crates/gs-baselines/src/tugraph.rs

/root/repo/target/debug/deps/libgs_baselines-be9587158f0a4482.rlib: crates/gs-baselines/src/lib.rs crates/gs-baselines/src/gemini.rs crates/gs-baselines/src/gpu_baselines.rs crates/gs-baselines/src/livegraph.rs crates/gs-baselines/src/powergraph.rs crates/gs-baselines/src/sqlengine.rs crates/gs-baselines/src/tugraph.rs

/root/repo/target/debug/deps/libgs_baselines-be9587158f0a4482.rmeta: crates/gs-baselines/src/lib.rs crates/gs-baselines/src/gemini.rs crates/gs-baselines/src/gpu_baselines.rs crates/gs-baselines/src/livegraph.rs crates/gs-baselines/src/powergraph.rs crates/gs-baselines/src/sqlengine.rs crates/gs-baselines/src/tugraph.rs

crates/gs-baselines/src/lib.rs:
crates/gs-baselines/src/gemini.rs:
crates/gs-baselines/src/gpu_baselines.rs:
crates/gs-baselines/src/livegraph.rs:
crates/gs-baselines/src/powergraph.rs:
crates/gs-baselines/src/sqlengine.rs:
crates/gs-baselines/src/tugraph.rs:
