/root/repo/target/release/deps/figures-a0c56fe63eb2c2ea.d: crates/gs-bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-a0c56fe63eb2c2ea: crates/gs-bench/src/bin/figures.rs

crates/gs-bench/src/bin/figures.rs:
