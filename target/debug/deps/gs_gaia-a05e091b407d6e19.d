/root/repo/target/debug/deps/gs_gaia-a05e091b407d6e19.d: crates/gs-gaia/src/lib.rs

/root/repo/target/debug/deps/gs_gaia-a05e091b407d6e19: crates/gs-gaia/src/lib.rs

crates/gs-gaia/src/lib.rs:
