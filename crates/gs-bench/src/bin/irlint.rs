//! Static plan verification over every built-in benchmark/example query.
//!
//! ```text
//! irlint                   verify; fail on errors only
//! irlint --deny-warnings   fail on any diagnostic (the CI bar)
//! ```

fn main() {
    let deny_warnings = std::env::args().skip(1).any(|a| a == "--deny-warnings");
    // telemetry so the run also exercises the ir.verify.* counters
    gs_telemetry::install(gs_telemetry::Registry::new());
    let code = gs_bench::irlint::run(deny_warnings);
    print!("{}", gs_telemetry::global().text_report());
    std::process::exit(code);
}
