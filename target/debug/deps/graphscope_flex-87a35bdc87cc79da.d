/root/repo/target/debug/deps/graphscope_flex-87a35bdc87cc79da.d: src/lib.rs

/root/repo/target/debug/deps/libgraphscope_flex-87a35bdc87cc79da.rlib: src/lib.rs

/root/repo/target/debug/deps/libgraphscope_flex-87a35bdc87cc79da.rmeta: src/lib.rs

src/lib.rs:
