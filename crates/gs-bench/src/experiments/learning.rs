//! Learning-stack experiments: Figures 7(l) and 7(m).

use crate::util::{fmt_duration, TablePrinter};
use gs_datagen::catalog::Dataset;
use gs_graph::data::PropertyGraphData;
use gs_graph::LabelId;
use gs_learn::{train_epoch, PipelineConfig};
use gs_vineyard::VineyardGraph;
use std::time::Duration;

fn pd_graph(scale: f64) -> VineyardGraph {
    let el = Dataset::by_abbr("PD").unwrap().edges(0.1 * scale);
    let pairs: Vec<(u64, u64)> = el.edges().iter().map(|&(s, d)| (s.0, d.0)).collect();
    VineyardGraph::build(&PropertyGraphData::from_edge_list(
        el.vertex_count(),
        &pairs,
    ))
    .unwrap()
}

fn cfg(gpus: usize, nodes: usize, batches: usize) -> PipelineConfig {
    PipelineConfig {
        samplers: gpus,
        trainers: gpus,
        nodes,
        batch_size: 128,
        fanouts: vec![15, 10, 5],
        feature_dim: 32,
        hidden: 64,
        classes: 8,
        prefetch: 4,
        batches_per_epoch: batches,
        lr: 0.005,
        remote_fetch_cost: Duration::from_micros(300),
        sampler_retries: 2,
        seed: 3,
    }
}

/// Fig. 7(l): scale-up — more simulated GPUs (sampler+trainer pairs) on one
/// node.
pub fn fig7l(scale: f64) {
    println!("== Fig 7(l): GNN training scale-up (1 node, 1→4 simulated GPUs) ==");
    println!("paper shape: epoch time decreases ≈linearly with GPUs (≤3.94× at 4)\n");
    let g = pd_graph(scale);
    let batches = 24;
    let mut t = TablePrinter::new(&["GPUs", "epoch time", "speedup vs 1", "mean loss"]);
    let mut base: Option<Duration> = None;
    for gpus in [1usize, 2, 4] {
        let (stats, _) = train_epoch(&g, LabelId(0), LabelId(0), &cfg(gpus, 1, batches));
        let b = *base.get_or_insert(stats.wall);
        t.row(vec![
            gpus.to_string(),
            fmt_duration(stats.wall),
            format!("{:.2}×", b.as_secs_f64() / stats.wall.as_secs_f64()),
            format!("{:.3}", stats.mean_loss),
        ]);
    }
    t.print();
}

/// Fig. 7(m): scale-out — 2 GPUs per node, 1→4 simulated nodes, with the
/// distributed-sampling network cost in play.
pub fn fig7m(scale: f64) {
    println!("== Fig 7(m): GNN training scale-out (2 GPUs/node, 1→4 nodes) ==");
    println!("paper shape: near-linear scaling despite network costs (≤3.42× at 4)\n");
    let g = pd_graph(scale);
    let batches = 24;
    let mut t = TablePrinter::new(&["nodes", "workers", "epoch time", "speedup vs 1"]);
    let mut base: Option<Duration> = None;
    for nodes in [1usize, 2, 4] {
        let gpus = 2 * nodes;
        let (stats, _) = train_epoch(&g, LabelId(0), LabelId(0), &cfg(gpus, nodes, batches));
        let b = *base.get_or_insert(stats.wall);
        t.row(vec![
            nodes.to_string(),
            format!("{gpus} (2/node)"),
            fmt_duration(stats.wall),
            format!("{:.2}×", b.as_secs_f64() / stats.wall.as_secs_f64()),
        ]);
    }
    t.print();
}
