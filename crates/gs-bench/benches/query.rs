//! Criterion microbenchmarks for the interactive stack: parsing,
//! optimization, and execution (Fig. 7e/7f companions).

use criterion::{criterion_group, criterion_main, Criterion};
use gs_datagen::snb::{generate, SnbConfig};
use gs_flex::snb::interactive::{ic1, Params};
use gs_flex::snb::{bi_plan, BiParams, FlexBackend, TuBackend};
use gs_ir::exec::execute;
use gs_ir::physical::lower_naive;
use gs_lang::parse_cypher;
use gs_optimizer::{GlogueCatalog, Optimizer};
use gs_vineyard::VineyardGraph;
use std::collections::HashMap;

fn compile_pipeline(c: &mut Criterion) {
    let g = generate(&SnbConfig::lite(200));
    let schema = g.data.schema.clone();
    let store = VineyardGraph::build(&g.data).unwrap();
    let catalog = GlogueCatalog::build(&store, 100);
    let q = "MATCH (a:Person)-[:KNOWS]-(b:Person)-[:KNOWS]-(c:Person) \
             WHERE a.firstName = 'Jan' RETURN b, COUNT(c) AS n ORDER BY n DESC LIMIT 5";
    let mut group = c.benchmark_group("compile");
    group.bench_function("parse_cypher", |b| {
        b.iter(|| parse_cypher(q, &schema, &HashMap::new()).unwrap())
    });
    let plan = parse_cypher(q, &schema, &HashMap::new()).unwrap();
    group.bench_function("optimize_full", |b| {
        let opt = Optimizer::new(catalog.clone());
        b.iter(|| opt.optimize(&plan).unwrap())
    });
    group.bench_function("lower_naive", |b| b.iter(|| lower_naive(&plan).unwrap()));
    group.finish();
}

fn bi_execution(c: &mut Criterion) {
    let g = generate(&SnbConfig::lite(300));
    let store = VineyardGraph::build(&g.data).unwrap();
    let schema = g.data.schema.clone();
    let optimizer = Optimizer::new(GlogueCatalog::build(&store, 100));
    let plan = bi_plan(2, &schema, &g.labels, &BiParams::default()).unwrap();
    let optimized = optimizer.optimize(&plan).unwrap();
    let naive = lower_naive(&plan).unwrap();
    let mut group = c.benchmark_group("bi2_tag_ranking");
    group.bench_function("optimized", |b| {
        b.iter(|| execute(&optimized, &store).unwrap())
    });
    group.bench_function("naive", |b| b.iter(|| execute(&naive, &store).unwrap()));
    group.finish();
}

fn interactive_backends(c: &mut Criterion) {
    let g = generate(&SnbConfig::lite(300));
    let flex = FlexBackend::load(&g).unwrap();
    let tu = TuBackend::load(&g).unwrap();
    let params = Params::example();
    let mut group = c.benchmark_group("ic1_transitive_friends");
    group.bench_function("flex_gart", |b| b.iter(|| ic1(&flex, &params)));
    group.bench_function("tugraph_like", |b| b.iter(|| ic1(&tu, &params)));
    group.finish();
}

fn bench_config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = bench_config();
    targets = compile_pipeline, bi_execution, interactive_backends
}
criterion_main!(benches);
