//! Minimal in-tree replacement for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait (ranges, tuples, `Just`, `prop_map`,
//! `prop_flat_map`), [`collection::vec`], [`option::of`], [`any`], the
//! [`proptest!`] item macro, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from the real crate, acceptable for an offline build:
//! no shrinking (a failing case reports its generated inputs via the
//! assertion message only), and a deterministic per-test RNG seeded from
//! the test name, so failures are reproducible run-to-run.

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic RNG driving all strategies (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (the test name), so each property
    /// gets an independent but reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Run configuration: how many cases each property executes.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of values of an associated type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident.$idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
    fn arbitrary(rng: &mut TestRng) -> (A, B) {
        (A::arbitrary(rng), B::arbitrary(rng))
    }
}

/// Strategy form of [`Arbitrary`]; the value of `any::<T>()`.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full range of values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Vectors of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    /// `Some(inner)` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Unlike the real crate there is no shrinking: a failure panics with the
/// case number; re-running reproduces it (the RNG is seeded from the test
/// name).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(stringify!($name));
            let __strat = ($($strat,)+);
            for __case in 0..__cfg.cases {
                let __run = || {
                    let ($($pat,)+) = $crate::Strategy::generate(&__strat, &mut __rng);
                    $body
                };
                let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run));
                if let Err(panic) = __result {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed",
                        __case + 1,
                        __cfg.cases,
                        stringify!($name)
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = (usize, Vec<u64>)> {
        (1usize..10).prop_flat_map(|n| {
            let values = crate::collection::vec(0..n as u64, 0..20);
            (Just(n), values)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn flat_mapped_values_respect_bound((n, values) in pairs()) {
            for v in values {
                prop_assert!(v < n as u64);
            }
        }

        #[test]
        fn options_cover_both_variants(
            opts in crate::collection::vec(crate::option::of(any::<i64>()), 50..60),
        ) {
            // with 50+ draws at 75% Some, both variants should appear
            prop_assert!(opts.iter().any(|o| o.is_some()));
        }

        #[test]
        fn ranges_stay_in_bounds(x in 3i64..9, y in 0usize..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 4);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
