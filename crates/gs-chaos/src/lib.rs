//! # gs-chaos — deterministic fault injection for the simulated cluster
//!
//! The paper's engines run "in production" across shared clusters; this
//! crate gives the in-process cluster simulation the failure modes a real
//! deployment has, plus the machinery the rest of the stack uses to
//! survive them. A [`FaultPlan`] (a seed plus an explicit schedule)
//! injects faults at the seams the simulation owns:
//!
//! | seam | hook | fault |
//! |---|---|---|
//! | GRAPE BSP loop | [`worker_kill_point`] | worker panic at superstep *k* |
//! | `CommHandle::exchange` | [`message_fault`] | block drop / duplication / delay |
//! | HiActor shard loop | [`shard_delay`] / [`shard_should_die`] | slow or dead shard |
//! | GRIN reads | [`storage_fault_point`] via [`ChaosGraph`] | transient storage fault |
//!
//! **Determinism.** Probabilistic decisions are a pure hash of
//! `(seed, stream, coordinates, sequence number)` — independent of thread
//! interleaving — and sequence counters survive restarts, so retried work
//! draws fresh decisions and faulted runs provably converge (see also
//! [`FaultPlan::budget`]).
//!
//! **Cost.** Injection only exists with the `chaos` feature; without it
//! every hook is an inlined no-op (mirroring `gs-sanitizer`'s
//! zero-cost-by-default design) and only the always-on recovery utilities
//! remain: [`retry`] (exponential backoff + deterministic jitter),
//! [`breaker`] (per-procedure circuit breaker), and the [`ChaosUnwind`]
//! panic protocol that lets recovery layers tell injected faults apart
//! from real bugs.
//!
//! ```
//! use gs_chaos::FaultPlan;
//!
//! let plan = FaultPlan::new(42).message_faults(0.01, 0.01, 0.02);
//! let (out, stats) = gs_chaos::with_chaos(plan, || 2 + 2);
//! assert_eq!(out, 4);
//! # let _ = stats;
//! ```

pub mod breaker;
mod fault;
pub mod graph;
pub mod retry;

pub use breaker::{BreakerConfig, CircuitBreaker};
pub use fault::{ChaosStats, FaultPlan, MessageFault, WalWriteFault};
pub use graph::ChaosGraph;
pub use retry::{with_retries, RetryPolicy};

use std::time::Duration;

/// Whether this build carries the injection machinery (`chaos` feature).
pub const COMPILED: bool = cfg!(feature = "chaos");

// =====================================================================
// The ChaosUnwind panic protocol (always compiled)
// =====================================================================

/// The payload of every injected panic (worker kills, storage faults).
/// Recovery layers downcast for it to distinguish an injected fault —
/// recoverable by design — from a genuine bug, which must keep crashing.
#[derive(Clone, Copy, Debug)]
pub struct ChaosUnwind(pub &'static str);

/// Whether a caught panic payload is an injected fault.
pub fn is_chaos_unwind(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.is::<ChaosUnwind>()
}

/// Installs (once per process) a chaining panic hook that silences
/// [`ChaosUnwind`] panics — they are expected control flow under an
/// installed plan — and forwards everything else to the previous hook.
pub fn silence_chaos_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !info.payload().is::<ChaosUnwind>() {
                prev(info);
            }
        }));
    });
}

// =====================================================================
// chaos: the installed plan and live decision state
// =====================================================================

#[cfg(feature = "chaos")]
mod state {
    use super::fault::{unit, ChaosStats, FaultPlan};
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, PoisonError};

    /// Decision-stream tags (the `stream` hash coordinate).
    pub(super) const STREAM_MESSAGE: u64 = 1;
    pub(super) const STREAM_STORAGE: u64 = 2;

    pub(super) struct PlanState {
        pub(super) plan: FaultPlan,
        kills_fired: Vec<AtomicBool>,
        wal_kills_fired: Vec<AtomicBool>,
        /// Per-(stream, a, b) sequence counters; never reset, so restarted
        /// work draws fresh decisions.
        seqs: Mutex<HashMap<(u64, u64, u64), u64>>,
        /// Remaining consecutive faults in the current storage burst.
        storage_burst_left: AtomicU32,
        budget_used: AtomicU64,
        pub(super) stats: StatCells,
    }

    #[derive(Default)]
    pub(super) struct StatCells {
        pub(super) worker_kills: AtomicU64,
        pub(super) msgs_dropped: AtomicU64,
        pub(super) msgs_duplicated: AtomicU64,
        pub(super) msgs_delayed: AtomicU64,
        pub(super) storage_faults: AtomicU64,
        pub(super) shard_delays: AtomicU64,
        pub(super) shard_deaths: AtomicU64,
        pub(super) wal_kills: AtomicU64,
        pub(super) wal_torn_writes: AtomicU64,
    }

    impl PlanState {
        fn new(plan: FaultPlan) -> Self {
            Self {
                kills_fired: plan
                    .worker_kills
                    .iter()
                    .map(|_| AtomicBool::new(false))
                    .collect(),
                wal_kills_fired: plan
                    .wal_kills
                    .iter()
                    .map(|_| AtomicBool::new(false))
                    .collect(),
                plan,
                seqs: Mutex::new(HashMap::new()),
                storage_burst_left: AtomicU32::new(0),
                budget_used: AtomicU64::new(0),
                stats: StatCells::default(),
            }
        }

        /// The next deterministic uniform for the `(stream, a, b)` stream.
        pub(super) fn next_unit(&self, stream: u64, a: u64, b: u64) -> f64 {
            let mut seqs = self.seqs.lock().unwrap_or_else(PoisonError::into_inner);
            let seq = seqs.entry((stream, a, b)).or_insert(0);
            *seq += 1;
            unit(self.plan.seed, &[stream, a, b, *seq])
        }

        /// Consumes one unit of fault budget; `false` means the budget is
        /// exhausted and the injection must be skipped.
        pub(super) fn consume_budget(&self) -> bool {
            if self.plan.fault_budget == 0 {
                return true;
            }
            self.budget_used.fetch_add(1, Ordering::SeqCst) < self.plan.fault_budget
        }

        /// One-shot claim of scheduled kill entry `i`.
        pub(super) fn claim_kill(&self, i: usize) -> bool {
            !self.kills_fired[i].swap(true, Ordering::SeqCst)
        }

        /// One-shot claim of scheduled WAL-kill entry `i`.
        pub(super) fn claim_wal_kill(&self, i: usize) -> bool {
            !self.wal_kills_fired[i].swap(true, Ordering::SeqCst)
        }

        /// Burst accounting for storage faults: `true` to fault this read.
        pub(super) fn storage_decision(&self, site_hash: u64) -> bool {
            // drain an active burst first
            if self
                .storage_burst_left
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
            {
                return true;
            }
            if self.plan.storage_p <= 0.0 {
                return false;
            }
            if self.next_unit(STREAM_STORAGE, site_hash, 0) < self.plan.storage_p
                && self.consume_budget()
            {
                self.storage_burst_left
                    .store(self.plan.storage_burst.saturating_sub(1), Ordering::SeqCst);
                return true;
            }
            false
        }

        pub(super) fn snapshot(&self) -> ChaosStats {
            let s = &self.stats;
            ChaosStats {
                worker_kills: s.worker_kills.load(Ordering::SeqCst),
                msgs_dropped: s.msgs_dropped.load(Ordering::SeqCst),
                msgs_duplicated: s.msgs_duplicated.load(Ordering::SeqCst),
                msgs_delayed: s.msgs_delayed.load(Ordering::SeqCst),
                storage_faults: s.storage_faults.load(Ordering::SeqCst),
                shard_delays: s.shard_delays.load(Ordering::SeqCst),
                shard_deaths: s.shard_deaths.load(Ordering::SeqCst),
                wal_kills: s.wal_kills.load(Ordering::SeqCst),
                wal_torn_writes: s.wal_torn_writes.load(Ordering::SeqCst),
            }
        }
    }

    static ACTIVE: AtomicBool = AtomicBool::new(false);
    static PLAN: Mutex<Option<Arc<PlanState>>> = Mutex::new(None);

    pub(super) fn install(plan: FaultPlan) {
        *PLAN.lock().unwrap_or_else(PoisonError::into_inner) = Some(Arc::new(PlanState::new(plan)));
        ACTIVE.store(true, Ordering::Release);
    }

    pub(super) fn uninstall() -> ChaosStats {
        ACTIVE.store(false, Ordering::Release);
        PLAN.lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .map(|st| st.snapshot())
            .unwrap_or_default()
    }

    pub(super) fn current() -> Option<Arc<PlanState>> {
        if !ACTIVE.load(Ordering::Acquire) {
            return None;
        }
        PLAN.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }
}

/// Whether a plan is installed and injecting right now.
#[inline]
pub fn enabled() -> bool {
    #[cfg(feature = "chaos")]
    {
        state::current().is_some()
    }
    #[cfg(not(feature = "chaos"))]
    {
        false
    }
}

/// Serializes access to the process-global plan slot. Tests (and any two
/// concurrent chaos workloads in one process) must hold this around
/// install…uninstall so injections do not cross-contaminate.
pub fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    use std::sync::OnceLock;
    static GATE: OnceLock<parking_lot::Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| parking_lot::Mutex::new(())).lock()
}

/// Runs `f` as one exclusive chaos workload: takes the [`exclusive`] gate,
/// silences injected panics, installs `plan`, runs `f`, uninstalls, and
/// returns `f`'s result plus the injection [`ChaosStats`]. In pass-through
/// builds `f` still runs (under the gate) and the stats are all-zero.
pub fn with_chaos<T>(plan: FaultPlan, f: impl FnOnce() -> T) -> (T, ChaosStats) {
    let _gate = exclusive();
    #[cfg(feature = "chaos")]
    {
        silence_chaos_panics();
        state::install(plan);
        // uninstall even if `f` unwinds, so a panicking workload cannot
        // leave the global plan injecting into unrelated code
        struct Disarm;
        impl Drop for Disarm {
            fn drop(&mut self) {
                let _ = state::uninstall();
            }
        }
        let disarm = Disarm;
        let out = f();
        std::mem::forget(disarm);
        (out, state::uninstall())
    }
    #[cfg(not(feature = "chaos"))]
    {
        let _ = plan;
        (f(), ChaosStats::default())
    }
}

// =====================================================================
// Fault hooks — injecting with `chaos`, inlined no-ops without
// =====================================================================

/// GRAPE BSP seam: called by each worker at the top of every superstep.
/// Panics with [`ChaosUnwind`] when the plan schedules a kill for
/// `(worker, step)` (each schedule entry fires once).
#[cfg(feature = "chaos")]
pub fn worker_kill_point(worker: usize, step: usize) {
    let Some(st) = state::current() else { return };
    for (i, &(w, s)) in st.plan.worker_kills.iter().enumerate() {
        if w == worker && s == step && st.claim_kill(i) {
            st.stats
                .worker_kills
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            gs_telemetry::counter!("chaos.worker_kills");
            std::panic::panic_any(ChaosUnwind("worker-kill"));
        }
    }
}

/// GRAPE BSP seam (pass-through build): no-op.
#[cfg(not(feature = "chaos"))]
#[inline(always)]
pub fn worker_kill_point(_worker: usize, _step: usize) {}

/// Exchange seam: the verdict for one outgoing block `from → to`.
#[cfg(feature = "chaos")]
pub fn message_fault(from: usize, to: usize) -> MessageFault {
    use std::sync::atomic::Ordering;
    let Some(st) = state::current() else {
        return MessageFault::Deliver;
    };
    let p = &st.plan;
    let any = p.drop_p + p.dup_p + p.delay_p;
    if any <= 0.0 {
        return MessageFault::Deliver;
    }
    let u = st.next_unit(state::STREAM_MESSAGE, from as u64, to as u64);
    let verdict = if u < p.drop_p {
        MessageFault::Drop
    } else if u < p.drop_p + p.dup_p {
        MessageFault::Duplicate
    } else if u < any {
        MessageFault::Delay
    } else {
        return MessageFault::Deliver;
    };
    if !st.consume_budget() {
        return MessageFault::Deliver;
    }
    match verdict {
        MessageFault::Drop => {
            st.stats.msgs_dropped.fetch_add(1, Ordering::SeqCst);
            gs_telemetry::counter!("chaos.msgs_dropped");
        }
        MessageFault::Duplicate => {
            st.stats.msgs_duplicated.fetch_add(1, Ordering::SeqCst);
            gs_telemetry::counter!("chaos.msgs_duplicated");
        }
        MessageFault::Delay => {
            st.stats.msgs_delayed.fetch_add(1, Ordering::SeqCst);
            gs_telemetry::counter!("chaos.msgs_delayed");
        }
        MessageFault::Deliver => unreachable!(),
    }
    verdict
}

/// Exchange seam (pass-through build): always [`MessageFault::Deliver`].
#[cfg(not(feature = "chaos"))]
#[inline(always)]
pub fn message_fault(_from: usize, _to: usize) -> MessageFault {
    MessageFault::Deliver
}

/// Storage seam: called by [`ChaosGraph`] at every read entry point.
/// Panics with [`ChaosUnwind`] when the plan decides this read faults.
#[cfg(feature = "chaos")]
pub fn storage_fault_point(site: &'static str) {
    let Some(st) = state::current() else { return };
    let mut h = 0u64;
    for b in site.bytes() {
        h = h.wrapping_mul(131).wrapping_add(u64::from(b));
    }
    if st.storage_decision(h) {
        st.stats
            .storage_faults
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        gs_telemetry::counter!("chaos.storage_faults");
        std::panic::panic_any(ChaosUnwind("storage"));
    }
}

/// Storage seam (pass-through build): no-op.
#[cfg(not(feature = "chaos"))]
#[inline(always)]
pub fn storage_fault_point(_site: &'static str) {}

/// HiActor seam: how long shard `shard` should stall before its next job
/// (`None` = healthy shard).
#[cfg(feature = "chaos")]
pub fn shard_delay(shard: usize) -> Option<Duration> {
    let st = state::current()?;
    let d = st
        .plan
        .slow_shards
        .iter()
        .find(|&&(s, _)| s == shard)
        .map(|&(_, d)| d)?;
    st.stats
        .shard_delays
        .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    gs_telemetry::counter!("chaos.shard_delays");
    Some(d)
}

/// HiActor seam (pass-through build): never stalls.
#[cfg(not(feature = "chaos"))]
#[inline(always)]
pub fn shard_delay(_shard: usize) -> Option<Duration> {
    None
}

/// HiActor seam: whether shard `shard` dies after its `jobs_done`-th job.
#[cfg(feature = "chaos")]
pub fn shard_should_die(shard: usize, jobs_done: u64) -> bool {
    let Some(st) = state::current() else {
        return false;
    };
    let dies = st
        .plan
        .dead_shards
        .iter()
        .any(|&(s, n)| s == shard && jobs_done == n);
    if dies {
        st.stats
            .shard_deaths
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        gs_telemetry::counter!("chaos.shard_deaths");
    }
    dies
}

/// HiActor seam (pass-through build): shards never die.
#[cfg(not(feature = "chaos"))]
#[inline(always)]
pub fn shard_should_die(_shard: usize, _jobs_done: u64) -> bool {
    false
}

/// WAL seam: the verdict for durable write number `write` of `len` bytes
/// (gs-gart calls this once per log record and per checkpoint chunk,
/// with a store-global monotone counter). Unlike the panic hooks, the
/// *caller* performs the kill: on [`WalWriteFault::Torn`] it must write
/// exactly the returned prefix first, so the disk really ends mid-frame.
/// The torn prefix length is a strict prefix derived from the plan seed.
#[cfg(feature = "chaos")]
pub fn wal_write_fault(write: u64, len: usize) -> WalWriteFault {
    use std::sync::atomic::Ordering;
    let Some(st) = state::current() else {
        return WalWriteFault::Proceed;
    };
    for (i, &w) in st.plan.wal_kills.iter().enumerate() {
        if w == write && st.claim_wal_kill(i) {
            if st.plan.wal_torn && len > 1 {
                st.stats.wal_torn_writes.fetch_add(1, Ordering::SeqCst);
                gs_telemetry::counter!("chaos.wal_torn_writes");
                let u = fault::unit(st.plan.seed, &[3, write, len as u64]);
                // a strict prefix: at least 1 byte short, at least 1 written
                let k = 1 + (u * (len - 1) as f64) as usize;
                return WalWriteFault::Torn(k.min(len - 1));
            }
            st.stats.wal_kills.fetch_add(1, Ordering::SeqCst);
            gs_telemetry::counter!("chaos.wal_kills");
            return WalWriteFault::Kill;
        }
    }
    WalWriteFault::Proceed
}

/// WAL seam (pass-through build): always writes through.
#[cfg(not(feature = "chaos"))]
#[inline(always)]
pub fn wal_write_fault(_write: u64, _len: usize) -> WalWriteFault {
    WalWriteFault::Proceed
}

#[cfg(test)]
mod tests {
    /// Pass-through contract: without the feature, hooks are inert and
    /// `with_chaos` still runs the workload.
    #[cfg(not(feature = "chaos"))]
    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn passthrough_hooks_are_noops() {
        use super::*;
        assert!(!COMPILED);
        assert!(!enabled());
        worker_kill_point(0, 0);
        assert_eq!(message_fault(0, 1), MessageFault::Deliver);
        storage_fault_point("x");
        assert_eq!(shard_delay(0), None);
        assert!(!shard_should_die(0, 1));
        let plan = FaultPlan::new(1)
            .kill_worker(0, 0)
            .message_faults(1.0, 0.0, 0.0)
            .storage_faults(1.0, 3);
        let (out, stats) = with_chaos(plan, || 41 + 1);
        assert_eq!(out, 42);
        assert_eq!(stats, ChaosStats::default());
    }

    #[cfg(feature = "chaos")]
    mod chaos_on {
        use super::super::*;

        #[test]
        fn scheduled_kill_fires_exactly_once() {
            let plan = FaultPlan::new(7).kill_worker(2, 5);
            let ((), stats) = with_chaos(plan, || {
                worker_kill_point(0, 5); // wrong worker
                worker_kill_point(2, 4); // wrong step
                let r = std::panic::catch_unwind(|| worker_kill_point(2, 5));
                assert!(r.is_err(), "scheduled kill must panic");
                assert!(is_chaos_unwind(r.unwrap_err().as_ref()));
                // the entry already fired: a restarted worker passes it
                worker_kill_point(2, 5);
            });
            assert_eq!(stats.worker_kills, 1);
        }

        #[test]
        fn message_faults_are_seed_deterministic() {
            let run = |seed| {
                let plan = FaultPlan::new(seed).message_faults(0.2, 0.2, 0.2);
                with_chaos(plan, || {
                    (0..200)
                        .map(|i| message_fault(i % 4, (i + 1) % 4))
                        .collect::<Vec<_>>()
                })
            };
            let (a, sa) = run(11);
            let (b, sb) = run(11);
            assert_eq!(a, b, "same seed → same verdict sequence");
            assert_eq!(sa, sb);
            assert!(sa.msgs_dropped > 0 && sa.msgs_duplicated > 0 && sa.msgs_delayed > 0);
            let (c, _) = run(12);
            assert_ne!(a, c, "different seed → different verdicts");
        }

        #[test]
        fn budget_caps_probabilistic_injections() {
            let plan = FaultPlan::new(3).message_faults(1.0, 0.0, 0.0).budget(5);
            let (faults, stats) = with_chaos(plan, || {
                (0..100)
                    .filter(|_| message_fault(0, 1) == MessageFault::Drop)
                    .count()
            });
            assert_eq!(faults, 5);
            assert_eq!(stats.msgs_dropped, 5);
        }

        #[test]
        fn storage_bursts_run_their_length() {
            let plan = FaultPlan::new(5).storage_faults(1.0, 3).budget(1);
            let ((), stats) = with_chaos(plan, || {
                // p=1 with budget 1: exactly one burst of 3 consecutive faults
                for _ in 0..3 {
                    let r = std::panic::catch_unwind(|| storage_fault_point("s"));
                    assert!(r.is_err(), "burst read must fault");
                }
                storage_fault_point("s"); // burst drained, budget spent: clean
            });
            assert_eq!(stats.storage_faults, 3);
        }

        #[test]
        fn shard_faults_follow_the_schedule() {
            let plan = FaultPlan::new(9)
                .slow_shard(1, Duration::from_millis(2))
                .dead_shard(2, 10);
            let ((), stats) = with_chaos(plan, || {
                assert_eq!(shard_delay(0), None);
                assert_eq!(shard_delay(1), Some(Duration::from_millis(2)));
                assert!(!shard_should_die(2, 9));
                assert!(shard_should_die(2, 10));
                assert!(!shard_should_die(1, 10));
            });
            assert_eq!(stats.shard_delays, 1);
            assert_eq!(stats.shard_deaths, 1);
        }

        #[test]
        fn uninstall_stops_injection() {
            let plan = FaultPlan::new(1).message_faults(1.0, 0.0, 0.0);
            let _ = with_chaos(plan, || ());
            assert!(!enabled());
            assert_eq!(message_fault(0, 1), MessageFault::Deliver);
        }
    }
}
