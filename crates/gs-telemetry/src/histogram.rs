//! Fixed log-bucket histogram sketch.
//!
//! The classic HdrHistogram layout with 3 precision bits: values below 8
//! get exact unit buckets; every power-of-two octave above that splits
//! into 8 sub-buckets, bounding relative quantile error at 1/8 = 12.5% —
//! plenty for p50/p95/p99 latency reporting — while the whole sketch is a
//! flat array of 496 atomics that records in a handful of instructions
//! with no allocation and no locking.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket precision bits: each octave splits into `2^P` buckets.
const P: u32 = 3;

/// Bucket count covering the full `u64` range: 8 exact unit buckets, then
/// 8 sub-buckets per octave for exponents 3..=63.
pub const BUCKETS: usize = ((64 - P as usize) << P) + (1 << P);

/// A thread-safe log-bucket histogram.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket holding `v`: identity below `2^P`, otherwise the octave is
    /// the exponent and the next `P` mantissa bits pick the sub-bucket.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v < (1 << P) {
            v as usize
        } else {
            let e = 63 - v.leading_zeros() as usize;
            ((e - (P as usize - 1)) << P) | ((v >> (e - P as usize)) & ((1 << P) - 1)) as usize
        }
    }

    /// Smallest value mapping to bucket `i` (inverse of [`bucket_index`]).
    ///
    /// [`bucket_index`]: Histogram::bucket_index
    #[inline]
    pub fn bucket_lower(i: usize) -> u64 {
        if i < (1 << P) {
            i as u64
        } else {
            let e = (i >> P) + P as usize - 1;
            let off = (i & ((1 << P) - 1)) as u64;
            ((1 << P) + off) << (e - P as usize)
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded values, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`: the lower bound of the bucket
    /// containing the rank-`⌈q·count⌉` observation (≤12.5% relative error).
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_lower(i);
            }
        }
        self.max()
    }

    /// Zeroes every bucket and statistic, keeping the allocation.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_total() {
        let mut last = 0usize;
        // exhaustive over the small range, spot-check octave boundaries above
        for v in 0..4096u64 {
            let i = Histogram::bucket_index(v);
            assert!(i >= last, "v={v}");
            assert!(i < BUCKETS);
            last = i;
        }
        for e in 3..64u32 {
            let lo = 1u64 << e;
            for v in [
                lo,
                lo + 1,
                lo + (lo >> 1),
                lo.wrapping_shl(1).wrapping_sub(1).max(lo),
            ] {
                assert!(Histogram::bucket_index(v) < BUCKETS, "v={v}");
            }
        }
        assert!(Histogram::bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn bucket_lower_inverts_bucket_index() {
        // lower(index(v)) <= v, and v below the next bucket's lower bound
        for v in (0..100_000u64).chain([1 << 20, (1 << 20) + 12345, u64::MAX / 2, u64::MAX]) {
            let i = Histogram::bucket_index(v);
            let lo = Histogram::bucket_lower(i);
            assert!(lo <= v, "v={v} lo={lo}");
            if i + 1 < BUCKETS {
                assert!(v < Histogram::bucket_lower(i + 1), "v={v}");
            }
            // the bucket's lower bound maps back to the same bucket
            assert_eq!(Histogram::bucket_index(lo), i, "v={v}");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [10u64, 100, 1000, 123_456, 1 << 30, (1 << 40) + 7] {
            let lo = Histogram::bucket_lower(Histogram::bucket_index(v));
            let err = (v - lo) as f64 / v as f64;
            assert!(err <= 0.125, "v={v} lo={lo} err={err}");
        }
    }

    #[test]
    fn quantiles_on_uniform_data() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        let p50 = h.value_at_quantile(0.5);
        let p99 = h.value_at_quantile(0.99);
        assert!((440..=500).contains(&p50), "p50={p50}");
        assert!((880..=990).contains(&p99), "p99={p99}");
        assert!(p50 <= h.value_at_quantile(0.95));
        assert!(h.value_at_quantile(0.95) <= p99);
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn quantile_edge_cases() {
        let h = Histogram::new();
        assert_eq!(h.value_at_quantile(0.5), 0);
        h.record(7);
        assert_eq!(h.value_at_quantile(0.0), 7);
        assert_eq!(h.value_at_quantile(1.0), 7);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.value_at_quantile(0.99), 0);
    }

    #[test]
    fn concurrent_records_are_all_counted() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 80_000);
    }
}
