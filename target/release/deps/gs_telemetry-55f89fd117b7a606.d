/root/repo/target/release/deps/gs_telemetry-55f89fd117b7a606.d: crates/gs-telemetry/src/lib.rs crates/gs-telemetry/src/histogram.rs crates/gs-telemetry/src/registry.rs crates/gs-telemetry/src/span.rs

/root/repo/target/release/deps/libgs_telemetry-55f89fd117b7a606.rlib: crates/gs-telemetry/src/lib.rs crates/gs-telemetry/src/histogram.rs crates/gs-telemetry/src/registry.rs crates/gs-telemetry/src/span.rs

/root/repo/target/release/deps/libgs_telemetry-55f89fd117b7a606.rmeta: crates/gs-telemetry/src/lib.rs crates/gs-telemetry/src/histogram.rs crates/gs-telemetry/src/registry.rs crates/gs-telemetry/src/span.rs

crates/gs-telemetry/src/lib.rs:
crates/gs-telemetry/src/histogram.rs:
crates/gs-telemetry/src/registry.rs:
crates/gs-telemetry/src/span.rs:
