//! Pattern graphs for `MATCH` blocks.
//!
//! A [`Pattern`] is the concise graph `p` of §5.2: pattern vertices carry a
//! label and optional pushed-down predicate; pattern edges carry an edge
//! label and direction. The optimizer (GLogue CBO) decides the order in
//! which pattern vertices are matched; the physical plan realises that
//! order as a chain of expand/intersect operators.

use crate::expr::Expr;
use gs_graph::{GraphError, LabelId, Result};
use gs_grin::Direction;

/// A vertex in a pattern graph.
#[derive(Clone, Debug, PartialEq)]
pub struct PatternVertex {
    /// The query alias (e.g. `a`); anonymous vertices get synthesised names.
    pub alias: String,
    pub label: LabelId,
    /// Predicate over this vertex (columns refer to a 1-record layout with
    /// the vertex at column 0).
    pub predicate: Option<Expr>,
}

/// An edge in a pattern graph, connecting two pattern-vertex indexes.
#[derive(Clone, Debug, PartialEq)]
pub struct PatternEdge {
    /// Optional alias binding the matched edge into the record.
    pub alias: Option<String>,
    pub label: LabelId,
    /// Index of the source pattern vertex (edge direction is src→dst).
    pub src: usize,
    /// Index of the destination pattern vertex.
    pub dst: usize,
    /// Predicate over this edge (edge at column 0 of a 1-record layout).
    pub predicate: Option<Expr>,
}

/// A pattern graph to be matched against the data graph.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Pattern {
    pub vertices: Vec<PatternVertex>,
    pub edges: Vec<PatternEdge>,
}

impl Pattern {
    /// Empty pattern.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a pattern vertex; returns its index. If the alias already
    /// exists, the existing index is returned (shared vertices join paths,
    /// like `b` in the paper's Figure 5 example).
    pub fn add_vertex(&mut self, alias: &str, label: LabelId) -> usize {
        if let Some(i) = self.vertex_index(alias) {
            return i;
        }
        self.vertices.push(PatternVertex {
            alias: alias.to_string(),
            label,
            predicate: None,
        });
        self.vertices.len() - 1
    }

    /// Adds a pattern edge between vertex indexes.
    pub fn add_edge(
        &mut self,
        alias: Option<&str>,
        label: LabelId,
        src: usize,
        dst: usize,
    ) -> usize {
        self.edges.push(PatternEdge {
            alias: alias.map(str::to_string),
            label,
            src,
            dst,
            predicate: None,
        });
        self.edges.len() - 1
    }

    /// Finds a pattern vertex by alias.
    pub fn vertex_index(&self, alias: &str) -> Option<usize> {
        self.vertices.iter().position(|v| v.alias == alias)
    }

    /// Attaches a predicate to a pattern vertex (AND-combined with any
    /// existing one).
    pub fn and_vertex_predicate(&mut self, idx: usize, pred: Expr) {
        let v = &mut self.vertices[idx];
        v.predicate = Some(match v.predicate.take() {
            Some(p) => Expr::bin(crate::expr::BinOp::And, p, pred),
            None => pred,
        });
    }

    /// Attaches a predicate to a pattern edge (AND-combined).
    pub fn and_edge_predicate(&mut self, idx: usize, pred: Expr) {
        let e = &mut self.edges[idx];
        e.predicate = Some(match e.predicate.take() {
            Some(p) => Expr::bin(crate::expr::BinOp::And, p, pred),
            None => pred,
        });
    }

    /// Edges incident to pattern vertex `v`, as `(edge idx, direction from
    /// v's perspective, other endpoint)`.
    pub fn incident(&self, v: usize) -> Vec<(usize, Direction, usize)> {
        let mut out = Vec::new();
        for (i, e) in self.edges.iter().enumerate() {
            if e.src == v {
                out.push((i, Direction::Out, e.dst));
            }
            if e.dst == v {
                out.push((i, Direction::In, e.src));
            }
        }
        out
    }

    /// Checks the pattern is structurally sound: vertex aliases are
    /// unique, edge endpoints are in range, and the pattern is connected
    /// and non-empty (required for the expand-chain compilation strategy).
    ///
    /// Alias uniqueness and endpoint ranges are checked *first*, before
    /// anything walks the adjacency, so a malformed pattern is rejected
    /// with a message naming the offending alias instead of panicking in
    /// the traversal.
    pub fn validate(&self) -> Result<()> {
        for (i, v) in self.vertices.iter().enumerate() {
            if self.vertices[..i].iter().any(|u| u.alias == v.alias) {
                return Err(GraphError::Query(format!(
                    "duplicate pattern vertex alias `{}`",
                    v.alias
                )));
            }
        }
        for (i, e) in self.edges.iter().enumerate() {
            if e.src >= self.vertices.len() || e.dst >= self.vertices.len() {
                let name = e.alias.clone().unwrap_or_else(|| format!("#{i}"));
                return Err(GraphError::Query(format!(
                    "pattern edge `{name}` endpoint out of range ({} -> {}, {} vertices)",
                    e.src,
                    e.dst,
                    self.vertices.len()
                )));
            }
        }
        if self.vertices.is_empty() {
            return Err(GraphError::Query("empty pattern".into()));
        }
        if self.vertices.len() == 1 {
            return Ok(());
        }
        let mut seen = vec![false; self.vertices.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for (_, _, w) in self.incident(v) {
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        if seen.iter().all(|&s| s) {
            Ok(())
        } else {
            Err(GraphError::Query("pattern is disconnected".into()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Expr};
    use gs_graph::Value;

    #[test]
    fn shared_alias_joins_paths() {
        let mut p = Pattern::new();
        let a = p.add_vertex("a", LabelId(0));
        let b = p.add_vertex("b", LabelId(0));
        let b2 = p.add_vertex("b", LabelId(0));
        assert_eq!(b, b2);
        let c = p.add_vertex("c", LabelId(1));
        p.add_edge(None, LabelId(0), a, b);
        p.add_edge(None, LabelId(1), b, c);
        assert_eq!(p.vertices.len(), 3);
        p.validate().unwrap();
    }

    #[test]
    fn incident_reports_directions() {
        let mut p = Pattern::new();
        let a = p.add_vertex("a", LabelId(0));
        let b = p.add_vertex("b", LabelId(0));
        p.add_edge(None, LabelId(0), a, b);
        let inc_a = p.incident(a);
        assert_eq!(inc_a, vec![(0, Direction::Out, b)]);
        let inc_b = p.incident(b);
        assert_eq!(inc_b, vec![(0, Direction::In, a)]);
    }

    #[test]
    fn disconnected_pattern_rejected() {
        let mut p = Pattern::new();
        p.add_vertex("a", LabelId(0));
        p.add_vertex("b", LabelId(0));
        assert!(p.validate().is_err());
        assert!(Pattern::new().validate().is_err());
    }

    #[test]
    fn duplicate_alias_rejected_by_name() {
        let mut p = Pattern::new();
        p.vertices.push(PatternVertex {
            alias: "a".into(),
            label: LabelId(0),
            predicate: None,
        });
        p.vertices.push(PatternVertex {
            alias: "a".into(),
            label: LabelId(1),
            predicate: None,
        });
        p.add_edge(None, LabelId(0), 0, 1);
        let e = p.validate().unwrap_err();
        assert!(e.to_string().contains("duplicate pattern vertex alias `a`"));
    }

    #[test]
    fn out_of_range_endpoint_rejected_before_traversal() {
        let mut p = Pattern::new();
        let a = p.add_vertex("a", LabelId(0));
        p.add_vertex("b", LabelId(0));
        p.add_edge(Some("e"), LabelId(0), a, 7);
        let e = p.validate().unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("`e`"), "names the edge alias: {msg}");
        assert!(msg.contains("out of range"), "{msg}");
    }

    #[test]
    fn predicates_and_combine() {
        let mut p = Pattern::new();
        let a = p.add_vertex("a", LabelId(0));
        p.and_vertex_predicate(a, Expr::Const(Value::Bool(true)));
        p.and_vertex_predicate(a, Expr::Const(Value::Bool(false)));
        match p.vertices[a].predicate.as_ref().unwrap() {
            Expr::Binary { op: BinOp::And, .. } => {}
            other => panic!("expected AND, got {other:?}"),
        }
    }
}
