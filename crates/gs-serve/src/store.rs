//! [`ServeStore`]: the storage facade the serving layer reads through.
//!
//! The server needs three things from storage that the bare
//! [`GrinGraph`] trait doesn't carry: a schema to compile against, a
//! *schema epoch* to key the plan cache (plans are verified against one
//! schema and must not outlive it), and a *data version* to key the
//! result cache (GART commits bump it, which is the entire invalidation
//! rule — no explicit purge calls anywhere).

use std::sync::Arc;

use gs_gart::GartStore;
use gs_graph::schema::GraphSchema;
use gs_grin::GrinGraph;

/// Storage as seen by the serving layer: versioned consistent snapshots.
pub trait ServeStore: Send + Sync {
    /// The schema queries compile and verify against.
    fn schema(&self) -> &GraphSchema;

    /// Monotonic schema identity; a bump invalidates every cached plan.
    /// Stores in this repo have immutable schemas, so this is constant —
    /// the cache key structure is what matters.
    fn schema_epoch(&self) -> u64 {
        0
    }

    /// The committed data version. Result-cache entries are keyed by it:
    /// a write commit bumps the version and every stale entry silently
    /// stops matching.
    fn data_version(&self) -> u64;

    /// A consistent read snapshot *and the version it is pinned to*.
    /// Returning the pair atomically is what makes result caching sound:
    /// the cached rows are stored under exactly the version they were
    /// computed at.
    fn snapshot(&self) -> (Arc<dyn GrinGraph>, u64);
}

/// GART-backed serving store: MVCC versions map directly onto the
/// result-cache invalidation rule.
pub struct GartServeStore {
    store: Arc<GartStore>,
}

impl GartServeStore {
    pub fn new(store: Arc<GartStore>) -> Self {
        Self { store }
    }

    /// The underlying store (for writers that mutate alongside serving).
    pub fn store(&self) -> &Arc<GartStore> {
        &self.store
    }
}

impl ServeStore for GartServeStore {
    fn schema(&self) -> &GraphSchema {
        self.store.schema()
    }

    fn data_version(&self) -> u64 {
        self.store.committed_version()
    }

    fn snapshot(&self) -> (Arc<dyn GrinGraph>, u64) {
        let version = self.store.committed_version();
        (Arc::new(self.store.snapshot_at(version)), version)
    }
}

/// An immutable store (Vineyard build, mock graph): version never moves,
/// so cached results never expire — which is correct, the data can't
/// change.
pub struct StaticServeStore {
    graph: Arc<dyn GrinGraph>,
}

impl StaticServeStore {
    pub fn new(graph: Arc<dyn GrinGraph>) -> Self {
        Self { graph }
    }
}

impl ServeStore for StaticServeStore {
    fn schema(&self) -> &GraphSchema {
        self.graph.schema()
    }

    fn data_version(&self) -> u64 {
        0
    }

    fn snapshot(&self) -> (Arc<dyn GrinGraph>, u64) {
        (Arc::clone(&self.graph), 0)
    }
}
