//! Records and layouts: the IR data model `D`.
//!
//! A [`Record`] is one tuple flowing through the dataflow; columns are
//! positional. The [`Layout`] resolves query aliases (like `a`, `b`, `cnt1`)
//! to column indexes at *compile* time, so execution never does string
//! lookups. Each column carries the static type information the binder
//! derived (e.g. which vertex label an alias is known to hold).

use gs_graph::{GraphError, LabelId, Result, Value};

/// One data tuple.
pub type Record = Vec<Value>;

/// What a column statically holds, as derived by the planner.
#[derive(Clone, Debug, PartialEq)]
pub enum ColumnKind {
    /// A vertex bound to this label.
    Vertex(LabelId),
    /// An edge with this edge label.
    Edge(LabelId),
    /// A scalar produced by projection/aggregation.
    Scalar,
}

/// Compile-time alias → column mapping.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Layout {
    columns: Vec<(String, ColumnKind)>,
}

impl Layout {
    /// Empty layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a column; returns its index. Re-using an existing alias is
    /// an error (aliases are unique within a stage), and uniqueness is
    /// case-insensitive: `n` and `N` naming different columns is almost
    /// always a query bug, and lookups stay case-sensitive so the two
    /// could never both be addressed anyway.
    pub fn push(&mut self, alias: &str, kind: ColumnKind) -> Result<usize> {
        if let Some((existing, _)) = self
            .columns
            .iter()
            .find(|(a, _)| a.eq_ignore_ascii_case(alias))
        {
            return Err(GraphError::Query(format!(
                "duplicate alias `{alias}` (conflicts with `{existing}`; aliases are case-insensitively unique)"
            )));
        }
        self.columns.push((alias.to_string(), kind));
        Ok(self.columns.len() - 1)
    }

    /// Index of an alias.
    pub fn index_of(&self, alias: &str) -> Option<usize> {
        self.columns.iter().position(|(a, _)| a == alias)
    }

    /// Index of an alias, as an error-reporting lookup. The error lists
    /// the aliases that *are* bound, so a typo is visible at a glance.
    pub fn require(&self, alias: &str) -> Result<usize> {
        self.index_of(alias).ok_or_else(|| {
            let avail: Vec<&str> = self.aliases().collect();
            if avail.is_empty() {
                GraphError::Query(format!("unknown alias `{alias}` (no aliases bound)"))
            } else {
                GraphError::Query(format!(
                    "unknown alias `{alias}` (available: {})",
                    avail.join(", ")
                ))
            }
        })
    }

    /// Column kind by index.
    pub fn kind(&self, idx: usize) -> &ColumnKind {
        &self.columns[idx].1
    }

    /// Kind for an alias.
    pub fn kind_of(&self, alias: &str) -> Option<&ColumnKind> {
        self.index_of(alias).map(|i| self.kind(i))
    }

    /// Column count.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Alias names in column order.
    pub fn aliases(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|(a, _)| a.as_str())
    }

    /// The vertex label an alias is bound to, if it is a vertex column.
    pub fn vertex_label(&self, alias: &str) -> Result<LabelId> {
        match self.kind_of(alias) {
            Some(ColumnKind::Vertex(l)) => Ok(*l),
            Some(other) => Err(GraphError::Query(format!(
                "alias `{alias}` is {other:?}, expected vertex"
            ))),
            None => Err(GraphError::Query(format!("unknown alias `{alias}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup() {
        let mut l = Layout::new();
        let a = l.push("a", ColumnKind::Vertex(LabelId(0))).unwrap();
        let b = l.push("b", ColumnKind::Scalar).unwrap();
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(l.index_of("a"), Some(0));
        assert_eq!(l.index_of("zz"), None);
        assert_eq!(l.width(), 2);
        assert_eq!(l.vertex_label("a").unwrap(), LabelId(0));
        assert!(l.vertex_label("b").is_err());
    }

    #[test]
    fn duplicate_alias_rejected() {
        let mut l = Layout::new();
        l.push("a", ColumnKind::Scalar).unwrap();
        assert!(l.push("a", ColumnKind::Scalar).is_err());
    }

    #[test]
    fn duplicate_alias_rejected_case_insensitively() {
        let mut l = Layout::new();
        l.push("cnt", ColumnKind::Scalar).unwrap();
        let e = l.push("CNT", ColumnKind::Scalar).unwrap_err();
        assert!(e.to_string().contains("`cnt`"), "{e}");
        // lookups stay case-sensitive
        assert_eq!(l.index_of("cnt"), Some(0));
        assert_eq!(l.index_of("CNT"), None);
    }

    #[test]
    fn require_reports_missing() {
        let l = Layout::new();
        let e = l.require("ghost").unwrap_err();
        assert!(e.to_string().contains("ghost"));
        assert!(e.to_string().contains("no aliases bound"));
    }

    #[test]
    fn require_lists_available_aliases() {
        let mut l = Layout::new();
        l.push("a", ColumnKind::Scalar).unwrap();
        l.push("b", ColumnKind::Scalar).unwrap();
        let e = l.require("c").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("available: a, b"), "{msg}");
    }
}
