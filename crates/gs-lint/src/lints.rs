//! The six lint passes, L001–L006, over the token stream and manifests.
//!
//! These are pattern matchers, not a type checker: each pass encodes one
//! cross-cutting contract of the stack precisely enough to catch the real
//! violation classes previous PRs fixed by hand, with inline allows and
//! the baseline absorbing the judgment calls a source-level view cannot
//! make. False-negative-averse where the contract is cheap to follow
//! (L001, L003, L006), false-positive-averse where it needs type
//! knowledge we don't have (L002).

use crate::diag::{normalize_snippet, Finding, L001, L002, L003, L004, L005, L006};
use crate::lexer::{TokKind, Token};
use crate::manifest::Manifest;
use crate::registry::{is_metric_base, TelemetryRegistry};
use std::collections::{BTreeMap, BTreeSet, HashSet};

// ---------------------------------------------------------------------
// token-stream helpers
// ---------------------------------------------------------------------

fn ident(toks: &[Token], i: usize) -> Option<&str> {
    toks.get(i)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
}

fn is_ident(toks: &[Token], i: usize, text: &str) -> bool {
    ident(toks, i) == Some(text)
}

fn is_punct(toks: &[Token], i: usize, c: char) -> bool {
    toks.get(i)
        .map(|t| t.kind == TokKind::Punct && t.text.len() == 1 && t.text.as_bytes()[0] == c as u8)
        .unwrap_or(false)
}

/// `::` — two consecutive colon puncts at `i`.
fn is_cc(toks: &[Token], i: usize) -> bool {
    is_punct(toks, i, ':') && is_punct(toks, i + 1, ':')
}

/// Index of the delimiter matching the opener at `open` (`(`/`[`/`{`).
/// Returns `toks.len() - 1` on unbalanced input.
fn close_of(toks: &[Token], open: usize) -> usize {
    let mut depth = 0isize;
    let mut i = open;
    while i < toks.len() {
        if let Some(t) = toks.get(i) {
            if t.kind == TokKind::Punct {
                match t.text.as_bytes().first() {
                    Some(b'(') | Some(b'[') | Some(b'{') => depth += 1,
                    Some(b')') | Some(b']') | Some(b'}') => {
                        depth -= 1;
                        if depth == 0 {
                            return i;
                        }
                    }
                    _ => {}
                }
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

// ---------------------------------------------------------------------
// file context
// ---------------------------------------------------------------------

/// One lexed source file plus the classification the passes need.
pub struct FileCx<'a> {
    /// Workspace-relative path.
    pub rel_path: &'a str,
    /// Owning crate's package name ("" if unknown).
    pub crate_name: &'a str,
    /// True for files under `tests/`, `benches/`, or `examples/`.
    pub is_test_file: bool,
    pub tokens: &'a [Token],
    /// Raw source lines, for snippets.
    pub lines: Vec<&'a str>,
    /// Line ranges of `#[cfg(test)]` / `#[test]` items.
    pub test_ranges: Vec<(u32, u32)>,
}

impl<'a> FileCx<'a> {
    pub fn new(
        rel_path: &'a str,
        crate_name: &'a str,
        is_test_file: bool,
        tokens: &'a [Token],
        src: &'a str,
    ) -> Self {
        Self {
            rel_path,
            crate_name,
            is_test_file,
            tokens,
            lines: src.lines().collect(),
            test_ranges: test_line_ranges(tokens),
        }
    }

    /// Is `line` inside test-only code (test file or `#[cfg(test)]` item)?
    pub fn in_test(&self, line: u32) -> bool {
        self.is_test_file
            || self
                .test_ranges
                .iter()
                .any(|&(s, e)| s <= line && line <= e)
    }

    fn finding(&self, code: &'static str, line: u32, message: String) -> Finding {
        Finding {
            code,
            file: self.rel_path.to_string(),
            line,
            message,
            snippet: normalize_snippet(self.lines.get(line as usize - 1).copied().unwrap_or("")),
        }
    }
}

/// Line ranges covered by items carrying a `test` attribute
/// (`#[cfg(test)] mod …`, `#[test] fn …`, `#[cfg(all(test, …))] …`).
/// A range starts at the first attribute of the item's attribute run, so
/// sibling attributes like `#[cfg(feature = "…")]` are covered too.
pub fn test_line_ranges(toks: &[Token]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(is_punct(toks, i, '#')
            && (is_punct(toks, i + 1, '[')
                || (is_punct(toks, i + 1, '!') && is_punct(toks, i + 2, '['))))
        {
            i += 1;
            continue;
        }
        // consume the whole attribute run, noting whether any attr
        // mentions the `test` ident
        let attr_start_line = toks[i].line;
        let mut has_test = false;
        let mut j = i;
        loop {
            let open = if is_punct(toks, j, '#') && is_punct(toks, j + 1, '[') {
                j + 1
            } else if is_punct(toks, j, '#')
                && is_punct(toks, j + 1, '!')
                && is_punct(toks, j + 2, '[')
            {
                j + 2
            } else {
                break;
            };
            let close = close_of(toks, open);
            if toks[open..=close.min(toks.len() - 1)]
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text == "test")
            {
                has_test = true;
            }
            j = close + 1;
        }
        if !has_test {
            i = j;
            continue;
        }
        // find the item body `{…}` (or `;` for bodiless items)
        let mut k = j;
        let mut end_line = None;
        while k < toks.len() {
            if is_punct(toks, k, '{') {
                let close = close_of(toks, k);
                end_line = Some(toks.get(close).map(|t| t.line).unwrap_or(u32::MAX));
                j = close + 1;
                break;
            }
            if is_punct(toks, k, ';') {
                end_line = Some(toks[k].line);
                j = k + 1;
                break;
            }
            if is_punct(toks, k, '(') || is_punct(toks, k, '[') {
                k = close_of(toks, k) + 1;
                continue;
            }
            k += 1;
        }
        if let Some(end) = end_line {
            out.push((attr_start_line, end));
        }
        i = j.max(i + 1);
    }
    out
}

// ---------------------------------------------------------------------
// L001 — raw sync primitives in instrumented crates
// ---------------------------------------------------------------------

const STD_SYNC_TARGETS: [&str; 4] = ["Mutex", "RwLock", "Condvar", "Barrier"];
const PARKING_LOT_TARGETS: [&str; 2] = ["Mutex", "RwLock"];

fn l001_suggestion(name: &str) -> &'static str {
    match name {
        "Mutex" => "use gs_sanitizer::TrackedMutex",
        "RwLock" => "use gs_sanitizer::TrackedRwLock",
        "Barrier" => "use gs_sanitizer::TrackedBarrier",
        "Condvar" => "no tracked equivalent exists — justify with an allow or restructure",
        _ => "use a tracked wrapper",
    }
}

/// Flags `std::sync::{Mutex,RwLock,Condvar,Barrier}` and
/// `parking_lot::{Mutex,RwLock}` mentions (imports and qualified paths)
/// in sanitizer-instrumented crates, outside test code. Guard types
/// (`MutexGuard`) are fine: the tracked pass-throughs hand those out.
pub fn l001(cx: &FileCx, out: &mut Vec<Finding>) {
    let toks = cx.tokens;
    let report = |j: usize, targets: &[&str], origin: &str, out: &mut Vec<Finding>| {
        let mut hits: Vec<(u32, String)> = Vec::new();
        if let Some(name) = ident(toks, j) {
            if targets.contains(&name) {
                hits.push((toks[j].line, name.to_string()));
            }
        } else if is_punct(toks, j, '{') {
            let close = close_of(toks, j);
            for t in &toks[j..=close.min(toks.len() - 1)] {
                if t.kind == TokKind::Ident && targets.contains(&t.text.as_str()) {
                    hits.push((t.line, t.text.clone()));
                }
            }
        }
        for (line, name) in hits {
            if cx.in_test(line) {
                continue;
            }
            out.push(cx.finding(
                L001,
                line,
                format!(
                    "raw {origin}::{name} in sanitizer-instrumented crate `{}`: {}",
                    cx.crate_name,
                    l001_suggestion(&name)
                ),
            ));
        }
    };
    for i in 0..toks.len() {
        if is_ident(toks, i, "std")
            && is_cc(toks, i + 1)
            && is_ident(toks, i + 3, "sync")
            && is_cc(toks, i + 4)
        {
            report(i + 6, &STD_SYNC_TARGETS, "std::sync", out);
        }
        if is_ident(toks, i, "parking_lot") && is_cc(toks, i + 1) {
            report(i + 3, &PARKING_LOT_TARGETS, "parking_lot", out);
        }
    }
}

// ---------------------------------------------------------------------
// L002 — hash-order iteration feeding float accumulation
// ---------------------------------------------------------------------

const HASH_ITERS: [&str; 5] = ["values", "keys", "iter", "into_iter", "drain"];

fn is_float_literal(text: &str) -> bool {
    text.contains('.') || text.ends_with("f32") || text.ends_with("f64")
}

/// Identifiers bound to `HashMap`/`HashSet` in this file
/// (`x: HashMap<…>`, `x: &HashMap<…>`, `x = HashMap::new()`).
fn hash_bound_idents(toks: &[Token]) -> HashSet<String> {
    let mut set = HashSet::new();
    for i in 0..toks.len() {
        let Some(name) = ident(toks, i) else { continue };
        if name != "HashMap" && name != "HashSet" {
            continue;
        }
        let mut j = i;
        // walk back over `&`, `mut`
        while j > 0 && (is_punct(toks, j - 1, '&') || is_ident(toks, j - 1, "mut")) {
            j -= 1;
        }
        if j >= 2
            && (is_punct(toks, j - 1, ':') || is_punct(toks, j - 1, '='))
            && !is_punct(toks, j - 2, ':')
        {
            if let Some(bound) = ident(toks, j - 2) {
                set.insert(bound.to_string());
            }
        }
    }
    set
}

/// Identifiers with float evidence (`x: f64`, `x = 0.0`, `x = 1f32`).
fn float_idents(toks: &[Token]) -> HashSet<String> {
    let mut set = HashSet::new();
    for i in 0..toks.len() {
        let Some(name) = ident(toks, i) else { continue };
        if is_punct(toks, i + 1, ':')
            && !is_punct(toks, i + 2, ':')
            && matches!(ident(toks, i + 2), Some("f64") | Some("f32"))
        {
            set.insert(name.to_string());
        }
        if is_punct(toks, i + 1, '=')
            && toks
                .get(i + 2)
                .map(|t| t.kind == TokKind::Num && is_float_literal(&t.text))
                .unwrap_or(false)
        {
            set.insert(name.to_string());
        }
    }
    set
}

/// Flags (a) `for … in <hash-bound>.values()/… { … float += … }` loops
/// and (b) `<hash-bound>.values()….sum::<f64>()` / `.fold(0.0, …)`
/// chains. Iteration order of std hash containers is randomized per
/// process; folding floats in that order is the run-to-run drift class
/// the PageRank dangling-mass bug exemplified.
///
/// Bindings are tracked per file, not per scope: an identifier bound to
/// a `HashMap` anywhere in the file taints every iteration over that
/// name. That coarseness (plus the lack of type information) is why
/// L002 defaults to Warn rather than Deny.
pub fn l002(cx: &FileCx, out: &mut Vec<Finding>) {
    let toks = cx.tokens;
    let maps = hash_bound_idents(toks);
    if maps.is_empty() {
        return;
    }
    let floats = float_idents(toks);

    // (a) for-loops
    for i in 0..toks.len() {
        if !is_ident(toks, i, "for") || cx.in_test(toks[i].line) {
            continue;
        }
        // find `in` at depth 0 (skipping destructuring-pattern groups)
        let mut k = i + 1;
        let mut found_in = None;
        while k < toks.len() && k < i + 64 {
            if is_punct(toks, k, '(') || is_punct(toks, k, '[') {
                k = close_of(toks, k) + 1;
                continue;
            }
            if is_punct(toks, k, '{') {
                break;
            }
            if is_ident(toks, k, "in") {
                found_in = Some(k);
                break;
            }
            k += 1;
        }
        let Some(in_at) = found_in else { continue };
        // iterable expression: tokens until the body `{` at depth 0
        let mut e = in_at + 1;
        let mut body_open = None;
        while e < toks.len() {
            if is_punct(toks, e, '(') || is_punct(toks, e, '[') {
                e = close_of(toks, e) + 1;
                continue;
            }
            if is_punct(toks, e, '{') {
                body_open = Some(e);
                break;
            }
            e += 1;
        }
        let Some(body_open) = body_open else { continue };
        let expr = &toks[in_at + 1..body_open];
        let map_var = expr
            .iter()
            .find(|t| t.kind == TokKind::Ident && maps.contains(&t.text));
        let Some(map_var) = map_var else { continue };
        let is_hash_iter = expr
            .iter()
            .any(|t| t.kind == TokKind::Ident && HASH_ITERS.contains(&t.text.as_str()))
            || expr
                .iter()
                .all(|t| t.kind != TokKind::Ident || maps.contains(&t.text) || t.text == "mut");
        if !is_hash_iter {
            continue;
        }
        // body: bare-identifier float accumulation
        let body_close = close_of(toks, body_open);
        for b in body_open..body_close {
            if let Some(acc) = ident(toks, b) {
                if floats.contains(acc)
                    && is_punct(toks, b + 1, '+')
                    && is_punct(toks, b + 2, '=')
                    && !is_punct(toks, b.wrapping_sub(1), '.')
                {
                    out.push(cx.finding(
                        L002,
                        toks[i].line,
                        format!(
                            "iteration over hash container `{}` accumulates into float `{acc}`: \
                             hash order is nondeterministic — reduce in sorted key order",
                            map_var.text
                        ),
                    ));
                    break;
                }
            }
        }
    }

    // (b) direct reduce chains
    for i in 0..toks.len() {
        let Some(name) = ident(toks, i) else { continue };
        if !maps.contains(name)
            || cx.in_test(toks[i].line)
            || !is_punct(toks, i + 1, '.')
            || !matches!(ident(toks, i + 2), Some(m) if HASH_ITERS.contains(&m))
        {
            continue;
        }
        let mut k = i + 3;
        let mut hit = None;
        while k < toks.len() && k < i + 200 {
            if is_punct(toks, k, ';') {
                break;
            }
            if is_ident(toks, k, "sum")
                && is_cc(toks, k + 1)
                && is_punct(toks, k + 3, '<')
                && matches!(ident(toks, k + 4), Some("f64") | Some("f32"))
            {
                hit = Some("sum");
                break;
            }
            if is_ident(toks, k, "fold")
                && is_punct(toks, k + 1, '(')
                && toks
                    .get(k + 2)
                    .map(|t| t.kind == TokKind::Num && is_float_literal(&t.text))
                    .unwrap_or(false)
            {
                hit = Some("fold");
                break;
            }
            k += 1;
        }
        if let Some(op) = hit {
            out.push(cx.finding(
                L002,
                toks[i].line,
                format!(
                    "`{name}.{}()…{op}` reduces floats in hash order: \
                     nondeterministic across runs — sort keys first",
                    toks[i + 2].text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// L003 — unwrap/expect on channel send/recv in engine code
// ---------------------------------------------------------------------

const CHANNEL_METHODS: [&str; 5] = ["send", "try_send", "recv", "try_recv", "recv_timeout"];

/// Flags `.recv().unwrap()` / `.send(x).expect(…)` chains: in engine,
/// shard, and recovery loops a disconnected peer is an expected failure
/// mode (worker death, shutdown, chaos kill) and must become a
/// structured `GraphError` or a graceful loop exit, not a panic that
/// poisons the whole process — the class PR 4 fixed in HiActor shards.
pub fn l003(cx: &FileCx, out: &mut Vec<Finding>) {
    let toks = cx.tokens;
    for i in 0..toks.len() {
        let Some(m) = ident(toks, i) else { continue };
        if !CHANNEL_METHODS.contains(&m)
            || i == 0
            || !is_punct(toks, i - 1, '.')
            || !is_punct(toks, i + 1, '(')
            || cx.in_test(toks[i].line)
        {
            continue;
        }
        let close = close_of(toks, i + 1);
        if is_punct(toks, close + 1, '.') {
            if let Some(next) = ident(toks, close + 2) {
                if next == "unwrap" || next == "expect" {
                    out.push(cx.finding(
                        L003,
                        toks[i].line,
                        format!(
                            "`.{m}().{next}()` in engine code: a dead peer panics here — \
                             return a structured GraphError or exit the loop gracefully"
                        ),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// L004 — telemetry name hygiene
// ---------------------------------------------------------------------

const TELEMETRY_MACROS: [&str; 3] = ["counter", "observe", "span"];
const TELEMETRY_STATICS: [&str; 2] = ["StaticCounter", "StaticHistogram"];

/// Checks every string literal passed to `counter!`/`observe!`/`span!`
/// and `StaticCounter::new` against the `layer.noun[.verb]` convention
/// and the registry extracted from DESIGN.md's telemetry tables.
pub fn l004(cx: &FileCx, registry: &TelemetryRegistry, out: &mut Vec<Finding>) {
    let toks = cx.tokens;
    let check = |name_at: usize, has_fields: bool, out: &mut Vec<Finding>| {
        let t = &toks[name_at];
        if cx.in_test(t.line) {
            return;
        }
        let name = t.text.as_str();
        if !is_metric_base(name) {
            out.push(cx.finding(
                L004,
                t.line,
                format!(
                    "telemetry name `{name}` violates the layer.noun[.verb] convention \
                     (2–4 lowercase dotted segments)"
                ),
            ));
            return;
        }
        match registry.get(name) {
            None => out.push(cx.finding(
                L004,
                t.line,
                format!(
                    "telemetry name `{name}` is not documented in DESIGN.md's telemetry \
                     tables — add it there (the registry is derived from the doc)"
                ),
            )),
            Some(entry) if has_fields && !entry.templated => out.push(cx.finding(
                L004,
                t.line,
                format!(
                    "telemetry name `{name}` carries dynamic fields in code but DESIGN.md \
                     documents it without a `{{field}}` template"
                ),
            )),
            Some(_) => {}
        }
    };
    for i in 0..toks.len() {
        if let Some(m) = ident(toks, i) {
            if TELEMETRY_MACROS.contains(&m)
                && is_punct(toks, i + 1, '!')
                && is_punct(toks, i + 2, '(')
                && toks
                    .get(i + 3)
                    .map(|t| t.kind == TokKind::Str)
                    .unwrap_or(false)
            {
                let has_fields = is_punct(toks, i + 4, ',');
                check(i + 3, has_fields, out);
            }
            if TELEMETRY_STATICS.contains(&m)
                && is_cc(toks, i + 1)
                && is_ident(toks, i + 3, "new")
                && is_punct(toks, i + 4, '(')
                && toks
                    .get(i + 5)
                    .map(|t| t.kind == TokKind::Str)
                    .unwrap_or(false)
            {
                check(i + 5, false, out);
            }
        }
    }
}

// ---------------------------------------------------------------------
// L005 — feature-gate hygiene
// ---------------------------------------------------------------------

/// Per-crate facts the feature lint needs, aggregated over source files.
#[derive(Debug, Default)]
pub struct CrateFacts {
    pub name: String,
    /// Workspace-relative Cargo.toml path.
    pub manifest_path: String,
    pub manifest: Manifest,
    /// Line of `[features]` in the manifest (1 if absent).
    pub features_line: u32,
    /// Crate non-test source references `gs_sanitizer`.
    pub uses_sanitizer: bool,
    /// Crate non-test source references `gs_chaos`.
    pub uses_chaos: bool,
    /// feature name → (seen `cfg(feature)`, seen `cfg(not(feature))`),
    /// non-test source only.
    pub cfg_features: BTreeMap<String, (bool, bool)>,
}

/// Collects `cfg`/`cfg_attr` feature gates from one file into `facts`,
/// skipping test regions, and notes hook-crate references.
pub fn collect_facts(cx: &FileCx, facts: &mut CrateFacts) {
    let toks = cx.tokens;
    for i in 0..toks.len() {
        let Some(name) = ident(toks, i) else { continue };
        if cx.in_test(toks[i].line) {
            continue;
        }
        match name {
            "gs_sanitizer" => facts.uses_sanitizer = true,
            "gs_chaos" => facts.uses_chaos = true,
            "cfg" | "cfg_attr" if is_punct(toks, i + 1, '(') => {
                let close = close_of(toks, i + 1);
                collect_cfg_features(toks, i + 2, close, false, &mut facts.cfg_features);
            }
            _ => {}
        }
    }
}

fn collect_cfg_features(
    toks: &[Token],
    start: usize,
    end: usize,
    negated: bool,
    out: &mut BTreeMap<String, (bool, bool)>,
) {
    let mut j = start;
    while j < end {
        if matches!(ident(toks, j), Some("not") | Some("any") | Some("all"))
            && is_punct(toks, j + 1, '(')
        {
            let inner_close = close_of(toks, j + 1);
            let inner_neg = negated || ident(toks, j) == Some("not");
            collect_cfg_features(toks, j + 2, inner_close, inner_neg, out);
            j = inner_close + 1;
            continue;
        }
        if is_ident(toks, j, "feature")
            && is_punct(toks, j + 1, '=')
            && toks
                .get(j + 2)
                .map(|t| t.kind == TokKind::Str)
                .unwrap_or(false)
        {
            let entry = out
                .entry(toks[j + 2].text.clone())
                .or_insert((false, false));
            if negated {
                entry.1 = true;
            } else {
                entry.0 = true;
            }
            j += 3;
            continue;
        }
        j += 1;
    }
}

/// Instrumentation features and their defining crates.
const HOOK_FEATURES: [(&str, &str); 2] = [("sanitize", "gs-sanitizer"), ("chaos", "gs-chaos")];

/// Runs the manifest-level checks for one crate. `declarers` maps a
/// feature name to every workspace crate (vendor included) declaring it.
pub fn l005(facts: &CrateFacts, declarers: &BTreeMap<String, BTreeSet<String>>) -> Vec<Finding> {
    let mut out = Vec::new();
    let finding = |line: u32, message: String| Finding {
        code: L005,
        file: facts.manifest_path.clone(),
        line,
        message,
        snippet: normalize_snippet("[features]"),
    };

    for (feature, definer) in HOOK_FEATURES {
        // 1. hook use ⇒ the feature must exist and forward to the definer
        let uses = match feature {
            "sanitize" => facts.uses_sanitizer,
            _ => facts.uses_chaos,
        };
        if uses
            && facts.name != definer
            && !facts
                .manifest
                .forwards(feature, &format!("{definer}/{feature}"))
        {
            out.push(finding(
                facts.features_line,
                format!(
                    "crate uses {} hooks but `[features] {feature}` does not forward \
                     `{definer}/{feature}` — zero-cost gating breaks",
                    definer.replace('-', "_")
                ),
            ));
        }
        // 2. declared ⇒ forwarded to every dependency that also declares it
        if facts.manifest.declares_feature(feature) {
            if let Some(who) = declarers.get(feature) {
                for dep in &facts.manifest.dependencies {
                    if who.contains(dep)
                        && !facts
                            .manifest
                            .forwards(feature, &format!("{dep}/{feature}"))
                    {
                        out.push(finding(
                            facts.features_line,
                            format!(
                                "feature `{feature}` does not forward to dependency `{dep}` \
                                 which declares it — enabling it here leaves `{dep}` un-instrumented"
                            ),
                        ));
                    }
                }
            }
        }
    }

    // 3. every cfg(feature = "f") needs a cfg(not(feature = "f"))
    //    passthrough counterpart somewhere in the crate's non-test code
    for (feature, &(pos, neg)) in &facts.cfg_features {
        if pos && !neg && facts.manifest.declares_feature(feature) {
            out.push(finding(
                facts.features_line,
                format!(
                    "`cfg(feature = \"{feature}\")` has no `cfg(not(feature = \"{feature}\"))` \
                     passthrough counterpart — the default build silently loses the item"
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------
// L006 — wall-clock reads in deterministic paths
// ---------------------------------------------------------------------

/// Flags `Instant::now()` / `SystemTime::now()` in files designated as
/// deterministic replay/checkpoint paths: recovery must replay
/// identically from the same checkpoint and fault plan, so time must be
/// injected (a parameter, a step counter, a seeded virtual clock).
pub fn l006(cx: &FileCx, out: &mut Vec<Finding>) {
    let toks = cx.tokens;
    for i in 0..toks.len() {
        let Some(name) = ident(toks, i) else { continue };
        if (name == "Instant" || name == "SystemTime")
            && is_cc(toks, i + 1)
            && is_ident(toks, i + 3, "now")
            && !cx.in_test(toks[i].line)
        {
            out.push(cx.finding(
                L006,
                toks[i].line,
                format!(
                    "`{name}::now()` in a deterministic replay/checkpoint path: \
                     inject time (parameter, step counter, or seeded clock) instead"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn test_ranges_cover_attribute_runs() {
        let src = "\
fn prod() {}\n\
#[cfg(test)]\n\
#[cfg(feature = \"sanitize\")]\n\
mod tests {\n\
    fn helper() {}\n\
}\n\
fn also_prod() {}\n";
        let lexed = lex(src);
        let ranges = test_line_ranges(&lexed.tokens);
        assert_eq!(ranges, vec![(2, 6)]);
    }

    #[test]
    fn test_fn_attr_covered() {
        let src = "#[test]\nfn t() {\n    x.recv().unwrap();\n}\n";
        let lexed = lex(src);
        let ranges = test_line_ranges(&lexed.tokens);
        assert_eq!(ranges, vec![(1, 4)]);
    }

    #[test]
    fn hash_bindings_found() {
        let src = "let mut sums: HashMap<u64, f64> = HashMap::new();\n\
                   fn f(table: &HashMap<u64, f64>, v: Vec<HashMap<u64, f64>>) {}\n";
        let lexed = lex(src);
        let set = hash_bound_idents(&lexed.tokens);
        assert!(set.contains("sums"));
        assert!(set.contains("table"));
        // `Vec<HashMap<…>>` is not a direct binding
        assert!(!set.contains("v"));
    }

    #[test]
    fn cfg_feature_extraction_handles_not_any_all() {
        let src = "\
#[cfg(feature = \"chaos\")]\nfn armed() {}\n\
#[cfg(not(feature = \"chaos\"))]\nfn disarmed() {}\n\
#[cfg(all(feature = \"x\", not(feature = \"y\")))]\nfn both() {}\n";
        let lexed = lex(src);
        let cx = FileCx::new("f.rs", "c", false, &lexed.tokens, src);
        let mut facts = CrateFacts::default();
        collect_facts(&cx, &mut facts);
        assert_eq!(facts.cfg_features["chaos"], (true, true));
        assert_eq!(facts.cfg_features["x"], (true, false));
        assert_eq!(facts.cfg_features["y"], (false, true));
    }
}
