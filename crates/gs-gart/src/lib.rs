//! # gs-gart — transactional dynamic graph store with MVCC and a WAL
//!
//! GART (paper §4.2) accommodates dynamic graphs: "GART always provides
//! consistent snapshots of graph data (identified by a version), and it
//! updates the graph with the version number write_version. ... GART employs
//! an efficient and mutable CSR-like data structure."
//!
//! The CSR-like structure here is a **pooled adjacency with version
//! fences**: each edge label keeps one large entry array; every vertex owns
//! a contiguous `(start, len, cap)` region that relocates with doubled
//! capacity when full (amortised O(1) appends). A region records the
//! maximum creation version it contains, so a snapshot whose version
//! dominates the fence scans the raw entries with *no per-edge version
//! checks* — that near-CSR layout plus the fence fast path is what closes
//! most of the gap to static CSR (the 73.5% in Fig. 7c), while the
//! LiveGraph baseline in `gs-baselines` pays per-entry version checks and
//! block pointer chasing.
//!
//! On top of the versioned store sit **snapshot-isolation transactions**
//! ([`GartStore::begin`] → [`GartTxn`]): every write carries its
//! transaction id, commit flips one slot in a transaction-status table
//! (O(1) regardless of write-set size), and conflicting writers lose
//! first-writer-wins (see the `txn` module docs). The legacy
//! `add_*`/`commit` API is an auto-commit layer over the same machinery,
//! so snapshots, views, freezes, and engines run unchanged.
//!
//! Opened with a [`DurabilityConfig`], the store also keeps a
//! **write-ahead log** with checksummed frames, group commit, and fuzzy
//! checkpoints ([`GartStore::open`]); reopening after a crash replays
//! committed transactions and discards uncommitted ones, yielding state
//! bit-identical to the committed prefix (the `wal` and `recovery`
//! module docs describe the protocol).
//!
//! Concurrency model: single writer / many readers. Writers stage mutations
//! inside a transaction and publish at commit; readers obtain a
//! [`GartSnapshot`] pinned to a committed version and are never blocked by
//! the writer for more than a segment append.

mod recovery;
mod txn;
mod wal;

pub use txn::GartTxn;
pub use wal::{Durability, DurabilityConfig};

use gs_graph::csr::Csr;
use gs_graph::data::PropertyGraphData;
use gs_graph::ids::IdMap;
use gs_graph::layout::{LayoutKind, TopologyLayout};
use gs_graph::props::PropertyTable;
use gs_grin::{
    AdjEntry, Capabilities, Direction, GraphError, GraphSchema, GrinGraph, LabelId, PropId, Result,
    VId, Value,
};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fs;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use txn::{LockState, TxnCore, Vis, WriteKey, NEVER, NO_XID};
use wal::{Rec, Wal};

/// A snapshot version number.
pub type Version = u64;

/// One adjacency entry (24 bytes).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct Entry {
    pub(crate) nbr: VId,
    pub(crate) eid: gs_grin::EId,
    /// Creation mark: a committed version, or `TXN_TAG | xid` while the
    /// writing transaction is in flight (resolved through the status
    /// table until commit-time stamping rewrites it).
    pub(crate) created: Version,
}

/// Per-vertex region descriptor into the shared entry pool.
#[derive(Clone, Copy, Debug, Default)]
struct VertexMeta {
    start: u32,
    len: u32,
    cap: u32,
    /// Version fence: every entry in the region was created at or before
    /// this version. Tagged (uncommitted) marks compare greater than any
    /// real version, so a region with pending writes fails the fence and
    /// falls to the checked path automatically.
    max_created: Version,
    has_tombstone: bool,
}

/// GART's mutable CSR-like adjacency: one large entry pool per edge label
/// with per-vertex `(start, len, cap)` regions. Appends fill the region's
/// spare capacity; a full region relocates to the pool's end with doubled
/// capacity (amortised O(1); vacated space is reclaimed by offline
/// compaction). Scans read near-contiguous memory, which is what keeps GART
/// close to static CSR (Fig. 7c) while staying writable — the LiveGraph
/// baseline pays per-entry version checks and block pointer chasing instead.
#[derive(Clone, Debug, Default)]
pub(crate) struct AdjPool {
    entries: Vec<Entry>,
    meta: Vec<VertexMeta>,
    /// Tombstones: vertex -> (edge id, deletion mark). Rare; fenced scans
    /// skip the lookup entirely for tombstone-free vertices.
    tombstones: HashMap<u32, Vec<(gs_grin::EId, Version)>>,
}

impl AdjPool {
    pub(crate) fn ensure(&mut self, v: usize) {
        if self.meta.len() <= v {
            self.meta.resize(v + 1, VertexMeta::default());
        }
    }

    /// Grows a vertex's region to exactly `cap` slots (bulk loading and
    /// copy-on-grow share this relocation).
    pub(crate) fn reserve_exact(&mut self, v: usize, cap: u32) {
        self.ensure(v);
        let m = self.meta[v];
        if m.cap >= cap {
            return;
        }
        let new_start = self.entries.len() as u32;
        let (start, len) = (m.start as usize, m.len as usize);
        self.entries.extend_from_within(start..start + len);
        self.entries
            .resize(new_start as usize + cap as usize, Entry::default());
        let m = &mut self.meta[v];
        m.start = new_start;
        m.cap = cap;
    }

    pub(crate) fn push(&mut self, v: usize, nbr: VId, eid: gs_grin::EId, mark: Version) {
        self.ensure(v);
        let m = self.meta[v];
        if m.len == m.cap {
            self.reserve_exact(v, (m.cap * 2).max(4));
        }
        let m = &mut self.meta[v];
        self.entries[(m.start + m.len) as usize] = Entry {
            nbr,
            eid,
            created: mark,
        };
        m.len += 1;
        m.max_created = m.max_created.max(mark);
    }

    pub(crate) fn add_tombstone(&mut self, v: usize, eid: gs_grin::EId, mark: Version) {
        self.ensure(v);
        self.meta[v].has_tombstone = true;
        self.tombstones
            .entry(v as u32)
            .or_default()
            .push((eid, mark));
    }

    /// Commit-time hint stamping: rewrites `tag` marks (entries and
    /// tombstones) in `v`'s region to the commit `version` and recomputes
    /// the fence, restoring the raw-scan fast path for later snapshots.
    pub(crate) fn stamp(&mut self, v: usize, tag: Version, version: Version) {
        let Some(&m) = self.meta.get(v) else { return };
        let (start, len) = (m.start as usize, m.len as usize);
        for e in &mut self.entries[start..start + len] {
            if e.created == tag {
                e.created = version;
            }
        }
        self.meta[v].max_created = self.entries[start..start + len]
            .iter()
            .map(|e| e.created)
            .max()
            .unwrap_or(0);
        if let Some(t) = self.tombstones.get_mut(&(v as u32)) {
            for tomb in t.iter_mut() {
                if tomb.1 == tag {
                    tomb.1 = version;
                }
            }
        }
    }

    /// Abort-side physical removal of `tag`-marked entries: the region is
    /// compacted in place, vacated slots scrubbed, and the fence
    /// recomputed. Idempotent — a second call finds nothing to remove.
    pub(crate) fn unstage(&mut self, v: usize, tag: Version) {
        let Some(&m) = self.meta.get(v) else { return };
        let (start, len) = (m.start as usize, m.len as usize);
        let mut w = start;
        for r in start..start + len {
            let e = self.entries[r];
            if e.created != tag {
                self.entries[w] = e;
                w += 1;
            }
        }
        for slot in &mut self.entries[w..start + len] {
            *slot = Entry::default();
        }
        self.meta[v].len = (w - start) as u32;
        self.meta[v].max_created = self.entries[start..w]
            .iter()
            .map(|e| e.created)
            .max()
            .unwrap_or(0);
    }

    /// Abort-side removal of one `tag`-marked tombstone.
    pub(crate) fn untomb(&mut self, v: usize, eid: gs_grin::EId, tag: Version) {
        if let Some(t) = self.tombstones.get_mut(&(v as u32)) {
            if let Some(p) = t.iter().rposition(|&(te, tv)| te == eid && tv == tag) {
                t.remove(p);
            }
            if t.is_empty() {
                self.tombstones.remove(&(v as u32));
                if let Some(m) = self.meta.get_mut(v) {
                    m.has_tombstone = false;
                }
            }
        }
    }

    /// Raw region contents for checkpoint encoding (no visibility
    /// filtering — marks are resolved by the caller).
    pub(crate) fn raw_region(&self, v: usize) -> (&[Entry], &[(gs_grin::EId, Version)]) {
        let Some(&m) = self.meta.get(v) else {
            return (&[], &[]);
        };
        let entries = &self.entries[m.start as usize..(m.start + m.len) as usize];
        let tombs = self
            .tombstones
            .get(&(v as u32))
            .map(|t| t.as_slice())
            .unwrap_or(&[]);
        (entries, tombs)
    }

    /// Visits live entries of `v` under the visibility context; the
    /// version fence lets fully-old, tombstone-free regions scan raw
    /// (deleted-neighbour filtering only arms when the neighbour label
    /// has ever seen a vertex deletion, so the fast path survives).
    #[inline]
    pub(crate) fn for_each<F: FnMut(VId, gs_grin::EId)>(&self, v: usize, vis: &Vis<'_>, f: &mut F) {
        // cached telemetry handles: this runs once per vertex in every scan,
        // so the enabled-check must stay one relaxed load
        static FENCE_SKIPS: gs_telemetry::StaticCounter =
            gs_telemetry::StaticCounter::new("gart.fence_skips");
        static VERSION_CHECK_SCANS: gs_telemetry::StaticCounter =
            gs_telemetry::StaticCounter::new("gart.version_check_scans");
        static TOMBSTONE_SCANS: gs_telemetry::StaticCounter =
            gs_telemetry::StaticCounter::new("gart.tombstone_scans");
        let Some(&m) = self.meta.get(v) else { return };
        let slice = &self.entries[m.start as usize..(m.start + m.len) as usize];
        if !m.has_tombstone && vis.nbr_deleted.is_none() {
            if m.max_created <= vis.version {
                // every entry predates the snapshot: no per-edge check
                FENCE_SKIPS.add(1);
                for e in slice {
                    f(e.nbr, e.eid);
                }
            } else {
                VERSION_CHECK_SCANS.add(1);
                for e in slice {
                    if vis.sees(e.created) {
                        f(e.nbr, e.eid);
                    }
                }
            }
        } else if !m.has_tombstone {
            VERSION_CHECK_SCANS.add(1);
            for e in slice {
                if vis.sees(e.created) && vis.nbr_live(e.nbr) {
                    f(e.nbr, e.eid);
                }
            }
        } else {
            TOMBSTONE_SCANS.add(1);
            let tombs = self.tombstones.get(&(v as u32));
            for e in slice {
                let deleted = tombs
                    .map(|t| t.iter().any(|&(te, tv)| te == e.eid && vis.sees(tv)))
                    .unwrap_or(false);
                if vis.sees(e.created) && !deleted && vis.nbr_live(e.nbr) {
                    f(e.nbr, e.eid);
                }
            }
        }
    }

    pub(crate) fn vertex_count(&self) -> usize {
        self.meta.len()
    }
}

#[derive(Default)]
pub(crate) struct Inner {
    /// Per vertex label.
    pub(crate) id_maps: Vec<IdMap>,
    pub(crate) vprops: Vec<PropertyTable>,
    pub(crate) vertex_created: Vec<Vec<Version>>,
    /// Deletion marks per vertex slot ([`txn::NEVER`] = live).
    pub(crate) vertex_deleted: Vec<Vec<Version>>,
    /// Whether any vertex of this label was ever deleted — gates the
    /// neighbour-deletion filter so labels without deletions keep the
    /// fence fast path.
    pub(crate) deleted_any: Vec<bool>,
    /// Displaced slots for deleted-then-re-added external ids: older
    /// snapshots resolve the external id through this chain.
    pub(crate) shadow: Vec<HashMap<u64, Vec<VId>>>,
    /// Per edge label: pooled out-/in-adjacency.
    pub(crate) adj_out: Vec<AdjPool>,
    pub(crate) adj_in: Vec<AdjPool>,
    pub(crate) eprops: Vec<PropertyTable>,
    pub(crate) edge_counts: Vec<u64>,
    /// Transaction machinery (see the `txn` module).
    pub(crate) tst: txn::Tst,
    pub(crate) locks: HashMap<WriteKey, LockState>,
    pub(crate) active_txns: u64,
}

impl Inner {
    /// Builds a read-visibility context; `nbr_label` arms deleted-vertex
    /// filtering for adjacency scans whose neighbours carry that label.
    pub(crate) fn vis(&self, version: Version, xid: u64, nbr_label: Option<LabelId>) -> Vis<'_> {
        let nbr_deleted = nbr_label.and_then(|l| {
            self.deleted_any[l.index()].then(|| self.vertex_deleted[l.index()].as_slice())
        });
        Vis {
            version,
            xid,
            tst: &self.tst,
            nbr_deleted,
        }
    }

    /// Whether vertex slot `i` of label `li` is created-and-not-deleted
    /// for a reader at `(version, xid)`.
    pub(crate) fn vertex_visible(&self, li: usize, i: usize, version: Version, xid: u64) -> bool {
        let Some(&c) = self.vertex_created[li].get(i) else {
            return false;
        };
        if !self.tst.visible(c, version, xid) {
            return false;
        }
        let d = self.vertex_deleted[li].get(i).copied().unwrap_or(NEVER);
        !self.tst.visible(d, version, xid)
    }
}

/// An empty [`Inner`] shaped for `schema` (shared by [`GartStore::new`]
/// and checkpoint decoding).
pub(crate) fn fresh_inner(schema: &GraphSchema) -> Inner {
    let nvl = schema.vertex_label_count();
    let nel = schema.edge_label_count();
    let mut inner = Inner::default();
    for l in schema.vertex_labels() {
        let defs: Vec<(String, _)> = l
            .properties
            .iter()
            .map(|p| (p.name.clone(), p.value_type))
            .collect();
        inner
            .vprops
            .push(PropertyTable::new(&defs).expect("schema-derived columns"));
    }
    inner.id_maps = (0..nvl).map(|_| IdMap::new()).collect();
    inner.vertex_created = (0..nvl).map(|_| Vec::new()).collect();
    inner.vertex_deleted = (0..nvl).map(|_| Vec::new()).collect();
    inner.deleted_any = vec![false; nvl];
    inner.shadow = (0..nvl).map(|_| HashMap::new()).collect();
    for l in schema.edge_labels() {
        let defs: Vec<(String, _)> = l
            .properties
            .iter()
            .map(|p| (p.name.clone(), p.value_type))
            .collect();
        inner
            .eprops
            .push(PropertyTable::new(&defs).expect("schema-derived columns"));
    }
    inner.adj_out = (0..nel).map(|_| AdjPool::default()).collect();
    inner.adj_in = (0..nel).map(|_| AdjPool::default()).collect();
    inner.edge_counts = vec![0; nel];
    inner
}

fn io_err(e: std::io::Error) -> GraphError {
    GraphError::Io(e.to_string())
}

/// Best-effort directory fsync so a rename is durable before we depend
/// on it (recovery tolerates either outcome of the rename, so a failed
/// dir sync degrades durability, not correctness).
fn sync_dir(dir: &Path) {
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Verifies the `[len: u64][crc32: u32][payload]` checkpoint envelope.
fn checkpoint_payload(bytes: &[u8]) -> Result<&[u8]> {
    if bytes.len() < 12 {
        return Err(GraphError::Corrupt("checkpoint file too short".into()));
    }
    let len = u64::from_le_bytes(bytes[..8].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if bytes.len() != 12 + len {
        return Err(GraphError::Corrupt("checkpoint length mismatch".into()));
    }
    let payload = &bytes[12..];
    if wal::crc32(payload) != crc {
        return Err(GraphError::Corrupt("checkpoint checksum mismatch".into()));
    }
    Ok(payload)
}

const CKPT_CHUNK: usize = 1 << 16;

/// The dynamic MVCC graph store.
pub struct GartStore {
    schema: GraphSchema,
    pub(crate) inner: RwLock<Inner>,
    committed: AtomicU64,
    /// The auto-commit transaction backing the legacy `add_*` API: begun
    /// lazily at the first staged write, committed by [`GartStore::commit`].
    implicit: Mutex<Option<TxnCore>>,
    pub(crate) wal: Option<Mutex<Wal>>,
    cfg: Option<DurabilityConfig>,
    commits_since: AtomicU64,
    /// Test knob: skip commit-time hint stamping so reads exercise the
    /// pure status-table visibility path.
    lazy_stamping: AtomicBool,
}

impl GartStore {
    fn construct(
        schema: GraphSchema,
        inner: Inner,
        committed: Version,
        wal: Option<Wal>,
        cfg: Option<DurabilityConfig>,
    ) -> Arc<Self> {
        Arc::new(Self {
            schema,
            inner: RwLock::new(inner),
            committed: AtomicU64::new(committed),
            implicit: Mutex::new(None),
            wal: wal.map(Mutex::new),
            cfg,
            commits_since: AtomicU64::new(0),
            lazy_stamping: AtomicBool::new(false),
        })
    }

    /// Creates an empty in-memory store over a schema (no durability).
    pub fn new(schema: GraphSchema) -> Arc<Self> {
        let inner = fresh_inner(&schema);
        Self::construct(schema, inner, 0, None, None)
    }

    /// Opens (or creates) a durable store rooted at `cfg.dir`: loads the
    /// latest checkpoint if present, replays the write-ahead log —
    /// redoing committed transactions, discarding uncommitted ones,
    /// truncating a torn tail — and leaves the log open for appending.
    /// Recovered state is bit-identical to the pre-crash committed state.
    pub fn open(schema: GraphSchema, cfg: DurabilityConfig) -> Result<Arc<Self>> {
        fs::create_dir_all(&cfg.dir).map_err(io_err)?;
        // interrupted checkpoint/rotation leftovers are never valid state
        for leftover in ["checkpoint.tmp", "wal.tmp"] {
            let p = cfg.dir.join(leftover);
            if p.exists() {
                let _ = fs::remove_file(&p);
            }
        }
        let ckpt = cfg.dir.join("checkpoint.snap");
        let (mut inner, mut committed) = if ckpt.exists() {
            let bytes = fs::read(&ckpt).map_err(io_err)?;
            let (g, v, _next_xid) = recovery::decode_inner(checkpoint_payload(&bytes)?, &schema)?;
            (g, v)
        } else {
            (fresh_inner(&schema), 0)
        };
        let wal_path = cfg.dir.join("wal.log");
        let mut need_checkpoint = false;
        if wal_path.exists() {
            let bytes = fs::read(&wal_path).map_err(io_err)?;
            if !bytes.is_empty() {
                let rep = recovery::replay_wal(&bytes, &mut inner, &schema, committed)?;
                committed = rep.committed;
                if rep.torn {
                    let f = fs::OpenOptions::new()
                        .write(true)
                        .open(&wal_path)
                        .map_err(io_err)?;
                    f.set_len(rep.valid_len as u64).map_err(io_err)?;
                    f.sync_data().map_err(io_err)?;
                }
                // anything beyond the bare header: fold it into a fresh
                // checkpoint so log growth is bounded by crash frequency
                need_checkpoint = rep.records > 1 || rep.torn;
            }
        }
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_path)
            .map_err(io_err)?;
        let empty = file.metadata().map(|m| m.len() == 0).unwrap_or(true);
        let mut log = Wal::new(file, wal_path, cfg.durability);
        if empty {
            log.append(&Rec::Header {
                format: wal::WAL_FORMAT,
                base_version: committed,
                first_xid: inner.tst.next_xid(),
                schema_fp: wal::schema_fingerprint(&schema),
            })?;
            log.sync()?;
        }
        let store = Self::construct(schema, inner, committed, Some(log), Some(cfg));
        if need_checkpoint {
            store.checkpoint()?;
        }
        Ok(store)
    }

    /// Builds a store pre-loaded from an interchange payload, committed at
    /// version 1.
    pub fn from_data(data: &PropertyGraphData) -> Result<Arc<Self>> {
        data.validate()?;
        let store = Self::new(data.schema.clone());
        for batch in &data.vertices {
            for (ext, props) in batch.external_ids.iter().zip(&batch.properties) {
                store.add_vertex(batch.label, *ext, props.clone())?;
            }
        }
        // Bulk load: pre-size every vertex's region exactly so the pooled
        // adjacency comes out contiguous in vertex order (the layout scans
        // want), then insert.
        {
            let mut g = store.inner.write();
            for (li, batch) in data.edges.iter().enumerate() {
                let ldef = data.schema.edge_label(batch.label)?;
                let mut out_deg: HashMap<u32, u32> = Default::default();
                let mut in_deg: HashMap<u32, u32> = Default::default();
                for &(s, d) in &batch.endpoints {
                    let si = g.id_maps[ldef.src.index()]
                        .internal(s)
                        .ok_or_else(|| GraphError::NotFound(format!("edge src {s}")))?;
                    let di = g.id_maps[ldef.dst.index()]
                        .internal(d)
                        .ok_or_else(|| GraphError::NotFound(format!("edge dst {d}")))?;
                    *out_deg.entry(si.0 as u32).or_insert(0) += 1;
                    *in_deg.entry(di.0 as u32).or_insert(0) += 1;
                }
                let src_n = g.id_maps[ldef.src.index()].len();
                let dst_n = g.id_maps[ldef.dst.index()].len();
                g.adj_out[li].ensure(src_n.saturating_sub(1));
                g.adj_in[li].ensure(dst_n.saturating_sub(1));
                for v in 0..src_n {
                    if let Some(&c) = out_deg.get(&(v as u32)) {
                        g.adj_out[li].reserve_exact(v, c);
                    }
                }
                for v in 0..dst_n {
                    if let Some(&c) = in_deg.get(&(v as u32)) {
                        g.adj_in[li].reserve_exact(v, c);
                    }
                }
            }
        }
        for batch in &data.edges {
            for (&(s, d), props) in batch.endpoints.iter().zip(&batch.properties) {
                store.add_edge(batch.label, s, d, props.clone())?;
            }
        }
        store.commit();
        Ok(store)
    }

    /// The fixed schema this store was created over.
    pub fn schema(&self) -> &GraphSchema {
        &self.schema
    }

    /// The latest committed version.
    pub fn committed_version(&self) -> Version {
        self.committed.load(Ordering::Acquire)
    }

    /// The version at which staged (uncommitted) writes will become visible.
    pub fn write_version(&self) -> Version {
        self.committed_version() + 1
    }

    /// Whether this store persists commits to a write-ahead log.
    pub fn durable(&self) -> bool {
        self.wal.is_some()
    }

    // -----------------------------------------------------------------
    // Explicit transactions
    // -----------------------------------------------------------------

    /// Begins a snapshot-isolation read/write transaction pinned to the
    /// current committed version.
    pub fn begin(self: &Arc<Self>) -> GartTxn {
        let mut g = self.inner.write();
        let xid = g.tst.begin();
        g.active_txns += 1;
        gs_telemetry::counter!("gart.txn.begins");
        let begin = self.committed.load(Ordering::Acquire);
        drop(g);
        GartTxn::new(Arc::clone(self), TxnCore::new(xid, begin))
    }

    // -----------------------------------------------------------------
    // Legacy auto-commit layer: `add_*` stage into one implicit
    // transaction that `commit()` publishes.
    // -----------------------------------------------------------------

    fn with_implicit<R>(
        &self,
        f: impl FnOnce(&GartStore, &mut Inner, &mut TxnCore) -> Result<R>,
    ) -> Result<R> {
        let mut imp = self.implicit.lock();
        let mut g = self.inner.write();
        if imp.is_none() {
            let xid = g.tst.begin();
            g.active_txns += 1;
            gs_telemetry::counter!("gart.txn.begins");
            *imp = Some(TxnCore::new(xid, self.committed.load(Ordering::Acquire)));
        }
        f(
            self,
            &mut g,
            imp.as_mut().expect("implicit txn just ensured"),
        )
    }

    /// Publishes all staged writes; returns the new committed version.
    /// Panics on a WAL write failure — durable stores should prefer
    /// [`GartStore::try_commit`].
    pub fn commit(&self) -> Version {
        self.try_commit().expect("gart commit failed")
    }

    /// Publishes all staged writes (an empty commit still consumes a
    /// version, matching the historical `commit` contract).
    pub fn try_commit(&self) -> Result<Version> {
        let core = {
            let mut imp = self.implicit.lock();
            match imp.take() {
                Some(core) => core,
                None => {
                    let mut g = self.inner.write();
                    let xid = g.tst.begin();
                    g.active_txns += 1;
                    gs_telemetry::counter!("gart.txn.begins");
                    TxnCore::new(xid, self.committed.load(Ordering::Acquire))
                }
            }
        };
        self.commit_core(core, true)
    }

    /// Stages a vertex insertion (visible after the next [`GartStore::commit`]).
    pub fn add_vertex(&self, label: LabelId, external: u64, props: Vec<Value>) -> Result<VId> {
        self.with_implicit(|s, g, core| txn::op_add_vertex(s, g, core, label, external, &props))
    }

    /// Stages an edge insertion between endpoints that must exist (and be
    /// visible) at the write version; unknown endpoints yield a
    /// structured [`GraphError::NotFound`] instead of dangling adjacency.
    pub fn add_edge(
        &self,
        label: LabelId,
        src_ext: u64,
        dst_ext: u64,
        props: Vec<Value>,
    ) -> Result<gs_grin::EId> {
        self.with_implicit(|s, g, core| {
            txn::op_add_edge(s, g, core, label, src_ext, dst_ext, &props)
        })
    }

    /// Stages a batch of edge insertions under a single write-lock
    /// acquisition (group commit — the ingestion pattern real deployments
    /// use to keep writers from convoying with readers). The batch is
    /// atomic: the first invalid endpoint rolls the whole batch back and
    /// nothing is staged or logged.
    pub fn add_edges(&self, label: LabelId, edges: &[(u64, u64, Vec<Value>)]) -> Result<usize> {
        self.with_implicit(|s, g, core| txn::op_add_edges(s, g, core, label, edges))
    }

    /// Stages an edge deletion (tombstone) by endpoint external ids; removes
    /// the first live matching edge. Returns whether an edge was found.
    pub fn delete_edge(&self, label: LabelId, src_ext: u64, dst_ext: u64) -> Result<bool> {
        self.with_implicit(|s, g, core| txn::op_delete_edge(s, g, core, label, src_ext, dst_ext))
    }

    /// Stages a vertex deletion (tombstone): from the commit version on,
    /// the vertex disappears from scans and every adjacency entry of
    /// either direction pointing at it is filtered out; snapshots pinned
    /// before the commit keep seeing both. The external id may be
    /// re-added later (the old slot moves to a shadow chain so old
    /// snapshots still resolve it). Returns whether the vertex existed.
    pub fn delete_vertex(&self, label: LabelId, external: u64) -> Result<bool> {
        self.with_implicit(|s, g, core| txn::op_delete_vertex(s, g, core, label, external))
    }

    // -----------------------------------------------------------------
    // Transaction completion (shared by explicit and implicit paths)
    // -----------------------------------------------------------------

    fn finish_txn(g: &mut Inner) {
        g.active_txns -= 1;
        if g.active_txns == 0 {
            // quiescent: no snapshot-predating writer can conflict with
            // anything recorded here any more
            g.locks.clear();
        }
    }

    pub(crate) fn commit_core(&self, mut core: TxnCore, always_bump: bool) -> Result<Version> {
        let version = {
            let mut g = self.inner.write();
            if core.undo.is_empty() && !core.begin_logged && !always_bump {
                // read-only transaction: nothing to publish or log
                g.tst.commit(core.xid, core.begin);
                txn::release_locks(&mut g, &core, None);
                Self::finish_txn(&mut g);
                gs_telemetry::counter!("gart.txn.commits");
                return Ok(core.begin);
            }
            let version = self.committed.load(Ordering::Acquire) + 1;
            if let Some(walm) = &self.wal {
                let mut w = walm.lock();
                let logged = (|| -> Result<()> {
                    if !core.begin_logged {
                        w.append(&Rec::Begin {
                            xid: core.xid,
                            begin: core.begin,
                        })?;
                        core.begin_logged = true;
                    }
                    // the commit record + sync is the durability point:
                    // after this, crash recovery redoes the transaction
                    w.append(&Rec::Commit {
                        xid: core.xid,
                        version,
                    })?;
                    if w.durability == Durability::Sync {
                        w.sync()?;
                    }
                    Ok(())
                })();
                if let Err(e) = logged {
                    drop(w);
                    txn::undo_to(&mut g, &mut core, 0);
                    g.tst.abort(core.xid);
                    txn::release_locks(&mut g, &core, None);
                    Self::finish_txn(&mut g);
                    gs_telemetry::counter!("gart.txn.aborts");
                    return Err(e);
                }
            }
            g.tst.commit(core.xid, version);
            if !self.lazy_stamping.load(Ordering::Relaxed) {
                txn::stamp_txn(&mut g, &core, version);
            }
            txn::release_locks(&mut g, &core, Some(version));
            Self::finish_txn(&mut g);
            self.committed.store(version, Ordering::Release);
            gs_telemetry::counter!("gart.txn.commits");
            version
        };
        self.maybe_checkpoint();
        Ok(version)
    }

    pub(crate) fn abort_core(&self, mut core: TxnCore) {
        let mut g = self.inner.write();
        txn::undo_to(&mut g, &mut core, 0);
        g.tst.abort(core.xid);
        txn::release_locks(&mut g, &core, None);
        Self::finish_txn(&mut g);
        gs_telemetry::counter!("gart.txn.aborts");
        if core.begin_logged {
            if let Some(walm) = &self.wal {
                // best-effort: replay discards the txn either way, the
                // abort record just spares it the end-of-log undo pass
                let _ = walm.lock().append(&Rec::Abort { xid: core.xid });
            }
        }
    }

    pub(crate) fn has_wal(&self) -> bool {
        self.wal.is_some()
    }

    /// Appends one op record, lazily preceding it with the transaction's
    /// `Begin` (transactions that never write are never logged).
    pub(crate) fn log_op(&self, core: &mut TxnCore, rec: &Rec) -> Result<()> {
        let walm = self.wal.as_ref().expect("log_op requires a WAL");
        let mut w = walm.lock();
        if !core.begin_logged {
            w.append(&Rec::Begin {
                xid: core.xid,
                begin: core.begin,
            })?;
            core.begin_logged = true;
        }
        w.append(rec)
    }

    // -----------------------------------------------------------------
    // Checkpoints
    // -----------------------------------------------------------------

    /// Writes a checkpoint image and rotates the log. Checkpoints are
    /// *quiescent*: if any transaction (explicit or implicit) is in
    /// flight the call is deferred and returns `Ok(false)`. The image is
    /// written to `checkpoint.tmp`, synced, renamed over
    /// `checkpoint.snap`, and only then is the log rotated — a crash
    /// between those steps leaves the new image plus the old log, which
    /// replay handles by skipping records the image already contains.
    pub fn checkpoint(&self) -> Result<bool> {
        let (Some(cfg), Some(walm)) = (&self.cfg, &self.wal) else {
            return Ok(false);
        };
        let imp = self.implicit.lock();
        let mut g = self.inner.write();
        if imp.is_some() || g.active_txns > 0 {
            return Ok(false);
        }
        let committed = self.committed.load(Ordering::Acquire);
        let next_xid = g.tst.next_xid();
        let payload = recovery::encode_inner(&g, &self.schema, committed, next_xid)?;
        let mut w = walm.lock();
        let tmp = cfg.dir.join("checkpoint.tmp");
        let mut f = fs::File::create(&tmp).map_err(io_err)?;
        let mut envelope = Vec::with_capacity(12);
        envelope.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        envelope.extend_from_slice(&wal::crc32(&payload).to_le_bytes());
        // chunked through the same fault seam as log records so a kill
        // sweep covers every durable write the store performs
        wal::durable_write(&mut f, &mut w.writes, &envelope)?;
        for chunk in payload.chunks(CKPT_CHUNK) {
            wal::durable_write(&mut f, &mut w.writes, chunk)?;
        }
        f.sync_data().map_err(io_err)?;
        drop(f);
        fs::rename(&tmp, cfg.dir.join("checkpoint.snap")).map_err(io_err)?;
        sync_dir(&cfg.dir);
        // rotate: fresh log whose header names the image's xid horizon
        let wal_tmp = cfg.dir.join("wal.tmp");
        let mut nf = fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&wal_tmp)
            .map_err(io_err)?;
        let header = wal::encode_frame(&Rec::Header {
            format: wal::WAL_FORMAT,
            base_version: committed,
            first_xid: next_xid,
            schema_fp: wal::schema_fingerprint(&self.schema),
        })?;
        wal::durable_write(&mut nf, &mut w.writes, &header)?;
        nf.sync_data().map_err(io_err)?;
        fs::rename(&wal_tmp, w.path.clone()).map_err(io_err)?;
        sync_dir(&cfg.dir);
        w.replace_file(nf);
        g.tst.compact();
        self.commits_since.store(0, Ordering::Relaxed);
        gs_telemetry::counter!("gart.wal.checkpoints");
        Ok(true)
    }

    fn maybe_checkpoint(&self) {
        let Some(cfg) = &self.cfg else { return };
        if cfg.checkpoint_every == 0 {
            return;
        }
        let n = self.commits_since.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= cfg.checkpoint_every {
            // deferred silently when transactions are in flight; the
            // counter keeps growing so the next commit retries
            let _ = self.checkpoint();
        }
    }

    /// Durable writes performed so far this process lifetime (log records
    /// and checkpoint chunks) — the coordinate space of chaos kill plans.
    pub fn wal_writes(&self) -> u64 {
        self.wal.as_ref().map_or(0, |w| w.lock().writes)
    }

    /// Log records appended to the current log file.
    pub fn wal_records(&self) -> u64 {
        self.wal.as_ref().map_or(0, |w| w.lock().records)
    }

    /// Test knob: disable commit-time hint stamping so visibility runs
    /// purely through the transaction-status table.
    #[doc(hidden)]
    pub fn set_lazy_stamping(&self, lazy: bool) {
        self.lazy_stamping.store(lazy, Ordering::Relaxed);
    }

    // -----------------------------------------------------------------
    // Reads
    // -----------------------------------------------------------------

    /// Runs a closure under a single read guard with a [`GartView`] —
    /// the stored-procedure fast path: one lock acquisition per procedure
    /// instead of one per traversal step.
    pub fn with_view<R>(&self, version: Version, f: impl FnOnce(&GartView<'_>) -> R) -> R {
        let g = self.inner.read();
        f(&GartView {
            inner: &g,
            schema: &self.schema,
            version,
            xid: NO_XID,
        })
    }

    /// A consistent read snapshot at the latest committed version.
    pub fn snapshot(self: &Arc<Self>) -> GartSnapshot {
        self.snapshot_at(self.committed_version())
    }

    /// A consistent read snapshot at a specific version.
    pub fn snapshot_at(self: &Arc<Self>, version: Version) -> GartSnapshot {
        GartSnapshot {
            store: Arc::clone(self),
            version,
        }
    }

    /// Native whole-label edge scan at `version`: visits every live
    /// `(src, dst, eid)` under a single read-lock acquisition. This is the
    /// fast path the Fig. 7(c) edge-scan throughput benchmark measures.
    pub fn scan_edges<F: FnMut(VId, VId, gs_grin::EId)>(
        &self,
        label: LabelId,
        version: Version,
        f: &mut F,
    ) {
        let Ok(ldef) = self.schema.edge_label(label) else {
            return;
        };
        let (sl, dl) = (ldef.src, ldef.dst);
        let g = self.inner.read();
        let pool = &g.adj_out[label.index()];
        let vis = g.vis(version, NO_XID, Some(dl));
        for s in 0..pool.vertex_count() {
            if !g.vertex_visible(sl.index(), s, version, NO_XID) {
                continue;
            }
            let src = VId(s as u64);
            pool.for_each(s, &vis, &mut |nbr, eid| f(src, nbr, eid));
        }
    }
}

/// A borrowed, single-lock read view used by stored procedures (see
/// [`GartStore::with_view`]) and transactional reads
/// ([`GartTxn::with_view`], where it also sees the transaction's own
/// staged writes).
pub struct GartView<'a> {
    pub(crate) inner: &'a Inner,
    pub(crate) schema: &'a GraphSchema,
    pub(crate) version: Version,
    pub(crate) xid: u64,
}

impl<'a> GartView<'a> {
    /// Internal id of an external vertex id (if visible at this version).
    pub fn internal_id(&self, label: LabelId, external: u64) -> Option<VId> {
        txn::resolve_visible_vertex(self.inner, label, external, self.version, self.xid)
    }

    /// External id of an internal vertex.
    pub fn external_id(&self, label: LabelId, v: VId) -> Option<u64> {
        if self
            .inner
            .vertex_visible(label.index(), v.index(), self.version, self.xid)
        {
            self.inner.id_maps[label.index()].external(v)
        } else {
            None
        }
    }

    /// Visits live out-/in-neighbours of `v` under one already-held guard
    /// (entries pointing at deleted vertices are filtered).
    pub fn for_each_adjacent<F: FnMut(VId, gs_grin::EId)>(
        &self,
        v: VId,
        elabel: LabelId,
        dir: Direction,
        f: &mut F,
    ) {
        let Ok(ldef) = self.schema.edge_label(elabel) else {
            return;
        };
        let (sl, dl) = (ldef.src, ldef.dst);
        if matches!(dir, Direction::Out | Direction::Both)
            && self
                .inner
                .vertex_visible(sl.index(), v.index(), self.version, self.xid)
        {
            let vis = self.inner.vis(self.version, self.xid, Some(dl));
            self.inner.adj_out[elabel.index()].for_each(v.index(), &vis, f);
        }
        if matches!(dir, Direction::In | Direction::Both)
            && self
                .inner
                .vertex_visible(dl.index(), v.index(), self.version, self.xid)
        {
            let vis = self.inner.vis(self.version, self.xid, Some(sl));
            self.inner.adj_in[elabel.index()].for_each(v.index(), &vis, f);
        }
    }

    /// Edge property by id.
    pub fn edge_property(&self, label: LabelId, e: gs_grin::EId, prop: PropId) -> Value {
        let t = &self.inner.eprops[label.index()];
        if e.index() < t.row_count() {
            t.get(e.index(), prop)
        } else {
            Value::Null
        }
    }

    /// Vertex property (Null when invisible at this version).
    pub fn vertex_property(&self, label: LabelId, v: VId, prop: PropId) -> Value {
        if self
            .inner
            .vertex_visible(label.index(), v.index(), self.version, self.xid)
        {
            self.inner.vprops[label.index()].get(v.index(), prop)
        } else {
            Value::Null
        }
    }
}

/// A consistent read view of a [`GartStore`] at a fixed version; implements
/// [`GrinGraph`] so engines can run unchanged on dynamic graphs.
#[derive(Clone)]
pub struct GartSnapshot {
    store: Arc<GartStore>,
    version: Version,
}

impl GartSnapshot {
    /// The pinned version.
    pub fn version(&self) -> Version {
        self.version
    }

    fn collect_adj(&self, v: VId, elabel: LabelId, dir: Direction) -> Vec<AdjEntry> {
        let mut out = Vec::new();
        self.store.with_view(self.version, |view| {
            view.for_each_adjacent(v, elabel, dir, &mut |nbr, edge| {
                out.push(AdjEntry { nbr, edge })
            })
        });
        out
    }

    /// Freezes this snapshot's topology into an immutable, layout-backed
    /// [`FrozenGart`]: each edge label's live adjacency at the pinned
    /// version is materialised as a [`TopologyLayout`] (plain, sorted, or
    /// compressed CSR). Analytics over a fixed version then run on the
    /// same zero-version-check fast path static stores enjoy, while
    /// properties and id maps keep reading through the store at this
    /// version. The writer may keep committing; the freeze never sees it.
    pub fn freeze(&self, layout: LayoutKind) -> FrozenGart {
        let g = self.store.inner.read();
        let nel = self.store.schema.edge_label_count();
        let mut out_topo = Vec::with_capacity(nel);
        let mut in_topo = Vec::with_capacity(nel);
        for (li, ldef) in self.store.schema.edge_labels().iter().enumerate() {
            // Domains span the label's full internal-id space; vertices
            // created after this version (or deleted before it) simply
            // freeze with degree 0.
            let src_n = g.vertex_created[ldef.src.index()].len();
            let dst_n = g.vertex_created[ldef.dst.index()].len();
            let out_vis = g.vis(self.version, NO_XID, Some(ldef.dst));
            let src_live = |i: usize| g.vertex_visible(ldef.src.index(), i, self.version, NO_XID);
            out_topo.push(TopologyLayout::build(
                layout,
                freeze_pool(&g.adj_out[li], src_n, &out_vis, &src_live),
            ));
            let in_vis = g.vis(self.version, NO_XID, Some(ldef.src));
            let dst_live = |i: usize| g.vertex_visible(ldef.dst.index(), i, self.version, NO_XID);
            in_topo.push(TopologyLayout::build(
                layout,
                freeze_pool(&g.adj_in[li], dst_n, &in_vis, &dst_live),
            ));
        }
        FrozenGart {
            store: Arc::clone(&self.store),
            version: self.version,
            layout,
            out_topo,
            in_topo,
        }
    }
}

/// Materialises the live entries of a pooled adjacency under `vis` as a
/// static CSR, preserving edge ids; invisible source vertices freeze with
/// degree 0.
fn freeze_pool(pool: &AdjPool, n: usize, vis: &Vis<'_>, src_live: &dyn Fn(usize) -> bool) -> Csr {
    let scanned = n.min(pool.vertex_count());
    let mut offsets = vec![0u64; n + 1];
    for v in 0..scanned {
        if !src_live(v) {
            continue;
        }
        let mut d = 0u64;
        pool.for_each(v, vis, &mut |_, _| d += 1);
        offsets[v + 1] = d;
    }
    for i in 1..offsets.len() {
        offsets[i] += offsets[i - 1];
    }
    let m = offsets[n] as usize;
    let mut targets = Vec::with_capacity(m);
    let mut eids = Vec::with_capacity(m);
    for v in 0..scanned {
        if !src_live(v) {
            continue;
        }
        pool.for_each(v, vis, &mut |nbr, eid| {
            targets.push(nbr);
            eids.push(eid);
        });
    }
    Csr::from_parts(offsets, targets, eids)
}

/// An immutable freeze of a [`GartSnapshot`]: layout-backed topology (see
/// [`GartSnapshot::freeze`]) plus version-checked property/id access
/// through the owning store. Implements [`GrinGraph`] with the
/// array/sorted/compressed capabilities of its layout — unlike the live
/// snapshot, which only offers iterators.
pub struct FrozenGart {
    store: Arc<GartStore>,
    version: Version,
    layout: LayoutKind,
    out_topo: Vec<TopologyLayout>,
    in_topo: Vec<TopologyLayout>,
}

impl FrozenGart {
    /// The version the topology was frozen at.
    pub fn version(&self) -> Version {
        self.version
    }

    /// The layout the topology is materialised in.
    pub fn layout(&self) -> LayoutKind {
        self.layout
    }

    /// Heap footprint of the frozen topology (both directions, all labels).
    pub fn topology_bytes(&self) -> usize {
        self.out_topo
            .iter()
            .chain(&self.in_topo)
            .map(|t| t.heap_bytes())
            .sum()
    }
}

impl GrinGraph for FrozenGart {
    fn capabilities(&self) -> Capabilities {
        let base = Capabilities::of(&[
            Capabilities::VERTEX_LIST_ITER,
            Capabilities::ADJ_LIST_ARRAY,
            Capabilities::ADJ_LIST_ITER,
            Capabilities::IN_ADJACENCY,
            Capabilities::PROPERTY,
            Capabilities::INDEX_EXTERNAL_ID,
            Capabilities::INDEX_INTERNAL_ID,
            Capabilities::MVCC,
        ]);
        let (add, remove) = Capabilities::layout_masks(self.layout);
        base.union(add).difference(remove)
    }

    fn topology_layout(&self) -> LayoutKind {
        self.layout
    }

    fn schema(&self) -> &GraphSchema {
        &self.store.schema
    }

    fn vertex_count(&self, label: LabelId) -> usize {
        let g = self.store.inner.read();
        (0..g.vertex_created[label.index()].len())
            .filter(|&i| g.vertex_visible(label.index(), i, self.version, NO_XID))
            .count()
    }

    fn edge_count(&self, label: LabelId) -> usize {
        self.out_topo[label.index()].edge_count()
    }

    fn vertices(&self, label: LabelId) -> Box<dyn Iterator<Item = VId> + '_> {
        let g = self.store.inner.read();
        let v: Vec<VId> = (0..g.vertex_created[label.index()].len())
            .filter(|&i| g.vertex_visible(label.index(), i, self.version, NO_XID))
            .map(|i| VId(i as u64))
            .collect();
        Box::new(v.into_iter())
    }

    fn adjacent(
        &self,
        v: VId,
        _vlabel: LabelId,
        elabel: LabelId,
        dir: Direction,
    ) -> Box<dyn Iterator<Item = AdjEntry> + '_> {
        let out = &self.out_topo[elabel.index()];
        let inn = &self.in_topo[elabel.index()];
        match dir {
            Direction::Out => frozen_adj(out, v),
            Direction::In => frozen_adj(inn, v),
            Direction::Both => Box::new(frozen_adj(out, v).chain(frozen_adj(inn, v))),
        }
    }

    fn for_each_adjacent(
        &self,
        v: VId,
        _vlabel: LabelId,
        elabel: LabelId,
        dir: Direction,
        f: &mut dyn FnMut(AdjEntry),
    ) {
        let mut visit = |topo: &TopologyLayout| {
            if v.index() < topo.vertex_count() {
                topo.for_each_adj(v, |nbr, edge| f(AdjEntry { nbr, edge }));
            }
        };
        match dir {
            Direction::Out => visit(&self.out_topo[elabel.index()]),
            Direction::In => visit(&self.in_topo[elabel.index()]),
            Direction::Both => {
                visit(&self.out_topo[elabel.index()]);
                visit(&self.in_topo[elabel.index()]);
            }
        }
    }

    fn adjacent_slice(
        &self,
        v: VId,
        _vlabel: LabelId,
        elabel: LabelId,
        dir: Direction,
    ) -> Option<(&[VId], &[gs_grin::EId])> {
        let topo = match dir {
            Direction::Out => &self.out_topo[elabel.index()],
            Direction::In => &self.in_topo[elabel.index()],
            Direction::Both => return None,
        };
        if v.index() >= topo.vertex_count() {
            return Some((&[], &[]));
        }
        topo.adj_slices(v)
    }

    fn degree(&self, v: VId, _vl: LabelId, elabel: LabelId, dir: Direction) -> usize {
        let deg = |t: &TopologyLayout| {
            if v.index() < t.vertex_count() {
                t.degree(v)
            } else {
                0
            }
        };
        match dir {
            Direction::Out => deg(&self.out_topo[elabel.index()]),
            Direction::In => deg(&self.in_topo[elabel.index()]),
            Direction::Both => {
                deg(&self.out_topo[elabel.index()]) + deg(&self.in_topo[elabel.index()])
            }
        }
    }

    fn scan_adjacency(
        &self,
        vlabel: LabelId,
        elabel: LabelId,
        dir: Direction,
        f: &mut gs_grin::AdjScanFn<'_>,
    ) -> bool {
        let topo = match dir {
            Direction::Out => &self.out_topo[elabel.index()],
            Direction::In => &self.in_topo[elabel.index()],
            Direction::Both => return gs_grin::scan_via_iterators(self, vlabel, elabel, dir, f),
        };
        let visible: Vec<bool> = {
            let g = self.store.inner.read();
            (0..g.vertex_created[vlabel.index()].len())
                .map(|i| g.vertex_visible(vlabel.index(), i, self.version, NO_XID))
                .collect()
        };
        let mut nbrs = Vec::new();
        let mut eids = Vec::new();
        for (i, vis) in visible.iter().enumerate() {
            if !vis {
                continue;
            }
            let v = VId(i as u64);
            if v.index() >= topo.vertex_count() {
                f(v, &[], &[]);
            } else if let Some((ns, es)) = topo.adj_slices(v) {
                f(v, ns, es);
            } else {
                topo.as_layout().copy_adj(v, &mut nbrs, &mut eids);
                f(v, &nbrs, &eids);
            }
        }
        true
    }

    fn vertex_property(&self, label: LabelId, v: VId, prop: PropId) -> Value {
        self.store
            .with_view(self.version, |view| view.vertex_property(label, v, prop))
    }

    fn edge_property(&self, label: LabelId, e: gs_grin::EId, prop: PropId) -> Value {
        self.store
            .with_view(self.version, |view| view.edge_property(label, e, prop))
    }

    fn internal_id(&self, label: LabelId, external: u64) -> Option<VId> {
        self.store
            .with_view(self.version, |view| view.internal_id(label, external))
    }

    fn external_id(&self, label: LabelId, v: VId) -> Option<u64> {
        self.store
            .with_view(self.version, |view| view.external_id(label, v))
    }
}

/// Boxed adjacency iteration over a frozen topology (zero-copy for
/// slice-backed layouts, buffered decode for compressed ones).
fn frozen_adj(topo: &TopologyLayout, v: VId) -> Box<dyn Iterator<Item = AdjEntry> + '_> {
    if v.index() >= topo.vertex_count() {
        return Box::new(std::iter::empty());
    }
    if let Some((nbrs, eids)) = topo.adj_slices(v) {
        Box::new(
            nbrs.iter()
                .zip(eids)
                .map(|(&nbr, &edge)| AdjEntry { nbr, edge }),
        )
    } else {
        let mut entries = Vec::with_capacity(topo.degree(v));
        topo.for_each_adj(v, |nbr, edge| entries.push(AdjEntry { nbr, edge }));
        Box::new(entries.into_iter())
    }
}

impl GrinGraph for GartSnapshot {
    fn capabilities(&self) -> Capabilities {
        let base = Capabilities::of(&[
            Capabilities::VERTEX_LIST_ITER,
            Capabilities::ADJ_LIST_ITER,
            Capabilities::IN_ADJACENCY,
            Capabilities::PROPERTY,
            Capabilities::INDEX_EXTERNAL_ID,
            Capabilities::INDEX_INTERNAL_ID,
            Capabilities::MVCC,
            Capabilities::MUTABLE,
            Capabilities::TRANSACTIONS,
        ]);
        if self.store.durable() {
            base.union(Capabilities::of(&[Capabilities::DURABLE]))
        } else {
            base
        }
    }

    fn schema(&self) -> &GraphSchema {
        &self.store.schema
    }

    fn vertex_count(&self, label: LabelId) -> usize {
        let g = self.store.inner.read();
        (0..g.vertex_created[label.index()].len())
            .filter(|&i| g.vertex_visible(label.index(), i, self.version, NO_XID))
            .count()
    }

    fn edge_count(&self, label: LabelId) -> usize {
        // counts live edges at this version
        let mut n = 0usize;
        self.store
            .scan_edges(label, self.version, &mut |_, _, _| n += 1);
        n
    }

    fn vertices(&self, label: LabelId) -> Box<dyn Iterator<Item = VId> + '_> {
        let g = self.store.inner.read();
        let v: Vec<VId> = (0..g.vertex_created[label.index()].len())
            .filter(|&i| g.vertex_visible(label.index(), i, self.version, NO_XID))
            .map(|i| VId(i as u64))
            .collect();
        Box::new(v.into_iter())
    }

    fn adjacent(
        &self,
        v: VId,
        _vlabel: LabelId,
        elabel: LabelId,
        dir: Direction,
    ) -> Box<dyn Iterator<Item = AdjEntry> + '_> {
        Box::new(self.collect_adj(v, elabel, dir).into_iter())
    }

    fn for_each_adjacent(
        &self,
        v: VId,
        _vlabel: LabelId,
        elabel: LabelId,
        dir: Direction,
        f: &mut dyn FnMut(AdjEntry),
    ) {
        self.store.with_view(self.version, |view| {
            view.for_each_adjacent(v, elabel, dir, &mut |nbr, edge| f(AdjEntry { nbr, edge }))
        })
    }

    fn scan_adjacency(
        &self,
        vlabel: LabelId,
        elabel: LabelId,
        dir: Direction,
        f: &mut gs_grin::AdjScanFn<'_>,
    ) -> bool {
        // GART's bulk path: one read-lock acquisition for the whole label
        // scan over the pooled near-CSR regions, instead of one lock (and
        // one Vec allocation) per vertex through the iterator fallback.
        let Ok(ldef) = self.store.schema.edge_label(elabel) else {
            return false;
        };
        let (sl, dl) = (ldef.src, ldef.dst);
        let g = self.store.inner.read();
        let out_vis = g.vis(self.version, NO_XID, Some(dl));
        let in_vis = g.vis(self.version, NO_XID, Some(sl));
        let mut nbrs: Vec<VId> = Vec::new();
        let mut eids: Vec<gs_grin::EId> = Vec::new();
        for i in 0..g.vertex_created[vlabel.index()].len() {
            if !g.vertex_visible(vlabel.index(), i, self.version, NO_XID) {
                continue;
            }
            nbrs.clear();
            eids.clear();
            {
                let mut push = |nbr: VId, eid: gs_grin::EId| {
                    nbrs.push(nbr);
                    eids.push(eid);
                };
                match dir {
                    Direction::Out => g.adj_out[elabel.index()].for_each(i, &out_vis, &mut push),
                    Direction::In => g.adj_in[elabel.index()].for_each(i, &in_vis, &mut push),
                    Direction::Both => {
                        g.adj_out[elabel.index()].for_each(i, &out_vis, &mut push);
                        g.adj_in[elabel.index()].for_each(i, &in_vis, &mut push);
                    }
                }
            }
            f(VId(i as u64), &nbrs, &eids);
        }
        true
    }

    fn vertex_property(&self, label: LabelId, v: VId, prop: PropId) -> Value {
        self.store
            .with_view(self.version, |view| view.vertex_property(label, v, prop))
    }

    fn edge_property(&self, label: LabelId, e: gs_grin::EId, prop: PropId) -> Value {
        self.store
            .with_view(self.version, |view| view.edge_property(label, e, prop))
    }

    fn internal_id(&self, label: LabelId, external: u64) -> Option<VId> {
        self.store
            .with_view(self.version, |view| view.internal_id(label, external))
    }

    fn external_id(&self, label: LabelId, v: VId) -> Option<u64> {
        self.store
            .with_view(self.version, |view| view.external_id(label, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_graph::schema::GraphSchema as Schema;
    use gs_graph::ValueType;

    fn schema() -> (Schema, LabelId, LabelId) {
        let mut s = Schema::new();
        let v = s.add_vertex_label("V", &[("x", ValueType::Int)]);
        let e = s.add_edge_label("E", v, v, &[("w", ValueType::Float)]);
        (s, v, e)
    }

    #[test]
    fn staged_writes_invisible_until_commit() {
        let (s, vl, el) = schema();
        let store = GartStore::new(s);
        store.add_vertex(vl, 1, vec![Value::Int(10)]).unwrap();
        store.add_vertex(vl, 2, vec![Value::Int(20)]).unwrap();
        store.add_edge(el, 1, 2, vec![Value::Float(0.5)]).unwrap();
        let snap0 = store.snapshot();
        assert_eq!(snap0.vertex_count(vl), 0);
        assert_eq!(snap0.edge_count(el), 0);
        store.commit();
        let snap1 = store.snapshot();
        assert_eq!(snap1.vertex_count(vl), 2);
        assert_eq!(snap1.edge_count(el), 1);
        // the old snapshot still sees nothing (MVCC isolation)
        assert_eq!(snap0.vertex_count(vl), 0);
    }

    #[test]
    fn snapshot_versions_are_stable_across_later_writes() {
        let (s, vl, el) = schema();
        let store = GartStore::new(s);
        for i in 0..10 {
            store.add_vertex(vl, i, vec![Value::Int(i as i64)]).unwrap();
        }
        store.commit();
        let snap1 = store.snapshot();
        for i in 0..9 {
            store
                .add_edge(el, i, i + 1, vec![Value::Float(1.0)])
                .unwrap();
        }
        store.commit();
        let snap2 = store.snapshot();
        assert_eq!(snap1.edge_count(el), 0);
        assert_eq!(snap2.edge_count(el), 9);
        let v0 = snap2.internal_id(vl, 0).unwrap();
        assert_eq!(snap1.adjacent(v0, vl, el, Direction::Out).count(), 0);
        assert_eq!(snap2.adjacent(v0, vl, el, Direction::Out).count(), 1);
    }

    #[test]
    fn delete_edge_tombstones() {
        let (s, vl, el) = schema();
        let store = GartStore::new(s);
        store.add_vertex(vl, 1, vec![Value::Int(0)]).unwrap();
        store.add_vertex(vl, 2, vec![Value::Int(0)]).unwrap();
        store.add_edge(el, 1, 2, vec![Value::Float(1.0)]).unwrap();
        store.commit();
        let before = store.snapshot();
        assert!(store.delete_edge(el, 1, 2).unwrap());
        store.commit();
        let after = store.snapshot();
        assert_eq!(before.edge_count(el), 1, "old snapshot keeps the edge");
        assert_eq!(after.edge_count(el), 0);
        // deleting again finds nothing
        assert!(!store.delete_edge(el, 1, 2).unwrap());
    }

    #[test]
    fn in_adjacency_tracks_out() {
        let (s, vl, el) = schema();
        let store = GartStore::new(s);
        for i in 0..5 {
            store.add_vertex(vl, i, vec![Value::Int(0)]).unwrap();
        }
        for i in 1..5 {
            store
                .add_edge(el, i, 0, vec![Value::Float(i as f64)])
                .unwrap();
        }
        store.commit();
        let snap = store.snapshot();
        let v0 = snap.internal_id(vl, 0).unwrap();
        let ins: Vec<_> = snap.adjacent(v0, vl, el, Direction::In).collect();
        assert_eq!(ins.len(), 4);
        // edge property reachable through in-edges
        for e in ins {
            let w = snap.edge_property(el, e.edge, PropId(0));
            assert!(w.as_float().unwrap() >= 1.0);
        }
    }

    #[test]
    fn duplicate_vertex_external_id_rejected() {
        let (s, vl, _) = schema();
        let store = GartStore::new(s);
        store.add_vertex(vl, 7, vec![Value::Int(0)]).unwrap();
        assert!(store.add_vertex(vl, 7, vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn edge_to_missing_vertex_rejected() {
        let (s, vl, el) = schema();
        let store = GartStore::new(s);
        store.add_vertex(vl, 1, vec![Value::Int(0)]).unwrap();
        assert!(store.add_edge(el, 1, 99, vec![Value::Float(0.0)]).is_err());
    }

    #[test]
    fn from_data_round_trip() {
        let data = PropertyGraphData::from_edge_list(4, &[(0, 1), (1, 2), (2, 3)]);
        let store = GartStore::from_data(&data).unwrap();
        let snap = store.snapshot();
        assert_eq!(snap.vertex_count(LabelId(0)), 4);
        assert_eq!(snap.edge_count(LabelId(0)), 3);
    }

    #[test]
    fn regions_relocate_and_grow() {
        let (s, vl, el) = schema();
        let store = GartStore::new(s);
        store.add_vertex(vl, 0, vec![Value::Int(0)]).unwrap();
        store.add_vertex(vl, 1, vec![Value::Int(0)]).unwrap();
        // enough edges to fill several segments
        for _ in 0..200 {
            store.add_edge(el, 0, 1, vec![Value::Float(1.0)]).unwrap();
        }
        store.commit();
        let snap = store.snapshot();
        let v0 = snap.internal_id(vl, 0).unwrap();
        assert_eq!(snap.adjacent(v0, vl, el, Direction::Out).count(), 200);
    }

    #[test]
    fn scan_edges_matches_per_vertex_iteration() {
        let data = PropertyGraphData::from_edge_list(
            50,
            &(0..200u64)
                .map(|i| (i % 50, (i * 7 + 1) % 50))
                .collect::<Vec<_>>(),
        );
        let store = GartStore::from_data(&data).unwrap();
        let snap = store.snapshot();
        let mut scanned = 0;
        store.scan_edges(LabelId(0), snap.version(), &mut |_, _, _| scanned += 1);
        let mut iterated = 0;
        for v in snap.vertices(LabelId(0)) {
            iterated += snap
                .adjacent(v, LabelId(0), LabelId(0), Direction::Out)
                .count();
        }
        assert_eq!(scanned, iterated);
        assert_eq!(scanned, 200);
    }

    #[test]
    fn scan_adjacency_respects_snapshot_version() {
        let (s, vl, el) = schema();
        let store = GartStore::new(s);
        for i in 0..6 {
            store.add_vertex(vl, i, vec![Value::Int(0)]).unwrap();
        }
        for i in 0..5 {
            store
                .add_edge(el, i, i + 1, vec![Value::Float(1.0)])
                .unwrap();
        }
        store.commit();
        let old = store.snapshot();
        store.add_vertex(vl, 6, vec![Value::Int(0)]).unwrap();
        store.add_edge(el, 6, 0, vec![Value::Float(9.0)]).unwrap();
        store.commit();
        let new = store.snapshot();

        let collect = |snap: &GartSnapshot, dir| {
            let mut rows = Vec::new();
            let bulk = snap.scan_adjacency(vl, el, dir, &mut |v, nbrs, eids| {
                rows.push((v, nbrs.to_vec(), eids.to_vec()));
            });
            assert!(bulk, "GART snapshot must run the pooled single-lock scan");
            rows
        };
        // old snapshot: 6 vertices, 5 edges; new: 7 vertices, 6 edges
        let old_rows = collect(&old, Direction::Out);
        assert_eq!(old_rows.len(), 6);
        assert_eq!(old_rows.iter().map(|(_, n, _)| n.len()).sum::<usize>(), 5);
        let new_rows = collect(&new, Direction::Out);
        assert_eq!(new_rows.len(), 7);
        assert_eq!(new_rows.iter().map(|(_, n, _)| n.len()).sum::<usize>(), 6);
        // per-vertex agreement with the iterator API, all directions
        for dir in [Direction::Out, Direction::In, Direction::Both] {
            for (v, nbrs, eids) in collect(&new, dir) {
                let expect: Vec<AdjEntry> = new.adjacent(v, vl, el, dir).collect();
                assert_eq!(nbrs, expect.iter().map(|a| a.nbr).collect::<Vec<_>>());
                assert_eq!(eids, expect.iter().map(|a| a.edge).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn freeze_matches_snapshot_across_layouts() {
        let data = PropertyGraphData::from_edge_list(
            40,
            &(0..160u64)
                .map(|i| (i % 40, (i * 11 + 3) % 40))
                .collect::<Vec<_>>(),
        );
        let store = GartStore::from_data(&data).unwrap();
        let snap = store.snapshot();
        let (vl, el) = (LabelId(0), LabelId(0));
        for layout in LayoutKind::ALL {
            let frozen = snap.freeze(layout);
            assert_eq!(frozen.topology_layout(), layout);
            assert_eq!(frozen.version(), snap.version());
            assert_eq!(frozen.vertex_count(vl), snap.vertex_count(vl));
            assert_eq!(frozen.edge_count(el), snap.edge_count(el));
            assert!(frozen.topology_bytes() > 0);
            for v in snap.vertices(vl) {
                for dir in [Direction::Out, Direction::In, Direction::Both] {
                    let mut want: Vec<AdjEntry> = snap.adjacent(v, vl, el, dir).collect();
                    let mut got: Vec<AdjEntry> = frozen.adjacent(v, vl, el, dir).collect();
                    want.sort_by_key(|a| (a.nbr, a.edge));
                    got.sort_by_key(|a| (a.nbr, a.edge));
                    assert_eq!(got, want, "{layout} {dir:?} v{v:?}");
                    assert_eq!(frozen.degree(v, vl, el, dir), want.len());
                }
            }
            // bulk scan agrees with the live snapshot's
            let mut frozen_rows = Vec::new();
            assert!(
                frozen.scan_adjacency(vl, el, Direction::Out, &mut |v, ns, es| {
                    frozen_rows.push((v, ns.to_vec(), es.to_vec()));
                })
            );
            let mut live_rows = Vec::new();
            snap.scan_adjacency(vl, el, Direction::Out, &mut |v, ns, es| {
                live_rows.push((v, ns.to_vec(), es.to_vec()));
            });
            assert_eq!(frozen_rows, live_rows, "{layout}");
        }
    }

    #[test]
    fn freeze_is_isolated_from_later_commits_and_reports_capabilities() {
        let (s, vl, el) = schema();
        let store = GartStore::new(s);
        for i in 0..4 {
            store.add_vertex(vl, i, vec![Value::Int(0)]).unwrap();
        }
        store.add_edge(el, 0, 1, vec![Value::Float(1.0)]).unwrap();
        store.commit();
        let frozen = store.snapshot().freeze(LayoutKind::CompressedCsr);
        // writer keeps going; the freeze must not move
        store.add_edge(el, 1, 2, vec![Value::Float(2.0)]).unwrap();
        store.commit();
        assert_eq!(frozen.edge_count(el), 1);
        assert_eq!(store.snapshot().edge_count(el), 2);
        let caps = frozen.capabilities();
        assert!(caps.supports(Capabilities::COMPRESSED_TOPOLOGY | Capabilities::MVCC));
        assert!(!caps.supports(Capabilities::ADJ_LIST_ARRAY));
        assert!(
            !caps.supports(Capabilities::MUTABLE),
            "a freeze is immutable"
        );
        let sorted = store.snapshot().freeze(LayoutKind::SortedCsr);
        assert!(sorted
            .capabilities()
            .supports(Capabilities::ADJ_LIST_ARRAY | Capabilities::SORTED_ADJACENCY));
        // frozen topology drops tombstoned edges like the snapshot does
        assert!(store.delete_edge(el, 0, 1).unwrap());
        store.commit();
        let after = store.snapshot().freeze(LayoutKind::SortedCsr);
        assert_eq!(after.edge_count(el), 1);
        let v0 = after.internal_id(vl, 0).unwrap();
        assert_eq!(after.degree(v0, vl, el, Direction::Out), 0);
    }

    #[test]
    fn concurrent_reads_during_writes() {
        let (s, vl, el) = schema();
        let store = GartStore::new(s);
        for i in 0..100 {
            store.add_vertex(vl, i, vec![Value::Int(0)]).unwrap();
        }
        store.commit();
        let snap = store.snapshot();
        let writer = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for i in 0..99 {
                    store
                        .add_edge(el, i, i + 1, vec![Value::Float(1.0)])
                        .unwrap();
                    store.commit();
                }
            })
        };
        // reader never sees partial state beyond its version
        for _ in 0..50 {
            assert_eq!(snap.edge_count(el), 0);
        }
        writer.join().unwrap();
        assert_eq!(store.snapshot().edge_count(el), 99);
    }
}
