/root/repo/target/debug/deps/gs_gaia-3e3e893cb0ab5d8b.d: crates/gs-gaia/src/lib.rs

/root/repo/target/debug/deps/libgs_gaia-3e3e893cb0ab5d8b.rlib: crates/gs-gaia/src/lib.rs

/root/repo/target/debug/deps/libgs_gaia-3e3e893cb0ab5d8b.rmeta: crates/gs-gaia/src/lib.rs

crates/gs-gaia/src/lib.rs:
