/root/repo/target/debug/deps/graphscope_flex-03b8d56ecfc0346c.d: src/lib.rs

/root/repo/target/debug/deps/libgraphscope_flex-03b8d56ecfc0346c.rlib: src/lib.rs

/root/repo/target/debug/deps/libgraphscope_flex-03b8d56ecfc0346c.rmeta: src/lib.rs

src/lib.rs:
