/root/repo/target/release/deps/bytes-27a034d6968227c1.d: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-27a034d6968227c1.rlib: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-27a034d6968227c1.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
