//! LiveGraph design replica (Fig. 7c comparator).
//!
//! LiveGraph [VLDB'20] stores each vertex's adjacency as a log of fixed
//! blocks; every entry embeds a `(creation, invalidation)` version pair and
//! deletions append tombstone entries. Reads therefore (a) chase block
//! pointers and (b) check versions on *every* entry — the two costs GART's
//! contiguous, fence-tagged segments avoid, which is where the paper's
//! ~3.9× read gap comes from. We reproduce both costs: blocks are separate
//! heap allocations and the scan path has no fence fast path.

use gs_graph::VId;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};

const BLOCK_CAP: usize = 16;

/// One adjacency entry (32 bytes, matching LiveGraph's wide entries that
/// embed version metadata inline).
#[derive(Clone, Copy, Debug)]
struct Entry {
    dst: VId,
    eid: u64,
    created: u64,
    /// u64::MAX while live; set to the deleting version on tombstone.
    deleted: u64,
}

/// A fixed-capacity block; blocks chain through the enclosing Vec of boxes
/// (separate allocations → pointer chase on scan).
struct Block {
    entries: [Entry; BLOCK_CAP],
    len: usize,
}

impl Block {
    fn new() -> Box<Block> {
        Box::new(Block {
            entries: [Entry {
                dst: VId(0),
                eid: 0,
                created: 0,
                deleted: u64::MAX,
            }; BLOCK_CAP],
            len: 0,
        })
    }
}

#[derive(Default)]
struct VertexLog {
    // boxed so growing the block list never memmoves the large fixed-size
    // blocks themselves (LiveGraph's blocks are stable storage regions)
    #[allow(clippy::vec_box)]
    blocks: Vec<Box<Block>>,
}

impl VertexLog {
    fn push(&mut self, e: Entry) {
        if self.blocks.last().is_none_or(|b| b.len == BLOCK_CAP) {
            self.blocks.push(Block::new());
        }
        let b = self.blocks.last_mut().unwrap();
        let len = b.len;
        b.entries[len] = e;
        b.len += 1;
    }
}

/// The LiveGraph-like store (homogeneous graphs; the Fig. 7c workload).
pub struct LiveGraphStore {
    adjacency: RwLock<Vec<VertexLog>>,
    committed: AtomicU64,
    next_eid: AtomicU64,
}

impl LiveGraphStore {
    /// Empty store over `n` vertices.
    pub fn new(n: usize) -> Self {
        let mut logs = Vec::with_capacity(n);
        logs.resize_with(n, VertexLog::default);
        Self {
            adjacency: RwLock::new(logs),
            committed: AtomicU64::new(0),
            next_eid: AtomicU64::new(0),
        }
    }

    /// Bulk-loads edges then commits once.
    pub fn from_edges(n: usize, edges: &[(VId, VId)]) -> Self {
        let store = Self::new(n);
        for &(s, d) in edges {
            store.add_edge(s, d);
        }
        store.commit();
        store
    }

    /// Latest committed version.
    pub fn committed_version(&self) -> u64 {
        self.committed.load(Ordering::Acquire)
    }

    /// Publishes staged writes.
    pub fn commit(&self) -> u64 {
        self.committed.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Stages an edge insertion.
    pub fn add_edge(&self, src: VId, dst: VId) -> u64 {
        let wv = self.committed_version() + 1;
        let eid = self.next_eid.fetch_add(1, Ordering::Relaxed);
        let mut g = self.adjacency.write();
        g[src.index()].push(Entry {
            dst,
            eid,
            created: wv,
            deleted: u64::MAX,
        });
        eid
    }

    /// Stages an edge deletion: appends a tombstone entry (LiveGraph keeps
    /// the old entry and invalidates on read reconciliation).
    pub fn delete_edge(&self, src: VId, dst: VId) -> bool {
        let wv = self.committed_version() + 1;
        let mut g = self.adjacency.write();
        let log = &mut g[src.index()];
        // find the most recent live entry for (src, dst) and invalidate it
        for b in log.blocks.iter_mut().rev() {
            for i in (0..b.len).rev() {
                let e = &mut b.entries[i];
                if e.dst == dst && e.deleted == u64::MAX {
                    e.deleted = wv;
                    return true;
                }
            }
        }
        false
    }

    /// Scans live out-edges of one vertex at a snapshot version — per-edge
    /// version checks on every entry, block-by-block.
    #[inline]
    pub fn scan_vertex<F: FnMut(VId, u64)>(&self, v: VId, version: u64, f: &mut F) {
        let g = self.adjacency.read();
        for b in &g[v.index()].blocks {
            for e in &b.entries[..b.len] {
                if e.created <= version && e.deleted > version {
                    f(e.dst, e.eid);
                }
            }
        }
    }

    /// Whole-graph edge scan at a snapshot (the Fig. 7c workload).
    #[inline]
    pub fn scan_edges<F: FnMut(VId, VId, u64)>(&self, version: u64, f: &mut F) {
        let g = self.adjacency.read();
        for (s, log) in g.iter().enumerate() {
            let src = VId(s as u64);
            for b in &log.blocks {
                for e in &b.entries[..b.len] {
                    if e.created <= version && e.deleted > version {
                        f(src, e.dst, e.eid);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_commit_scan() {
        let store = LiveGraphStore::new(3);
        store.add_edge(VId(0), VId(1));
        store.add_edge(VId(0), VId(2));
        // staged writes invisible at version 0
        let mut n = 0;
        store.scan_edges(store.committed_version(), &mut |_, _, _| n += 1);
        assert_eq!(n, 0);
        store.commit();
        let mut seen = Vec::new();
        store.scan_edges(store.committed_version(), &mut |s, d, _| seen.push((s, d)));
        assert_eq!(seen, vec![(VId(0), VId(1)), (VId(0), VId(2))]);
    }

    #[test]
    fn tombstones_hide_edges_from_new_snapshots_only() {
        let store = LiveGraphStore::from_edges(3, &[(VId(0), VId(1)), (VId(0), VId(2))]);
        let old = store.committed_version();
        assert!(store.delete_edge(VId(0), VId(1)));
        store.commit();
        let new = store.committed_version();
        let count_at = |v: u64| {
            let mut n = 0;
            store.scan_edges(v, &mut |_, _, _| n += 1);
            n
        };
        assert_eq!(count_at(old), 2);
        assert_eq!(count_at(new), 1);
        assert!(!store.delete_edge(VId(0), VId(5)));
    }

    #[test]
    fn per_vertex_scan_matches_global() {
        let edges: Vec<(VId, VId)> = (0..100u64).map(|i| (VId(i % 10), VId(i / 10))).collect();
        let store = LiveGraphStore::from_edges(10, &edges);
        let v = store.committed_version();
        let mut total = 0;
        for s in 0..10u64 {
            store.scan_vertex(VId(s), v, &mut |_, _| total += 1);
        }
        assert_eq!(total, 100);
    }

    #[test]
    fn blocks_chain_past_capacity() {
        let store = LiveGraphStore::new(1);
        for i in 0..100u64 {
            store.add_edge(VId(0), VId(0));
            let _ = i;
        }
        store.commit();
        let mut n = 0;
        store.scan_vertex(VId(0), store.committed_version(), &mut |_, _| n += 1);
        assert_eq!(n, 100);
    }
}
