//! The fault plan: what to break, where, and with what probability.
//!
//! All probabilistic decisions come from a pure hash of `(seed, stream,
//! coordinates, per-stream sequence number)` rather than a shared RNG, so
//! a decision at a given injection site does not depend on how the worker
//! threads happened to interleave — the same plan over the same workload
//! injects a reproducible fault set. Sequence numbers are *not* reset when
//! an attempt restarts, so retried work draws fresh decisions and a
//! faulted run cannot livelock on the same injection forever.

use std::time::Duration;

/// SplitMix64 finalizer — the deterministic core of every fault decision.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Folds `parts` into one uniform value in `[0, 1)`.
pub(crate) fn unit(seed: u64, parts: &[u64]) -> f64 {
    let mut h = mix64(seed);
    for &p in parts {
        h = mix64(h ^ p);
    }
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A deterministic, seeded fault-injection plan. Plain data: build one,
/// hand it to [`with_chaos`](crate::with_chaos), read the returned
/// [`ChaosStats`]. Every field is inert unless the `chaos` feature is
/// compiled in *and* the plan is installed.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seeds every probabilistic decision below.
    pub seed: u64,
    /// Kill worker `.0` when it reaches superstep `.1` (each entry fires
    /// exactly once, so restarts provably get past it).
    pub worker_kills: Vec<(usize, usize)>,
    /// Probability an exchange block is silently dropped.
    pub drop_p: f64,
    /// Probability an exchange block is delivered twice.
    pub dup_p: f64,
    /// Probability an exchange block is deferred to the next exchange.
    pub delay_p: f64,
    /// Probability a guarded storage read faults (starting a burst).
    pub storage_p: f64,
    /// Consecutive faults per storage burst — long enough bursts exhaust a
    /// caller's retry budget and force the skip/degrade path.
    pub storage_burst: u32,
    /// Shard `.0` sleeps `.1` before each job (a slow replica).
    pub slow_shards: Vec<(usize, Duration)>,
    /// Shard `.0` dies after processing `.1` jobs.
    pub dead_shards: Vec<(usize, u64)>,
    /// Cap on probabilistic injections (0 = unlimited). A safety valve so
    /// faulted runs provably converge within a bounded number of
    /// restarts/retries; scheduled kills and shard faults are exempt.
    pub fault_budget: u64,
    /// Kill the process (panic with [`ChaosUnwind`](crate::ChaosUnwind))
    /// at the WAL's `n`-th durable write (0-based, counted across log
    /// records *and* checkpoint chunks). Each entry fires once.
    pub wal_kills: Vec<u64>,
    /// When a scheduled WAL kill fires, first write a torn strict prefix
    /// of the pending record (seed-derived length) — the page-cache tear a
    /// real crash leaves — instead of killing cleanly between writes.
    pub wal_torn: bool,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            worker_kills: Vec::new(),
            drop_p: 0.0,
            dup_p: 0.0,
            delay_p: 0.0,
            storage_p: 0.0,
            storage_burst: 1,
            slow_shards: Vec::new(),
            dead_shards: Vec::new(),
            fault_budget: 0,
            wal_kills: Vec::new(),
            wal_torn: false,
        }
    }

    /// Schedules a one-shot worker kill at superstep `step`.
    pub fn kill_worker(mut self, worker: usize, step: usize) -> Self {
        self.worker_kills.push((worker, step));
        self
    }

    /// Sets the per-block message fault probabilities.
    pub fn message_faults(mut self, drop_p: f64, dup_p: f64, delay_p: f64) -> Self {
        self.drop_p = drop_p;
        self.dup_p = dup_p;
        self.delay_p = delay_p;
        self
    }

    /// Sets the storage-read fault probability and burst length.
    pub fn storage_faults(mut self, p: f64, burst: u32) -> Self {
        self.storage_p = p;
        self.storage_burst = burst.max(1);
        self
    }

    /// Makes shard `shard` sleep `delay` before each job.
    pub fn slow_shard(mut self, shard: usize, delay: Duration) -> Self {
        self.slow_shards.push((shard, delay));
        self
    }

    /// Kills shard `shard` after it has processed `after_jobs` jobs.
    pub fn dead_shard(mut self, shard: usize, after_jobs: u64) -> Self {
        self.dead_shards.push((shard, after_jobs));
        self
    }

    /// Caps probabilistic injections at `n` total.
    pub fn budget(mut self, n: u64) -> Self {
        self.fault_budget = n;
        self
    }

    /// Schedules a one-shot process kill at the WAL's `write`-th durable
    /// write (see [`FaultPlan::wal_kills`]).
    pub fn wal_kill(mut self, write: u64) -> Self {
        self.wal_kills.push(write);
        self
    }

    /// Makes scheduled WAL kills tear the in-flight record (write a strict
    /// prefix, then die) instead of killing between writes.
    pub fn wal_torn_writes(mut self) -> Self {
        self.wal_torn = true;
        self
    }
}

/// What the hooks injected during one [`with_chaos`](crate::with_chaos)
/// run. All-zero in pass-through builds.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    pub worker_kills: u64,
    pub msgs_dropped: u64,
    pub msgs_duplicated: u64,
    pub msgs_delayed: u64,
    pub storage_faults: u64,
    pub shard_delays: u64,
    pub shard_deaths: u64,
    pub wal_kills: u64,
    pub wal_torn_writes: u64,
}

impl ChaosStats {
    /// Total injected faults.
    pub fn total(&self) -> u64 {
        self.worker_kills
            + self.msgs_dropped
            + self.msgs_duplicated
            + self.msgs_delayed
            + self.storage_faults
            + self.shard_delays
            + self.shard_deaths
            + self.wal_kills
            + self.wal_torn_writes
    }

    /// Compact one-line rendering for report tables, listing only the
    /// non-zero classes (`"2 kills, 5 drops"`).
    pub fn render(&self) -> String {
        let mut parts = Vec::new();
        for (n, label) in [
            (self.worker_kills, "kills"),
            (self.msgs_dropped, "drops"),
            (self.msgs_duplicated, "dups"),
            (self.msgs_delayed, "delays"),
            (self.storage_faults, "storage"),
            (self.shard_delays, "slow-jobs"),
            (self.shard_deaths, "shard-deaths"),
            (self.wal_kills, "wal-kills"),
            (self.wal_torn_writes, "torn-writes"),
        ] {
            if n > 0 {
                parts.push(format!("{n} {label}"));
            }
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join(", ")
        }
    }
}

/// The verdict for one durable WAL write (log record or checkpoint chunk).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalWriteFault {
    /// Write the full buffer (the only verdict in pass-through builds).
    Proceed,
    /// Die (panic with [`ChaosUnwind`](crate::ChaosUnwind)) *before* the
    /// write: the disk ends exactly at the previous record boundary.
    Kill,
    /// Write only the first `n` bytes (a strict prefix), then die: the
    /// torn frame recovery must detect by length/checksum and discard.
    Torn(usize),
}

/// The verdict for one outgoing exchange block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MessageFault {
    /// Deliver normally (the only verdict in pass-through builds).
    Deliver,
    /// Never send the block; the receiver's loss detection must catch it.
    Drop,
    /// Send the block twice; the receiver must deduplicate.
    Duplicate,
    /// Defer the block to the sender's next exchange round.
    Delay,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_is_deterministic_and_uniformish() {
        let a = unit(42, &[1, 2, 3]);
        let b = unit(42, &[1, 2, 3]);
        assert_eq!(a, b);
        assert!((0.0..1.0).contains(&a));
        // different coordinates decorrelate
        assert_ne!(unit(42, &[1, 2, 3]), unit(42, &[1, 2, 4]));
        assert_ne!(unit(42, &[1, 2, 3]), unit(43, &[1, 2, 3]));
        // crude uniformity: mean of many draws near 0.5
        let mean: f64 = (0..4000).map(|i| unit(7, &[i])).sum::<f64>() / 4000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn stats_render_lists_nonzero_classes() {
        assert_eq!(ChaosStats::default().render(), "none");
        let s = ChaosStats {
            worker_kills: 2,
            msgs_dropped: 5,
            ..Default::default()
        };
        assert_eq!(s.render(), "2 kills, 5 drops");
        assert_eq!(s.total(), 7);
    }
}
