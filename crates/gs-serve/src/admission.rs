//! Admission control: per-tenant quotas and a priority shed ladder over
//! the PR 5 circuit-breaker primitive.
//!
//! Every request climbs the same ladder before touching an engine:
//!
//! 1. **circuit breaker** — consecutive engine failures open the circuit;
//!    while open, everything is refused (`Unavailable`) so a sick engine
//!    gets air instead of a pile-on;
//! 2. **tenant quota** — a tenant at its in-flight cap is refused
//!    (`Overloaded`) no matter its priority, so one tenant cannot
//!    monopolise the service;
//! 3. **priority watermarks** — as global load (in-flight / capacity)
//!    rises, `Low` sheds first, then `Normal`; `High` is only refused at
//!    hard capacity. Load-shedding, not queueing: an open-loop arrival
//!    process would otherwise grow the queue without bound.
//!
//! Admission returns an RAII [`AdmitGuard`]; dropping it releases the
//! tenant and global slots, so an engine panic can't leak capacity.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use gs_chaos::{BreakerConfig, CircuitBreaker};
use gs_graph::{GraphError, Result};
use gs_sanitizer::SharedCell;
use gs_telemetry::counter;

/// Request priority classes, shed lowest-first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    Low,
    Normal,
    High,
}

impl Priority {
    pub fn name(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Per-tenant concurrency budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantQuota {
    /// Maximum in-flight requests for the tenant.
    pub max_inflight: usize,
}

impl Default for TenantQuota {
    fn default() -> Self {
        Self { max_inflight: 64 }
    }
}

/// Admission tuning.
#[derive(Clone, Debug)]
pub struct AdmissionConfig {
    /// Global in-flight capacity (the service's concurrency, not a queue).
    pub capacity: usize,
    /// Quota applied to tenants without an explicit entry in `quotas`.
    pub default_quota: TenantQuota,
    /// Explicit per-tenant overrides.
    pub quotas: HashMap<String, TenantQuota>,
    /// Load fraction at or above which `Low` is shed.
    pub low_watermark: f64,
    /// Load fraction at or above which `Normal` is shed.
    pub normal_watermark: f64,
    /// Breaker over engine failures (PR 5 primitive).
    pub breaker: BreakerConfig,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            capacity: 64,
            default_quota: TenantQuota::default(),
            quotas: HashMap::new(),
            low_watermark: 0.5,
            normal_watermark: 0.8,
            breaker: BreakerConfig::default(),
        }
    }
}

/// The admission state machine shared by every session of a server.
pub struct AdmissionController {
    config: AdmissionConfig,
    inflight: Arc<AtomicUsize>,
    tenants: SharedCell<HashMap<String, Arc<AtomicUsize>>>,
    breaker: gs_sanitizer::TrackedMutex<CircuitBreaker>,
    admitted: AtomicU64,
    shed: [AtomicU64; 3],
    breaker_rejections: AtomicU64,
}

/// RAII admission slot: releases tenant + global capacity on drop.
pub struct AdmitGuard {
    global: Arc<AtomicUsize>,
    tenant: Arc<AtomicUsize>,
}

impl Drop for AdmitGuard {
    fn drop(&mut self) {
        self.global.fetch_sub(1, Ordering::AcqRel);
        self.tenant.fetch_sub(1, Ordering::AcqRel);
    }
}

impl AdmissionController {
    pub fn new(config: AdmissionConfig) -> Self {
        let breaker = CircuitBreaker::new(config.breaker.clone());
        Self {
            config,
            inflight: Arc::new(AtomicUsize::new(0)),
            tenants: SharedCell::new("serve.tenants", HashMap::new()),
            breaker: gs_sanitizer::TrackedMutex::new("serve.breaker", breaker),
            admitted: AtomicU64::new(0),
            shed: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            breaker_rejections: AtomicU64::new(0),
        }
    }

    fn tenant_counter(&self, tenant: &str) -> Arc<AtomicUsize> {
        self.tenants.update(|m| {
            if let Some(c) = m.get(tenant) {
                return Arc::clone(c);
            }
            let c = Arc::new(AtomicUsize::new(0));
            m.insert(tenant.to_string(), Arc::clone(&c));
            c
        })
    }

    fn quota_for(&self, tenant: &str) -> TenantQuota {
        self.config
            .quotas
            .get(tenant)
            .copied()
            .unwrap_or(self.config.default_quota)
    }

    /// Climbs the admission ladder for one request at `now`.
    pub fn admit(&self, tenant: &str, priority: Priority, now: Instant) -> Result<AdmitGuard> {
        if !self.breaker.lock().allow(now) {
            self.breaker_rejections.fetch_add(1, Ordering::Relaxed);
            counter!("serve.breaker.rejected");
            return Err(GraphError::Unavailable(
                "serving circuit open (engine failing); retry after cooldown".into(),
            ));
        }

        let tenant_ctr = self.tenant_counter(tenant);
        let quota = self.quota_for(tenant).max_inflight.max(1);
        // optimistic tenant slot, rolled back on any later refusal
        let t_prev = tenant_ctr.fetch_add(1, Ordering::AcqRel);
        if t_prev >= quota {
            tenant_ctr.fetch_sub(1, Ordering::AcqRel);
            self.shed[priority.index()].fetch_add(1, Ordering::Relaxed);
            counter!("serve.shed", reason = "quota", priority = priority.name());
            return Err(GraphError::Overloaded {
                shard: 0,
                depth: t_prev as u64,
            });
        }

        let capacity = self.config.capacity.max(1);
        let g_prev = self.inflight.fetch_add(1, Ordering::AcqRel);
        let load = g_prev as f64 / capacity as f64;
        let refused = g_prev >= capacity
            || match priority {
                Priority::Low => load >= self.config.low_watermark,
                Priority::Normal => load >= self.config.normal_watermark,
                Priority::High => false,
            };
        if refused {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            tenant_ctr.fetch_sub(1, Ordering::AcqRel);
            self.shed[priority.index()].fetch_add(1, Ordering::Relaxed);
            counter!("serve.shed", reason = "load", priority = priority.name());
            return Err(GraphError::Overloaded {
                shard: 0,
                depth: g_prev as u64,
            });
        }

        self.admitted.fetch_add(1, Ordering::Relaxed);
        counter!("serve.admitted", priority = priority.name());
        Ok(AdmitGuard {
            global: Arc::clone(&self.inflight),
            tenant: tenant_ctr,
        })
    }

    /// Feeds the execution outcome back into the breaker.
    pub fn record_result(&self, ok: bool, now: Instant) {
        let mut b = self.breaker.lock();
        if ok {
            b.on_success();
        } else {
            b.on_failure(now);
        }
    }

    /// Requests currently holding a slot.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }

    /// Whether the breaker currently rejects everything.
    pub fn breaker_open(&self, now: Instant) -> bool {
        self.breaker.lock().is_open(now)
    }

    /// (admitted, shed_low, shed_normal, shed_high, breaker_rejections).
    pub fn stats(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.admitted.load(Ordering::Relaxed),
            self.shed[Priority::Low.index()].load(Ordering::Relaxed),
            self.shed[Priority::Normal.index()].load(Ordering::Relaxed),
            self.shed[Priority::High.index()].load(Ordering::Relaxed),
            self.breaker_rejections.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn config(capacity: usize) -> AdmissionConfig {
        AdmissionConfig {
            capacity,
            default_quota: TenantQuota { max_inflight: 100 },
            ..Default::default()
        }
    }

    #[test]
    fn low_priority_sheds_first_high_survives_to_capacity() {
        let ctrl = AdmissionController::new(config(10));
        let mut guards = Vec::new();
        // fill to 50%: low watermark
        for _ in 0..5 {
            guards.push(ctrl.admit("t", Priority::High, Instant::now()).unwrap());
        }
        assert!(matches!(
            ctrl.admit("t", Priority::Low, Instant::now()),
            Err(GraphError::Overloaded { .. })
        ));
        guards.push(ctrl.admit("t", Priority::Normal, Instant::now()).unwrap());
        // fill to 80%: normal watermark (one slot was taken just above)
        for _ in 0..2 {
            guards.push(ctrl.admit("t", Priority::High, Instant::now()).unwrap());
        }
        assert!(matches!(
            ctrl.admit("t", Priority::Normal, Instant::now()),
            Err(GraphError::Overloaded { .. })
        ));
        // high is admitted until hard capacity
        for _ in 0..2 {
            guards.push(ctrl.admit("t", Priority::High, Instant::now()).unwrap());
        }
        assert!(matches!(
            ctrl.admit("t", Priority::High, Instant::now()),
            Err(GraphError::Overloaded { .. })
        ));
        let (admitted, low, normal, high, _) = ctrl.stats();
        assert_eq!(admitted, 10);
        assert_eq!((low, normal, high), (1, 1, 1));
        drop(guards);
        assert_eq!(ctrl.inflight(), 0);
        // capacity released: low admits again
        assert!(ctrl.admit("t", Priority::Low, Instant::now()).is_ok());
    }

    #[test]
    fn tenant_quota_caps_one_tenant_without_starving_others() {
        let mut cfg = config(100);
        cfg.quotas
            .insert("greedy".into(), TenantQuota { max_inflight: 2 });
        let ctrl = AdmissionController::new(cfg);
        let _a = ctrl
            .admit("greedy", Priority::High, Instant::now())
            .unwrap();
        let _b = ctrl
            .admit("greedy", Priority::High, Instant::now())
            .unwrap();
        assert!(matches!(
            ctrl.admit("greedy", Priority::High, Instant::now()),
            Err(GraphError::Overloaded { .. })
        ));
        // another tenant is unaffected
        assert!(ctrl.admit("polite", Priority::Low, Instant::now()).is_ok());
    }

    #[test]
    fn breaker_opens_on_failures_and_recovers() {
        let mut cfg = config(10);
        cfg.breaker = BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_millis(50),
        };
        let ctrl = AdmissionController::new(cfg);
        let t0 = Instant::now();
        ctrl.record_result(false, t0);
        ctrl.record_result(false, t0);
        assert!(ctrl.breaker_open(t0));
        assert!(matches!(
            ctrl.admit("t", Priority::High, t0),
            Err(GraphError::Unavailable(_))
        ));
        // after cooldown the half-open probe is admitted
        let t1 = t0 + Duration::from_millis(50);
        assert!(ctrl.admit("t", Priority::High, t1).is_ok());
        ctrl.record_result(true, t1);
        assert!(!ctrl.breaker_open(t1));
    }
}
