//! Reference executor: the definitional semantics of every physical
//! operator, executed single-threaded with materialised intermediates.
//!
//! The Gaia (data-parallel) and HiActor (actor) engines implement the same
//! semantics with different runtimes; integration tests diff them against
//! this executor.
//!
//! Conventions:
//! * Execution starts from one empty record, so a leading `Scan` emits one
//!   record per vertex and a second `Scan` produces a cross product.
//! * `Value::Edge(e, label, from, to)` is **traversal-oriented**: `from` is
//!   the expansion origin and `to` the neighbour, regardless of the stored
//!   direction. Edge property lookups only use `e`/`label`, which are
//!   storage-true.

use crate::expr::AggFunc;
use crate::logical::ProjectItem;
use crate::physical::{ExpandOut, PhysicalOp, PhysicalPlan};
use crate::record::Record;
use gs_graph::value::GroupKey;
use gs_graph::{GraphError, Result, Value};
use gs_grin::{Direction, GrinGraph};
use std::collections::HashMap;

/// Runs a physical plan to completion.
pub fn execute(plan: &PhysicalPlan, graph: &dyn GrinGraph) -> Result<Vec<Record>> {
    let mut records: Vec<Record> = vec![Record::new()];
    for op in &plan.ops {
        records = apply(op, records, graph)?;
    }
    Ok(records)
}

/// Like [`execute`], but also returns the actual output cardinality of
/// every operator (in plan order), recording each under the
/// `ir.cost.actual_rows` counter. `gs-bench costcheck` diffs these
/// actuals against the static estimates from [`crate::cost`] to track
/// estimator quality (q-error), and the soundness property test checks
/// each actual falls inside the predicted `[lo, hi]` interval.
pub fn execute_traced(
    plan: &PhysicalPlan,
    graph: &dyn GrinGraph,
) -> Result<(Vec<Record>, Vec<u64>)> {
    let mut records: Vec<Record> = vec![Record::new()];
    let mut actuals = Vec::with_capacity(plan.ops.len());
    for op in &plan.ops {
        records = apply(op, records, graph)?;
        gs_telemetry::counter!("ir.cost.actual_rows", op = op.name(); records.len() as u64);
        actuals.push(records.len() as u64);
    }
    Ok((records, actuals))
}

/// Applies one operator to a batch (shared by the reference executor and by
/// Gaia's per-worker pipelines).
pub fn apply(op: &PhysicalOp, input: Vec<Record>, graph: &dyn GrinGraph) -> Result<Vec<Record>> {
    match op {
        PhysicalOp::Scan {
            label,
            predicate,
            index_lookup,
        } => {
            let mut out = Vec::new();
            // resolve the vertex set once; cross-product with input records
            let vertices: Vec<Value> = if let Some((prop, val)) = index_lookup {
                graph
                    .vertices_by_property(*label, *prop, val)
                    .into_iter()
                    .map(|v| Value::Vertex(v, *label))
                    .collect()
            } else {
                let mut vs = Vec::new();
                for v in graph.vertices(*label) {
                    let val = Value::Vertex(v, *label);
                    if let Some(p) = predicate {
                        if !p.eval_bool(std::slice::from_ref(&val), graph)? {
                            continue;
                        }
                    }
                    vs.push(val);
                }
                vs
            };
            // index path may still need the residual predicate
            let vertices: Vec<Value> = if index_lookup.is_some() {
                let mut vs = Vec::new();
                for val in vertices {
                    if let Some(p) = predicate {
                        if !p.eval_bool(std::slice::from_ref(&val), graph)? {
                            continue;
                        }
                    }
                    vs.push(val);
                }
                vs
            } else {
                vertices
            };
            for rec in &input {
                for v in &vertices {
                    let mut r = rec.clone();
                    r.push(v.clone());
                    out.push(r);
                }
            }
            Ok(out)
        }
        PhysicalOp::Expand {
            src_col,
            src_label,
            elabel,
            dir,
            predicate,
            out: expand_out,
        } => {
            let mut out = Vec::new();
            for rec in input {
                let Some(Value::Vertex(v, _)) = rec.get(*src_col).cloned() else {
                    if matches!(rec.get(*src_col), Some(Value::Null)) {
                        continue;
                    }
                    return Err(GraphError::Type(format!(
                        "Expand source col {src_col} is not a vertex"
                    )));
                };
                graph.for_each_adjacent(v, *src_label, *elabel, *dir, &mut |a| {
                    let produced = match expand_out {
                        ExpandOut::Edge => Value::Edge(a.edge, *elabel, v, a.nbr),
                        ExpandOut::VertexFused { label } => Value::Vertex(a.nbr, *label),
                    };
                    out.push((rec.clone(), produced));
                });
            }
            // evaluate predicates outside the adjacency closure (closure
            // cannot return Result)
            let mut res = Vec::with_capacity(out.len());
            for (rec, produced) in out {
                if let Some(p) = predicate {
                    if !p.eval_bool(std::slice::from_ref(&produced), graph)? {
                        continue;
                    }
                }
                let mut r = rec;
                r.push(produced);
                res.push(r);
            }
            Ok(res)
        }
        PhysicalOp::GetVertex {
            edge_col,
            label,
            predicate,
            take_dst,
        } => {
            let mut out = Vec::new();
            for mut rec in input {
                let Some(Value::Edge(_, _, from, to)) = rec.get(*edge_col).cloned() else {
                    if matches!(rec.get(*edge_col), Some(Value::Null)) {
                        continue;
                    }
                    return Err(GraphError::Type(format!(
                        "GetVertex col {edge_col} is not an edge"
                    )));
                };
                let v = if *take_dst { to } else { from };
                let val = Value::Vertex(v, *label);
                if let Some(p) = predicate {
                    if !p.eval_bool(std::slice::from_ref(&val), graph)? {
                        continue;
                    }
                }
                rec.push(val);
                out.push(rec);
            }
            Ok(out)
        }
        PhysicalOp::ExpandIntersect {
            src_col,
            elabel,
            dir,
            dst_col,
            bind_edge,
            predicate,
        } => {
            let mut out = Vec::new();
            for rec in input {
                let (Some(Value::Vertex(s, sl)), Some(Value::Vertex(d, dl))) =
                    (rec.get(*src_col).cloned(), rec.get(*dst_col).cloned())
                else {
                    continue;
                };
                // Direction-adaptive intersection: probe from the endpoint
                // with the smaller adjacency (the same trick worst-case-
                // optimal join implementations use); both probes find the
                // same edge because in-adjacency mirrors out-adjacency.
                let rev = match dir {
                    Direction::Out => Direction::In,
                    Direction::In => Direction::Out,
                    Direction::Both => Direction::Both,
                };
                let deg_s = graph.degree(s, sl, *elabel, *dir);
                let deg_d = graph.degree(d, dl, *elabel, rev);
                let mut found = None;
                if deg_d < deg_s {
                    graph.for_each_adjacent(d, dl, *elabel, rev, &mut |a| {
                        if a.nbr == s && found.is_none() {
                            found = Some(a.edge);
                        }
                    });
                } else {
                    graph.for_each_adjacent(s, sl, *elabel, *dir, &mut |a| {
                        if a.nbr == d && found.is_none() {
                            found = Some(a.edge);
                        }
                    });
                }
                let Some(eid) = found else { continue };
                let edge_val = Value::Edge(eid, *elabel, s, d);
                if let Some(p) = predicate {
                    if !p.eval_bool(std::slice::from_ref(&edge_val), graph)? {
                        continue;
                    }
                }
                let mut r = rec;
                if *bind_edge {
                    r.push(edge_val);
                }
                out.push(r);
            }
            Ok(out)
        }
        PhysicalOp::Select { predicate } => {
            let mut out = Vec::new();
            for rec in input {
                if predicate.eval_bool(&rec, graph)? {
                    out.push(rec);
                }
            }
            Ok(out)
        }
        PhysicalOp::Project { items } => project(items, input, graph),
        PhysicalOp::Order { keys, limit } => {
            let mut keyed: Vec<(Vec<Value>, Record)> = input
                .into_iter()
                .map(|rec| {
                    let ks = keys
                        .iter()
                        .map(|(e, _)| e.eval(&rec, graph))
                        .collect::<Result<Vec<_>>>()?;
                    Ok((ks, rec))
                })
                .collect::<Result<Vec<_>>>()?;
            keyed.sort_by(|(a, _), (b, _)| {
                for (i, (_, asc)) in keys.iter().enumerate() {
                    let c = a[i].total_cmp(&b[i]);
                    let c = if *asc { c } else { c.reverse() };
                    if c != std::cmp::Ordering::Equal {
                        return c;
                    }
                }
                std::cmp::Ordering::Equal
            });
            let mut out: Vec<Record> = keyed.into_iter().map(|(_, r)| r).collect();
            if let Some(n) = limit {
                out.truncate(*n);
            }
            Ok(out)
        }
        PhysicalOp::Dedup { columns } => {
            let mut seen = std::collections::HashSet::new();
            let mut out = Vec::new();
            for rec in input {
                let key: Vec<GroupKey> = if columns.is_empty() {
                    rec.iter().map(|v| GroupKey(v.clone())).collect()
                } else {
                    columns.iter().map(|&c| GroupKey(rec[c].clone())).collect()
                };
                if seen.insert(KeyVec(key)) {
                    out.push(rec);
                }
            }
            Ok(out)
        }
        PhysicalOp::Limit { n } => {
            let mut out = input;
            out.truncate(*n);
            Ok(out)
        }
    }
}

#[derive(PartialEq, Eq, Hash)]
struct KeyVec(Vec<GroupKey>);

/// Projection with Cypher `WITH`/`RETURN` semantics: if any item aggregates,
/// the non-aggregate items become grouping keys.
fn project(
    items: &[(ProjectItem, String)],
    input: Vec<Record>,
    graph: &dyn GrinGraph,
) -> Result<Vec<Record>> {
    let has_agg = items
        .iter()
        .any(|(it, _)| matches!(it, ProjectItem::Agg(..)));
    if !has_agg {
        let mut out = Vec::with_capacity(input.len());
        for rec in input {
            let mut r = Record::with_capacity(items.len());
            for (it, _) in items {
                match it {
                    ProjectItem::Expr(e) => r.push(e.eval(&rec, graph)?),
                    ProjectItem::Agg(..) => unreachable!(),
                }
            }
            out.push(r);
        }
        return Ok(out);
    }

    // grouped aggregation
    let mut groups: HashMap<KeyVec, Vec<AggState>> = HashMap::new();
    let mut key_order: Vec<(KeyVec, Vec<Value>)> = Vec::new();
    for rec in input {
        let mut key = Vec::new();
        let mut key_vals = Vec::new();
        for (it, _) in items {
            if let ProjectItem::Expr(e) = it {
                let v = e.eval(&rec, graph)?;
                key.push(GroupKey(v.clone()));
                key_vals.push(v);
            }
        }
        let key = KeyVec(key);
        let entry = groups.entry(KeyVec(key.0.to_vec()));
        let states = match entry {
            std::collections::hash_map::Entry::Occupied(o) => o.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                key_order.push((KeyVec(key.0.to_vec()), key_vals));
                v.insert(
                    items
                        .iter()
                        .filter_map(|(it, _)| match it {
                            ProjectItem::Agg(f, _) => Some(AggState::new(f)),
                            ProjectItem::Expr(_) => None,
                        })
                        .collect(),
                )
            }
        };
        let mut agg_idx = 0;
        for (it, _) in items {
            if let ProjectItem::Agg(_, e) = it {
                let v = e.eval(&rec, graph)?;
                states[agg_idx].update(v);
                agg_idx += 1;
            }
        }
    }
    // empty input + no keys → single row of aggregate identities
    if key_order.is_empty()
        && items
            .iter()
            .all(|(it, _)| matches!(it, ProjectItem::Agg(..)))
    {
        let r: Record = items
            .iter()
            .map(|(it, _)| match it {
                ProjectItem::Agg(f, _) => AggState::new(f).finish(),
                ProjectItem::Expr(_) => unreachable!(),
            })
            .collect();
        return Ok(vec![r]);
    }
    let mut out = Vec::with_capacity(key_order.len());
    for (key, key_vals) in key_order {
        let states = groups.remove(&key).expect("group state");
        let mut r = Record::with_capacity(items.len());
        let mut kv = key_vals.into_iter();
        let mut st = states.into_iter();
        for (it, _) in items {
            match it {
                ProjectItem::Expr(_) => r.push(kv.next().expect("key value")),
                ProjectItem::Agg(..) => r.push(st.next().expect("agg state").finish()),
            }
        }
        out.push(r);
    }
    Ok(out)
}

/// Incremental aggregate state.
pub enum AggState {
    Count(i64),
    CountDistinct(std::collections::HashSet<GroupKey>),
    Sum(Value),
    Avg(f64, i64),
    Min(Value),
    Max(Value),
    Collect(Vec<Value>),
}

impl AggState {
    /// Fresh state for a function.
    pub fn new(f: &AggFunc) -> AggState {
        match f {
            AggFunc::Count => AggState::Count(0),
            AggFunc::CountDistinct => AggState::CountDistinct(Default::default()),
            AggFunc::Sum => AggState::Sum(Value::Null),
            AggFunc::Avg => AggState::Avg(0.0, 0),
            AggFunc::Min => AggState::Min(Value::Null),
            AggFunc::Max => AggState::Max(Value::Null),
            AggFunc::Collect => AggState::Collect(Vec::new()),
        }
    }

    /// Folds one value in (nulls are skipped, SQL-style).
    pub fn update(&mut self, v: Value) {
        if v.is_null() {
            return;
        }
        match self {
            AggState::Count(c) => *c += 1,
            AggState::CountDistinct(s) => {
                s.insert(GroupKey(v));
            }
            AggState::Sum(acc) => {
                *acc = match (&acc, &v) {
                    (Value::Null, _) => v,
                    (Value::Int(a), Value::Int(b)) => Value::Int(a + b),
                    _ => Value::Float(acc.as_float().unwrap_or(0.0) + v.as_float().unwrap_or(0.0)),
                };
            }
            AggState::Avg(sum, n) => {
                *sum += v.as_float().unwrap_or(0.0);
                *n += 1;
            }
            AggState::Min(m) => {
                if m.is_null() || v.total_cmp(m).is_lt() {
                    *m = v;
                }
            }
            AggState::Max(m) => {
                if m.is_null() || v.total_cmp(m).is_gt() {
                    *m = v;
                }
            }
            AggState::Collect(list) => list.push(v),
        }
    }

    /// Merges another state of the same kind (used by Gaia's parallel
    /// partial aggregation).
    pub fn merge(&mut self, other: AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::CountDistinct(a), AggState::CountDistinct(b)) => a.extend(b),
            (AggState::Sum(a), AggState::Sum(b)) => {
                if !b.is_null() {
                    *a = match (&a, &b) {
                        (Value::Null, _) => b,
                        (Value::Int(x), Value::Int(y)) => Value::Int(x + y),
                        _ => {
                            Value::Float(a.as_float().unwrap_or(0.0) + b.as_float().unwrap_or(0.0))
                        }
                    };
                }
            }
            (AggState::Avg(s1, n1), AggState::Avg(s2, n2)) => {
                *s1 += s2;
                *n1 += n2;
            }
            (AggState::Min(a), AggState::Min(b)) => {
                if !b.is_null() && (a.is_null() || b.total_cmp(a).is_lt()) {
                    *a = b;
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if !b.is_null() && (a.is_null() || b.total_cmp(a).is_gt()) {
                    *a = b;
                }
            }
            (AggState::Collect(a), AggState::Collect(b)) => a.extend(b),
            _ => panic!("merging mismatched aggregate states"),
        }
    }

    /// Produces the final aggregate value.
    pub fn finish(self) -> Value {
        match self {
            AggState::Count(c) => Value::Int(c),
            AggState::CountDistinct(s) => Value::Int(s.len() as i64),
            AggState::Sum(v) => {
                if v.is_null() {
                    Value::Int(0)
                } else {
                    v
                }
            }
            AggState::Avg(s, n) => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(s / n as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v,
            AggState::Collect(l) => Value::List(l),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Expr};
    use crate::record::Layout;
    use gs_graph::{LabelId, PropId, VId};
    use gs_grin::graph::mock::MockGraph;
    use gs_grin::Direction;

    const L: LabelId = LabelId(0);

    /// diamond: 0→1, 0→2, 1→3, 2→3, weights 1..4
    fn g() -> MockGraph {
        let mut g = MockGraph::new(4, &[(0, 1, 1.0), (0, 2, 2.0), (1, 3, 3.0), (2, 3, 4.0)]);
        g.set_tag(VId(0), 10);
        g.set_tag(VId(1), 11);
        g.set_tag(VId(2), 12);
        g.set_tag(VId(3), 13);
        g
    }

    fn plan(ops: Vec<PhysicalOp>) -> PhysicalPlan {
        PhysicalPlan {
            ops,
            layout: Layout::new(),
        }
    }

    #[test]
    fn scan_emits_all_vertices() {
        let res = execute(
            &plan(vec![PhysicalOp::Scan {
                label: L,
                predicate: None,
                index_lookup: None,
            }]),
            &g(),
        )
        .unwrap();
        assert_eq!(res.len(), 4);
    }

    #[test]
    fn scan_with_predicate() {
        let pred = Expr::bin(
            BinOp::Gt,
            Expr::VertexProp {
                col: 0,
                label: L,
                prop: PropId(0),
            },
            Expr::Const(Value::Int(11)),
        );
        let res = execute(
            &plan(vec![PhysicalOp::Scan {
                label: L,
                predicate: Some(pred),
                index_lookup: None,
            }]),
            &g(),
        )
        .unwrap();
        assert_eq!(res.len(), 2); // tags 12, 13
    }

    #[test]
    fn expand_edge_then_get_vertex() {
        let res = execute(
            &plan(vec![
                PhysicalOp::Scan {
                    label: L,
                    predicate: None,
                    index_lookup: None,
                },
                PhysicalOp::Expand {
                    src_col: 0,
                    src_label: L,
                    elabel: L,
                    dir: Direction::Out,
                    predicate: None,
                    out: ExpandOut::Edge,
                },
                PhysicalOp::GetVertex {
                    edge_col: 1,
                    label: L,
                    predicate: None,
                    take_dst: true,
                },
            ]),
            &g(),
        )
        .unwrap();
        assert_eq!(res.len(), 4); // 4 edges
        for r in &res {
            assert!(matches!(r[2], Value::Vertex(..)));
        }
    }

    #[test]
    fn fused_expand_equals_unfused() {
        let unfused = execute(
            &plan(vec![
                PhysicalOp::Scan {
                    label: L,
                    predicate: None,
                    index_lookup: None,
                },
                PhysicalOp::Expand {
                    src_col: 0,
                    src_label: L,
                    elabel: L,
                    dir: Direction::Out,
                    predicate: None,
                    out: ExpandOut::Edge,
                },
                PhysicalOp::GetVertex {
                    edge_col: 1,
                    label: L,
                    predicate: None,
                    take_dst: true,
                },
                PhysicalOp::Project {
                    items: vec![
                        (ProjectItem::Expr(Expr::Column(0)), "a".into()),
                        (ProjectItem::Expr(Expr::Column(2)), "b".into()),
                    ],
                },
            ]),
            &g(),
        )
        .unwrap();
        let fused = execute(
            &plan(vec![
                PhysicalOp::Scan {
                    label: L,
                    predicate: None,
                    index_lookup: None,
                },
                PhysicalOp::Expand {
                    src_col: 0,
                    src_label: L,
                    elabel: L,
                    dir: Direction::Out,
                    predicate: None,
                    out: ExpandOut::VertexFused { label: L },
                },
            ]),
            &g(),
        )
        .unwrap();
        let canon = |mut v: Vec<Record>| {
            v.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
            v
        };
        assert_eq!(canon(unfused), canon(fused));
    }

    #[test]
    fn expand_intersect_closes_triangles() {
        // diamond has no triangle; add 1→2 to make 0,1,2 a triangle
        let mg = MockGraph::new(
            4,
            &[
                (0, 1, 1.0),
                (0, 2, 2.0),
                (1, 3, 3.0),
                (2, 3, 4.0),
                (1, 2, 5.0),
            ],
        );
        let res = execute(
            &plan(vec![
                PhysicalOp::Scan {
                    label: L,
                    predicate: None,
                    index_lookup: None,
                },
                PhysicalOp::Expand {
                    src_col: 0,
                    src_label: L,
                    elabel: L,
                    dir: Direction::Out,
                    predicate: None,
                    out: ExpandOut::VertexFused { label: L },
                },
                PhysicalOp::Expand {
                    src_col: 1,
                    src_label: L,
                    elabel: L,
                    dir: Direction::Out,
                    predicate: None,
                    out: ExpandOut::VertexFused { label: L },
                },
                // close: a → c must exist
                PhysicalOp::ExpandIntersect {
                    src_col: 0,
                    elabel: L,
                    dir: Direction::Out,
                    dst_col: 2,
                    bind_edge: false,
                    predicate: None,
                },
            ]),
            &mg,
        )
        .unwrap();
        // directed 2-paths closed by an edge: 0→1→2 (closed by 0→2) and
        // 1→2→3 (closed by 1→3)
        assert_eq!(res.len(), 2);
        assert_eq!(res[0][0], Value::Vertex(VId(0), L));
        assert_eq!(res[0][2], Value::Vertex(VId(2), L));
        assert_eq!(res[1][0], Value::Vertex(VId(1), L));
        assert_eq!(res[1][2], Value::Vertex(VId(3), L));
    }

    #[test]
    fn group_by_with_count_and_sum() {
        // group neighbors-of by source, count them
        let res = execute(
            &plan(vec![
                PhysicalOp::Scan {
                    label: L,
                    predicate: None,
                    index_lookup: None,
                },
                PhysicalOp::Expand {
                    src_col: 0,
                    src_label: L,
                    elabel: L,
                    dir: Direction::Out,
                    predicate: None,
                    out: ExpandOut::VertexFused { label: L },
                },
                PhysicalOp::Project {
                    items: vec![
                        (ProjectItem::Expr(Expr::Column(0)), "src".into()),
                        (
                            ProjectItem::Agg(AggFunc::Count, Expr::Column(1)),
                            "cnt".into(),
                        ),
                    ],
                },
                PhysicalOp::Order {
                    keys: vec![(Expr::Column(1), false)],
                    limit: None,
                },
            ]),
            &g(),
        )
        .unwrap();
        assert_eq!(res.len(), 3); // vertices 0,1,2 have out-edges
        assert_eq!(res[0][1], Value::Int(2)); // vertex 0 has 2
    }

    #[test]
    fn aggregate_without_keys_on_empty_input() {
        let res = execute(
            &plan(vec![
                PhysicalOp::Scan {
                    label: L,
                    predicate: Some(Expr::Const(Value::Bool(false))),
                    index_lookup: None,
                },
                PhysicalOp::Project {
                    items: vec![(
                        ProjectItem::Agg(AggFunc::Count, Expr::Column(0)),
                        "cnt".into(),
                    )],
                },
            ]),
            &g(),
        )
        .unwrap();
        assert_eq!(res, vec![vec![Value::Int(0)]]);
    }

    #[test]
    fn order_desc_with_limit() {
        let res = execute(
            &plan(vec![
                PhysicalOp::Scan {
                    label: L,
                    predicate: None,
                    index_lookup: None,
                },
                PhysicalOp::Order {
                    keys: vec![(
                        Expr::VertexProp {
                            col: 0,
                            label: L,
                            prop: PropId(0),
                        },
                        false,
                    )],
                    limit: Some(2),
                },
            ]),
            &g(),
        )
        .unwrap();
        assert_eq!(res.len(), 2);
        assert_eq!(res[0][0], Value::Vertex(VId(3), L)); // tag 13
        assert_eq!(res[1][0], Value::Vertex(VId(2), L)); // tag 12
    }

    #[test]
    fn dedup_and_limit() {
        let res = execute(
            &plan(vec![
                PhysicalOp::Scan {
                    label: L,
                    predicate: None,
                    index_lookup: None,
                },
                PhysicalOp::Expand {
                    src_col: 0,
                    src_label: L,
                    elabel: L,
                    dir: Direction::Out,
                    predicate: None,
                    out: ExpandOut::VertexFused { label: L },
                },
                PhysicalOp::Project {
                    items: vec![(ProjectItem::Expr(Expr::Column(1)), "n".into())],
                },
                PhysicalOp::Dedup { columns: vec![0] },
            ]),
            &g(),
        )
        .unwrap();
        assert_eq!(res.len(), 3); // distinct targets: 1, 2, 3
        let limited = execute(
            &plan(vec![
                PhysicalOp::Scan {
                    label: L,
                    predicate: None,
                    index_lookup: None,
                },
                PhysicalOp::Limit { n: 2 },
            ]),
            &g(),
        )
        .unwrap();
        assert_eq!(limited.len(), 2);
    }

    #[test]
    fn agg_state_merge_matches_sequential() {
        let mut a = AggState::new(&AggFunc::Sum);
        a.update(Value::Int(1));
        a.update(Value::Int(2));
        let mut b = AggState::new(&AggFunc::Sum);
        b.update(Value::Int(3));
        a.merge(b);
        assert_eq!(a.finish(), Value::Int(6));

        let mut m = AggState::new(&AggFunc::Min);
        m.update(Value::Int(5));
        let mut m2 = AggState::new(&AggFunc::Min);
        m2.update(Value::Int(2));
        m.merge(m2);
        assert_eq!(m.finish(), Value::Int(2));

        let mut avg = AggState::new(&AggFunc::Avg);
        avg.update(Value::Int(1));
        let mut avg2 = AggState::new(&AggFunc::Avg);
        avg2.update(Value::Int(3));
        avg.merge(avg2);
        assert_eq!(avg.finish(), Value::Float(2.0));
    }
}
