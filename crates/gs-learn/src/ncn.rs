//! NCN — Neural Common Neighbor link prediction (paper §8, social relation
//! prediction).
//!
//! The NCN sampling phase "extracts first-order common neighbors for each
//! training edge's vertices and performs k-hop subgraph sampling around
//! each common neighbor". The model here follows that structure: an encoder
//! embeds endpoints and common neighbours from their sampled features; the
//! link score combines the endpoint Hadamard product with the summed
//! common-neighbour embeddings through a linear head.

use crate::sampler::Sampler;
use crate::tensor::{bce_with_logits, Linear, Matrix};
use gs_graph::{LabelId, VId};
use gs_grin::{Direction, GrinGraph};
use rand::Rng;
use rand_pcg::Pcg64Mcg;

/// One NCN training example: an (anchor, target) pair, its common
/// neighbours, and a 0/1 label.
#[derive(Clone, Debug)]
pub struct LinkExample {
    pub u: VId,
    pub v: VId,
    pub common: Vec<VId>,
    pub label: f32,
}

/// Extracts the common out-neighbours of `u` and `v`.
pub fn common_neighbors(
    graph: &dyn GrinGraph,
    vlabel: LabelId,
    elabel: LabelId,
    u: VId,
    v: VId,
    cap: usize,
) -> Vec<VId> {
    let nu: std::collections::HashSet<VId> = graph
        .adjacent(u, vlabel, elabel, Direction::Out)
        .map(|a| a.nbr)
        .collect();
    graph
        .adjacent(v, vlabel, elabel, Direction::Out)
        .map(|a| a.nbr)
        .filter(|w| nu.contains(w))
        .take(cap)
        .collect()
}

/// Builds a balanced training set: positives from existing edges, negatives
/// from random non-adjacent pairs.
pub fn build_examples(
    graph: &dyn GrinGraph,
    vlabel: LabelId,
    elabel: LabelId,
    positives: usize,
    seed: u64,
) -> Vec<LinkExample> {
    let n = graph.vertex_count(vlabel) as u64;
    let mut rng = Pcg64Mcg::new((seed as u128) << 64 | 0x9cc);
    let mut out = Vec::with_capacity(positives * 2);
    let mut tries = 0;
    while out.len() < positives && tries < positives * 50 {
        tries += 1;
        let u = VId(rng.gen_range(0..n));
        let nbrs: Vec<VId> = graph
            .adjacent(u, vlabel, elabel, Direction::Out)
            .map(|a| a.nbr)
            .collect();
        if nbrs.is_empty() {
            continue;
        }
        let v = nbrs[rng.gen_range(0..nbrs.len())];
        out.push(LinkExample {
            u,
            v,
            common: common_neighbors(graph, vlabel, elabel, u, v, 16),
            label: 1.0,
        });
    }
    let n_pos = out.len();
    for _ in 0..n_pos {
        loop {
            let u = VId(rng.gen_range(0..n));
            let v = VId(rng.gen_range(0..n));
            let adjacent = graph
                .adjacent(u, vlabel, elabel, Direction::Out)
                .any(|a| a.nbr == v);
            if u != v && !adjacent {
                out.push(LinkExample {
                    u,
                    v,
                    common: common_neighbors(graph, vlabel, elabel, u, v, 16),
                    label: 0.0,
                });
                break;
            }
        }
    }
    out
}

/// The NCN model.
pub struct NcnModel {
    /// Feature encoder `feature_dim → hidden` (shared by endpoints and
    /// common neighbours).
    pub encoder: Linear,
    /// Link head `2·hidden → 1`: input is `[h_u ⊙ h_v ‖ Σ h_cn]`.
    pub head: Linear,
    pub hidden: usize,
}

impl NcnModel {
    pub fn new(feature_dim: usize, hidden: usize, seed: u64) -> Self {
        Self {
            encoder: Linear::new(feature_dim, hidden, seed),
            head: Linear::new(2 * hidden, 1, seed.wrapping_add(7)),
            hidden,
        }
    }

    /// Forward + backward over a batch of examples; returns the loss.
    pub fn train_batch(&mut self, sampler: &Sampler<'_>, batch: &[LinkExample], lr: f32) -> f32 {
        let (loss, _) = self.run_batch(sampler, batch, true);
        self.encoder.adam_step(lr);
        self.head.adam_step(lr);
        loss
    }

    /// Link probabilities for a batch.
    pub fn predict(&mut self, sampler: &Sampler<'_>, batch: &[LinkExample]) -> Vec<f32> {
        let (_, probs) = self.run_batch(sampler, batch, false);
        probs
    }

    fn run_batch(
        &mut self,
        sampler: &Sampler<'_>,
        batch: &[LinkExample],
        train: bool,
    ) -> (f32, Vec<f32>) {
        // gather every vertex needing an embedding
        let mut nodes: Vec<VId> = Vec::new();
        for ex in batch {
            nodes.push(ex.u);
            nodes.push(ex.v);
            nodes.extend(&ex.common);
        }
        let feats = Matrix::from_rows(nodes.iter().map(|&v| sampler.features_of(v)).collect());
        let mut h = self.encoder.forward(&feats);
        let mask = h.relu_inplace();

        // assemble head inputs
        let hd = self.hidden;
        let mut x = Matrix::zeros(batch.len(), 2 * hd);
        let mut cursor = 0usize;
        let mut spans = Vec::with_capacity(batch.len()); // (u_row, v_row, cn_rows)
        for (r, ex) in batch.iter().enumerate() {
            let u_row = cursor;
            let v_row = cursor + 1;
            let cn_rows: Vec<usize> = (0..ex.common.len()).map(|i| cursor + 2 + i).collect();
            cursor += 2 + ex.common.len();
            for c in 0..hd {
                *x.at_mut(r, c) = h.at(u_row, c) * h.at(v_row, c);
                let mut s = 0.0;
                for &cr in &cn_rows {
                    s += h.at(cr, c);
                }
                *x.at_mut(r, hd + c) = s;
            }
            spans.push((u_row, v_row, cn_rows));
        }
        let logits = self.head.forward(&x);
        let probs: Vec<f32> = (0..logits.rows)
            .map(|r| 1.0 / (1.0 + (-logits.at(r, 0)).exp()))
            .collect();
        let targets: Vec<f32> = batch.iter().map(|e| e.label).collect();
        let (loss, dlogits) = bce_with_logits(&logits, &targets);
        if train {
            let dx = self.head.backward(&x, &dlogits);
            // backprop into per-node embedding gradients
            let mut dh = Matrix::zeros(h.rows, hd);
            for (r, (u_row, v_row, cn_rows)) in spans.iter().enumerate() {
                for c in 0..hd {
                    let d_prod = dx.at(r, c);
                    *dh.at_mut(*u_row, c) += d_prod * h.at(*v_row, c);
                    *dh.at_mut(*v_row, c) += d_prod * h.at(*u_row, c);
                    let d_sum = dx.at(r, hd + c);
                    for &cr in cn_rows {
                        *dh.at_mut(cr, c) += d_sum;
                    }
                }
            }
            for (v, &m) in dh.data.iter_mut().zip(&mask) {
                if !m {
                    *v = 0.0;
                }
            }
            self.encoder.backward(&feats, &dh);
        }
        (loss, probs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_grin::graph::mock::MockGraph;

    fn community_graph() -> MockGraph {
        // two 15-cliques: links inside communities share many common
        // neighbours; cross links share none — NCN's separating signal
        let mut edges = Vec::new();
        for base in [0u64, 15] {
            for i in 0..15u64 {
                for j in 0..15u64 {
                    if i != j {
                        edges.push((base + i, base + j, 1.0));
                    }
                }
            }
        }
        MockGraph::new(30, &edges)
    }

    #[test]
    fn common_neighbors_found() {
        let g = community_graph();
        let cn = common_neighbors(&g, LabelId(0), LabelId(0), VId(0), VId(1), 32);
        assert_eq!(cn.len(), 13);
        let cn_cross = common_neighbors(&g, LabelId(0), LabelId(0), VId(0), VId(20), 32);
        assert!(cn_cross.is_empty());
    }

    #[test]
    fn examples_are_balanced_and_labeled() {
        let g = community_graph();
        let ex = build_examples(&g, LabelId(0), LabelId(0), 20, 1);
        let pos = ex.iter().filter(|e| e.label == 1.0).count();
        let neg = ex.len() - pos;
        assert_eq!(pos, 20);
        assert_eq!(neg, 20);
    }

    #[test]
    fn ncn_learns_to_separate() {
        let g = community_graph();
        let sampler = Sampler::new(&g, LabelId(0), LabelId(0), vec![5], 16);
        let examples = build_examples(&g, LabelId(0), LabelId(0), 40, 3);
        let mut model = NcnModel::new(16, 16, 5);
        for _ in 0..150 {
            model.train_batch(&sampler, &examples, 0.01);
        }
        let probs = model.predict(&sampler, &examples);
        // AUC-style check: mean positive prob far above mean negative prob
        let (mut p_sum, mut p_n, mut n_sum, mut n_n) = (0.0, 0, 0.0, 0);
        for (p, ex) in probs.iter().zip(&examples) {
            if ex.label == 1.0 {
                p_sum += p;
                p_n += 1;
            } else {
                n_sum += p;
                n_n += 1;
            }
        }
        let (p_mean, n_mean) = (p_sum / p_n as f32, n_sum / n_n as f32);
        assert!(
            p_mean > n_mean + 0.2,
            "positives {p_mean} vs negatives {n_mean}"
        );
    }
}
