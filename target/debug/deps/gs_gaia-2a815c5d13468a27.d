/root/repo/target/debug/deps/gs_gaia-2a815c5d13468a27.d: crates/gs-gaia/src/lib.rs

/root/repo/target/debug/deps/gs_gaia-2a815c5d13468a27: crates/gs-gaia/src/lib.rs

crates/gs-gaia/src/lib.rs:
