//! Concurrency stress tests for the simulated cluster's synchronization
//! protocols. Each runs under `gs_sanitizer::with_sanitizer`: in default
//! builds the report is trivially empty and these are plain stress tests;
//! under `--features sanitize` (the CI `sanitize` job) the same runs also
//! assert the protocols are happens-before clean.

use graphscope_flex::gs_sanitizer;
use std::sync::Arc;

/// N workers hammering the GRAPE aggregator's double-buffer slots across
/// superstep boundaries: every round's reduction must be exact for every
/// worker, and the accumulate → barrier → read → barrier → leader-reset
/// protocol must be race-free.
#[test]
fn grape_aggregator_double_buffer_stress() {
    let k = 8;
    let rounds = 40;
    let ((), report) = gs_sanitizer::with_sanitizer(21, || {
        let comms = graphscope_flex::gs_grape::CommHandle::cluster(k);
        std::thread::scope(|s| {
            for c in comms {
                s.spawn(move || {
                    for r in 0..rounds {
                        // alternate integer and float reductions so both
                        // slot arrays cross superstep boundaries
                        let total = c.allreduce(c.my_id as u64 + r);
                        let expect = (0..k as u64).map(|i| i + r).sum::<u64>();
                        assert_eq!(total, expect, "worker {} round {r}", c.my_id);
                        let ftotal = c.allreduce_f64(0.5);
                        assert!((ftotal - k as f64 * 0.5).abs() < 1e-9);
                    }
                });
            }
        });
    });
    assert!(report.is_clean(), "{}", report.render());
}

/// Concurrent submitters to ONE HiActor shard: the mailbox must preserve
/// each submitter's order (per-shard FIFO), and the runtime must stay
/// sanitizer-clean under contention.
#[test]
fn hiactor_single_shard_preserves_submitter_fifo() {
    let callers = 4;
    let jobs_per_caller = 50;
    let (log, report) = gs_sanitizer::with_sanitizer(22, || {
        let rt = graphscope_flex::gs_hiactor::HiActorRuntime::new(2);
        let log = Arc::new(parking_lot::Mutex::new(Vec::<(usize, usize)>::new()));
        std::thread::scope(|s| {
            for t in 0..callers {
                let rt = &rt;
                let log = Arc::clone(&log);
                s.spawn(move || {
                    let rxs: Vec<_> = (0..jobs_per_caller)
                        .map(|i| {
                            let log = Arc::clone(&log);
                            rt.submit(Some(0), move || log.lock().push((t, i)))
                        })
                        .collect();
                    for rx in rxs {
                        rx.recv().unwrap();
                    }
                });
            }
        });
        rt.quiesce();
        Arc::try_unwrap(log).expect("all clones done").into_inner()
    });
    assert_eq!(log.len(), callers * jobs_per_caller);
    // each submitter's jobs ran in its submission order
    for t in 0..callers {
        let seq: Vec<usize> = log
            .iter()
            .filter(|&&(lt, _)| lt == t)
            .map(|&(_, i)| i)
            .collect();
        assert_eq!(seq, (0..jobs_per_caller).collect::<Vec<_>>(), "caller {t}");
    }
    assert!(report.is_clean(), "{}", report.render());
}

/// Concurrent `call_sync` storm against a single-shard service: every call
/// completes, the procedure registry survives concurrent readers, and the
/// whole run is sanitizer-clean.
#[test]
fn hiactor_call_sync_storm_on_one_shard() {
    use graphscope_flex::gs_ir::Value;
    use std::collections::HashMap;
    let (count, report) = gs_sanitizer::with_sanitizer(23, || {
        let svc = graphscope_flex::gs_hiactor::QueryService::new(1);
        let hits = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        svc.register(
            "tick",
            Arc::new(move |_| {
                h.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Ok(vec![vec![Value::Int(1)]])
            }),
        );
        std::thread::scope(|s| {
            for _ in 0..4 {
                let svc = &svc;
                s.spawn(move || {
                    for _ in 0..50 {
                        let rows = svc.call_sync("tick", HashMap::new()).unwrap();
                        assert_eq!(rows[0][0], Value::Int(1));
                    }
                });
            }
        });
        svc.runtime().quiesce();
        drop(svc); // idle shards block on their mailboxes: tear down first
        hits.load(std::sync::atomic::Ordering::Relaxed)
    });
    assert_eq!(count, 200);
    assert!(report.is_clean(), "{}", report.render());
}
