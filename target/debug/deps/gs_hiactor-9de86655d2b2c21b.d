/root/repo/target/debug/deps/gs_hiactor-9de86655d2b2c21b.d: crates/gs-hiactor/src/lib.rs

/root/repo/target/debug/deps/libgs_hiactor-9de86655d2b2c21b.rlib: crates/gs-hiactor/src/lib.rs

/root/repo/target/debug/deps/libgs_hiactor-9de86655d2b2c21b.rmeta: crates/gs-hiactor/src/lib.rs

crates/gs-hiactor/src/lib.rs:
