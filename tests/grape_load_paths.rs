//! Loader telemetry: backends that serve bulk adjacency must load through
//! the bulk path, and iterator-only backends through the fallback — proven
//! by the `grape.load.*` counters.
//!
//! Lives in its own integration-test binary because the telemetry registry
//! is process-global; the single test runs both phases sequentially.

use gs_grape::{GrapeEngine, GrinProjection};
use gs_graph::data::PropertyGraphData;
use gs_grin::graph::mock::MockGraph;
use gs_vineyard::VineyardGraph;

#[test]
fn loader_telemetry_distinguishes_bulk_from_iterator_paths() {
    let n = 50usize;
    let edges: Vec<(u64, u64)> = (0..n as u64).map(|v| (v, (v * 7 + 1) % n as u64)).collect();
    let registry = gs_telemetry::Registry::new();
    gs_telemetry::install(registry.clone());

    // phase 1 — Vineyard advertises ADJ_LIST_ARRAY: the load must go bulk
    let data = PropertyGraphData::from_edge_list(n, &edges);
    let store = VineyardGraph::build(&data).unwrap();
    let (engine, _) = GrapeEngine::from_grin(&store, &GrinProjection::all(), 3).unwrap();
    assert!(
        registry.counter_value("grape.load.adjacency_scans{path=bulk}") >= 1,
        "vineyard load must take the bulk adjacency path"
    );
    assert_eq!(
        registry.counter_value("grape.load.adjacency_scans{path=iter}"),
        0,
        "vineyard load must not fall back to iterators"
    );
    assert!(registry.counter_value("grape.load.vertex_scans{path=array}") >= 1);
    assert_eq!(
        registry.counter_value("grape.load.edges"),
        edges.len() as u64
    );
    // per-fragment edge counters cover every routed edge
    let per_fragment: u64 = (0..3)
        .map(|f| registry.counter_value(&format!("grape.load.fragment_edges{{frag={f}}}")))
        .sum();
    assert_eq!(per_fragment, edges.len() as u64);
    assert!(
        registry.span_names().iter().any(|s| s == "grape.load"),
        "load span missing: {:?}",
        registry.span_names()
    );
    drop(engine);

    // phase 2 — an iterator-only store must take the fallback path
    registry.reset();
    let triples: Vec<(u64, u64, f64)> = edges.iter().map(|&(s, d)| (s, d, 1.0)).collect();
    let slow = MockGraph::new_iter_only(n, &triples);
    let (_, _) = GrapeEngine::from_grin(&slow, &GrinProjection::all(), 3).unwrap();
    assert!(
        registry.counter_value("grape.load.adjacency_scans{path=iter}") >= 1,
        "iterator-only load must take the fallback path"
    );
    assert_eq!(
        registry.counter_value("grape.load.adjacency_scans{path=bulk}"),
        0,
        "iterator-only store has no bulk path"
    );
    assert!(registry.counter_value("grape.load.vertex_scans{path=iter}") >= 1);

    gs_telemetry::uninstall();
}
