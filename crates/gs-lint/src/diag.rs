//! Diagnostic model: stable L-codes, Off/Warn/Deny levels, findings.
//!
//! Mirrors `gs-ir::verify` (E/W codes over plans) and `gs-sanitizer`
//! (S codes over executions) one layer up: L codes over the workspace's
//! own source and manifests.

use std::fmt;

/// How a lint's findings are treated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// The lint does not run.
    Off,
    /// Findings are reported but only fail under `--deny`.
    Warn,
    /// Findings always fail the run.
    Deny,
}

/// Untracked `std::sync`/`parking_lot` primitive in a sanitizer-
/// instrumented crate.
pub const L001: &str = "L001";
/// `HashMap`/`HashSet` iteration feeding floating-point accumulation.
pub const L002: &str = "L002";
/// `.unwrap()`/`.expect()` on channel `send`/`recv` in engine code.
pub const L003: &str = "L003";
/// Telemetry name not in the documented registry or malformed.
pub const L004: &str = "L004";
/// Feature-gate hygiene (missing forward or passthrough counterpart).
pub const L005: &str = "L005";
/// Wall-clock read in a deterministic replay/checkpoint path.
pub const L006: &str = "L006";

/// All codes, in order.
pub const ALL_CODES: [&str; 6] = [L001, L002, L003, L004, L005, L006];

/// Short human description per code (for the table footer and docs).
pub fn describe(code: &str) -> &'static str {
    match code {
        L001 => "raw sync primitive in an instrumented crate (use Tracked*)",
        L002 => "hash-order iteration feeds float accumulation",
        L003 => "unwrap/expect on channel send/recv in engine code",
        L004 => "telemetry name malformed or missing from the registry",
        L005 => "feature-gate hygiene (forwarding / passthrough)",
        L006 => "wall-clock read in a deterministic path",
        _ => "unknown code",
    }
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Stable code, e.g. `L001`.
    pub code: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong and what to do instead.
    pub message: String,
    /// The offending source line, whitespace-normalized (baseline key).
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} {}",
            self.code, self.file, self.line, self.message
        )
    }
}

/// A finding that was suppressed, and by what.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Suppressed {
    pub finding: Finding,
    /// `inline` or `baseline`.
    pub mechanism: &'static str,
    /// The justification the author wrote.
    pub reason: String,
}

/// Whitespace-normalizes a source line for use as a stable baseline key.
pub fn normalize_snippet(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut last_space = true;
    for c in line.trim().chars() {
        if c.is_whitespace() {
            if !last_space {
                out.push(' ');
            }
            last_space = true;
        } else {
            out.push(c);
            last_space = false;
        }
    }
    out.truncate(120);
    out
}
