/root/repo/target/debug/examples/quickstart-1ce1117bada09d84.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1ce1117bada09d84: examples/quickstart.rs

examples/quickstart.rs:
