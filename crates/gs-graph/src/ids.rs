//! Strongly-typed graph identifiers and the external↔internal id map.
//!
//! All storage backends assign *internal* dense ids to vertices so that
//! topology structures (CSR offsets, bitmaps, frontier arrays) can be indexed
//! directly. External ids — whatever the dataset uses — are mapped through an
//! [`IdMap`]. Vineyard advertises this as its "internal ID assignment"
//! feature; GART and GraphAr reuse the same machinery.

use std::collections::HashMap;
use std::fmt;

/// Internal vertex identifier: dense, 0-based within a label (or globally for
/// homogeneous graphs).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VId(pub u64);

/// Edge identifier: dense per storage backend; the high bits may encode the
/// edge label for backends that keep per-label edge arrays.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct EId(pub u64);

/// Label identifier for vertex or edge labels (LPG model).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct LabelId(pub u16);

/// Property identifier within a label.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PropId(pub u16);

impl VId {
    /// Index form for slicing dense arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EId {
    /// Index form for slicing dense arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LabelId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PropId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}
impl fmt::Debug for EId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}
impl fmt::Debug for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}
impl fmt::Debug for PropId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for VId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Maps external (dataset) vertex ids to dense internal [`VId`]s and back.
///
/// Internally this is an open-addressed hash table plus a reverse array. The
/// paper's Vineyard backend uses a perfect-hash variant; open addressing over
/// a power-of-two table gives us the same O(1)-lookup/dense-reverse contract
/// without an offline construction pass, which matters for GART where ids
/// arrive online.
#[derive(Clone, Debug, Default)]
pub struct IdMap {
    forward: HashMap<u64, VId>,
    reverse: Vec<u64>,
}

impl IdMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a map sized for `capacity` vertices.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            forward: HashMap::with_capacity(capacity),
            reverse: Vec::with_capacity(capacity),
        }
    }

    /// Returns the internal id for `external`, inserting a fresh one if the
    /// id has not been seen before.
    pub fn get_or_insert(&mut self, external: u64) -> VId {
        if let Some(&v) = self.forward.get(&external) {
            return v;
        }
        let v = VId(self.reverse.len() as u64);
        self.forward.insert(external, v);
        self.reverse.push(external);
        v
    }

    /// Looks up the internal id for an external id.
    #[inline]
    pub fn internal(&self, external: u64) -> Option<VId> {
        self.forward.get(&external).copied()
    }

    /// Looks up the external id for an internal id.
    #[inline]
    pub fn external(&self, internal: VId) -> Option<u64> {
        self.reverse.get(internal.index()).copied()
    }

    /// Number of mapped vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.reverse.len()
    }

    /// Whether the map is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.reverse.is_empty()
    }

    /// Iterates over `(external, internal)` pairs in internal-id order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, VId)> + '_ {
        self.reverse
            .iter()
            .enumerate()
            .map(|(i, &ext)| (ext, VId(i as u64)))
    }

    /// Unmaps `external` from the forward direction, returning the slot it
    /// pointed at. The reverse array keeps the external id so dense internal
    /// slots stay resolvable (MVCC stores need old snapshots to keep
    /// answering `external(v)` for slots whose mapping moved on).
    pub fn remove(&mut self, external: u64) -> Option<VId> {
        self.forward.remove(&external)
    }

    /// Re-points `external` at an existing slot (the inverse of
    /// [`IdMap::remove`], used to undo a removal or a remap). The slot must
    /// already exist in the reverse array.
    pub fn reassign(&mut self, external: u64, v: VId) {
        debug_assert!(v.index() < self.reverse.len());
        self.forward.insert(external, v);
    }

    /// Iterates the *forward* mapping in arbitrary order. Unlike
    /// [`IdMap::iter`], this reflects removals and remaps, so it is the
    /// right source for serialising a map whose slots have churned.
    pub fn forward_iter(&self) -> impl Iterator<Item = (u64, VId)> + '_ {
        self.forward.iter().map(|(&e, &v)| (e, v))
    }

    /// Rebuilds a map from a serialised reverse array and forward pairs
    /// (which need not cover every reverse slot — removed externals keep
    /// their dense slot but lose their forward entry).
    pub fn from_parts(reverse: Vec<u64>, forward: impl IntoIterator<Item = (u64, VId)>) -> Self {
        let mut m = Self {
            forward: HashMap::new(),
            reverse,
        };
        for (ext, v) in forward {
            debug_assert!(v.index() < m.reverse.len());
            m.forward.insert(ext, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_map_assigns_dense_ids() {
        let mut m = IdMap::new();
        let a = m.get_or_insert(100);
        let b = m.get_or_insert(7);
        let a2 = m.get_or_insert(100);
        assert_eq!(a, VId(0));
        assert_eq!(b, VId(1));
        assert_eq!(a, a2);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn id_map_round_trips() {
        let mut m = IdMap::new();
        for ext in [42u64, 0, 9999, 7, 3] {
            m.get_or_insert(ext);
        }
        for ext in [42u64, 0, 9999, 7, 3] {
            let v = m.internal(ext).unwrap();
            assert_eq!(m.external(v), Some(ext));
        }
        assert_eq!(m.internal(123456), None);
        assert_eq!(m.external(VId(99)), None);
    }

    #[test]
    fn id_map_iter_is_internal_order() {
        let mut m = IdMap::new();
        m.get_or_insert(5);
        m.get_or_insert(1);
        m.get_or_insert(9);
        let pairs: Vec<_> = m.iter().collect();
        assert_eq!(pairs, vec![(5, VId(0)), (1, VId(1)), (9, VId(2))]);
    }

    #[test]
    fn id_debug_formats() {
        assert_eq!(format!("{:?}", VId(3)), "v3");
        assert_eq!(format!("{:?}", EId(4)), "e4");
        assert_eq!(format!("{:?}", LabelId(1)), "l1");
        assert_eq!(format!("{:?}", PropId(2)), "p2");
    }
}
