//! Suppressions: inline `// gs-lint: allow(Lxxx reason)` comments and the
//! committed baseline file.
//!
//! Both mechanisms require a written justification — an allow without a
//! reason does not suppress anything. Inline allows apply to findings of
//! the named code on the comment's own line or the line directly below
//! (so both trailing and preceding-line comments work). The baseline file
//! keys findings by `(code, file, normalized snippet, occurrence)` so
//! entries survive unrelated line drift, and stale entries (matching
//! nothing) are themselves reported — a baseline can only shrink honestly.

use crate::diag::{normalize_snippet, Finding, ALL_CODES};
use crate::lexer::Comment;
use std::collections::HashMap;

/// One parsed inline allow.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InlineAllow {
    pub code: &'static str,
    pub line: u32,
    pub reason: String,
}

/// Parses every well-formed `gs-lint: allow(Lxxx reason)` in `comments`.
/// Malformed allows (unknown code, empty reason) are returned separately
/// so the caller can surface them instead of silently ignoring them.
pub fn parse_inline_allows(comments: &[Comment]) -> (Vec<InlineAllow>, Vec<(u32, String)>) {
    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    for c in comments {
        // doc comments (`///`, `//!`) are documentation, not suppressions —
        // they may legitimately describe the allow syntax itself
        if c.text.starts_with('/') || c.text.starts_with('!') {
            continue;
        }
        let mut rest = c.text.as_str();
        while let Some(at) = rest.find("gs-lint:") {
            rest = &rest[at + "gs-lint:".len()..];
            let trimmed = rest.trim_start();
            let Some(args) = trimmed.strip_prefix("allow(") else {
                malformed.push((c.line, "expected `allow(...)` after `gs-lint:`".into()));
                continue;
            };
            let Some(close) = args.find(')') else {
                malformed.push((c.line, "unclosed `allow(`".into()));
                continue;
            };
            let body = &args[..close];
            rest = &args[close + 1..];
            let (code_str, reason) = match body.split_once([' ', ':', ',']) {
                Some((code, reason)) => (code.trim(), reason.trim()),
                None => (body.trim(), ""),
            };
            let Some(code) = ALL_CODES.iter().find(|c| **c == code_str) else {
                malformed.push((c.line, format!("unknown code `{code_str}` in allow")));
                continue;
            };
            if reason.is_empty() {
                malformed.push((
                    c.line,
                    format!("allow({code}) without a justification does not suppress"),
                ));
                continue;
            }
            allows.push(InlineAllow {
                code,
                line: c.line,
                reason: reason.to_string(),
            });
        }
    }
    (allows, malformed)
}

/// Returns the allow covering `finding`, if any. An allow on line N
/// covers findings on N (trailing comment) and N+1 (preceding comment).
pub fn matching_allow<'a>(allows: &'a [InlineAllow], finding: &Finding) -> Option<&'a InlineAllow> {
    allows
        .iter()
        .find(|a| a.code == finding.code && (a.line == finding.line || a.line + 1 == finding.line))
}

/// One committed baseline entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineEntry {
    pub code: String,
    /// Workspace-relative path.
    pub file: String,
    /// 0-based occurrence index among identical (code, file, snippet).
    pub occurrence: u32,
    /// Whitespace-normalized offending line.
    pub snippet: String,
    /// Why this finding is acceptable.
    pub reason: String,
}

/// Parses the baseline format: tab-separated
/// `CODE<TAB>path<TAB>occurrence<TAB>snippet<TAB>reason`, with `#`
/// comment lines and blank lines ignored. Malformed lines are returned
/// as errors with their 1-based line numbers.
pub fn parse_baseline(text: &str) -> (Vec<BaselineEntry>, Vec<(u32, String)>) {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i as u32 + 1;
        let line = raw.trim_end();
        if line.trim().is_empty() || line.trim_start().starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 5 {
            errors.push((
                line_no,
                format!("expected 5 tab-separated fields, got {}", fields.len()),
            ));
            continue;
        }
        let Ok(occurrence) = fields[2].parse::<u32>() else {
            errors.push((line_no, format!("bad occurrence index `{}`", fields[2])));
            continue;
        };
        if !ALL_CODES.contains(&fields[0]) {
            errors.push((line_no, format!("unknown code `{}`", fields[0])));
            continue;
        }
        if fields[4].trim().is_empty() {
            errors.push((line_no, "baseline entry without a justification".into()));
            continue;
        }
        entries.push(BaselineEntry {
            code: fields[0].to_string(),
            file: fields[1].to_string(),
            occurrence,
            snippet: normalize_snippet(fields[3]),
            reason: fields[4].trim().to_string(),
        });
    }
    (entries, errors)
}

/// Renders entries back into the committed format (round-trips with
/// [`parse_baseline`]).
pub fn format_baseline(entries: &[BaselineEntry]) -> String {
    let mut out = String::from(
        "# gs-lint baseline: justified, pre-existing findings.\n\
         # CODE\tfile\toccurrence\tsnippet\treason\n",
    );
    for e in entries {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\n",
            e.code, e.file, e.occurrence, e.snippet, e.reason
        ));
    }
    out
}

/// Splits `findings` into (kept, suppressed-with-reason) against the
/// baseline, and reports entries that matched nothing as stale.
pub fn apply_baseline(
    findings: Vec<Finding>,
    baseline: &[BaselineEntry],
) -> (Vec<Finding>, Vec<(Finding, String)>, Vec<BaselineEntry>) {
    // occurrence counters per (code, file, snippet)
    let mut seen: HashMap<(String, String, String), u32> = HashMap::new();
    let mut used = vec![false; baseline.len()];
    let mut kept = Vec::new();
    let mut suppressed = Vec::new();
    for f in findings {
        let key = (f.code.to_string(), f.file.clone(), f.snippet.clone());
        let occ = {
            let c = seen.entry(key).or_insert(0);
            let v = *c;
            *c += 1;
            v
        };
        let hit = baseline.iter().enumerate().find(|(_, e)| {
            e.code == f.code && e.file == f.file && e.snippet == f.snippet && e.occurrence == occ
        });
        match hit {
            Some((i, e)) => {
                used[i] = true;
                suppressed.push((f, e.reason.clone()));
            }
            None => kept.push(f),
        }
    }
    let stale = baseline
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(e, _)| e.clone())
        .collect();
    (kept, suppressed, stale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::L001;

    fn finding(code: &'static str, file: &str, line: u32, snippet: &str) -> Finding {
        Finding {
            code,
            file: file.into(),
            line,
            message: "m".into(),
            snippet: normalize_snippet(snippet),
        }
    }

    #[test]
    fn inline_allow_parses_and_matches_both_placements() {
        let comments = vec![Comment {
            line: 10,
            text: " gs-lint: allow(L001 init-only lock, single-threaded)".into(),
        }];
        let (allows, malformed) = parse_inline_allows(&comments);
        assert!(malformed.is_empty());
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].code, "L001");
        assert_eq!(allows[0].reason, "init-only lock, single-threaded");
        // trailing (same line) and preceding (next line) both covered
        assert!(matching_allow(&allows, &finding(L001, "f", 10, "x")).is_some());
        assert!(matching_allow(&allows, &finding(L001, "f", 11, "x")).is_some());
        assert!(matching_allow(&allows, &finding(L001, "f", 12, "x")).is_none());
    }

    #[test]
    fn allow_without_reason_is_malformed_and_does_not_suppress() {
        let comments = vec![Comment {
            line: 3,
            text: "gs-lint: allow(L003)".into(),
        }];
        let (allows, malformed) = parse_inline_allows(&comments);
        assert!(allows.is_empty());
        assert_eq!(malformed.len(), 1);
        assert!(malformed[0].1.contains("justification"));
    }

    #[test]
    fn allow_with_unknown_code_is_malformed() {
        let comments = vec![Comment {
            line: 1,
            text: "gs-lint: allow(L999 whatever)".into(),
        }];
        let (allows, malformed) = parse_inline_allows(&comments);
        assert!(allows.is_empty());
        assert_eq!(malformed.len(), 1);
    }

    #[test]
    fn baseline_round_trips() {
        let entries = vec![
            BaselineEntry {
                code: "L001".into(),
                file: "crates/x/src/lib.rs".into(),
                occurrence: 0,
                snippet: "static GLOBAL: OnceLock<parking_lot::Mutex<Registry>> = …".into(),
                reason: "recording substrate for the sanitizer itself".into(),
            },
            BaselineEntry {
                code: "L006".into(),
                file: "crates/y/src/z.rs".into(),
                occurrence: 2,
                snippet: "let t = Instant::now();".into(),
                reason: "diagnostic-only; value never reaches replayed state".into(),
            },
        ];
        let (parsed, errors) = parse_baseline(&format_baseline(&entries));
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(parsed, entries);
    }

    #[test]
    fn baseline_rejects_missing_reason_and_bad_code() {
        let text = "L001\tf.rs\t0\tsnippet\t\nL999\tf.rs\t0\tsnippet\treason\n";
        let (entries, errors) = parse_baseline(text);
        assert!(entries.is_empty());
        assert_eq!(errors.len(), 2);
    }

    #[test]
    fn apply_baseline_suppresses_by_occurrence_and_reports_stale() {
        let f1 = finding(L001, "a.rs", 5, "use std::sync::Mutex;");
        let f2 = finding(L001, "a.rs", 9, "use std::sync::Mutex;");
        let baseline = vec![
            BaselineEntry {
                code: "L001".into(),
                file: "a.rs".into(),
                occurrence: 1,
                snippet: "use std::sync::Mutex;".into(),
                reason: "second one is init-only".into(),
            },
            BaselineEntry {
                code: "L001".into(),
                file: "gone.rs".into(),
                occurrence: 0,
                snippet: "whatever".into(),
                reason: "stale".into(),
            },
        ];
        let (kept, suppressed, stale) = apply_baseline(vec![f1.clone(), f2.clone()], &baseline);
        assert_eq!(kept, vec![f1]);
        assert_eq!(suppressed.len(), 1);
        assert_eq!(suppressed[0].0, f2);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].file, "gone.rs");
    }
}
