/root/repo/target/debug/deps/gs_grin-928bba5f6d60a455.d: crates/gs-grin/src/lib.rs crates/gs-grin/src/capability.rs crates/gs-grin/src/graph.rs crates/gs-grin/src/predicate.rs

/root/repo/target/debug/deps/libgs_grin-928bba5f6d60a455.rlib: crates/gs-grin/src/lib.rs crates/gs-grin/src/capability.rs crates/gs-grin/src/graph.rs crates/gs-grin/src/predicate.rs

/root/repo/target/debug/deps/libgs_grin-928bba5f6d60a455.rmeta: crates/gs-grin/src/lib.rs crates/gs-grin/src/capability.rs crates/gs-grin/src/graph.rs crates/gs-grin/src/predicate.rs

crates/gs-grin/src/lib.rs:
crates/gs-grin/src/capability.rs:
crates/gs-grin/src/graph.rs:
crates/gs-grin/src/predicate.rs:
