/root/repo/target/debug/deps/gs_ir-97c731334f35e7d9.d: crates/gs-ir/src/lib.rs crates/gs-ir/src/builder.rs crates/gs-ir/src/engine.rs crates/gs-ir/src/exec.rs crates/gs-ir/src/expr.rs crates/gs-ir/src/logical.rs crates/gs-ir/src/pattern.rs crates/gs-ir/src/physical.rs crates/gs-ir/src/record.rs

/root/repo/target/debug/deps/libgs_ir-97c731334f35e7d9.rlib: crates/gs-ir/src/lib.rs crates/gs-ir/src/builder.rs crates/gs-ir/src/engine.rs crates/gs-ir/src/exec.rs crates/gs-ir/src/expr.rs crates/gs-ir/src/logical.rs crates/gs-ir/src/pattern.rs crates/gs-ir/src/physical.rs crates/gs-ir/src/record.rs

/root/repo/target/debug/deps/libgs_ir-97c731334f35e7d9.rmeta: crates/gs-ir/src/lib.rs crates/gs-ir/src/builder.rs crates/gs-ir/src/engine.rs crates/gs-ir/src/exec.rs crates/gs-ir/src/expr.rs crates/gs-ir/src/logical.rs crates/gs-ir/src/pattern.rs crates/gs-ir/src/physical.rs crates/gs-ir/src/record.rs

crates/gs-ir/src/lib.rs:
crates/gs-ir/src/builder.rs:
crates/gs-ir/src/engine.rs:
crates/gs-ir/src/exec.rs:
crates/gs-ir/src/expr.rs:
crates/gs-ir/src/logical.rs:
crates/gs-ir/src/pattern.rs:
crates/gs-ir/src/physical.rs:
crates/gs-ir/src/record.rs:
