//! Distributed BFS (Pregel model): frontier expansion with depth messages.

use crate::engine::{run_pregel, GrapeEngine, PregelContext, PregelProgram};
use gs_graph::VId;

struct Bfs {
    src: VId,
}

impl PregelProgram for Bfs {
    type Msg = u64;
    type Value = u64; // depth; u64::MAX = unreached

    fn init(&self, _g: VId, _f: &crate::fragment::Fragment) -> u64 {
        u64::MAX
    }

    fn compute(
        &self,
        step: usize,
        local: u32,
        value: &mut u64,
        msgs: &[u64],
        ctx: &mut PregelContext<'_, u64>,
    ) -> bool {
        let incoming = if step == 0 {
            if ctx.frag.global(local) == self.src {
                Some(0)
            } else {
                None
            }
        } else {
            msgs.iter().copied().min()
        };
        if let Some(d) = incoming {
            if d < *value {
                *value = d;
                ctx.send_to_out_neighbors(local, d + 1);
            }
        }
        false
    }

    fn combine(&self, a: u64, b: u64) -> Option<u64> {
        Some(a.min(b))
    }
}

/// BFS depths from `src` (u64::MAX when unreachable), indexed by global id.
pub fn bfs(engine: &GrapeEngine, src: VId) -> Vec<u64> {
    // Default::default() for u64 is 0, which would mislabel unreached
    // vertices; map through an explicit run instead.

    run_pregel(engine, &Bfs { src }, engine.global_n() + 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::reference;

    #[test]
    fn matches_reference_on_chain_with_branch() {
        let edges = vec![
            (VId(0), VId(1)),
            (VId(1), VId(2)),
            (VId(2), VId(3)),
            (VId(0), VId(4)),
            (VId(4), VId(3)),
            // vertex 5 unreachable
            (VId(5), VId(0)),
        ];
        for k in [1, 2, 3] {
            let engine = GrapeEngine::from_edges(6, &edges, k);
            let got = bfs(&engine, VId(0));
            let want = reference::bfs(6, &edges, VId(0));
            assert_eq!(got, want, "k={k}");
        }
    }

    #[test]
    fn unreachable_stays_max() {
        let edges = vec![(VId(0), VId(1))];
        let engine = GrapeEngine::from_edges(3, &edges, 2);
        let got = bfs(&engine, VId(0));
        assert_eq!(got, vec![0, 1, u64::MAX]);
    }

    #[test]
    fn random_graph_matches_reference() {
        use rand::Rng;
        let mut rng = rand_pcg::Pcg64Mcg::new(77);
        let n = 200u64;
        let edges: Vec<(VId, VId)> = (0..800)
            .map(|_| (VId(rng.gen_range(0..n)), VId(rng.gen_range(0..n))))
            .collect();
        let engine = GrapeEngine::from_edges(n as usize, &edges, 4);
        assert_eq!(
            bfs(&engine, VId(0)),
            reference::bfs(n as usize, &edges, VId(0))
        );
    }
}
