/root/repo/target/debug/deps/graphscope_flex-6eb9245d21708ed1.d: src/lib.rs

/root/repo/target/debug/deps/graphscope_flex-6eb9245d21708ed1: src/lib.rs

src/lib.rs:
