//! # gs-grape — GRAPE, the high-performance analytical engine
//!
//! The analytics stack of GraphScope Flex (paper §6): a distributed
//! (thread-per-fragment, edge-cut) BSP engine with
//!
//! * [`fragment`]s and GRAPE's "highly optimized core operators for
//!   fragment management, local evaluations ... and their communication",
//! * a [`messages`] manager that aggregates small messages into compact
//!   varint-encoded buffers (trading latency for throughput, as §6
//!   describes),
//! * three programming models — the vertex-centric **Pregel** API
//!   ([`engine::PregelProgram`]), the subgraph-centric **PIE** model
//!   ([`pie::PieProgram`], auto-parallelizing sequential fragment code),
//!   and the vertex-subset **FLASH** model ([`flash`]) with non-neighbor
//!   communication,
//! * the built-in [`algorithms`] package (PageRank/BFS/SSSP/WCC/CDLP/
//!   k-core/LCC), and
//! * a simulated-[`gpu`] backend with load-balanced thread mapping and
//!   inter-device work stealing.

pub mod algorithms;
pub mod compat;
pub mod engine;
pub mod flash;
pub mod fragment;
pub mod gpu;
pub mod ingress;
pub mod loader;
pub mod messages;
pub mod pie;
pub mod recover;
pub mod traversal;

pub use engine::{
    run_pregel, ClusterAborted, CommHandle, GlobalSync, GrapeEngine, PregelContext, PregelProgram,
};
pub use flash::{run_flash, FlashContext, VertexSubset};
pub use fragment::Fragment;
pub use gpu::{bfs_gpu, pagerank_gpu, Device, GpuCluster};
pub use ingress::IncrementalPageRank;
pub use loader::{load_fragments, GrinProjection, VertexSpace, REQUIRED_CAPABILITIES};
pub use messages::{MessageBlock, OutBuffers, Payload};
pub use pie::{run_pie, PieContext, PieProgram};
pub use recover::{
    run_pregel_recoverable, run_recoverable, CheckpointStore, PregelState, RecoveryConfig,
};
pub use traversal::{
    bfs_direction_optimizing, bfs_with_policy, sssp_direction_optimizing, sssp_with_policy,
    TraversalPolicy, TraversalReport,
};
