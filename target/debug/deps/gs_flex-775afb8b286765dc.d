/root/repo/target/debug/deps/gs_flex-775afb8b286765dc.d: crates/gs-flex/src/lib.rs crates/gs-flex/src/cyber.rs crates/gs-flex/src/equity.rs crates/gs-flex/src/flexbuild.rs crates/gs-flex/src/fraud.rs crates/gs-flex/src/snb/mod.rs crates/gs-flex/src/snb/backend.rs crates/gs-flex/src/snb/bi.rs crates/gs-flex/src/snb/interactive.rs crates/gs-flex/src/social.rs Cargo.toml

/root/repo/target/debug/deps/libgs_flex-775afb8b286765dc.rmeta: crates/gs-flex/src/lib.rs crates/gs-flex/src/cyber.rs crates/gs-flex/src/equity.rs crates/gs-flex/src/flexbuild.rs crates/gs-flex/src/fraud.rs crates/gs-flex/src/snb/mod.rs crates/gs-flex/src/snb/backend.rs crates/gs-flex/src/snb/bi.rs crates/gs-flex/src/snb/interactive.rs crates/gs-flex/src/social.rs Cargo.toml

crates/gs-flex/src/lib.rs:
crates/gs-flex/src/cyber.rs:
crates/gs-flex/src/equity.rs:
crates/gs-flex/src/flexbuild.rs:
crates/gs-flex/src/fraud.rs:
crates/gs-flex/src/snb/mod.rs:
crates/gs-flex/src/snb/backend.rs:
crates/gs-flex/src/snb/bi.rs:
crates/gs-flex/src/snb/interactive.rs:
crates/gs-flex/src/social.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
