//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures all [scale]          run every experiment
//! figures <id> [scale]         run one (table1, fig7a..fig7m, table2, exp6..exp8)
//! figures list                 list experiment ids
//! ```
//!
//! `scale` multiplies dataset sizes (default 1.0 ≈ laptop-friendly).

use gs_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let scale: f64 = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);

    match which {
        "list" => {
            for (name, _) in experiments::EXPERIMENTS {
                println!("{name}");
            }
        }
        "all" => {
            for (name, f) in experiments::EXPERIMENTS {
                println!("\n################ {name} ################");
                f(scale);
            }
        }
        name => {
            if experiments::run(name, scale).is_none() {
                eprintln!("unknown experiment `{name}`; try `figures list`");
                std::process::exit(1);
            }
        }
    }
}
