/root/repo/target/debug/deps/gs_graphar-88b207fa9b9190f7.d: crates/gs-graphar/src/lib.rs crates/gs-graphar/src/codec.rs crates/gs-graphar/src/csv.rs crates/gs-graphar/src/format.rs crates/gs-graphar/src/store.rs

/root/repo/target/debug/deps/libgs_graphar-88b207fa9b9190f7.rlib: crates/gs-graphar/src/lib.rs crates/gs-graphar/src/codec.rs crates/gs-graphar/src/csv.rs crates/gs-graphar/src/format.rs crates/gs-graphar/src/store.rs

/root/repo/target/debug/deps/libgs_graphar-88b207fa9b9190f7.rmeta: crates/gs-graphar/src/lib.rs crates/gs-graphar/src/codec.rs crates/gs-graphar/src/csv.rs crates/gs-graphar/src/format.rs crates/gs-graphar/src/store.rs

crates/gs-graphar/src/lib.rs:
crates/gs-graphar/src/codec.rs:
crates/gs-graphar/src/csv.rs:
crates/gs-graphar/src/format.rs:
crates/gs-graphar/src/store.rs:
