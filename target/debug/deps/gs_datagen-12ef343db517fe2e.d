/root/repo/target/debug/deps/gs_datagen-12ef343db517fe2e.d: crates/gs-datagen/src/lib.rs crates/gs-datagen/src/apps.rs crates/gs-datagen/src/catalog.rs crates/gs-datagen/src/powerlaw.rs crates/gs-datagen/src/rmat.rs crates/gs-datagen/src/snb.rs

/root/repo/target/debug/deps/gs_datagen-12ef343db517fe2e: crates/gs-datagen/src/lib.rs crates/gs-datagen/src/apps.rs crates/gs-datagen/src/catalog.rs crates/gs-datagen/src/powerlaw.rs crates/gs-datagen/src/rmat.rs crates/gs-datagen/src/snb.rs

crates/gs-datagen/src/lib.rs:
crates/gs-datagen/src/apps.rs:
crates/gs-datagen/src/catalog.rs:
crates/gs-datagen/src/powerlaw.rs:
crates/gs-datagen/src/rmat.rs:
crates/gs-datagen/src/snb.rs:
