/root/repo/target/debug/examples/dbg_cdlp-b5733ef8c86a5af3.d: examples/dbg_cdlp.rs

/root/repo/target/debug/examples/dbg_cdlp-b5733ef8c86a5af3: examples/dbg_cdlp.rs

examples/dbg_cdlp.rs:
