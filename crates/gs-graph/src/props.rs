//! Columnar property storage.
//!
//! Vineyard and GraphAr keep vertex/edge properties as per-property columns
//! (label-partitioned), which is what makes predicate pushdown and selective
//! chunk loading effective. A [`PropertyColumn`] is a typed vector with a
//! validity bitmap; a [`PropertyTable`] groups the columns of one label.

use crate::error::{GraphError, Result};
use crate::ids::PropId;
use crate::value::{Value, ValueType};

/// One typed column with a null bitmap.
#[derive(Clone, Debug, PartialEq)]
pub enum PropertyColumn {
    Int(Vec<i64>, Bitmap),
    Float(Vec<f64>, Bitmap),
    Str(Vec<String>, Bitmap),
    Bool(Vec<bool>, Bitmap),
    Date(Vec<i64>, Bitmap),
}

/// Simple validity bitmap (1 bit per row; 1 = valid).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Bitmap {
    bits: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Bitmap of `len` bits, all set to `valid`.
    pub fn new(len: usize, valid: bool) -> Self {
        let words = len.div_ceil(64);
        Self {
            bits: vec![if valid { u64::MAX } else { 0 }; words],
            len,
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.bits[i / 64] >> (i % 64) & 1 == 1
    }

    /// Writes bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        debug_assert!(i < self.len);
        if v {
            self.bits[i / 64] |= 1 << (i % 64);
        } else {
            self.bits[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Appends a bit.
    pub fn push(&mut self, v: bool) {
        if self.len.is_multiple_of(64) {
            self.bits.push(0);
        }
        self.len += 1;
        self.set(self.len - 1, v);
    }

    /// Number of set (valid) bits.
    pub fn count_set(&self) -> usize {
        let mut c: usize = self.bits.iter().map(|w| w.count_ones() as usize).sum();
        // mask out bits past len in the final word
        let tail = self.len % 64;
        if tail != 0 {
            let last = *self.bits.last().unwrap();
            c -= (last >> tail).count_ones() as usize;
        }
        c
    }
}

impl PropertyColumn {
    /// Creates an empty column of the given type.
    pub fn new(vt: ValueType) -> Result<Self> {
        Ok(match vt {
            ValueType::Int => PropertyColumn::Int(Vec::new(), Bitmap::default()),
            ValueType::Float => PropertyColumn::Float(Vec::new(), Bitmap::default()),
            ValueType::Str => PropertyColumn::Str(Vec::new(), Bitmap::default()),
            ValueType::Bool => PropertyColumn::Bool(Vec::new(), Bitmap::default()),
            ValueType::Date => PropertyColumn::Date(Vec::new(), Bitmap::default()),
            other => {
                return Err(GraphError::Schema(format!(
                    "unsupported column type {other:?}"
                )))
            }
        })
    }

    /// This column's value type.
    pub fn value_type(&self) -> ValueType {
        match self {
            PropertyColumn::Int(..) => ValueType::Int,
            PropertyColumn::Float(..) => ValueType::Float,
            PropertyColumn::Str(..) => ValueType::Str,
            PropertyColumn::Bool(..) => ValueType::Bool,
            PropertyColumn::Date(..) => ValueType::Date,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            PropertyColumn::Int(v, _) => v.len(),
            PropertyColumn::Float(v, _) => v.len(),
            PropertyColumn::Str(v, _) => v.len(),
            PropertyColumn::Bool(v, _) => v.len(),
            PropertyColumn::Date(v, _) => v.len(),
        }
    }

    /// True when no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a value; `Value::Null` appends an invalid row. Type-checked.
    pub fn push(&mut self, v: &Value) -> Result<()> {
        match (self, v) {
            (PropertyColumn::Int(col, bm), Value::Int(x)) => {
                col.push(*x);
                bm.push(true);
            }
            (PropertyColumn::Float(col, bm), Value::Float(x)) => {
                col.push(*x);
                bm.push(true);
            }
            (PropertyColumn::Float(col, bm), Value::Int(x)) => {
                col.push(*x as f64);
                bm.push(true);
            }
            (PropertyColumn::Str(col, bm), Value::Str(x)) => {
                col.push(x.clone());
                bm.push(true);
            }
            (PropertyColumn::Bool(col, bm), Value::Bool(x)) => {
                col.push(*x);
                bm.push(true);
            }
            (PropertyColumn::Date(col, bm), Value::Date(x)) => {
                col.push(*x);
                bm.push(true);
            }
            (PropertyColumn::Date(col, bm), Value::Int(x)) => {
                col.push(*x);
                bm.push(true);
            }
            (col, Value::Null) => {
                col.push_null();
            }
            (col, v) => {
                return Err(GraphError::Type(format!(
                    "cannot store {:?} in {:?} column",
                    v.value_type(),
                    col.value_type()
                )))
            }
        }
        Ok(())
    }

    /// Appends a null row.
    pub fn push_null(&mut self) {
        match self {
            PropertyColumn::Int(col, bm) | PropertyColumn::Date(col, bm) => {
                col.push(0);
                bm.push(false);
            }
            PropertyColumn::Float(col, bm) => {
                col.push(0.0);
                bm.push(false);
            }
            PropertyColumn::Str(col, bm) => {
                col.push(String::new());
                bm.push(false);
            }
            PropertyColumn::Bool(col, bm) => {
                col.push(false);
                bm.push(false);
            }
        }
    }

    /// Reads row `i` as a [`Value`] (Null when invalid).
    pub fn get(&self, i: usize) -> Value {
        match self {
            PropertyColumn::Int(col, bm) => {
                if bm.get(i) {
                    Value::Int(col[i])
                } else {
                    Value::Null
                }
            }
            PropertyColumn::Float(col, bm) => {
                if bm.get(i) {
                    Value::Float(col[i])
                } else {
                    Value::Null
                }
            }
            PropertyColumn::Str(col, bm) => {
                if bm.get(i) {
                    Value::Str(col[i].clone())
                } else {
                    Value::Null
                }
            }
            PropertyColumn::Bool(col, bm) => {
                if bm.get(i) {
                    Value::Bool(col[i])
                } else {
                    Value::Null
                }
            }
            PropertyColumn::Date(col, bm) => {
                if bm.get(i) {
                    Value::Date(col[i])
                } else {
                    Value::Null
                }
            }
        }
    }

    /// Raw i64 view for Int/Date columns (fast paths avoid Value boxing).
    pub fn as_i64_slice(&self) -> Option<&[i64]> {
        match self {
            PropertyColumn::Int(col, _) | PropertyColumn::Date(col, _) => Some(col),
            _ => None,
        }
    }

    /// Raw f64 view for Float columns.
    pub fn as_f64_slice(&self) -> Option<&[f64]> {
        match self {
            PropertyColumn::Float(col, _) => Some(col),
            _ => None,
        }
    }
}

/// All property columns of one vertex or edge label, indexed by [`PropId`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PropertyTable {
    columns: Vec<(String, PropertyColumn)>,
    /// Explicit row count (column lengths can't be consulted when a label
    /// has zero properties).
    rows: usize,
}

impl PropertyTable {
    /// Creates a table from `(name, type)` definitions.
    pub fn new(defs: &[(String, ValueType)]) -> Result<Self> {
        let mut columns = Vec::with_capacity(defs.len());
        for (name, vt) in defs {
            columns.push((name.clone(), PropertyColumn::new(*vt)?));
        }
        Ok(Self { columns, rows: 0 })
    }

    /// Appends one row; `values` must be in PropId order.
    pub fn push_row(&mut self, values: &[Value]) -> Result<()> {
        if values.len() != self.columns.len() {
            return Err(GraphError::Schema(format!(
                "row has {} values, table has {} columns",
                values.len(),
                self.columns.len()
            )));
        }
        for ((_, col), v) in self.columns.iter_mut().zip(values) {
            col.push(v)?;
        }
        self.rows += 1;
        Ok(())
    }

    /// Number of rows (tracked explicitly, so zero-property labels count
    /// correctly).
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Column by property id.
    pub fn column(&self, p: PropId) -> Option<&PropertyColumn> {
        self.columns.get(p.index()).map(|(_, c)| c)
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Option<(PropId, &PropertyColumn)> {
        self.columns
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| (PropId(i as u16), &self.columns[i].1))
    }

    /// Reads cell `(row, prop)`.
    pub fn get(&self, row: usize, p: PropId) -> Value {
        self.column(p).map_or(Value::Null, |c| c.get(row))
    }

    /// Column names in PropId order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|(n, _)| n.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_basics() {
        let mut bm = Bitmap::new(70, true);
        assert_eq!(bm.count_set(), 70);
        bm.set(65, false);
        assert!(!bm.get(65));
        assert_eq!(bm.count_set(), 69);
        bm.push(false);
        bm.push(true);
        assert_eq!(bm.len(), 72);
        assert_eq!(bm.count_set(), 70);
    }

    #[test]
    fn column_type_checking() {
        let mut c = PropertyColumn::new(ValueType::Int).unwrap();
        c.push(&Value::Int(5)).unwrap();
        assert!(c.push(&Value::Str("x".into())).is_err());
        c.push(&Value::Null).unwrap();
        assert_eq!(c.get(0), Value::Int(5));
        assert_eq!(c.get(1), Value::Null);
    }

    #[test]
    fn float_column_accepts_ints() {
        let mut c = PropertyColumn::new(ValueType::Float).unwrap();
        c.push(&Value::Int(2)).unwrap();
        assert_eq!(c.get(0), Value::Float(2.0));
    }

    #[test]
    fn unsupported_column_types_error() {
        assert!(PropertyColumn::new(ValueType::List).is_err());
        assert!(PropertyColumn::new(ValueType::Vertex).is_err());
    }

    #[test]
    fn table_rows_round_trip() {
        let mut t = PropertyTable::new(&[
            ("name".to_string(), ValueType::Str),
            ("age".to_string(), ValueType::Int),
        ])
        .unwrap();
        t.push_row(&[Value::Str("ann".into()), Value::Int(30)])
            .unwrap();
        t.push_row(&[Value::Str("bob".into()), Value::Null])
            .unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.get(0, PropId(1)), Value::Int(30));
        assert_eq!(t.get(1, PropId(1)), Value::Null);
        let (pid, _) = t.column_by_name("age").unwrap();
        assert_eq!(pid, PropId(1));
        assert!(t.column_by_name("ghost").is_none());
    }

    #[test]
    fn table_arity_mismatch_errors() {
        let mut t = PropertyTable::new(&[("x".to_string(), ValueType::Int)]).unwrap();
        assert!(t.push_row(&[]).is_err());
    }
}
