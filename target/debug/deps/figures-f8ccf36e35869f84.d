/root/repo/target/debug/deps/figures-f8ccf36e35869f84.d: crates/gs-bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-f8ccf36e35869f84.rmeta: crates/gs-bench/src/bin/figures.rs Cargo.toml

crates/gs-bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
