/root/repo/target/debug/deps/full_stack-5857c1eb8001bbb4.d: tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-5857c1eb8001bbb4: tests/full_stack.rs

tests/full_stack.rs:
