//! Snapshot-isolation transactions over the GART store.
//!
//! Every write is tagged with the transaction id (XID) that staged it:
//! `created = TXN_TAG | xid`. Commit does **not** rewrite the write-set —
//! it flips one slot in the transaction-status table ([`Tst`]) and the
//! visibility check resolves tagged marks through that table, so commit
//! is O(1) regardless of transaction size. Eager *hint stamping* then
//! rewrites tagged marks to the real commit version (deduped per
//! adjacency region) to restore the version-fence fast path; the
//! `lazy_stamping` knob on the store disables it so tests can exercise
//! the pure-TST visibility path.
//!
//! Conflict detection is first-writer-wins: each written entity key maps
//! to a lock slot recording the in-flight owner and the last commit
//! version; a second writer — or a writer whose snapshot predates the
//! key's last commit — receives [`GraphError::TxnConflict`] and must
//! abort. Abort physically unstages the write-set (entry removal, region
//! compaction, fence recompute); edge-id allocation and property rows are
//! deliberately *not* rolled back, so the id holes an aborted transaction
//! leaves behind reproduce bit-identically under WAL replay.

use crate::wal::Rec;
use crate::{GartStore, GartView, Inner, Version};
use gs_grin::{EId, GraphError, LabelId, Result, VId, Value};
use std::collections::HashSet;
use std::sync::Arc;

/// High bit marking an uncommitted version: `TXN_TAG | xid`. Tagged marks
/// compare greater than any real version, so a region containing pending
/// writes automatically fails the `max_created <= version` fence and
/// falls to the checked scan path.
pub(crate) const TXN_TAG: u64 = 1 << 63;

/// A mark that is never visible to anyone (aborted slots, "not deleted").
pub(crate) const NEVER: Version = u64::MAX;

/// The reader XID of plain (non-transactional) snapshots.
pub(crate) const NO_XID: u64 = u64::MAX;

const IN_PROGRESS: u64 = 0;
const ABORTED: u64 = 1;

/// Transaction-status table: slot `xid - base` holds `0` (in progress),
/// `1` (aborted) or `version + 2` (committed at `version`). Checkpoints
/// compact it by advancing `base` past every completed transaction.
#[derive(Debug, Default)]
pub(crate) struct Tst {
    pub(crate) base: u64,
    slots: Vec<u64>,
}

impl Tst {
    pub(crate) fn with_base(base: u64) -> Self {
        Self {
            base,
            slots: Vec::new(),
        }
    }

    /// The xid the next [`Tst::begin`] will hand out.
    pub(crate) fn next_xid(&self) -> u64 {
        self.base + self.slots.len() as u64
    }

    pub(crate) fn begin(&mut self) -> u64 {
        let xid = self.next_xid();
        self.slots.push(IN_PROGRESS);
        xid
    }

    /// Replay-side registration of an xid read from the log. Gaps (begun
    /// but never-logged transactions) fill as in-progress and are aborted
    /// at end-of-log.
    pub(crate) fn ensure(&mut self, xid: u64) {
        while self.next_xid() <= xid {
            self.slots.push(IN_PROGRESS);
        }
    }

    pub(crate) fn commit(&mut self, xid: u64, version: Version) {
        self.slots[(xid - self.base) as usize] = version + 2;
    }

    pub(crate) fn abort(&mut self, xid: u64) {
        self.slots[(xid - self.base) as usize] = ABORTED;
    }

    pub(crate) fn in_progress(&self, xid: u64) -> bool {
        xid >= self.base && self.slots.get((xid - self.base) as usize) == Some(&IN_PROGRESS)
    }

    /// Drops every completed slot; callable only at quiescent points
    /// (no transaction in flight).
    pub(crate) fn compact(&mut self) {
        debug_assert!(self.slots.iter().all(|&s| s != IN_PROGRESS));
        self.base = self.next_xid();
        self.slots.clear();
    }

    /// Whether `mark` is visible to a reader pinned at `version` running
    /// as transaction `xid` (pass [`NO_XID`] for plain snapshots): plain
    /// marks compare against the version, tagged marks resolve through
    /// the status table (own writes are always visible).
    #[inline]
    pub(crate) fn visible(&self, mark: Version, version: Version, xid: u64) -> bool {
        if mark & TXN_TAG == 0 {
            return mark <= version;
        }
        if mark == NEVER {
            return false;
        }
        let owner = mark & !TXN_TAG;
        if owner == xid {
            return true;
        }
        static TST_LOOKUPS: gs_telemetry::StaticCounter =
            gs_telemetry::StaticCounter::new("gart.txn.tst_lookups");
        TST_LOOKUPS.add(1);
        if owner < self.base {
            // completed before the last checkpoint; its marks were
            // resolved to plain versions at encode time, so a stale tag
            // can only mean "committed long ago"
            return true;
        }
        match self.slots.get((owner - self.base) as usize) {
            Some(&s) if s >= 2 => s - 2 <= version,
            _ => false,
        }
    }

    /// Resolves `mark` to a plain version for checkpoint encoding:
    /// committed tags become their commit version, anything else (there
    /// should be nothing else at a quiescent point) becomes [`NEVER`].
    pub(crate) fn resolve(&self, mark: Version) -> Version {
        if mark & TXN_TAG == 0 {
            return mark;
        }
        if mark == NEVER {
            return NEVER;
        }
        let owner = mark & !TXN_TAG;
        if owner < self.base {
            return NEVER;
        }
        match self.slots.get((owner - self.base) as usize) {
            Some(&s) if s >= 2 => s - 2,
            _ => NEVER,
        }
    }
}

/// A read-visibility context threaded through adjacency scans: the pinned
/// version, the reader's xid, the status table, and (only when the
/// neighbour label has ever seen a vertex deletion) the neighbour
/// deletion marks to filter against.
pub(crate) struct Vis<'a> {
    pub(crate) version: Version,
    pub(crate) xid: u64,
    pub(crate) tst: &'a Tst,
    pub(crate) nbr_deleted: Option<&'a [Version]>,
}

impl<'a> Vis<'a> {
    #[inline]
    pub(crate) fn sees(&self, mark: Version) -> bool {
        self.tst.visible(mark, self.version, self.xid)
    }

    #[inline]
    pub(crate) fn nbr_live(&self, nbr: VId) -> bool {
        match self.nbr_deleted {
            None => true,
            Some(del) => del.get(nbr.index()).is_none_or(|&dv| !self.sees(dv)),
        }
    }
}

/// The identity of a written entity for first-writer-wins detection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum WriteKey {
    /// `(vertex label, external id)`
    Vertex(u16, u64),
    /// `(edge label, edge id)`
    Edge(u16, u64),
}

/// One lock slot: the in-flight owner (or [`NO_XID`]) plus the version of
/// the last commit that wrote this key, which catches writers whose
/// snapshot predates a concurrent committed write.
#[derive(Clone, Copy, Debug)]
pub(crate) struct LockState {
    pub(crate) owner: u64,
    pub(crate) last_commit: Version,
}

/// How to undo one staged operation (applied in reverse on abort).
#[derive(Clone, Debug)]
pub(crate) enum UndoOp {
    /// An inserted vertex: kill the slot, unmap the external id, and
    /// restore a displaced (deleted-then-readded) predecessor mapping.
    Vertex {
        label: LabelId,
        idx: u64,
        external: u64,
        displaced: Option<VId>,
    },
    /// An inserted edge: physically unstage this txn's entries from both
    /// endpoint regions (edge-id and property-row allocation stays).
    Edge { label: LabelId, src: VId, dst: VId },
    /// An edge-deletion tombstone on both endpoint regions.
    EdgeTomb {
        label: LabelId,
        src: VId,
        dst: VId,
        eid: EId,
    },
    /// A vertex-deletion mark.
    VertexDel { label: LabelId, idx: u64 },
}

/// Where commit-time hint stamping must rewrite this txn's tagged marks.
#[derive(Clone, Copy, Debug)]
pub(crate) enum StampSite {
    VCreated {
        label: LabelId,
        idx: u64,
    },
    VDeleted {
        label: LabelId,
        idx: u64,
    },
    /// One endpoint region (`out` selects direction) of an edge label;
    /// stamped once per region regardless of how many ops touched it.
    AdjRegion {
        out: bool,
        label: LabelId,
        v: VId,
    },
}

/// The per-transaction mutable state shared by explicit transactions,
/// the implicit auto-commit transaction, and WAL replay.
pub(crate) struct TxnCore {
    pub(crate) xid: u64,
    pub(crate) begin: Version,
    pub(crate) begin_logged: bool,
    pub(crate) undo: Vec<UndoOp>,
    pub(crate) stamps: Vec<StampSite>,
    pub(crate) keys: Vec<WriteKey>,
}

impl TxnCore {
    pub(crate) fn new(xid: u64, begin: Version) -> Self {
        Self {
            xid,
            begin,
            begin_logged: false,
            undo: Vec::new(),
            stamps: Vec::new(),
            keys: Vec::new(),
        }
    }

    /// The tagged mark this transaction stamps on its writes.
    #[inline]
    pub(crate) fn mark(&self) -> Version {
        TXN_TAG | self.xid
    }
}

/// First-writer-wins lock acquisition; `Err(TxnConflict)` means the
/// caller must abort (the lock table is left untouched on conflict).
pub(crate) fn lock_write(g: &mut Inner, core: &mut TxnCore, key: WriteKey) -> Result<()> {
    let cur = g.locks.get(&key).copied();
    if let Some(st) = cur {
        if st.owner != NO_XID && st.owner != core.xid && g.tst.in_progress(st.owner) {
            gs_telemetry::counter!("gart.txn.conflicts");
            return Err(GraphError::TxnConflict(format!(
                "{key:?} has uncommitted writer txn {}",
                st.owner
            )));
        }
        if st.last_commit > core.begin {
            gs_telemetry::counter!("gart.txn.conflicts");
            return Err(GraphError::TxnConflict(format!(
                "{key:?} was written at version {} after this transaction began at {}",
                st.last_commit, core.begin
            )));
        }
        if st.owner == core.xid {
            return Ok(());
        }
    }
    core.keys.push(key);
    g.locks.insert(
        key,
        LockState {
            owner: core.xid,
            last_commit: cur.map_or(0, |s| s.last_commit),
        },
    );
    Ok(())
}

/// Releases this txn's locks; `commit_version` records first-writer-wins
/// evidence for transactions that began before this commit.
pub(crate) fn release_locks(g: &mut Inner, core: &TxnCore, commit_version: Option<Version>) {
    for key in &core.keys {
        if let Some(st) = g.locks.get_mut(key) {
            if st.owner == core.xid {
                st.owner = NO_XID;
                if let Some(v) = commit_version {
                    st.last_commit = v;
                }
            }
        }
    }
}

/// Resolves an external vertex id to the slot visible to `(version, xid)`:
/// the primary (newest) mapping first, then the shadow chain of displaced
/// slots that older snapshots may still see.
pub(crate) fn resolve_visible_vertex(
    g: &Inner,
    vlabel: LabelId,
    external: u64,
    version: Version,
    xid: u64,
) -> Option<VId> {
    let li = vlabel.index();
    let live = |v: VId| {
        g.tst.visible(g.vertex_created[li][v.index()], version, xid)
            && !g.tst.visible(g.vertex_deleted[li][v.index()], version, xid)
    };
    if let Some(v) = g.id_maps[li].internal(external) {
        if live(v) {
            return Some(v);
        }
    }
    if let Some(chain) = g.shadow[li].get(&external) {
        for &v in chain.iter().rev() {
            if live(v) {
                return Some(v);
            }
        }
    }
    None
}

// =====================================================================
// Op application — shared verbatim by the live write path and WAL replay
// so recovered state is bit-identical to the pre-crash committed state.
// =====================================================================

pub(crate) fn apply_add_vertex(
    g: &mut Inner,
    core: &mut TxnCore,
    label: LabelId,
    external: u64,
    props: &[Value],
) -> Result<VId> {
    let li = label.index();
    let displaced = match g.id_maps[li].internal(external) {
        None => None,
        Some(old) => {
            let created = g.vertex_created[li][old.index()];
            let deleted = g.vertex_deleted[li][old.index()];
            let sees_c = g.tst.visible(created, core.begin, core.xid);
            let sees_d = g.tst.visible(deleted, core.begin, core.xid);
            if sees_c && !sees_d {
                return Err(GraphError::Schema(format!(
                    "vertex {external} already exists in label {label:?}"
                )));
            }
            if sees_c && sees_d {
                // deleted at this snapshot: displace the dead slot into
                // the shadow chain and re-add under a fresh slot
                Some(old)
            } else {
                // staged by a concurrent writer; the lock table normally
                // fences this, so surface it as the conflict it is
                return Err(GraphError::TxnConflict(format!(
                    "vertex {external} in label {label:?} has an uncommitted writer"
                )));
            }
        }
    };
    g.vprops[li].push_row(props)?;
    if let Some(old) = displaced {
        g.id_maps[li].remove(external);
        g.shadow[li].entry(external).or_default().push(old);
    }
    let v = g.id_maps[li].get_or_insert(external);
    debug_assert_eq!(v.index(), g.vertex_created[li].len());
    g.vertex_created[li].push(core.mark());
    g.vertex_deleted[li].push(NEVER);
    core.undo.push(UndoOp::Vertex {
        label,
        idx: v.0,
        external,
        displaced,
    });
    core.stamps.push(StampSite::VCreated { label, idx: v.0 });
    Ok(v)
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_add_edge(
    g: &mut Inner,
    core: &mut TxnCore,
    label: LabelId,
    src_label: LabelId,
    dst_label: LabelId,
    src_ext: u64,
    dst_ext: u64,
    props: &[Value],
) -> Result<EId> {
    let s =
        resolve_visible_vertex(g, src_label, src_ext, core.begin, core.xid).ok_or_else(|| {
            GraphError::NotFound(format!("edge src {src_ext} not visible at write version"))
        })?;
    let d =
        resolve_visible_vertex(g, dst_label, dst_ext, core.begin, core.xid).ok_or_else(|| {
            GraphError::NotFound(format!("edge dst {dst_ext} not visible at write version"))
        })?;
    let li = label.index();
    g.eprops[li].push_row(props)?;
    let eid = EId(g.edge_counts[li]);
    g.edge_counts[li] += 1;
    g.adj_out[li].push(s.index(), d, eid, core.mark());
    g.adj_in[li].push(d.index(), s, eid, core.mark());
    core.undo.push(UndoOp::Edge {
        label,
        src: s,
        dst: d,
    });
    core.stamps.push(StampSite::AdjRegion {
        out: true,
        label,
        v: s,
    });
    core.stamps.push(StampSite::AdjRegion {
        out: false,
        label,
        v: d,
    });
    Ok(eid)
}

/// Finds the first live edge `src_ext -> dst_ext` visible to the txn.
#[allow(clippy::too_many_arguments)]
pub(crate) fn resolve_edge_victim(
    g: &Inner,
    label: LabelId,
    src_label: LabelId,
    dst_label: LabelId,
    src_ext: u64,
    dst_ext: u64,
    version: Version,
    xid: u64,
) -> Option<(VId, VId, EId)> {
    let s = resolve_visible_vertex(g, src_label, src_ext, version, xid)?;
    let d = resolve_visible_vertex(g, dst_label, dst_ext, version, xid)?;
    let vis = Vis {
        version,
        xid,
        tst: &g.tst,
        nbr_deleted: None,
    };
    let mut victim = None;
    g.adj_out[label.index()].for_each(s.index(), &vis, &mut |nbr, eid| {
        if nbr == d && victim.is_none() {
            victim = Some(eid);
        }
    });
    victim.map(|eid| (s, d, eid))
}

/// Applies an edge-deletion tombstone for an already-resolved victim
/// (the WAL logs the resolved triple, so replay never re-resolves).
pub(crate) fn apply_del_edge_resolved(
    g: &mut Inner,
    core: &mut TxnCore,
    label: LabelId,
    src: VId,
    dst: VId,
    eid: EId,
) {
    let li = label.index();
    g.adj_out[li].add_tombstone(src.index(), eid, core.mark());
    g.adj_in[li].add_tombstone(dst.index(), eid, core.mark());
    core.undo.push(UndoOp::EdgeTomb {
        label,
        src,
        dst,
        eid,
    });
    core.stamps.push(StampSite::AdjRegion {
        out: true,
        label,
        v: src,
    });
    core.stamps.push(StampSite::AdjRegion {
        out: false,
        label,
        v: dst,
    });
}

/// Applies a vertex-deletion mark for an already-resolved slot.
pub(crate) fn apply_del_vertex_resolved(g: &mut Inner, core: &mut TxnCore, label: LabelId, v: VId) {
    let li = label.index();
    g.vertex_deleted[li][v.index()] = core.mark();
    g.deleted_any[li] = true;
    core.undo.push(UndoOp::VertexDel { label, idx: v.0 });
    core.stamps.push(StampSite::VDeleted { label, idx: v.0 });
}

/// Rolls back the tail of `core`'s write set down to `undo.len() ==
/// savepoint` (used to keep failed batches atomic) — or the whole txn on
/// abort (`savepoint == 0`). Operations are undone in reverse order; each
/// undo is idempotent with respect to region-level unstaging.
pub(crate) fn undo_to(g: &mut Inner, core: &mut TxnCore, savepoint: usize) {
    let tag = core.mark();
    while core.undo.len() > savepoint {
        let op = core.undo.pop().expect("savepoint bounded by undo length");
        match op {
            UndoOp::Vertex {
                label,
                idx,
                external,
                displaced,
            } => {
                let li = label.index();
                g.vertex_created[li][idx as usize] = NEVER;
                g.id_maps[li].remove(external);
                if let Some(old) = displaced {
                    g.id_maps[li].reassign(external, old);
                    if let Some(chain) = g.shadow[li].get_mut(&external) {
                        chain.pop();
                        if chain.is_empty() {
                            g.shadow[li].remove(&external);
                        }
                    }
                }
            }
            UndoOp::Edge { label, src, dst } => {
                let li = label.index();
                g.adj_out[li].unstage(src.index(), tag);
                g.adj_in[li].unstage(dst.index(), tag);
            }
            UndoOp::EdgeTomb {
                label,
                src,
                dst,
                eid,
            } => {
                let li = label.index();
                g.adj_out[li].untomb(src.index(), eid, tag);
                g.adj_in[li].untomb(dst.index(), eid, tag);
            }
            UndoOp::VertexDel { label, idx } => {
                g.vertex_deleted[label.index()][idx as usize] = NEVER;
            }
        }
    }
}

/// Commit-time hint stamping: rewrites this txn's tagged marks to the
/// real commit version so the fence fast path recovers. Region sites are
/// deduped — one scan per touched region, not per op.
pub(crate) fn stamp_txn(g: &mut Inner, core: &TxnCore, version: Version) {
    let tag = core.mark();
    let mut seen: HashSet<(bool, u16, u64)> = HashSet::new();
    for site in &core.stamps {
        match *site {
            StampSite::VCreated { label, idx } => {
                let c = &mut g.vertex_created[label.index()][idx as usize];
                if *c == tag {
                    *c = version;
                }
            }
            StampSite::VDeleted { label, idx } => {
                let d = &mut g.vertex_deleted[label.index()][idx as usize];
                if *d == tag {
                    *d = version;
                }
            }
            StampSite::AdjRegion { out, label, v } => {
                if seen.insert((out, label.0, v.0)) {
                    let pool = if out {
                        &mut g.adj_out[label.index()]
                    } else {
                        &mut g.adj_in[label.index()]
                    };
                    pool.stamp(v.index(), tag, version);
                }
            }
        }
    }
}

// =====================================================================
// Shared op wrappers: lock, apply, log. Used by both the explicit
// transaction API and the store's implicit auto-commit layer.
// =====================================================================

pub(crate) fn op_add_vertex(
    store: &GartStore,
    g: &mut Inner,
    core: &mut TxnCore,
    label: LabelId,
    external: u64,
    props: &[Value],
) -> Result<VId> {
    lock_write(g, core, WriteKey::Vertex(label.0, external))?;
    let v = apply_add_vertex(g, core, label, external, props)?;
    if store.has_wal() {
        store.log_op(
            core,
            &Rec::AddVertex {
                xid: core.xid,
                label: label.0,
                external,
                props: props.to_vec(),
            },
        )?;
    }
    Ok(v)
}

pub(crate) fn op_add_edge(
    store: &GartStore,
    g: &mut Inner,
    core: &mut TxnCore,
    label: LabelId,
    src_ext: u64,
    dst_ext: u64,
    props: &[Value],
) -> Result<EId> {
    let ldef = store.schema().edge_label(label)?;
    let (sl, dl) = (ldef.src, ldef.dst);
    let eid = apply_add_edge(g, core, label, sl, dl, src_ext, dst_ext, props)?;
    if store.has_wal() {
        store.log_op(
            core,
            &Rec::AddEdge {
                xid: core.xid,
                label: label.0,
                src_ext,
                dst_ext,
                props: props.to_vec(),
            },
        )?;
    }
    Ok(eid)
}

/// Stages a whole batch atomically: all edges validate and apply before
/// anything is logged; the first failure rolls the batch back to its
/// savepoint and returns the error with nothing staged or logged.
pub(crate) fn op_add_edges(
    store: &GartStore,
    g: &mut Inner,
    core: &mut TxnCore,
    label: LabelId,
    edges: &[(u64, u64, Vec<Value>)],
) -> Result<usize> {
    let ldef = store.schema().edge_label(label)?;
    let (sl, dl) = (ldef.src, ldef.dst);
    let savepoint = core.undo.len();
    let stamp_mark = core.stamps.len();
    for (src_ext, dst_ext, props) in edges {
        if let Err(e) = apply_add_edge(g, core, label, sl, dl, *src_ext, *dst_ext, props) {
            undo_to(g, core, savepoint);
            core.stamps.truncate(stamp_mark);
            return Err(e);
        }
    }
    if store.has_wal() {
        for (src_ext, dst_ext, props) in edges {
            store.log_op(
                core,
                &Rec::AddEdge {
                    xid: core.xid,
                    label: label.0,
                    src_ext: *src_ext,
                    dst_ext: *dst_ext,
                    props: props.clone(),
                },
            )?;
        }
    }
    Ok(edges.len())
}

pub(crate) fn op_delete_edge(
    store: &GartStore,
    g: &mut Inner,
    core: &mut TxnCore,
    label: LabelId,
    src_ext: u64,
    dst_ext: u64,
) -> Result<bool> {
    let ldef = store.schema().edge_label(label)?;
    let (sl, dl) = (ldef.src, ldef.dst);
    let Some((s, d, eid)) =
        resolve_edge_victim(g, label, sl, dl, src_ext, dst_ext, core.begin, core.xid)
    else {
        return Ok(false);
    };
    lock_write(g, core, WriteKey::Edge(label.0, eid.0))?;
    apply_del_edge_resolved(g, core, label, s, d, eid);
    if store.has_wal() {
        store.log_op(
            core,
            &Rec::DelEdge {
                xid: core.xid,
                label: label.0,
                src: s.0,
                dst: d.0,
                eid: eid.0,
            },
        )?;
    }
    Ok(true)
}

pub(crate) fn op_delete_vertex(
    store: &GartStore,
    g: &mut Inner,
    core: &mut TxnCore,
    label: LabelId,
    external: u64,
) -> Result<bool> {
    lock_write(g, core, WriteKey::Vertex(label.0, external))?;
    let Some(v) = resolve_visible_vertex(g, label, external, core.begin, core.xid) else {
        return Ok(false);
    };
    apply_del_vertex_resolved(g, core, label, v);
    if store.has_wal() {
        store.log_op(
            core,
            &Rec::DelVertex {
                xid: core.xid,
                label: label.0,
                external,
                idx: v.0,
            },
        )?;
    }
    Ok(true)
}

// =====================================================================
// The explicit transaction handle
// =====================================================================

/// A snapshot-isolation read/write transaction over a [`GartStore`].
///
/// Reads see the store as of the begin version plus the transaction's own
/// staged writes. Writes conflict first-writer-wins: the second
/// transaction to write an entity (or one whose snapshot predates a
/// concurrent committed write to it) receives
/// [`GraphError::TxnConflict`] and should [`GartTxn::abort`] — retrying
/// in a fresh transaction may succeed. Dropping the handle aborts.
pub struct GartTxn {
    store: Arc<GartStore>,
    core: Option<TxnCore>,
}

impl GartTxn {
    pub(crate) fn new(store: Arc<GartStore>, core: TxnCore) -> Self {
        Self {
            store,
            core: Some(core),
        }
    }

    fn core_mut(&mut self) -> &mut TxnCore {
        self.core.as_mut().expect("transaction already finished")
    }

    fn core_ref(&self) -> &TxnCore {
        self.core.as_ref().expect("transaction already finished")
    }

    /// This transaction's id.
    pub fn xid(&self) -> u64 {
        self.core_ref().xid
    }

    /// The committed version this transaction's reads are pinned to.
    pub fn begin_version(&self) -> Version {
        self.core_ref().begin
    }

    /// Inserts a vertex; visible to this transaction immediately, to
    /// others after [`GartTxn::commit`].
    pub fn add_vertex(&mut self, label: LabelId, external: u64, props: Vec<Value>) -> Result<VId> {
        let store = Arc::clone(&self.store);
        let mut g = store.inner.write();
        op_add_vertex(&store, &mut g, self.core_mut(), label, external, &props)
    }

    /// Inserts an edge between endpoints that must be visible at this
    /// transaction's snapshot (plus its own staged vertices).
    pub fn add_edge(
        &mut self,
        label: LabelId,
        src_ext: u64,
        dst_ext: u64,
        props: Vec<Value>,
    ) -> Result<EId> {
        let store = Arc::clone(&self.store);
        let mut g = store.inner.write();
        op_add_edge(
            &store,
            &mut g,
            self.core_mut(),
            label,
            src_ext,
            dst_ext,
            &props,
        )
    }

    /// Stages a batch of edges atomically under one lock acquisition.
    pub fn add_edges(&mut self, label: LabelId, edges: &[(u64, u64, Vec<Value>)]) -> Result<usize> {
        let store = Arc::clone(&self.store);
        let mut g = store.inner.write();
        op_add_edges(&store, &mut g, self.core_mut(), label, edges)
    }

    /// Tombstones the first live matching edge; `Ok(false)` if none is
    /// visible to this transaction.
    pub fn delete_edge(&mut self, label: LabelId, src_ext: u64, dst_ext: u64) -> Result<bool> {
        let store = Arc::clone(&self.store);
        let mut g = store.inner.write();
        op_delete_edge(&store, &mut g, self.core_mut(), label, src_ext, dst_ext)
    }

    /// Tombstones a vertex: it and the adjacency entries pointing at it
    /// disappear from snapshots at or after the commit version, while
    /// older snapshots keep seeing both.
    pub fn delete_vertex(&mut self, label: LabelId, external: u64) -> Result<bool> {
        let store = Arc::clone(&self.store);
        let mut g = store.inner.write();
        op_delete_vertex(&store, &mut g, self.core_mut(), label, external)
    }

    /// Runs a closure under a read guard with a [`GartView`] that sees
    /// the begin-version state plus this transaction's own writes.
    pub fn with_view<R>(&self, f: impl FnOnce(&GartView<'_>) -> R) -> R {
        let core = self.core_ref();
        let g = self.store.inner.read();
        f(&GartView {
            inner: &g,
            schema: self.store.schema(),
            version: core.begin,
            xid: core.xid,
        })
    }

    /// Publishes the write set; returns the new committed version. A
    /// read-only transaction commits without consuming a version.
    pub fn commit(mut self) -> Result<Version> {
        let core = self.core.take().expect("transaction already finished");
        self.store.commit_core(core, false)
    }

    /// Discards the write set, physically unstaging every staged entry.
    pub fn abort(mut self) {
        let core = self.core.take().expect("transaction already finished");
        self.store.abort_core(core);
    }
}

impl Drop for GartTxn {
    fn drop(&mut self) {
        if let Some(core) = self.core.take() {
            self.store.abort_core(core);
        }
    }
}
