//! gs-lint: source-level invariant linter for the GraphScope Flex
//! workspace.
//!
//! The stack's previous PRs each introduced a cross-cutting contract that
//! the compiler cannot check: sanitizer-instrumented crates must use
//! tracked sync primitives (PR 4), cross-worker float reductions must not
//! depend on hash iteration order (PR 7 fixed exactly such a PageRank
//! drift), engine loops must not panic on disconnected channels, telemetry
//! names must match DESIGN.md's documented registry, instrumentation
//! features must forward through the dependency graph, and deterministic
//! replay paths must not read the wall clock. gs-lint re-checks all six on
//! every CI run by lexing the workspace's own sources (with a small
//! in-tree lexer — no external parser) and reading its Cargo manifests.
//!
//! Diagnostics carry stable `L00x` codes (the `gs-ir::verify` E/W-code
//! idiom one layer up), each configurable Off/Warn/Deny, suppressible by
//! an inline `// gs-lint: allow(Lxxx reason)` with a mandatory written
//! justification, or by the committed `lint-baseline.txt`. Stale baseline
//! entries are themselves errors, so suppression can only shrink honestly.
//! The `gs-bench lint` subcommand renders the report and gates CI.

pub mod diag;
pub mod lexer;
pub mod lints;
pub mod manifest;
pub mod registry;
pub mod suppress;
pub mod workspace;

pub use diag::{
    describe, Finding, Level, Suppressed, ALL_CODES, L001, L002, L003, L004, L005, L006,
};
pub use registry::TelemetryRegistry;
pub use suppress::BaselineEntry;

use lints::{collect_facts, CrateFacts, FileCx};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

/// Committed baseline of justified findings, at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.txt";
/// Machine-readable registry dump, regenerated from DESIGN.md.
pub const REGISTRY_DUMP_FILE: &str = "telemetry-registry.txt";

/// Which lints run where, and at what level.
#[derive(Clone, Debug)]
pub struct LintConfig {
    levels: BTreeMap<&'static str, Level>,
    /// Crates under the sanitizer contract (L001).
    pub instrumented_crates: Vec<String>,
    /// Crates whose channel use is engine-critical (L003).
    pub engine_crates: Vec<String>,
    /// Workspace-relative path prefixes that must be deterministic (L006).
    pub deterministic_paths: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> Self {
        let mut levels = BTreeMap::new();
        for code in ALL_CODES {
            levels.insert(code, Level::Deny);
        }
        // L002 is a heuristic (no type information) — warn, don't deny.
        levels.insert(L002, Level::Warn);
        Self {
            levels,
            instrumented_crates: [
                "gs-grape",
                "gs-hiactor",
                "gs-learn",
                "gs-serve",
                "gs-telemetry",
                "gs-graphar",
            ]
            .map(String::from)
            .to_vec(),
            engine_crates: [
                "gs-grape",
                "gs-hiactor",
                "gs-gaia",
                "gs-learn",
                "gs-serve",
                "gs-baselines",
                "gs-bench",
            ]
            .map(String::from)
            .to_vec(),
            deterministic_paths: [
                "crates/gs-grape/src/recover.rs",
                "crates/gs-chaos/src",
                // WAL replay and crash recovery must be a pure function of
                // the bytes on disk — wall-clock reads there break the
                // kill-anywhere equivalence the durability bench asserts.
                "crates/gs-gart/src/wal.rs",
                "crates/gs-gart/src/recovery.rs",
            ]
            .map(String::from)
            .to_vec(),
        }
    }
}

impl LintConfig {
    /// Effective level for `code`.
    pub fn level(&self, code: &str) -> Level {
        self.levels.get(code).copied().unwrap_or(Level::Deny)
    }

    /// Overrides the level for `code`.
    pub fn set_level(&mut self, code: &'static str, level: Level) {
        self.levels.insert(code, level);
    }

    fn on(&self, code: &str) -> bool {
        self.level(code) != Level::Off
    }
}

/// Result of a workspace (or fixture) lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Kept findings with their effective levels, sorted by (file, line).
    pub findings: Vec<(Finding, Level)>,
    /// Findings suppressed by inline allows or the baseline.
    pub suppressed: Vec<Suppressed>,
    /// Baseline entries that matched nothing (must be deleted).
    pub stale_baseline: Vec<BaselineEntry>,
    /// Malformed inline allows: (file, line, problem).
    pub malformed_allows: Vec<(String, u32, String)>,
    /// Malformed baseline lines: (line, problem).
    pub baseline_errors: Vec<(u32, String)>,
    pub files_scanned: usize,
    /// Names extracted from DESIGN.md.
    pub registry_size: usize,
}

impl LintReport {
    /// Findings at Deny level (always fatal).
    pub fn deny_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|(_, l)| *l == Level::Deny)
            .count()
    }

    /// Findings at Warn level (fatal only under `--deny`).
    pub fn warn_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|(_, l)| *l == Level::Warn)
            .count()
    }

    /// Suppression-hygiene problems (stale baseline entries, malformed
    /// allows, unparseable baseline lines) — always fatal: a rotten
    /// suppression is a lint that silently stopped running.
    pub fn hygiene_errors(&self) -> usize {
        self.stale_baseline.len() + self.malformed_allows.len() + self.baseline_errors.len()
    }

    /// Exit-code-determining error count.
    pub fn error_count(&self, deny_warnings: bool) -> usize {
        let warns = if deny_warnings { self.warn_count() } else { 0 };
        self.deny_count() + warns + self.hygiene_errors()
    }
}

/// Runs the per-file lints on one lexed source file.
pub fn run_file_lints(cx: &FileCx, cfg: &LintConfig, registry: &TelemetryRegistry) -> Vec<Finding> {
    let mut out = Vec::new();
    if cfg.on(L001) && cfg.instrumented_crates.iter().any(|c| c == cx.crate_name) {
        lints::l001(cx, &mut out);
    }
    if cfg.on(L002) {
        lints::l002(cx, &mut out);
    }
    if cfg.on(L003) && cfg.engine_crates.iter().any(|c| c == cx.crate_name) {
        lints::l003(cx, &mut out);
    }
    if cfg.on(L004) {
        lints::l004(cx, registry, &mut out);
    }
    if cfg.on(L006)
        && cfg
            .deterministic_paths
            .iter()
            .any(|p| cx.rel_path.starts_with(p.as_str()))
    {
        lints::l006(cx, &mut out);
    }
    out
}

/// Lints one in-memory source file — the fixture-test entry point.
/// Returns (kept findings, inline-suppressed, malformed allows).
pub fn lint_source(
    rel_path: &str,
    crate_name: &str,
    src: &str,
    cfg: &LintConfig,
    registry: &TelemetryRegistry,
) -> (Vec<Finding>, Vec<Suppressed>, Vec<(u32, String)>) {
    let lexed = lexer::lex(src);
    let cx = FileCx::new(rel_path, crate_name, false, &lexed.tokens, src);
    let raw = run_file_lints(&cx, cfg, registry);
    let (allows, malformed) = suppress::parse_inline_allows(&lexed.comments);
    let mut kept = Vec::new();
    let mut suppressed = Vec::new();
    for f in raw {
        match suppress::matching_allow(&allows, &f) {
            Some(a) => suppressed.push(Suppressed {
                finding: f,
                mechanism: "inline",
                reason: a.reason.clone(),
            }),
            None => kept.push(f),
        }
    }
    (kept, suppressed, malformed)
}

/// Renders the machine-readable registry dump (one name per line,
/// `{field}` marking templated names).
pub fn format_registry(registry: &TelemetryRegistry) -> String {
    let mut out = String::from(
        "# telemetry name registry — generated from DESIGN.md's telemetry tables\n\
         # regenerate with: cargo run -p gs-bench --bin lint -- --write-registry\n",
    );
    for e in registry.names() {
        out.push_str(&e.base);
        if e.templated {
            out.push_str("{field}");
        }
        out.push('\n');
    }
    out
}

/// Lints the whole workspace rooted at `root`.
pub fn lint_workspace(root: &Path, cfg: &LintConfig) -> io::Result<LintReport> {
    let ws = workspace::discover(root)?;
    let design = fs::read_to_string(root.join("DESIGN.md")).unwrap_or_default();
    let registry = TelemetryRegistry::from_design_md(&design);
    let baseline_text = fs::read_to_string(root.join(BASELINE_FILE)).unwrap_or_default();
    let (baseline, baseline_errors) = suppress::parse_baseline(&baseline_text);

    let mut raw = Vec::new();
    let mut suppressed = Vec::new();
    let mut malformed_allows = Vec::new();
    let mut facts: BTreeMap<String, CrateFacts> = ws
        .crates
        .iter()
        .map(|c| {
            (
                c.name.clone(),
                CrateFacts {
                    name: c.name.clone(),
                    manifest_path: c.manifest_rel.clone(),
                    manifest: c.manifest.clone(),
                    features_line: c.features_line,
                    ..CrateFacts::default()
                },
            )
        })
        .collect();

    let mut files_scanned = 0usize;
    for file in &ws.files {
        let Ok(src) = fs::read_to_string(&file.abs_path) else {
            continue;
        };
        files_scanned += 1;
        let lexed = lexer::lex(&src);
        let cx = FileCx::new(
            &file.rel_path,
            &file.crate_name,
            file.is_test_file,
            &lexed.tokens,
            &src,
        );
        if !file.is_test_file {
            if let Some(f) = facts.get_mut(&file.crate_name) {
                collect_facts(&cx, f);
            }
        }
        let file_findings = run_file_lints(&cx, cfg, &registry);
        let (allows, malformed) = suppress::parse_inline_allows(&lexed.comments);
        for (line, msg) in malformed {
            malformed_allows.push((file.rel_path.clone(), line, msg));
        }
        for f in file_findings {
            match suppress::matching_allow(&allows, &f) {
                Some(a) => suppressed.push(Suppressed {
                    finding: f,
                    mechanism: "inline",
                    reason: a.reason.clone(),
                }),
                None => raw.push(f),
            }
        }
    }

    if cfg.on(L005) {
        let declarers = ws.feature_declarers();
        for f in facts.values() {
            raw.extend(lints::l005(f, &declarers));
        }
    }

    if cfg.on(L004) {
        if registry.is_empty() {
            raw.push(Finding {
                code: L004,
                file: "DESIGN.md".into(),
                line: 1,
                message: "no telemetry names could be extracted from DESIGN.md's tables — \
                          the registry the L004 lint checks against is empty"
                    .into(),
                snippet: String::new(),
            });
        }
        // committed machine-readable dump must match the live extraction
        if let Ok(existing) = fs::read_to_string(root.join(REGISTRY_DUMP_FILE)) {
            if existing != format_registry(&registry) {
                raw.push(Finding {
                    code: L004,
                    file: REGISTRY_DUMP_FILE.into(),
                    line: 1,
                    message: "registry dump is out of date with DESIGN.md — regenerate with \
                              `cargo run -p gs-bench --bin lint -- --write-registry`"
                        .into(),
                    snippet: String::new(),
                });
            }
        }
    }

    let (kept, base_sup, stale_baseline) = suppress::apply_baseline(raw, &baseline);
    suppressed.extend(base_sup.into_iter().map(|(finding, reason)| Suppressed {
        finding,
        mechanism: "baseline",
        reason,
    }));

    let mut findings: Vec<(Finding, Level)> = kept
        .into_iter()
        .map(|f| {
            let level = cfg.level(f.code);
            (f, level)
        })
        .filter(|(_, l)| *l != Level::Off)
        .collect();
    findings.sort_by(|a, b| {
        (a.0.file.as_str(), a.0.line, a.0.code).cmp(&(b.0.file.as_str(), b.0.line, b.0.code))
    });

    Ok(LintReport {
        findings,
        suppressed,
        stale_baseline,
        malformed_allows,
        baseline_errors,
        files_scanned,
        registry_size: registry.len(),
    })
}
