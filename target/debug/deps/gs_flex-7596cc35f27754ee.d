/root/repo/target/debug/deps/gs_flex-7596cc35f27754ee.d: crates/gs-flex/src/lib.rs crates/gs-flex/src/cyber.rs crates/gs-flex/src/equity.rs crates/gs-flex/src/flexbuild.rs crates/gs-flex/src/fraud.rs crates/gs-flex/src/snb/mod.rs crates/gs-flex/src/snb/backend.rs crates/gs-flex/src/snb/bi.rs crates/gs-flex/src/snb/interactive.rs crates/gs-flex/src/social.rs

/root/repo/target/debug/deps/libgs_flex-7596cc35f27754ee.rlib: crates/gs-flex/src/lib.rs crates/gs-flex/src/cyber.rs crates/gs-flex/src/equity.rs crates/gs-flex/src/flexbuild.rs crates/gs-flex/src/fraud.rs crates/gs-flex/src/snb/mod.rs crates/gs-flex/src/snb/backend.rs crates/gs-flex/src/snb/bi.rs crates/gs-flex/src/snb/interactive.rs crates/gs-flex/src/social.rs

/root/repo/target/debug/deps/libgs_flex-7596cc35f27754ee.rmeta: crates/gs-flex/src/lib.rs crates/gs-flex/src/cyber.rs crates/gs-flex/src/equity.rs crates/gs-flex/src/flexbuild.rs crates/gs-flex/src/fraud.rs crates/gs-flex/src/snb/mod.rs crates/gs-flex/src/snb/backend.rs crates/gs-flex/src/snb/bi.rs crates/gs-flex/src/snb/interactive.rs crates/gs-flex/src/social.rs

crates/gs-flex/src/lib.rs:
crates/gs-flex/src/cyber.rs:
crates/gs-flex/src/equity.rs:
crates/gs-flex/src/flexbuild.rs:
crates/gs-flex/src/fraud.rs:
crates/gs-flex/src/snb/mod.rs:
crates/gs-flex/src/snb/backend.rs:
crates/gs-flex/src/snb/bi.rs:
crates/gs-flex/src/snb/interactive.rs:
crates/gs-flex/src/social.rs:
