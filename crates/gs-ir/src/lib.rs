//! # gs-ir — GraphIR, the unified intermediate representation for graph
//! queries
//!
//! The paper's interactive stack (§5) compiles *both* Gremlin and Cypher
//! into one IR so the parser/optimizer/codegen pipeline is built once. The
//! IR defines:
//!
//! * a data model `D` — [`record::Record`]s of [`Value`]s including the
//!   graph-associated types (vertex/edge/path), with a compile-time
//!   [`record::Layout`] mapping query aliases to record columns;
//! * an operator set `Ω` — **graph operators** (`ScanVertex`, `ExpandEdge`,
//!   `GetVertex`, pattern `Match`) and **relational operators** (`Select`,
//!   `Project`, `Order`, `GroupBy`, `Dedup`, `Limit`) over those records;
//! * [`logical`] and [`physical`] plan stages: the logical DAG captures
//!   query semantics; the physical plan concretises execution order (the
//!   optimizer in `gs-optimizer` produces it; [`physical::lower_naive`]
//!   gives the unoptimized lowering used as the Fig. 7(e) baseline);
//! * a reference [`exec`]utor defining operator semantics; the Gaia and
//!   HiActor engines reuse these semantics with their own parallel/actor
//!   runtimes and are differential-tested against it.

pub mod builder;
pub mod cost;
pub mod engine;
pub mod exec;
pub mod expr;
pub mod logical;
pub mod pattern;
pub mod physical;
pub mod record;
pub mod verify;

pub use builder::PlanBuilder;
pub use cost::{
    cost_logical, cost_physical, enforce_cost, CardInterval, CostBudget, CostReport, CostStats,
    EdgeCostStats, OpCost,
};
pub use engine::{PreparedQuery, QueryEngine, ReferenceEngine, VerifyOnce};
pub use expr::{AggFunc, BinOp, Expr};
pub use logical::{LogicalOp, LogicalPlan};
pub use pattern::{Pattern, PatternEdge, PatternVertex};
pub use physical::{PhysicalOp, PhysicalPlan};
pub use record::{Layout, Record};
pub use verify::{
    verify_logical, verify_physical, Diagnostic, Severity, VerifyLevel, VerifyReport,
};

pub use gs_graph::{GraphError, LabelId, PropId, Result, VId, Value};
