/root/repo/target/debug/deps/graphscope_flex-e786d775445ea24a.d: src/lib.rs

/root/repo/target/debug/deps/graphscope_flex-e786d775445ea24a: src/lib.rs

src/lib.rs:
