/root/repo/target/debug/deps/gs_datagen-1092b4a29f13e282.d: crates/gs-datagen/src/lib.rs crates/gs-datagen/src/apps.rs crates/gs-datagen/src/catalog.rs crates/gs-datagen/src/powerlaw.rs crates/gs-datagen/src/rmat.rs crates/gs-datagen/src/snb.rs Cargo.toml

/root/repo/target/debug/deps/libgs_datagen-1092b4a29f13e282.rmeta: crates/gs-datagen/src/lib.rs crates/gs-datagen/src/apps.rs crates/gs-datagen/src/catalog.rs crates/gs-datagen/src/powerlaw.rs crates/gs-datagen/src/rmat.rs crates/gs-datagen/src/snb.rs Cargo.toml

crates/gs-datagen/src/lib.rs:
crates/gs-datagen/src/apps.rs:
crates/gs-datagen/src/catalog.rs:
crates/gs-datagen/src/powerlaw.rs:
crates/gs-datagen/src/rmat.rs:
crates/gs-datagen/src/snb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
