//! Built-in algorithm packages (paper §6): the Graphalytics core set —
//! PageRank, BFS, SSSP, WCC, CDLP — plus k-core (via FLASH) and LCC.
//!
//! Directionality conventions follow LDBC Graphalytics: BFS/SSSP/PageRank
//! run on the directed graph; WCC/CDLP/k-core/LCC expect a *symmetrized*
//! edge list (see `EdgeList::symmetrize`).

pub mod bfs;
pub mod cdlp;
pub mod kcore;
pub mod lcc;
pub mod pagerank;
pub mod sssp;
pub mod triangles;
pub mod wcc;

pub use bfs::bfs;
pub use cdlp::cdlp;
pub use kcore::kcore;
pub use lcc::{lcc, lcc_with_layout};
pub use pagerank::pagerank;
pub use sssp::sssp;
pub use triangles::triangle_count;
pub use wcc::wcc;

/// Reference (single-threaded, obviously-correct) implementations used by
/// differential tests across engines and baselines.
pub mod reference {
    use gs_graph::csr::Csr;
    use gs_graph::VId;

    /// Textbook PageRank with uniform dangling redistribution.
    pub fn pagerank(n: usize, edges: &[(VId, VId)], damping: f64, iters: usize) -> Vec<f64> {
        let g = Csr::from_edges(n, edges);
        let mut rank = vec![1.0 / n as f64; n];
        let mut next = vec![0.0; n];
        for _ in 0..iters {
            next.iter_mut().for_each(|x| *x = 0.0);
            let mut dangling = 0.0;
            for (v, &rv) in rank.iter().enumerate() {
                let d = g.degree(VId(v as u64));
                if d == 0 {
                    dangling += rv;
                } else {
                    let share = rv / d as f64;
                    for &w in g.neighbors(VId(v as u64)) {
                        next[w.index()] += share;
                    }
                }
            }
            let base = (1.0 - damping) / n as f64 + damping * dangling / n as f64;
            for x in next.iter_mut() {
                *x = base + damping * *x;
            }
            std::mem::swap(&mut rank, &mut next);
        }
        rank
    }

    /// BFS depths (u64::MAX when unreachable).
    pub fn bfs(n: usize, edges: &[(VId, VId)], src: VId) -> Vec<u64> {
        let g = Csr::from_edges(n, edges);
        let mut depth = vec![u64::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        depth[src.index()] = 0;
        queue.push_back(src);
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                if depth[w.index()] == u64::MAX {
                    depth[w.index()] = depth[v.index()] + 1;
                    queue.push_back(w);
                }
            }
        }
        depth
    }

    /// Dijkstra distances (f64::INFINITY when unreachable).
    pub fn sssp(n: usize, edges: &[(VId, VId)], weights: &[f64], src: VId) -> Vec<f64> {
        let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for (&(s, d), &w) in edges.iter().zip(weights) {
            adj[s.index()].push((d.index(), w));
        }
        let mut dist = vec![f64::INFINITY; n];
        dist[src.index()] = 0.0;
        let mut heap = std::collections::BinaryHeap::new();
        heap.push((std::cmp::Reverse(ordered_float(0.0)), src.index()));
        while let Some((std::cmp::Reverse(d), v)) = heap.pop() {
            let d = f64::from_bits(d);
            if d > dist[v] {
                continue;
            }
            for &(w, len) in &adj[v] {
                let nd = d + len;
                if nd < dist[w] {
                    dist[w] = nd;
                    heap.push((std::cmp::Reverse(ordered_float(nd)), w));
                }
            }
        }
        dist
    }

    fn ordered_float(f: f64) -> u64 {
        // non-negative floats order correctly by bit pattern
        f.to_bits()
    }

    /// WCC labels (min vertex id per component) over a symmetrized list.
    pub fn wcc(n: usize, edges: &[(VId, VId)]) -> Vec<u64> {
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(p: &mut [usize], x: usize) -> usize {
            let mut r = x;
            while p[r] != r {
                r = p[r];
            }
            let mut c = x;
            while p[c] != r {
                let next = p[c];
                p[c] = r;
                c = next;
            }
            r
        }
        for &(s, d) in edges {
            let (a, b) = (find(&mut parent, s.index()), find(&mut parent, d.index()));
            if a != b {
                parent[a.max(b)] = a.min(b);
            }
        }
        (0..n).map(|v| find(&mut parent, v) as u64).collect()
    }
}
