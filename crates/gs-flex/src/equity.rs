//! Equity analysis (paper §8, Exp-6): find each company's *actual
//! controller* — the person whose direct plus indirect shareholding
//! exceeds 50%.
//!
//! Deployment: the modified label-propagation algorithm on GRAPE over
//! Vineyard-style immutable data — person shares propagate down the
//! ownership DAG, multiplying by edge weights, until quiescent. The SQL
//! baseline ([`equity_sql`]) does what the paper's legacy pipeline did:
//! iterated self-joins over the ownership table, whose intermediate
//! results grow with path counts.

use gs_baselines::Table;
use gs_datagen::apps::EquityGraph;
use gs_grape::{GrapeEngine, GrinProjection, OutBuffers};
use gs_graph::Value;
use gs_grin::GrinGraph;
use gs_vineyard::VineyardGraph;
use std::collections::HashMap;

/// Minimum share to keep propagating (paper's approximation knob; exact
/// when 0).
const EPSILON: f64 = 1e-9;

/// Result: company external id → (controller person id, total share), for
/// companies where some person's share exceeds `majority`.
pub type Controllers = HashMap<u64, (u64, f64)>;

/// Distributed share propagation on GRAPE over an in-process Vineyard
/// store: the interchange payload is sealed into [`VineyardGraph`] and the
/// fragments are loaded through GRIN ([`equity_grape_over`]), exactly as a
/// deployment composed by flexbuild would run it.
pub fn equity_grape(eq: &EquityGraph, fragments: usize, majority: f64) -> Controllers {
    let store = VineyardGraph::build(&eq.data).expect("sealing the equity payload");
    equity_grape_over(&store, eq.companies, fragments, majority)
        .expect("equity projection over a sealed store cannot fail")
}

/// Share propagation over *any* GRIN-capable store holding the equity
/// schema (one Holder vertex label; INVEST edges with a float `share`
/// property). Companies occupy ids `0..companies`; persons follow.
pub fn equity_grape_over(
    store: &dyn GrinGraph,
    companies: usize,
    fragments: usize,
    majority: f64,
) -> gs_graph::Result<Controllers> {
    let proj = GrinProjection::weighted("share");
    let (engine, _space) = GrapeEngine::from_grin(store, &proj, fragments)?;
    let companies = companies as u64;

    // per-vertex share table; only companies accumulate
    let shares: Vec<HashMap<u64, f64>> = engine.run(|frag, comm| {
        let weights_local = frag.weights.as_ref().expect("weighted fragments");
        let inner = frag.inner_count;
        let mut table: Vec<HashMap<u64, f64>> = vec![HashMap::new(); inner];
        let mut out = OutBuffers::new(comm.workers);
        // round 0: persons emit (self, w) along their INVEST edges
        for l in 0..inner as u32 {
            let g = frag.global(l);
            if g.0 >= companies {
                frag.for_each_out(l, |nbr, eid| {
                    let target = frag.global(nbr.0 as u32);
                    out.send(
                        frag.owner(target).index(),
                        target,
                        (g.0, weights_local[eid.index()]),
                    );
                });
            }
        }
        loop {
            let sent = out.total();
            let (blocks, _) = comm.exchange(&mut out);
            if comm.allreduce(sent) == 0 {
                break;
            }
            // accumulate deltas; forward scaled deltas downstream
            let mut deltas: Vec<(u32, u64, f64)> = Vec::new();
            for b in &blocks {
                b.for_each::<(u64, f64)>(|g, (person, ds)| {
                    let l = frag.local(g).expect("routed to owner");
                    if ds > EPSILON {
                        *table[l as usize].entry(person).or_insert(0.0) += ds;
                        deltas.push((l, person, ds));
                    }
                });
            }
            for (l, person, ds) in deltas {
                frag.for_each_out(l, |nbr, eid| {
                    let target = frag.global(nbr.0 as u32);
                    let fwd = ds * weights_local[eid.index()];
                    if fwd > EPSILON {
                        out.send(frag.owner(target).index(), target, (person, fwd));
                    }
                });
            }
        }
        (0..inner as u32)
            .map(|l| (frag.global(l), table[l as usize].clone()))
            .collect()
    });

    let mut out = Controllers::new();
    for c in 0..companies {
        if let Some((p, s)) = shares[c as usize]
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        {
            if *s > majority {
                out.insert(c, (*p, *s));
            }
        }
    }
    Ok(out)
}

/// The SQL baseline: repeated self-joins of the ownership table up to the
/// DAG depth, then per (owner, company) share sums. Faithful to the legacy
/// pipeline's cost profile: every extra hop multiplies intermediate rows.
pub fn equity_sql(eq: &EquityGraph, max_depth: usize, majority: f64) -> Controllers {
    let batch = &eq.data.edges[eq.labels.invest.index()];
    let mut ownership = Table::new("own", &["owner", "company", "share"]);
    for (&(s, d), p) in batch.endpoints.iter().zip(&batch.properties) {
        ownership
            .insert(vec![
                Value::Int(s as i64),
                Value::Int(d as i64),
                Value::Float(p[0].as_float().unwrap_or(0.0)),
            ])
            .unwrap();
    }
    let companies = eq.companies as i64;
    // paths(owner, company, share): start with person-held direct shares
    let mut frontier = ownership.select(|r| r[0].as_int().unwrap_or(0) >= companies);
    let mut all_paths = frontier.clone();
    for _ in 1..max_depth {
        // extend: frontier(owner, mid, s1) ⋈ ownership(mid, company, s2)
        let joined = frontier.hash_join(&ownership, "company", "owner").unwrap();
        if joined.is_empty() {
            break;
        }
        let mut next = Table::new("own", &["owner", "company", "share"]);
        let (oi, ci, s1i, s2i) = (
            joined.col("owner").unwrap(),
            joined.col("own.company").unwrap(),
            joined.col("share").unwrap(),
            joined.col("own.share").unwrap(),
        );
        for row in &joined.rows {
            next.insert(vec![
                row[oi].clone(),
                row[ci].clone(),
                Value::Float(
                    row[s1i].as_float().unwrap_or(0.0) * row[s2i].as_float().unwrap_or(0.0),
                ),
            ])
            .unwrap();
        }
        for row in &next.rows {
            all_paths.insert(row.clone()).unwrap();
        }
        frontier = next;
    }
    // aggregate per (owner, company)
    let mut sums: HashMap<(i64, i64), f64> = HashMap::new();
    let (oi, ci, si) = (0, 1, 2);
    for row in &all_paths.rows {
        let key = (row[oi].as_int().unwrap(), row[ci].as_int().unwrap());
        *sums.entry(key).or_insert(0.0) += row[si].as_float().unwrap_or(0.0);
    }
    let mut best: HashMap<u64, (u64, f64)> = HashMap::new();
    for ((owner, company), share) in sums {
        if owner < companies {
            continue; // only person controllers count
        }
        let slot = best.entry(company as u64).or_insert((owner as u64, share));
        if share > slot.1 {
            *slot = (owner as u64, share);
        }
    }
    best.retain(|_, (_, s)| *s > majority);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_datagen::apps::equity_graph;

    #[test]
    fn grape_and_sql_find_the_same_controllers() {
        let eq = equity_graph(60, 25, 11);
        let a = equity_grape(&eq, 3, 0.5);
        let b = equity_sql(&eq, 64, 0.5);
        let mut ka: Vec<_> = a.keys().copied().collect();
        let mut kb: Vec<_> = b.keys().copied().collect();
        ka.sort_unstable();
        kb.sort_unstable();
        assert_eq!(ka, kb, "controller company sets differ");
        for (c, (p, s)) in &a {
            let (p2, s2) = &b[c];
            assert_eq!(p, p2, "company {c} controller");
            assert!((s - s2).abs() < 1e-6, "company {c}: {s} vs {s2}");
        }
    }

    #[test]
    fn paper_figure_6b_example() {
        // Company 1 owned by Person C: 0.8·0.6 via Company 2 and
        // 0.8·0.3·0.7 via Company 3 → 0.648 > 0.51
        use gs_datagen::apps::EquitySchema;
        use gs_graph::data::PropertyGraphData;
        use gs_graph::schema::GraphSchema;
        use gs_graph::ValueType;
        let mut schema = GraphSchema::new();
        let holder = schema.add_vertex_label(
            "Holder",
            &[("name", ValueType::Str), ("isPerson", ValueType::Bool)],
        );
        let invest =
            schema.add_edge_label("INVEST", holder, holder, &[("share", ValueType::Float)]);
        let mut g = PropertyGraphData::new(schema);
        // ids: companies 0..3 (0 = Company1, 1 = Company2, 2 = Company3),
        // persons 3 (A), 4 (C)
        for c in 0..3u64 {
            g.add_vertex(
                holder,
                c,
                vec![Value::Str(format!("Company{}", c + 1)), Value::Bool(false)],
            );
        }
        for (p, name) in [(3u64, "A"), (4u64, "C")] {
            g.add_vertex(
                holder,
                p,
                vec![Value::Str(name.to_string()), Value::Bool(true)],
            );
        }
        let mut add = |owner: u64, company: u64, share: f64| {
            g.add_edge(invest, owner, company, vec![Value::Float(share)]);
        };
        add(3, 0, 0.2); // A → Company1 20%
        add(1, 0, 0.6); // Company2 → Company1 60%
        add(2, 0, 0.2); // Company3 → Company1 20%  (structure simplified)
        add(4, 1, 0.8); // C → Company2 80%
        add(4, 2, 0.8); // C → Company3 80%
        add(2, 1, 0.3); // Company3 → Company2 30%  (C also holds 0.8·0.3 of C2... )
        let eq = EquityGraph {
            data: g,
            labels: EquitySchema { holder, invest },
            companies: 3,
            persons: 2,
        };
        let controllers = equity_grape(&eq, 2, 0.5);
        // C's share of Company1: direct 0 + via C2 (0.8+0.8·0.3)·0.6 + via C3 0.8·0.2
        // = 1.04·0.6·... — just assert C controls Company1
        let (p, s) = controllers.get(&0).expect("Company1 has a controller");
        assert_eq!(*p, 4, "Person C controls Company 1");
        assert!(*s > 0.5, "share {s}");
        // and the SQL baseline agrees
        let sql = equity_sql(&eq, 10, 0.5);
        assert_eq!(sql.get(&0).map(|x| x.0), Some(4));
    }

    #[test]
    fn no_false_controllers_below_majority() {
        let eq = equity_graph(40, 15, 5);
        let strict = equity_grape(&eq, 2, 0.999);
        for (_, s) in strict.values() {
            assert!(*s > 0.999);
        }
    }
}
