//! The property value model shared by the LPG storage backends and GraphIR.
//!
//! The paper's IR data model `D` supports primitive types (integer, float,
//! string), composite types (list), and graph-associated types (vertex, edge,
//! path). [`Value`] covers all of them so that one record representation can
//! flow through parsers, optimizer, and both execution engines.

use crate::ids::{EId, LabelId, VId};
use std::cmp::Ordering;
use std::fmt;

/// Type tag for a [`Value`]; used by schema property definitions and by the
/// IR type checker.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ValueType {
    Null,
    Bool,
    Int,
    Float,
    Str,
    /// Days since the epoch; LDBC SNB date columns use this.
    Date,
    List,
    Vertex,
    Edge,
    Path,
}

/// A dynamically-typed property/record value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    /// Days since the epoch.
    Date(i64),
    List(Vec<Value>),
    /// A graph vertex reference (internal id + label).
    Vertex(VId, LabelId),
    /// A graph edge reference: (edge id, label, src, dst).
    Edge(EId, LabelId, VId, VId),
    /// A path: alternating vertices, stored as the vertex sequence.
    Path(Vec<VId>),
}

impl Value {
    /// Returns this value's type tag.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Null => ValueType::Null,
            Value::Bool(_) => ValueType::Bool,
            Value::Int(_) => ValueType::Int,
            Value::Float(_) => ValueType::Float,
            Value::Str(_) => ValueType::Str,
            Value::Date(_) => ValueType::Date,
            Value::List(_) => ValueType::List,
            Value::Vertex(..) => ValueType::Vertex,
            Value::Edge(..) => ValueType::Edge,
            Value::Path(_) => ValueType::Path,
        }
    }

    /// True when the value is [`Value::Null`].
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer view, coercing booleans; `None` for other types.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Date(d) => Some(*d),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Float view, coercing integers; `None` for other types.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::Date(d) => Some(*d as f64),
            _ => None,
        }
    }

    /// String view; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view; `None` for non-booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Vertex id view; `None` if this is not a vertex.
    pub fn as_vertex(&self) -> Option<VId> {
        match self {
            Value::Vertex(v, _) => Some(*v),
            _ => None,
        }
    }

    /// Edge view; `None` if this is not an edge.
    pub fn as_edge(&self) -> Option<(EId, LabelId, VId, VId)> {
        match self {
            Value::Edge(e, l, s, d) => Some((*e, *l, *s, *d)),
            _ => None,
        }
    }

    /// Total ordering used by ORDER BY and GROUP keys.
    ///
    /// Nulls sort first; numeric types compare by value across Int/Float/
    /// Date; distinct non-comparable types order by their type tag so the
    /// ordering is total (required for stable sorts over mixed columns).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Int(a), Date(b)) | (Date(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a) | Date(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b) | Date(b)) => a.total_cmp(&(*b as f64)),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Vertex(a, _), Vertex(b, _)) => a.cmp(b),
            (Edge(a, ..), Edge(b, ..)) => a.cmp(b),
            (Path(a), Path(b)) => a.cmp(b),
            (List(a), List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let c = x.total_cmp(y);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }

    /// A hashable key form for GROUP BY / dedup. Floats hash by bit pattern.
    pub fn group_key(&self) -> GroupKey {
        GroupKey(self.clone())
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) => 2,
        Value::Float(_) => 3,
        Value::Str(_) => 4,
        Value::Date(_) => 5,
        Value::List(_) => 6,
        Value::Vertex(..) => 7,
        Value::Edge(..) => 8,
        Value::Path(_) => 9,
    }
}

/// Wrapper giving [`Value`] `Eq + Hash` semantics for grouping (floats by bit
/// pattern, which is what SQL-style GROUP BY implementations do).
#[derive(Clone, Debug)]
pub struct GroupKey(pub Value);

impl PartialEq for GroupKey {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}
impl Eq for GroupKey {}

impl std::hash::Hash for GroupKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        hash_value(&self.0, state);
    }
}

fn hash_value<H: std::hash::Hasher>(v: &Value, state: &mut H) {
    use std::hash::Hash;
    match v {
        Value::Null => 0u8.hash(state),
        Value::Bool(b) => b.hash(state),
        // Int/Date/Float that compare equal must hash equal: normalise
        // integral values through i64 and fractional floats through bits.
        Value::Int(i) | Value::Date(i) => i.hash(state),
        Value::Float(f) => {
            if f.fract() == 0.0 && f.is_finite() && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 {
                (*f as i64).hash(state)
            } else {
                f.to_bits().hash(state)
            }
        }
        Value::Str(s) => s.hash(state),
        Value::List(l) => {
            for x in l {
                hash_value(x, state);
            }
        }
        Value::Vertex(id, _) => id.0.hash(state),
        Value::Edge(id, ..) => id.0.hash(state),
        Value::Path(p) => p.hash(state),
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "date({d})"),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Vertex(v, l) => write!(f, "({:?}:{:?})", v, l),
            Value::Edge(e, l, s, d) => write!(f, "[{:?}:{:?} {:?}->{:?}]", e, l, s, d),
            Value::Path(p) => write!(f, "path{p:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    #[test]
    fn coercions() {
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::Bool(true).as_int(), Some(1));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Float(2.5).as_int(), None);
    }

    #[test]
    fn total_order_nulls_first() {
        let mut vals = vec![Value::Int(2), Value::Null, Value::Int(1)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vals, vec![Value::Null, Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn cross_numeric_order() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).total_cmp(&Value::Int(3)), Ordering::Equal);
    }

    #[test]
    fn group_key_int_float_consistency() {
        // 3 and 3.0 compare equal, so they must hash equal.
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            GroupKey(v.clone()).hash(&mut s);
            s.finish()
        };
        assert_eq!(
            GroupKey(Value::Int(3)),
            GroupKey(Value::Float(3.0)),
            "eq must hold"
        );
        assert_eq!(h(&Value::Int(3)), h(&Value::Float(3.0)));
    }

    #[test]
    fn list_ordering_is_lexicographic() {
        let a = Value::List(vec![Value::Int(1), Value::Int(2)]);
        let b = Value::List(vec![Value::Int(1), Value::Int(3)]);
        let c = Value::List(vec![Value::Int(1)]);
        assert_eq!(a.total_cmp(&b), Ordering::Less);
        assert_eq!(c.total_cmp(&a), Ordering::Less);
    }

    #[test]
    fn display_round_trip_smoke() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Str("a".into())]).to_string(),
            "[1, a]"
        );
    }
}
