//! Error types shared across the stack (GRIN's "common" category includes
//! unified error handling; this is its Rust-side realisation).

use std::fmt;

/// Convenience alias used across gs-* crates.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Unified error type for graph storage and retrieval operations.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A vertex/edge/label/property id did not resolve.
    NotFound(String),
    /// A schema constraint was violated (unknown label, wrong property type).
    Schema(String),
    /// The storage backend does not implement the requested GRIN trait.
    Unsupported(String),
    /// A value had the wrong type for the requested operation.
    Type(String),
    /// Corrupt or truncated on-disk data (GraphAr).
    Corrupt(String),
    /// I/O failure, stringified to keep the error `Clone + PartialEq`.
    Io(String),
    /// Query compilation failure (parser / optimizer / codegen).
    Query(String),
    /// Invalid engine or flexbuild configuration.
    Config(String),
    /// The storage backend lacks capability flags an engine requires.
    /// `missing` holds the flag names (built by `gs_grin::Capabilities`,
    /// which this crate deliberately does not know about).
    UnsupportedCapability { missing: Vec<String> },
    /// Load shedding: a shard refused new work because its queue depth
    /// crossed the configured watermark. Callers should back off.
    Overloaded { shard: usize, depth: u64 },
    /// A per-call deadline elapsed before the operation completed.
    Timeout(String),
    /// The target is temporarily unavailable (dead shard, open circuit
    /// breaker); retrying later may succeed.
    Unavailable(String),
    /// Two transactions wrote the same entity: under first-writer-wins
    /// conflict detection the later writer receives this and must abort
    /// (retrying in a fresh transaction may succeed).
    TxnConflict(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NotFound(m) => write!(f, "not found: {m}"),
            GraphError::Schema(m) => write!(f, "schema error: {m}"),
            GraphError::Unsupported(m) => write!(f, "unsupported: {m}"),
            GraphError::Type(m) => write!(f, "type error: {m}"),
            GraphError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            GraphError::Io(m) => write!(f, "io error: {m}"),
            GraphError::Query(m) => write!(f, "query error: {m}"),
            GraphError::Config(m) => write!(f, "config error: {m}"),
            GraphError::UnsupportedCapability { missing } => {
                write!(f, "missing capabilities: {}", missing.join("|"))
            }
            GraphError::Overloaded { shard, depth } => {
                write!(f, "overloaded: shard {shard} at queue depth {depth}")
            }
            GraphError::Timeout(m) => write!(f, "deadline exceeded: {m}"),
            GraphError::Unavailable(m) => write!(f, "unavailable: {m}"),
            GraphError::TxnConflict(m) => write!(f, "transaction conflict: {m}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            GraphError::NotFound("v42".into()).to_string(),
            "not found: v42"
        );
        assert_eq!(
            GraphError::Unsupported("iterator trait".into()).to_string(),
            "unsupported: iterator trait"
        );
    }

    #[test]
    fn io_conversion() {
        let io = std::io::Error::other("boom");
        let e: GraphError = io.into();
        assert!(matches!(e, GraphError::Io(_)));
    }
}
