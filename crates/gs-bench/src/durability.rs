//! `gs-bench durability` — seeded crash/restart equivalence corpus for
//! the transactional GART store.
//!
//! The core assertion is **kill-anywhere equivalence**: a reference run
//! records the WAL's write-seam coordinate after every commit, then the
//! same workload is re-run once per kill point (the process dies before
//! durable write *n*, or mid-write with a torn prefix), the store is
//! reopened with no faults installed, and its full scan must be
//! bit-identical to the committed prefix the coordinate implies —
//! committed transactions survive, in-flight ones vanish. A separate
//! workload pins a snapshot under a concurrent writer and asserts it
//! never observes torn adjacency.
//!
//! Mirrors the `chaos` corpus one storage layer down; `--deny` turns any
//! violation into a non-zero exit (the CI `durability` job's bar). Only
//! meaningful when built with `--features chaos`; a pass-through build
//! prints a note and exits 0 so the subcommand is safe to script.

use crate::util::TablePrinter;
use gs_chaos::{ChaosStats, FaultPlan};
use gs_gart::{DurabilityConfig, GartStore};
use gs_graph::schema::GraphSchema;
use gs_graph::ValueType;
use gs_grin::{GrinGraph, LabelId, PropId, Value};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One durability workload: the faults that fired and the verdict.
pub struct DurabilityResult {
    pub workload: &'static str,
    pub stats: ChaosStats,
    /// `Ok` carries the equivalence summary; `Err` the violation.
    pub outcome: Result<String, String>,
}

fn schema() -> (GraphSchema, LabelId, LabelId) {
    let mut s = GraphSchema::new();
    let v = s.add_vertex_label("V", &[("x", ValueType::Int)]);
    let e = s.add_edge_label("E", v, v, &[("w", ValueType::Float)]);
    (s, v, e)
}

fn tmpdir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "gs-bench-dur-{}-{}-{}",
        tag,
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Deterministic full scan at a pinned version: every vertex with its
/// external id and property, every live edge with resolved endpoints.
fn digest_at(store: &Arc<GartStore>, vl: LabelId, el: LabelId, version: u64) -> String {
    let snap = store.snapshot_at(version);
    let mut out = String::new();
    for v in snap.vertices(vl) {
        out.push_str(&format!(
            "V {} {:?}\n",
            snap.external_id(vl, v).unwrap(),
            snap.vertex_property(vl, v, PropId(0))
        ));
    }
    let mut rows = Vec::new();
    store.scan_edges(el, version, &mut |s, d, e| rows.push((s, d, e)));
    for (s, d, e) in rows {
        out.push_str(&format!(
            "E {} {} {:?}\n",
            snap.external_id(vl, s).unwrap(),
            snap.external_id(vl, d).unwrap(),
            snap.edge_property(el, e, PropId(0))
        ));
    }
    out
}

fn digest(store: &Arc<GartStore>, vl: LabelId, el: LabelId) -> String {
    digest_at(store, vl, el, store.committed_version())
}

/// The crash workload: five commits exercising inserts, batch edges,
/// explicit transactions, an abort, and deletes of both kinds. Returns
/// the seam coordinate after each commit.
fn workload(dir: &Path, seed: u64, vl: LabelId, el: LabelId) -> Vec<u64> {
    let (s, _, _) = schema();
    let store = GartStore::open(s, DurabilityConfig::new(dir)).unwrap();
    let mut seams = vec![store.wal_writes()];
    let commit = |store: &Arc<GartStore>, seams: &mut Vec<u64>| {
        store.commit();
        seams.push(store.wal_writes());
    };
    for i in 1..=6 {
        store
            .add_vertex(vl, i, vec![Value::Int((seed ^ i) as i64)])
            .unwrap();
    }
    commit(&store, &mut seams);
    let batch: Vec<(u64, u64, Vec<Value>)> = (1..=5u64)
        .map(|i| (i, i + 1, vec![Value::Float(i as f64 / 2.0)]))
        .collect();
    store.add_edges(el, &batch).unwrap();
    commit(&store, &mut seams);
    // an explicit transaction, plus an aborted one whose holes must
    // reproduce under replay
    let mut t = store.begin();
    t.add_vertex(vl, 7, vec![Value::Int(77)]).unwrap();
    t.add_edge(el, 7, 1, vec![Value::Float(7.1)]).unwrap();
    t.commit().unwrap();
    seams.push(store.wal_writes());
    let mut dead = store.begin();
    dead.add_vertex(vl, 8, vec![Value::Int(88)]).unwrap();
    dead.abort();
    store.add_vertex(vl, 8, vec![Value::Int(89)]).unwrap();
    commit(&store, &mut seams);
    assert!(store.delete_edge(el, 2, 3).unwrap());
    assert!(store.delete_vertex(vl, 5).unwrap());
    commit(&store, &mut seams);
    seams
}

/// Runs the workload uninterrupted and captures the per-commit prefix
/// digests (pinned snapshots of the finished store) plus the seams.
fn reference(seed: u64, vl: LabelId, el: LabelId) -> (Vec<String>, Vec<u64>) {
    let dir = tmpdir("ref");
    // the empty plan takes the exclusive chaos gate: reference WAL writes
    // can never race another corpus entry's installed plan
    let (seams, _) = gs_chaos::with_chaos(FaultPlan::new(seed), || workload(&dir, seed, vl, el));
    let (s, _, _) = schema();
    let store = GartStore::open(s, DurabilityConfig::new(&dir)).unwrap();
    let commits = seams.len() - 1;
    let digests = (0..=commits as u64)
        .map(|v| digest_at(&store, vl, el, v))
        .collect();
    let _ = std::fs::remove_dir_all(&dir);
    (digests, seams)
}

/// The tentpole sweep: one crashed run per WAL write coordinate, clean
/// kills or torn writes depending on `torn`.
fn sweep(seed: u64, torn: bool) -> DurabilityResult {
    let workload_name = if torn {
        "torn-write-sweep"
    } else {
        "kill-sweep"
    };
    let (_, vl, el) = schema();
    let (prefix_digests, seams) = reference(seed, vl, el);
    let total = *seams.last().unwrap();
    let mut agg = ChaosStats::default();
    let mut failures = Vec::new();
    for kill_at in 0..total {
        let dir = tmpdir(workload_name);
        let mut plan = FaultPlan::new(seed ^ kill_at).wal_kill(kill_at);
        if torn {
            plan = plan.wal_torn_writes();
        }
        let (outcome, stats) = gs_chaos::with_chaos(plan, || {
            catch_unwind(AssertUnwindSafe(|| workload(&dir, seed, vl, el)))
        });
        agg.wal_kills += stats.wal_kills;
        agg.wal_torn_writes += stats.wal_torn_writes;
        match outcome {
            Err(e) if gs_chaos::is_chaos_unwind(e.as_ref()) => {}
            Err(_) => {
                failures.push(format!("write {kill_at}: non-chaos panic"));
                continue;
            }
            Ok(_) => {
                failures.push(format!("write {kill_at}: scheduled kill never fired"));
                continue;
            }
        }
        // recovery runs clean — no plan installed
        let (s, _, _) = schema();
        let store = match GartStore::open(s, DurabilityConfig::new(&dir)) {
            Ok(st) => st,
            Err(e) => {
                failures.push(format!("write {kill_at}: reopen failed: {e:?}"));
                continue;
            }
        };
        let commits = seams[1..].iter().filter(|&&s| s <= kill_at).count();
        if digest(&store, vl, el) != prefix_digests[commits] {
            failures.push(format!(
                "write {kill_at}: recovered state is not the {commits}-commit prefix"
            ));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    let outcome = if let Some(first) = failures.first() {
        Err(format!(
            "{} of {total} kill points broke equivalence ({first})",
            failures.len()
        ))
    } else {
        Ok(format!(
            "all {total} kill points recovered the exact committed prefix"
        ))
    };
    DurabilityResult {
        workload: workload_name,
        stats: agg,
        outcome,
    }
}

/// Conflicting writers then a crash: the winner's commit must survive
/// the kill, the conflicted loser (and the killed trailing transaction)
/// must leave no trace.
fn conflict_abort_crash(seed: u64) -> DurabilityResult {
    let (s, vl, el) = schema();
    // the run keeps writing after the winner commits so the crash run's
    // kill — scheduled at the winner's post-commit seam — lands mid-tail
    let run = |dir: &Path| -> (String, u64) {
        let store = GartStore::open(schema().0, DurabilityConfig::new(dir)).unwrap();
        for i in 1..=3 {
            store.add_vertex(vl, i, vec![Value::Int(i as i64)]).unwrap();
        }
        store.add_edge(el, 1, 2, vec![Value::Float(1.2)]).unwrap();
        store.commit();
        let mut winner = store.begin();
        let mut loser = store.begin();
        assert!(winner.delete_edge(el, 1, 2).unwrap());
        let conflict = loser.delete_edge(el, 1, 2);
        assert!(
            matches!(conflict, Err(gs_grin::GraphError::TxnConflict(_))),
            "first-writer-wins must yield a structured conflict"
        );
        loser.abort();
        winner.commit().unwrap();
        let out = (digest(&store, vl, el), store.wal_writes());
        store.add_vertex(vl, 99, vec![Value::Int(0)]).unwrap();
        store.commit();
        out
    };
    let dir = tmpdir("conflict-ref");
    let ((expect, seam), _) = gs_chaos::with_chaos(FaultPlan::new(seed), || run(&dir));
    let _ = std::fs::remove_dir_all(&dir);
    let crash_dir = tmpdir("conflict-crash");
    // kill fires before write `seam`: everything up to the winner's
    // commit is durable, the trailing vertex-99 transaction is not
    let plan = FaultPlan::new(seed).wal_kill(seam);
    let (outcome, stats) =
        gs_chaos::with_chaos(plan, || catch_unwind(AssertUnwindSafe(|| run(&crash_dir))));
    let outcome = match outcome {
        Ok(_) => Err("the scheduled post-commit kill never fired".to_string()),
        Err(e) if !gs_chaos::is_chaos_unwind(e.as_ref()) => {
            Err("workload died on a non-chaos panic".to_string())
        }
        Err(_) => {
            let store = GartStore::open(s, DurabilityConfig::new(&crash_dir)).unwrap();
            if digest(&store, vl, el) != expect {
                Err("winner's committed delete did not survive the crash".to_string())
            } else if store.snapshot().internal_id(vl, 99).is_some() {
                Err("the killed trailing transaction leaked into recovery".to_string())
            } else {
                Ok("winner durable, conflicted loser left no trace".to_string())
            }
        }
    };
    let _ = std::fs::remove_dir_all(&crash_dir);
    DurabilityResult {
        workload: "conflict-abort-crash",
        stats,
        outcome,
    }
}

/// A snapshot pinned before concurrent commits must never observe torn
/// adjacency: its digest is re-scanned while a writer commits and
/// deletes under it.
fn pinned_snapshot_never_tears(seed: u64) -> DurabilityResult {
    let (s, vl, el) = schema();
    let dir = tmpdir("pin");
    let ((), stats) = gs_chaos::with_chaos(FaultPlan::new(seed), || {});
    let store = GartStore::open(s, DurabilityConfig::new(&dir)).unwrap();
    for i in 1..=8 {
        store.add_vertex(vl, i, vec![Value::Int(i as i64)]).unwrap();
    }
    for i in 1..=7u64 {
        store
            .add_edge(el, i, i + 1, vec![Value::Float(i as f64)])
            .unwrap();
    }
    store.commit();
    let pinned = store.committed_version();
    let before = digest_at(&store, vl, el, pinned);
    let writer = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || {
            for i in 1..=6u64 {
                store.delete_edge(el, i, i + 1).unwrap();
                store.delete_vertex(vl, i).unwrap();
                store.add_vertex(vl, 100 + i, vec![Value::Int(0)]).unwrap();
                store.commit();
            }
        })
    };
    let mut tears = 0usize;
    let mut scans = 0usize;
    while !writer.is_finished() || scans == 0 {
        if digest_at(&store, vl, el, pinned) != before {
            tears += 1;
        }
        scans += 1;
    }
    writer.join().unwrap();
    // one final scan after every commit has landed
    if digest_at(&store, vl, el, pinned) != before {
        tears += 1;
    }
    let outcome = if tears > 0 {
        Err(format!("{tears}/{scans} scans observed torn adjacency"))
    } else {
        Ok(format!(
            "{scans} concurrent scans of the pinned snapshot, zero tears"
        ))
    };
    let _ = std::fs::remove_dir_all(&dir);
    DurabilityResult {
        workload: "pinned-snapshot-no-tear",
        stats,
        outcome,
    }
}

/// Runs the whole corpus; each entry installs its own exclusive plan.
pub fn run_corpus(seed: u64) -> Vec<DurabilityResult> {
    vec![
        sweep(seed, false),
        sweep(seed, true),
        conflict_abort_crash(seed),
        pinned_snapshot_never_tears(seed),
    ]
}

/// Runs the corpus and prints the verdict table. With `deny`, any failed
/// verdict makes the exit code non-zero (the CI bar).
pub fn run(deny: bool, seed: u64) -> i32 {
    if !gs_chaos::COMPILED {
        println!(
            "durability: built without the `chaos` feature — kill points cannot \
             fire (rebuild with `--features chaos`)"
        );
        return 0;
    }
    let results = run_corpus(seed);
    let mut table = TablePrinter::new(&["workload", "injected", "verdict"]);
    let mut failures = 0usize;
    for r in &results {
        let verdict = match &r.outcome {
            Ok(summary) => format!("ok: {summary}"),
            Err(why) => {
                failures += 1;
                format!("FAIL: {why}")
            }
        };
        table.row(vec![r.workload.to_string(), r.stats.render(), verdict]);
    }
    table.print();
    println!(
        "durability: {} workloads checked (seed {seed}), {failures} equivalence failures",
        results.len()
    );
    if deny && failures > 0 {
        1
    } else {
        0
    }
}

#[cfg(test)]
#[cfg(feature = "chaos")]
mod tests {
    use super::*;

    /// The acceptance gate: kill-anywhere equivalence holds across the
    /// whole corpus — the `gs-bench durability --deny` CI bar.
    #[test]
    fn corpus_holds_crash_equivalence() {
        for r in run_corpus(42) {
            assert!(
                r.outcome.is_ok(),
                "{} broke crash equivalence ({}): {}",
                r.workload,
                r.stats.render(),
                r.outcome.unwrap_err()
            );
        }
    }
}
