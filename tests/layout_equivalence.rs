//! Cross-layout equivalence: every [`LayoutKind`] must be a pure
//! representation change. All gs-grape algorithms — Pregel BFS/SSSP/
//! PageRank/WCC/CDLP, FLASH k-core, LCC, triangle counting, and the
//! direction-optimizing traversals under every policy — run over seeded
//! gs-datagen graphs on all three layouts and must return identical (for
//! floats: bit-identical) results. Direction-optimizing BFS is additionally
//! pinned byte-for-byte to plain Pregel BFS.

use gs_datagen::{powerlaw, rmat};
use gs_grape::algorithms::{self, triangle_count};
use gs_grape::traversal::{bfs_with_policy, sssp_with_policy, TraversalPolicy};
use gs_grape::GrapeEngine;
use gs_graph::{LayoutKind, VId};

/// A named test graph: (name, vertex count, edge list).
type Corpus = (&'static str, usize, Vec<(VId, VId)>);

/// Seeded benchmark-shaped graphs: a heavy-tailed R-MAT digraph and a
/// preferential-attachment graph (hubs exercise the galloping paths).
fn corpora() -> Vec<Corpus> {
    let rm = rmat::generate(&rmat::RmatConfig {
        seed: 0xC0FFEE,
        ..rmat::RmatConfig::graph500(9)
    });
    let pa = powerlaw::preferential_attachment(700, 5, 0xC0FFEE);
    vec![
        ("rmat9", rm.vertex_count(), rm.edges().to_vec()),
        ("pa700", pa.vertex_count(), pa.edges().to_vec()),
    ]
}

fn weights_for(edges: &[(VId, VId)]) -> Vec<f64> {
    edges
        .iter()
        .map(|&(s, d)| ((s.0 * 13 + d.0 * 5) % 97 + 1) as f64 / 8.0)
        .collect()
}

#[test]
fn all_layouts_agree_on_every_algorithm() {
    for (name, n, edges) in corpora() {
        let weights = weights_for(&edges);
        let mut sym =
            gs_graph::edgelist::EdgeList::from_pairs(n, edges.iter().map(|&(s, d)| (s.0, d.0)));
        sym.symmetrize();
        sym.dedup_simple();
        let src = VId(0);

        // plain-CSR baselines, fragment counts 1 and 3
        for k in [1usize, 3] {
            let base = GrapeEngine::from_edges_with_layout(n, &edges, k, LayoutKind::Csr);
            let wbase = GrapeEngine::from_weighted_edges_with_layout(
                n,
                &edges,
                &weights,
                k,
                LayoutKind::Csr,
            );
            let sbase = GrapeEngine::from_edges_with_layout(n, sym.edges(), k, LayoutKind::Csr);
            let bfs0 = algorithms::bfs(&base, src);
            let sssp0: Vec<u64> = algorithms::sssp(&wbase, src)
                .iter()
                .map(|d| d.to_bits())
                .collect();
            let pr0: Vec<u64> = algorithms::pagerank(&base, 0.85, 12)
                .iter()
                .map(|d| d.to_bits())
                .collect();
            let wcc0 = algorithms::wcc(&sbase);
            let cdlp0 = algorithms::cdlp(&sbase, 5);
            let kcore0 = algorithms::kcore(&sbase, 3);
            let lcc0: Vec<u64> = algorithms::lcc_with_layout(n, sym.edges(), k, LayoutKind::Csr)
                .iter()
                .map(|d| d.to_bits())
                .collect();
            let tc0 = triangle_count(n, sym.edges(), LayoutKind::Csr, k);

            for layout in LayoutKind::ALL {
                let ctx = format!("{name} k={k} {layout}");
                let eng = GrapeEngine::from_edges_with_layout(n, &edges, k, layout);
                let weng =
                    GrapeEngine::from_weighted_edges_with_layout(n, &edges, &weights, k, layout);
                let seng = GrapeEngine::from_edges_with_layout(n, sym.edges(), k, layout);
                assert_eq!(eng.layout(), layout, "{ctx}");

                assert_eq!(algorithms::bfs(&eng, src), bfs0, "{ctx} bfs");
                assert_eq!(
                    algorithms::sssp(&weng, src)
                        .iter()
                        .map(|d| d.to_bits())
                        .collect::<Vec<_>>(),
                    sssp0,
                    "{ctx} sssp"
                );
                assert_eq!(
                    algorithms::pagerank(&eng, 0.85, 12)
                        .iter()
                        .map(|d| d.to_bits())
                        .collect::<Vec<_>>(),
                    pr0,
                    "{ctx} pagerank"
                );
                assert_eq!(algorithms::wcc(&seng), wcc0, "{ctx} wcc");
                assert_eq!(algorithms::cdlp(&seng, 5), cdlp0, "{ctx} cdlp");
                assert_eq!(algorithms::kcore(&seng, 3), kcore0, "{ctx} kcore");
                assert_eq!(
                    algorithms::lcc_with_layout(n, sym.edges(), k, layout)
                        .iter()
                        .map(|d| d.to_bits())
                        .collect::<Vec<_>>(),
                    lcc0,
                    "{ctx} lcc"
                );
                assert_eq!(
                    triangle_count(n, sym.edges(), layout, k),
                    tc0,
                    "{ctx} triangles"
                );
            }
        }
    }
}

#[test]
fn direction_optimizing_bfs_is_byte_identical_to_pregel_bfs() {
    for (name, n, edges) in corpora() {
        for k in [1usize, 2, 4] {
            for layout in LayoutKind::ALL {
                let eng = GrapeEngine::from_edges_with_layout(n, &edges, k, layout);
                let pregel = algorithms::bfs(&eng, VId(1));
                for policy in [
                    TraversalPolicy::Auto,
                    TraversalPolicy::PushOnly,
                    TraversalPolicy::PullOnly,
                ] {
                    let (depths, _) = bfs_with_policy(&eng, VId(1), policy);
                    assert_eq!(
                        depths, pregel,
                        "{name} k={k} {layout} {policy:?}: DO-BFS != Pregel BFS"
                    );
                }
            }
        }
    }
}

#[test]
fn direction_optimizing_sssp_is_bit_identical_across_layouts_and_policies() {
    for (name, n, edges) in corpora() {
        let weights = weights_for(&edges);
        let mut baseline: Option<Vec<u64>> = None;
        for k in [1usize, 3] {
            for layout in LayoutKind::ALL {
                let eng =
                    GrapeEngine::from_weighted_edges_with_layout(n, &edges, &weights, k, layout);
                let pregel: Vec<u64> = algorithms::sssp(&eng, VId(1))
                    .iter()
                    .map(|d| d.to_bits())
                    .collect();
                for policy in [TraversalPolicy::Auto, TraversalPolicy::PushOnly] {
                    let (dist, _) = sssp_with_policy(&eng, VId(1), policy);
                    let bits: Vec<u64> = dist.iter().map(|d| d.to_bits()).collect();
                    assert_eq!(bits, pregel, "{name} k={k} {layout} {policy:?}");
                }
                match &baseline {
                    Some(b) => assert_eq!(&pregel, b, "{name} k={k} {layout}"),
                    None => baseline = Some(pregel),
                }
            }
        }
    }
}
