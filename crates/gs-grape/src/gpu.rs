//! Simulated GPU backend.
//!
//! The paper's GRAPE GPU backend (§6) relies on (a) *load-balanced thread
//! mapping* — work is partitioned by **edges**, not vertices, so a
//! power-law vertex cannot stall a warp; (b) GPU-friendly flat CSR
//! structures; and (c) *inter-GPU work stealing* — idle devices steal
//! vertex ranges from busy ones.
//!
//! Hardware substitution (see DESIGN.md): a [`Device`] is a wide
//! thread-pool executor with bulk-synchronous kernels; `lanes` models SM
//! parallelism. Scheduling logic — the balanced mapping and the stealing —
//! is implemented faithfully, which is what the Fig. 7(j)/(k) comparisons
//! against Groute/Gunrock-style scheduling exercise.

use crossbeam::deque::{Injector, Steal};
use gs_graph::csr::Csr;
use gs_graph::VId;
use std::sync::atomic::{AtomicU64, Ordering};

/// One simulated GPU.
#[derive(Clone, Copy, Debug)]
pub struct Device {
    pub id: usize,
    /// Simulated hardware parallelism (worker threads per kernel launch).
    pub lanes: usize,
}

/// A set of simulated GPUs with a work-stealing scheduler.
pub struct GpuCluster {
    pub devices: Vec<Device>,
}

impl GpuCluster {
    /// `count` devices with `lanes` lanes each.
    pub fn new(count: usize, lanes: usize) -> Self {
        Self {
            devices: (0..count)
                .map(|id| Device {
                    id,
                    lanes: lanes.max(1),
                })
                .collect(),
        }
    }

    /// Total lanes across devices.
    pub fn total_lanes(&self) -> usize {
        self.devices.iter().map(|d| d.lanes).sum()
    }

    /// Runs an edge-balanced bulk-synchronous kernel over all vertices:
    /// the vertex set is cut into chunks of ~equal **edge** counts
    /// (load-balanced thread mapping); chunks feed a global injector that
    /// device lanes drain — an idle lane steals the next chunk regardless
    /// of which device "owns" it (inter-GPU work stealing).
    pub fn edge_balanced_kernel(
        &self,
        csr: &Csr,
        target_chunk_edges: usize,
        kernel: impl Fn(VId) + Sync,
    ) {
        let n = csr.vertex_count();
        let injector: Injector<(usize, usize)> = Injector::new();
        // build edge-balanced vertex ranges
        let mut start = 0usize;
        let mut acc = 0usize;
        for v in 0..n {
            acc += csr.degree(VId(v as u64));
            if acc >= target_chunk_edges.max(1) {
                injector.push((start, v + 1));
                start = v + 1;
                acc = 0;
            }
        }
        if start < n {
            injector.push((start, n));
        }
        let stolen = AtomicU64::new(0);
        crossbeam::thread::scope(|s| {
            for d in &self.devices {
                for _lane in 0..d.lanes {
                    let injector = &injector;
                    let kernel = &kernel;
                    let stolen = &stolen;
                    s.spawn(move |_| loop {
                        match injector.steal() {
                            Steal::Success((lo, hi)) => {
                                stolen.fetch_add(1, Ordering::Relaxed);
                                for v in lo..hi {
                                    kernel(VId(v as u64));
                                }
                            }
                            Steal::Empty => break,
                            Steal::Retry => {}
                        }
                    });
                }
            }
        })
        .expect("gpu kernel scope");
        gs_telemetry::counter!("grape.gpu_steals"; stolen.load(Ordering::Relaxed));
    }
}

/// Atomic f64 add via CAS on bits (device "global memory" accumulator).
#[inline]
pub fn atomic_f64_add(cell: &AtomicU64, add: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f64::from_bits(cur) + add;
        match cell.compare_exchange_weak(cur, next.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(v) => cur = v,
        }
    }
}

/// GPU PageRank: per-iteration edge-balanced push kernel with atomic
/// accumulation, dangling mass redistributed uniformly.
pub fn pagerank_gpu(
    cluster: &GpuCluster,
    n: usize,
    csr: &Csr,
    damping: f64,
    iters: usize,
) -> Vec<f64> {
    let mut rank = vec![1.0 / n as f64; n];
    for _ in 0..iters {
        let next: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let dangling = AtomicU64::new(0);
        {
            let rank = &rank;
            let next = &next;
            let dangling = &dangling;
            cluster.edge_balanced_kernel(csr, 1024, move |v| {
                let d = csr.degree(v);
                if d == 0 {
                    atomic_f64_add(dangling, rank[v.index()]);
                    return;
                }
                let share = rank[v.index()] / d as f64;
                for &w in csr.neighbors(v) {
                    atomic_f64_add(&next[w.index()], share);
                }
            });
        }
        let dangling = f64::from_bits(dangling.load(Ordering::Relaxed));
        let base = (1.0 - damping) / n as f64 + damping * dangling / n as f64;
        for (r, nx) in rank.iter_mut().zip(&next) {
            *r = base + damping * f64::from_bits(nx.load(Ordering::Relaxed));
        }
    }
    rank
}

/// GPU BFS: frontier-based with edge-balanced advance kernels. The
/// edge-balanced chunk ranges are computed once and reused across levels
/// (chunk construction is host-side work real GPU frameworks amortise).
pub fn bfs_gpu(cluster: &GpuCluster, n: usize, csr: &Csr, src: VId) -> Vec<u64> {
    let depth: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
    depth[src.index()].store(0, Ordering::Relaxed);
    // precompute edge-balanced vertex ranges
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    let (mut start, mut acc) = (0usize, 0usize);
    for v in 0..n {
        acc += csr.degree(VId(v as u64));
        if acc >= 1024 {
            ranges.push((start, v + 1));
            start = v + 1;
            acc = 0;
        }
    }
    if start < n {
        ranges.push((start, n));
    }
    let mut level = 0u64;
    let mut frontier_nonempty = true;
    while frontier_nonempty {
        let found = AtomicU64::new(0);
        let cursor = AtomicU64::new(0);
        crossbeam::thread::scope(|s| {
            for d in &cluster.devices {
                for _ in 0..d.lanes {
                    let depth = &depth;
                    let found = &found;
                    let cursor = &cursor;
                    let ranges = &ranges;
                    s.spawn(move |_| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed) as usize;
                        if i >= ranges.len() {
                            break;
                        }
                        let (lo, hi) = ranges[i];
                        for v in lo..hi {
                            if depth[v].load(Ordering::Relaxed) != level {
                                continue;
                            }
                            for &w in csr.neighbors(VId(v as u64)) {
                                if depth[w.index()]
                                    .compare_exchange(
                                        u64::MAX,
                                        level + 1,
                                        Ordering::Relaxed,
                                        Ordering::Relaxed,
                                    )
                                    .is_ok()
                                {
                                    found.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    });
                }
            }
        })
        .expect("bfs gpu scope");
        frontier_nonempty = found.load(Ordering::Relaxed) > 0;
        level += 1;
    }
    depth.into_iter().map(|d| d.into_inner()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::reference;

    fn random_edges(n: u64, m: usize, seed: u64) -> Vec<(VId, VId)> {
        use rand::Rng;
        let mut rng = rand_pcg::Pcg64Mcg::new(seed as u128);
        (0..m)
            .map(|_| (VId(rng.gen_range(0..n)), VId(rng.gen_range(0..n))))
            .collect()
    }

    #[test]
    fn gpu_pagerank_matches_reference() {
        let edges = random_edges(150, 700, 2);
        let csr = Csr::from_edges(150, &edges);
        for devices in [1, 2, 4] {
            let cluster = GpuCluster::new(devices, 4);
            let got = pagerank_gpu(&cluster, 150, &csr, 0.85, 15);
            let want = reference::pagerank(150, &edges, 0.85, 15);
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-9, "devices={devices}");
            }
        }
    }

    #[test]
    fn gpu_bfs_matches_reference() {
        let edges = random_edges(200, 600, 3);
        let csr = Csr::from_edges(200, &edges);
        let cluster = GpuCluster::new(2, 4);
        assert_eq!(
            bfs_gpu(&cluster, 200, &csr, VId(0)),
            reference::bfs(200, &edges, VId(0))
        );
    }

    #[test]
    fn edge_balanced_kernel_visits_every_vertex_once() {
        let edges = random_edges(500, 3000, 4);
        let csr = Csr::from_edges(500, &edges);
        let visits: Vec<AtomicU64> = (0..500).map(|_| AtomicU64::new(0)).collect();
        let cluster = GpuCluster::new(3, 2);
        {
            let visits = &visits;
            cluster.edge_balanced_kernel(&csr, 64, move |v| {
                visits[v.index()].fetch_add(1, Ordering::Relaxed);
            });
        }
        assert!(visits.iter().all(|v| v.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn atomic_f64_add_accumulates() {
        let cell = AtomicU64::new(0);
        crossbeam::thread::scope(|s| {
            for _ in 0..8 {
                let cell = &cell;
                s.spawn(move |_| {
                    for _ in 0..1000 {
                        atomic_f64_add(cell, 0.5);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(f64::from_bits(cell.load(Ordering::Relaxed)), 4000.0);
    }
}
