/root/repo/target/debug/deps/gs_ir-3635241e2b24b39c.d: crates/gs-ir/src/lib.rs crates/gs-ir/src/builder.rs crates/gs-ir/src/engine.rs crates/gs-ir/src/exec.rs crates/gs-ir/src/expr.rs crates/gs-ir/src/logical.rs crates/gs-ir/src/pattern.rs crates/gs-ir/src/physical.rs crates/gs-ir/src/record.rs Cargo.toml

/root/repo/target/debug/deps/libgs_ir-3635241e2b24b39c.rmeta: crates/gs-ir/src/lib.rs crates/gs-ir/src/builder.rs crates/gs-ir/src/engine.rs crates/gs-ir/src/exec.rs crates/gs-ir/src/expr.rs crates/gs-ir/src/logical.rs crates/gs-ir/src/pattern.rs crates/gs-ir/src/physical.rs crates/gs-ir/src/record.rs Cargo.toml

crates/gs-ir/src/lib.rs:
crates/gs-ir/src/builder.rs:
crates/gs-ir/src/engine.rs:
crates/gs-ir/src/exec.rs:
crates/gs-ir/src/expr.rs:
crates/gs-ir/src/logical.rs:
crates/gs-ir/src/pattern.rs:
crates/gs-ir/src/physical.rs:
crates/gs-ir/src/record.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
