/root/repo/target/debug/deps/gs_bench-216b729b7bf8ebb7.d: crates/gs-bench/src/lib.rs crates/gs-bench/src/experiments/mod.rs crates/gs-bench/src/experiments/ablations.rs crates/gs-bench/src/experiments/analytics.rs crates/gs-bench/src/experiments/apps.rs crates/gs-bench/src/experiments/learning.rs crates/gs-bench/src/experiments/query.rs crates/gs-bench/src/experiments/storage.rs crates/gs-bench/src/util.rs

/root/repo/target/debug/deps/libgs_bench-216b729b7bf8ebb7.rlib: crates/gs-bench/src/lib.rs crates/gs-bench/src/experiments/mod.rs crates/gs-bench/src/experiments/ablations.rs crates/gs-bench/src/experiments/analytics.rs crates/gs-bench/src/experiments/apps.rs crates/gs-bench/src/experiments/learning.rs crates/gs-bench/src/experiments/query.rs crates/gs-bench/src/experiments/storage.rs crates/gs-bench/src/util.rs

/root/repo/target/debug/deps/libgs_bench-216b729b7bf8ebb7.rmeta: crates/gs-bench/src/lib.rs crates/gs-bench/src/experiments/mod.rs crates/gs-bench/src/experiments/ablations.rs crates/gs-bench/src/experiments/analytics.rs crates/gs-bench/src/experiments/apps.rs crates/gs-bench/src/experiments/learning.rs crates/gs-bench/src/experiments/query.rs crates/gs-bench/src/experiments/storage.rs crates/gs-bench/src/util.rs

crates/gs-bench/src/lib.rs:
crates/gs-bench/src/experiments/mod.rs:
crates/gs-bench/src/experiments/ablations.rs:
crates/gs-bench/src/experiments/analytics.rs:
crates/gs-bench/src/experiments/apps.rs:
crates/gs-bench/src/experiments/learning.rs:
crates/gs-bench/src/experiments/query.rs:
crates/gs-bench/src/experiments/storage.rs:
crates/gs-bench/src/util.rs:
