//! Compatibility interfaces (paper §6): "built-in algorithm packages ...
//! feature APIs that are compatible with NetworkX, GraphX, and Giraph
//! interfaces, enabling users to enjoy the performance improvements ...
//! without having to modify the original code."
//!
//! Three façades over the same GRAPE engine:
//!
//! * [`networkx`] — function-per-algorithm calls over an edge list, like
//!   `networkx.pagerank(G)`;
//! * [`graphx`] — Spark GraphX's `aggregateMessages` / `mapVertices` /
//!   `joinVertices` triplet model (the §8 equity algorithm is written
//!   against this);
//! * [`giraph`] — a Giraph-style `BasicComputation` class shape mapped to
//!   the Pregel runtime.

use crate::engine::{run_pregel, GrapeEngine, PregelContext, PregelProgram};
use crate::messages::Payload;
use gs_graph::VId;

/// NetworkX-style convenience calls: build once, call like the Python API.
pub mod networkx {
    use super::*;

    /// `networkx.Graph` stand-in: owns the engine, undirected by default.
    pub struct Graph {
        engine: GrapeEngine,
    }

    impl Graph {
        /// `nx.Graph()` from an edge list (symmetrized, like NetworkX's
        /// undirected default).
        pub fn new(n: usize, edges: &[(u64, u64)], workers: usize) -> Self {
            let mut el = gs_graph::EdgeList::from_pairs(n, edges.iter().copied());
            el.symmetrize();
            Self {
                engine: GrapeEngine::from_edges(n, el.edges(), workers),
            }
        }

        /// `nx.DiGraph()` — directed, no symmetrization.
        pub fn new_directed(n: usize, edges: &[(u64, u64)], workers: usize) -> Self {
            let pairs: Vec<(VId, VId)> = edges.iter().map(|&(s, d)| (VId(s), VId(d))).collect();
            Self {
                engine: GrapeEngine::from_edges(n, &pairs, workers),
            }
        }

        /// Undirected graph over any GRIN store (all labels, symmetrized).
        pub fn from_grin(graph: &dyn gs_grin::GrinGraph, workers: usize) -> gs_graph::Result<Self> {
            let (engine, _) = GrapeEngine::from_grin(
                graph,
                &crate::loader::GrinProjection::all().symmetrized(),
                workers,
            )?;
            Ok(Self { engine })
        }

        /// Directed graph over any GRIN store.
        pub fn from_grin_directed(
            graph: &dyn gs_grin::GrinGraph,
            workers: usize,
        ) -> gs_graph::Result<Self> {
            let (engine, _) =
                GrapeEngine::from_grin(graph, &crate::loader::GrinProjection::all(), workers)?;
            Ok(Self { engine })
        }

        /// `nx.pagerank(G, alpha)`.
        pub fn pagerank(&self, alpha: f64, max_iter: usize) -> Vec<f64> {
            crate::algorithms::pagerank(&self.engine, alpha, max_iter)
        }

        /// `nx.shortest_path_length(G, source)` in hops.
        pub fn shortest_path_length(&self, source: u64) -> Vec<Option<u64>> {
            crate::algorithms::bfs(&self.engine, VId(source))
                .into_iter()
                .map(|d| (d != u64::MAX).then_some(d))
                .collect()
        }

        /// `nx.connected_components(G)` — component label per vertex.
        pub fn connected_components(&self) -> Vec<u64> {
            crate::algorithms::wcc(&self.engine)
        }

        /// `nx.core_number`-style membership of the k-core.
        pub fn k_core(&self, k: usize) -> Vec<bool> {
            crate::algorithms::kcore(&self.engine, k)
        }
    }
}

/// GraphX-style vertex/edge-triplet programming.
pub mod graphx {
    use super::*;
    use crate::messages::OutBuffers;

    /// A GraphX-like property graph: per-vertex attribute `V`, per-edge
    /// attribute f64 (weight).
    pub struct PropertyGraph<V: Clone + Default + Send + Sync + 'static> {
        engine: GrapeEngine,
        vertices: Vec<V>,
    }

    /// One edge triplet visible to `aggregate_messages`.
    pub struct Triplet<'a, V> {
        pub src_id: u64,
        pub dst_id: u64,
        pub src_attr: &'a V,
        pub weight: f64,
    }

    impl<V: Clone + Default + Send + Sync + 'static> PropertyGraph<V> {
        /// `Graph(vertices, edges)` with weights.
        pub fn new(
            vertices: Vec<V>,
            edges: &[(u64, u64)],
            weights: &[f64],
            workers: usize,
        ) -> Self {
            let pairs: Vec<(VId, VId)> = edges.iter().map(|&(s, d)| (VId(s), VId(d))).collect();
            Self {
                engine: GrapeEngine::from_weighted_edges(vertices.len(), &pairs, weights, workers),
                vertices,
            }
        }

        /// `Graph(vertices, edges)` over any GRIN store: topology (and an
        /// optional `f64` edge-weight property) come from the store, vertex
        /// attributes from `init` (called with each flattened global id).
        pub fn from_grin(
            graph: &dyn gs_grin::GrinGraph,
            weight_property: Option<&str>,
            workers: usize,
            init: impl Fn(u64) -> V,
        ) -> gs_graph::Result<Self> {
            let proj = crate::loader::GrinProjection {
                weight_property: weight_property.map(str::to_string),
                ..Default::default()
            };
            let (engine, space) = GrapeEngine::from_grin(graph, &proj, workers)?;
            let vertices = (0..space.total() as u64).map(init).collect();
            Ok(Self { engine, vertices })
        }

        /// `graph.vertices`.
        pub fn vertices(&self) -> &[V] {
            &self.vertices
        }

        /// `graph.mapVertices(f)`.
        pub fn map_vertices<W: Clone + Default + Send + Sync + 'static>(
            &self,
            f: impl Fn(u64, &V) -> W,
        ) -> PropertyGraph<W> {
            PropertyGraph {
                engine: GrapeEngine {
                    fragments: Vec::new(), // re-partition below
                    recovery: None,
                },
                vertices: self
                    .vertices
                    .iter()
                    .enumerate()
                    .map(|(i, v)| f(i as u64, v))
                    .collect(),
            }
            .adopt_topology(&self.engine)
        }

        fn adopt_topology(mut self, engine: &GrapeEngine) -> Self {
            // rebuild fragments from the source engine's edges
            let mut edges = Vec::new();
            let mut weights = Vec::new();
            for frag in &engine.fragments {
                for l in 0..frag.inner_count as u32 {
                    frag.for_each_out(l, |nbr, eid| {
                        edges.push((frag.global(l), frag.global(nbr.0 as u32)));
                        weights.push(frag.weights.as_ref().map(|w| w[eid.index()]).unwrap_or(1.0));
                    });
                }
            }
            self.engine = GrapeEngine::from_weighted_edges(
                self.vertices.len(),
                &edges,
                &weights,
                engine.fragments.len().max(1),
            );
            self
        }

        /// `graph.aggregateMessages(sendMsg, mergeMsg)`: `send` inspects
        /// each out-edge triplet and may emit a message to the destination;
        /// messages merge pairwise. Returns one `Option<M>` per vertex.
        pub fn aggregate_messages<M>(
            &self,
            send: impl Fn(&Triplet<'_, V>) -> Option<M> + Sync,
            merge: impl Fn(M, M) -> M + Sync,
        ) -> Vec<Option<M>>
        where
            M: Payload + std::fmt::Debug,
        {
            let vertices = &self.vertices;
            let results: Vec<Option<M>> = self.engine.run(|frag, comm| {
                let mut out = OutBuffers::new(comm.workers);
                for l in 0..frag.inner_count as u32 {
                    let src = frag.global(l);
                    frag.for_each_out(l, |nbr, eid| {
                        let dst = frag.global(nbr.0 as u32);
                        let t = Triplet {
                            src_id: src.0,
                            dst_id: dst.0,
                            src_attr: &vertices[src.index()],
                            weight: frag.weights.as_ref().map(|w| w[eid.index()]).unwrap_or(1.0),
                        };
                        if let Some(m) = send(&t) {
                            out.send(frag.owner(dst).index(), dst, m);
                        }
                    });
                }
                let (blocks, _) = comm.exchange(&mut out);
                let mut acc: Vec<Option<M>> = vec![None; frag.inner_count];
                for b in &blocks {
                    b.for_each::<M>(|g, m| {
                        let l = frag.local(g).expect("routed") as usize;
                        acc[l] = Some(match acc[l].take() {
                            Some(prev) => merge(prev, m),
                            None => m,
                        });
                    });
                }
                (0..frag.inner_count as u32)
                    .map(|l| (frag.global(l), acc[l as usize].take()))
                    .collect()
            });
            results
        }

        /// `graph.joinVertices(msgs)(f)`: folds per-vertex messages back
        /// into vertex attributes.
        pub fn join_vertices<M>(&mut self, msgs: Vec<Option<M>>, f: impl Fn(u64, &V, M) -> V) {
            for (i, m) in msgs.into_iter().enumerate() {
                if let Some(m) = m {
                    self.vertices[i] = f(i as u64, &self.vertices[i], m);
                }
            }
        }
    }
}

/// Giraph-style "BasicComputation": subclass-shaped trait mapped onto the
/// Pregel runtime.
pub mod giraph {
    use super::*;

    /// The Giraph `BasicComputation<I, V, E, M>` shape (vertex ids are
    /// always u64 here; edge values come from fragment weights).
    pub trait BasicComputation: Sync {
        type VertexValue: Clone + Default + Send + 'static;
        type Message: Payload;

        /// `compute(vertex, messages)`.
        fn compute(
            &self,
            vertex: &mut GiraphVertex<'_, '_, Self::VertexValue, Self::Message>,
            messages: &[Self::Message],
        );

        /// Initial vertex value.
        fn initial_value(&self, id: u64) -> Self::VertexValue;
    }

    /// The mutable vertex handle passed to `compute`.
    pub struct GiraphVertex<'a, 'b, V, M: Payload> {
        pub id: u64,
        pub superstep: usize,
        value: &'a mut V,
        halted: bool,
        ctx: &'a mut PregelContext<'b, M>,
        local: u32,
    }

    impl<'a, 'b, V, M: Payload> GiraphVertex<'a, 'b, V, M> {
        /// `getValue()`.
        pub fn value(&self) -> &V {
            self.value
        }

        /// `setValue(v)`.
        pub fn set_value(&mut self, v: V) {
            *self.value = v;
        }

        /// `sendMessageToAllEdges(msg)`.
        pub fn send_message_to_all_edges(&mut self, msg: M) {
            self.ctx.send_to_out_neighbors(self.local, msg);
        }

        /// `sendMessage(target, msg)`.
        pub fn send_message(&mut self, target: u64, msg: M) {
            self.ctx.send(VId(target), msg);
        }

        /// `voteToHalt()`.
        pub fn vote_to_halt(&mut self) {
            self.halted = true;
        }
    }

    struct Adapter<'a, C: BasicComputation>(&'a C);

    impl<'a, C: BasicComputation> PregelProgram for Adapter<'a, C> {
        type Msg = C::Message;
        type Value = C::VertexValue;

        fn init(&self, g: VId, _f: &crate::fragment::Fragment) -> Self::Value {
            self.0.initial_value(g.0)
        }

        fn compute(
            &self,
            step: usize,
            local: u32,
            value: &mut Self::Value,
            msgs: &[Self::Msg],
            ctx: &mut PregelContext<'_, Self::Msg>,
        ) -> bool {
            let id = ctx.frag.global(local).0;
            let mut vertex = GiraphVertex {
                id,
                superstep: step,
                value,
                halted: false,
                ctx,
                local,
            };
            self.0.compute(&mut vertex, msgs);
            !vertex.halted
        }
    }

    /// `GiraphRunner.run(computation)`.
    pub fn run<C: BasicComputation>(
        engine: &GrapeEngine,
        computation: &C,
        max_supersteps: usize,
    ) -> Vec<C::VertexValue> {
        run_pregel(engine, &Adapter(computation), max_supersteps)
    }

    /// `GiraphRunner.run(computation)` straight over a GRIN store — builds
    /// the fragments from the store, then runs the computation.
    pub fn run_from_grin<C: BasicComputation>(
        graph: &dyn gs_grin::GrinGraph,
        computation: &C,
        max_supersteps: usize,
        workers: usize,
    ) -> gs_graph::Result<Vec<C::VertexValue>> {
        let (engine, _) =
            GrapeEngine::from_grin(graph, &crate::loader::GrinProjection::all(), workers)?;
        Ok(run(&engine, computation, max_supersteps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_grin::graph::mock::MockGraph;

    #[test]
    fn networkx_from_grin_matches_edge_list_construction() {
        let triples: Vec<(u64, u64, f64)> = vec![
            (0, 1, 1.0),
            (1, 2, 1.0),
            (2, 3, 1.0),
            (3, 0, 1.0),
            (1, 3, 1.0),
        ];
        let store = MockGraph::new(5, &triples);
        let pairs: Vec<(u64, u64)> = triples.iter().map(|&(s, d, _)| (s, d)).collect();
        let from_list = networkx::Graph::new(5, &pairs, 2);
        let from_store = networkx::Graph::from_grin(&store, 2).unwrap();
        assert_eq!(
            from_list.connected_components(),
            from_store.connected_components()
        );
        assert_eq!(from_list.pagerank(0.85, 10), from_store.pagerank(0.85, 10));
        let directed = networkx::Graph::from_grin_directed(&store, 2).unwrap();
        assert_eq!(directed.shortest_path_length(0)[2], Some(2));
    }

    #[test]
    fn graphx_from_grin_reads_weights_from_store() {
        let store = MockGraph::new(3, &[(0, 1, 0.5), (1, 2, 0.25)]);
        let mut g =
            graphx::PropertyGraph::from_grin(&store, Some("weight"), 1, |_| 1.0f64).unwrap();
        let msgs = g.aggregate_messages::<f64>(|t| Some(t.src_attr * t.weight), |a, b| a + b);
        g.join_vertices(msgs, |_, v, m| v + m);
        assert_eq!(g.vertices(), &[1.0, 1.5, 1.25]);
    }

    #[test]
    fn giraph_run_from_grin_matches_engine_run() {
        struct MinId;
        impl giraph::BasicComputation for MinId {
            type VertexValue = u64;
            type Message = u64;
            fn initial_value(&self, id: u64) -> u64 {
                id
            }
            fn compute(
                &self,
                vertex: &mut giraph::GiraphVertex<'_, '_, u64, u64>,
                messages: &[u64],
            ) {
                let mut best = *vertex.value();
                for &m in messages {
                    best = best.min(m);
                }
                if vertex.superstep == 0 || best < *vertex.value() {
                    vertex.set_value(best);
                    vertex.send_message_to_all_edges(best);
                }
                vertex.vote_to_halt();
            }
        }
        let triples: Vec<(u64, u64, f64)> = (0..6u64)
            .flat_map(|i| [(i, (i + 1) % 6, 1.0), ((i + 1) % 6, i, 1.0)])
            .collect();
        let store = MockGraph::new(6, &triples);
        let values = giraph::run_from_grin(&store, &MinId, 50, 2).unwrap();
        assert!(values.iter().all(|&v| v == 0), "{values:?}");
    }

    #[test]
    fn networkx_facade_matches_algorithms() {
        let edges: Vec<(u64, u64)> = vec![(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)];
        let g = networkx::Graph::new(5, &edges, 2);
        let comps = g.connected_components();
        assert_eq!(comps[..4], [0, 0, 0, 0]);
        assert_eq!(comps[4], 4, "isolated vertex is its own component");
        let dist = g.shortest_path_length(0);
        assert_eq!(dist[2], Some(2));
        assert_eq!(dist[4], None);
        let pr = g.pagerank(0.85, 10);
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let core = g.k_core(2);
        assert!(core[..4].iter().all(|&b| b));
        assert!(!core[4]);
    }

    #[test]
    fn graphx_aggregate_messages_degree_count() {
        // in-degree via aggregateMessages, like the GraphX docs example
        let vertices: Vec<u64> = vec![0; 4];
        let edges = vec![(0u64, 1u64), (0, 2), (1, 2), (3, 2)];
        let weights = vec![1.0; 4];
        let g = graphx::PropertyGraph::new(vertices, &edges, &weights, 2);
        let indeg = g.aggregate_messages::<u64>(|_t| Some(1), |a, b| a + b);
        assert_eq!(indeg, vec![None, Some(1), Some(3), None]);
    }

    #[test]
    fn graphx_join_vertices_applies_messages() {
        let vertices: Vec<f64> = vec![1.0; 3];
        let edges = vec![(0u64, 1u64), (1, 2)];
        let weights = vec![0.5, 0.25];
        let mut g = graphx::PropertyGraph::new(vertices, &edges, &weights, 1);
        // propagate weighted attribute one hop
        let msgs = g.aggregate_messages::<f64>(|t| Some(t.src_attr * t.weight), |a, b| a + b);
        g.join_vertices(msgs, |_, v, m| v + m);
        assert_eq!(g.vertices(), &[1.0, 1.5, 1.25]);
    }

    #[test]
    fn giraph_max_value_propagation() {
        struct MaxValue;
        impl giraph::BasicComputation for MaxValue {
            type VertexValue = u64;
            type Message = u64;
            fn initial_value(&self, id: u64) -> u64 {
                id * 10
            }
            fn compute(
                &self,
                vertex: &mut giraph::GiraphVertex<'_, '_, u64, u64>,
                messages: &[u64],
            ) {
                let mut best = *vertex.value();
                for &m in messages {
                    best = best.max(m);
                }
                if vertex.superstep == 0 || best > *vertex.value() {
                    vertex.set_value(best);
                    vertex.send_message_to_all_edges(best);
                }
                vertex.vote_to_halt();
            }
        }
        // bidirectional ring of 6
        let edges: Vec<(VId, VId)> = (0..6u64)
            .flat_map(|i| [(VId(i), VId((i + 1) % 6)), (VId((i + 1) % 6), VId(i))])
            .collect();
        let engine = GrapeEngine::from_edges(6, &edges, 2);
        let values = giraph::run(&engine, &MaxValue, 50);
        assert!(values.iter().all(|&v| v == 50), "{values:?}");
    }
}
