/root/repo/target/debug/deps/gs_grin-c0bd9d941b39c193.d: crates/gs-grin/src/lib.rs crates/gs-grin/src/capability.rs crates/gs-grin/src/graph.rs crates/gs-grin/src/predicate.rs Cargo.toml

/root/repo/target/debug/deps/libgs_grin-c0bd9d941b39c193.rmeta: crates/gs-grin/src/lib.rs crates/gs-grin/src/capability.rs crates/gs-grin/src/graph.rs crates/gs-grin/src/predicate.rs Cargo.toml

crates/gs-grin/src/lib.rs:
crates/gs-grin/src/capability.rs:
crates/gs-grin/src/graph.rs:
crates/gs-grin/src/predicate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
