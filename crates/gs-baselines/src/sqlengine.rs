//! A relational engine baseline (Exp-6 equity, Exp-8 cybersecurity, and
//! the pre-GraphScope fraud pipeline).
//!
//! Tables with typed rows and textbook physical operators: filtered scans,
//! hash joins, grouped aggregation. Multi-hop graph traversals become
//! self-joins whose intermediate results explode — reproducing why the
//! paper reports 2,400× for two-hop Trojan detection and an intractable
//! equity analysis on the SQL side.

use gs_graph::value::GroupKey;
use gs_graph::{GraphError, Result, Value};
use std::collections::HashMap;

/// A named relational table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    pub name: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl Table {
    /// Empty table with a schema.
    pub fn new(name: &str, columns: &[&str]) -> Self {
        Self {
            name: name.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Column index by name.
    pub fn col(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| GraphError::Query(format!("{}: no column `{name}`", self.name)))
    }

    /// Appends a row (arity-checked).
    pub fn insert(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(GraphError::Schema(format!(
                "{}: row arity {} != {}",
                self.name,
                row.len(),
                self.columns.len()
            )));
        }
        self.rows.push(row);
        Ok(())
    }

    /// Filtered scan into a new table.
    pub fn select(&self, pred: impl Fn(&[Value]) -> bool) -> Table {
        Table {
            name: format!("σ({})", self.name),
            columns: self.columns.clone(),
            rows: self.rows.iter().filter(|r| pred(r)).cloned().collect(),
        }
    }

    /// Hash equi-join on `self.left_col == other.right_col`; output columns
    /// are `self.columns ++ other.columns` (qualified with table names on
    /// collision).
    pub fn hash_join(&self, other: &Table, left_col: &str, right_col: &str) -> Result<Table> {
        let li = self.col(left_col)?;
        let ri = other.col(right_col)?;
        // build side: smaller input
        let mut out_cols = self.columns.clone();
        for c in &other.columns {
            if out_cols.contains(c) {
                out_cols.push(format!("{}.{}", other.name, c));
            } else {
                out_cols.push(c.clone());
            }
        }
        let mut built: HashMap<GroupKey, Vec<&Vec<Value>>> = HashMap::new();
        for row in &other.rows {
            built
                .entry(GroupKey(row[ri].clone()))
                .or_default()
                .push(row);
        }
        let mut rows = Vec::new();
        for lrow in &self.rows {
            if lrow[li].is_null() {
                continue;
            }
            if let Some(matches) = built.get(&GroupKey(lrow[li].clone())) {
                for rrow in matches {
                    let mut r = lrow.clone();
                    r.extend(rrow.iter().cloned());
                    rows.push(r);
                }
            }
        }
        Ok(Table {
            name: format!("({}⋈{})", self.name, other.name),
            columns: out_cols,
            rows,
        })
    }

    /// Projection by column names.
    pub fn project(&self, cols: &[&str]) -> Result<Table> {
        let idx: Vec<usize> = cols.iter().map(|c| self.col(c)).collect::<Result<_>>()?;
        Ok(Table {
            name: format!("π({})", self.name),
            columns: cols.iter().map(|s| s.to_string()).collect(),
            rows: self
                .rows
                .iter()
                .map(|r| idx.iter().map(|&i| r[i].clone()).collect())
                .collect(),
        })
    }

    /// Group by one column with COUNT(*) and SUM(sum_col?) aggregates.
    pub fn group_count_sum(&self, key_col: &str, sum_col: Option<&str>) -> Result<Table> {
        let ki = self.col(key_col)?;
        let si = sum_col.map(|c| self.col(c)).transpose()?;
        let mut groups: HashMap<GroupKey, (Value, i64, f64)> = HashMap::new();
        let mut order: Vec<GroupKey> = Vec::new();
        for row in &self.rows {
            let k = GroupKey(row[ki].clone());
            let entry = groups.entry(GroupKey(row[ki].clone()));
            if matches!(entry, std::collections::hash_map::Entry::Vacant(_)) {
                order.push(k);
            }
            let slot = groups
                .entry(GroupKey(row[ki].clone()))
                .or_insert((row[ki].clone(), 0, 0.0));
            slot.1 += 1;
            if let Some(si) = si {
                slot.2 += row[si].as_float().unwrap_or(0.0);
            }
        }
        let mut cols = vec![key_col.to_string(), "count".to_string()];
        if sum_col.is_some() {
            cols.push("sum".to_string());
        }
        let mut rows = Vec::with_capacity(order.len());
        for k in order {
            let (v, c, s) = groups.remove(&k).expect("group present");
            let mut r = vec![v, Value::Int(c)];
            if sum_col.is_some() {
                r.push(Value::Float(s));
            }
            rows.push(r);
        }
        Ok(Table {
            name: format!("γ({})", self.name),
            columns: cols,
            rows,
        })
    }

    /// Distinct rows.
    pub fn distinct(&self) -> Table {
        let mut seen = std::collections::HashSet::new();
        Table {
            name: format!("δ({})", self.name),
            columns: self.columns.clone(),
            rows: self
                .rows
                .iter()
                .filter(|r| seen.insert(r.iter().map(|v| GroupKey(v.clone())).collect::<Vec<_>>()))
                .cloned()
                .collect(),
        }
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Table {
        let mut t = Table::new("people", &["id", "city"]);
        t.insert(vec![Value::Int(1), Value::Str("ams".into())])
            .unwrap();
        t.insert(vec![Value::Int(2), Value::Str("ber".into())])
            .unwrap();
        t.insert(vec![Value::Int(3), Value::Str("ams".into())])
            .unwrap();
        t
    }

    fn knows() -> Table {
        let mut t = Table::new("knows", &["src", "dst"]);
        for (a, b) in [(1, 2), (2, 3), (1, 3)] {
            t.insert(vec![Value::Int(a), Value::Int(b)]).unwrap();
        }
        t
    }

    #[test]
    fn select_and_project() {
        let t = people().select(|r| r[1].as_str() == Some("ams"));
        assert_eq!(t.len(), 2);
        let p = t.project(&["id"]).unwrap();
        assert_eq!(p.columns, vec!["id"]);
        assert_eq!(p.rows, vec![vec![Value::Int(1)], vec![Value::Int(3)]]);
    }

    #[test]
    fn hash_join_two_hop() {
        // two-hop: knows ⋈ knows on dst = src
        let k = knows();
        let two_hop = k.hash_join(&k, "dst", "src").unwrap();
        // paths: 1→2→3
        assert_eq!(two_hop.len(), 1);
        assert_eq!(two_hop.rows[0][0], Value::Int(1));
        assert_eq!(two_hop.rows[0][3], Value::Int(3));
        // column collision got qualified
        assert!(two_hop.columns.contains(&"knows.src".to_string()));
    }

    #[test]
    fn group_count_and_sum() {
        let mut t = Table::new("sales", &["item", "amount"]);
        for (i, a) in [(1, 2.0), (1, 3.0), (2, 5.0)] {
            t.insert(vec![Value::Int(i), Value::Float(a)]).unwrap();
        }
        let g = t.group_count_sum("item", Some("amount")).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(
            g.rows[0],
            vec![Value::Int(1), Value::Int(2), Value::Float(5.0)]
        );
    }

    #[test]
    fn distinct_dedups() {
        let mut t = Table::new("t", &["x"]);
        for v in [1, 1, 2] {
            t.insert(vec![Value::Int(v)]).unwrap();
        }
        assert_eq!(t.distinct().len(), 2);
    }

    #[test]
    fn arity_and_missing_columns_error() {
        let mut t = Table::new("t", &["x"]);
        assert!(t.insert(vec![]).is_err());
        assert!(t.col("nope").is_err());
    }
}
