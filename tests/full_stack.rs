//! Cross-crate integration tests: whole-stack paths assembled from bricks,
//! mirroring the deployments of paper §3/§8.

use graphscope_flex::prelude::*;
use gs_flex::snb::{bi_plan, BiParams};
use gs_ir::physical::lower_naive;
use std::collections::HashMap;
use std::sync::Arc;

/// Cypher → IR → RBO/CBO over Vineyard, executed through every
/// [`QueryEngine`] (§3's Workload-5 stack): the reference executor defines
/// the semantics, Gaia and HiActor must agree through the same interface.
#[test]
fn cypher_to_gaia_on_vineyard() {
    let social = generate_snb(&SnbConfig::lite(250));
    let store = VineyardGraph::build(&social.data).unwrap();
    let schema = social.data.schema.clone();
    let q = "MATCH (a:Person)-[:KNOWS]-(b:Person)-[:KNOWS]-(c:Person) \
             WHERE a.browserUsed = 'Firefox' \
             RETURN b, COUNT(c) AS reach ORDER BY reach DESC, b LIMIT 10";
    let optimizer = Optimizer::new(GlogueCatalog::build(&store, 200));
    let compiled = Frontend::Cypher
        .compile_with(q, &schema, &HashMap::new(), &optimizer)
        .unwrap();
    let canon = |mut v: Vec<Vec<Value>>| {
        v.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        v
    };
    let reference = ReferenceEngine::default();
    let slow = canon(
        QueryEngine::execute(&reference, &lower_naive(&compiled.logical).unwrap(), &store).unwrap(),
    );
    let gaia = GaiaEngine::new(3);
    let hiactor = QueryService::new(2);
    let engines: [&dyn QueryEngine; 3] = [&reference, &gaia, &hiactor];
    for engine in engines {
        // prepare once, execute twice: the handle must agree with the
        // reference on every call
        let prepared = engine.prepare(&compiled.physical).unwrap();
        for _ in 0..2 {
            let fast = prepared.execute(&store).unwrap();
            assert_eq!(canon(fast), slow, "engine {}", engine.name());
        }
    }
}

/// The paper's Figure 5 claim: the same query in Gremlin and Cypher
/// compiles through one IR and produces identical results.
#[test]
fn figure5_gremlin_cypher_equivalence() {
    let mut schema = GraphSchema::new();
    let buyer = schema.add_vertex_label(
        "Buyer",
        &[("username", ValueType::Str), ("credits", ValueType::Int)],
    );
    let item = schema.add_vertex_label("Item", &[("price", ValueType::Float)]);
    schema.add_edge_label("knows", buyer, buyer, &[]);
    schema.add_edge_label("buys", buyer, item, &[]);
    let mut data = PropertyGraphData::new(schema.clone());
    for (id, name) in [(1u64, "A1"), (2, "B2"), (3, "C3")] {
        data.add_vertex(buyer, id, vec![Value::Str(name.into()), Value::Int(10)]);
    }
    for (id, price) in [(7u64, 10.0), (8, 20.0)] {
        data.add_vertex(item, id, vec![Value::Float(price)]);
    }
    let knows = schema.edge_label_by_name("knows").unwrap().id;
    let buys = schema.edge_label_by_name("buys").unwrap().id;
    data.add_edge(knows, 1, 2, vec![]);
    data.add_edge(knows, 2, 1, vec![]);
    data.add_edge(buys, 2, 7, vec![]);
    data.add_edge(buys, 2, 8, vec![]);
    let store = VineyardGraph::build(&data).unwrap();

    // "finding the purchased items' prices of friends" (paper Fig. 5)
    let gremlin =
        "g.V().hasLabel('Buyer').has('username', 'A1').out('knows').out('buys').values('price')";
    let cypher = "MATCH (a:Buyer {username: 'A1'})-[:knows]-(b:Buyer)-[:buys]->(c:Item) \
                  RETURN c.price AS price";
    let cg = Frontend::Gremlin.compile(gremlin, &schema).unwrap();
    let cc = Frontend::Cypher.compile(cypher, &schema).unwrap();
    assert_ne!(cg.cache_key, cc.cache_key, "statement keys must not alias");
    let engine: &dyn QueryEngine = &ReferenceEngine::default();
    let rg = engine
        .prepare(&cg.physical)
        .unwrap()
        .execute(&store)
        .unwrap();
    let rc = engine
        .prepare(&cc.physical)
        .unwrap()
        .execute(&store)
        .unwrap();
    let mut prices_g: Vec<String> = rg.iter().map(|r| r[0].to_string()).collect();
    let mut prices_c: Vec<String> = rc.iter().map(|r| r[0].to_string()).collect();
    prices_g.sort();
    prices_c.sort();
    assert_eq!(prices_g, prices_c);
    assert_eq!(prices_g, vec!["10", "20"]);
}

/// OLTP on a dynamic graph: Gremlin queries through HiActor on GART while
/// a writer mutates — reads stay on their snapshot.
#[test]
fn hiactor_on_gart_with_concurrent_updates() {
    let mut schema = GraphSchema::new();
    let v = schema.add_vertex_label("V", &[("x", ValueType::Int)]);
    schema.add_edge_label("E", v, v, &[]);
    let store = GartStore::new(schema.clone());
    for i in 0..50u64 {
        store
            .add_vertex(gs_graph::LabelId(0), i, vec![Value::Int(i as i64)])
            .unwrap();
    }
    for i in 0..49u64 {
        store
            .add_edge(gs_graph::LabelId(0), i, i + 1, vec![])
            .unwrap();
    }
    store.commit();
    let svc = QueryService::new(2);
    let snap = store.snapshot();
    let compiled = Frontend::Gremlin
        .compile("g.V().hasLabel('V').out('E').count()", &schema)
        .unwrap();
    svc.register_plan("count_edges", compiled.physical, Arc::new(snap.clone()));
    // concurrent writer adds edges, but the registered snapshot is pinned
    let writer = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || {
            for i in 0..48u64 {
                store
                    .add_edge(gs_graph::LabelId(0), i, i + 2, vec![])
                    .unwrap();
                store.commit();
            }
        })
    };
    for _ in 0..20 {
        let rows = svc.call_sync("count_edges", HashMap::new()).unwrap();
        assert_eq!(rows[0][0], Value::Int(49), "pinned snapshot must not move");
    }
    writer.join().unwrap();
    assert_eq!(store.snapshot().edge_count(gs_graph::LabelId(0)), 97);
}

/// GraphAr round trip: dump a generated SNB graph, reload, and verify the
/// reloaded store answers a BI query identically.
#[test]
fn graphar_dump_reload_equivalence() {
    let social = generate_snb(&SnbConfig::lite(150));
    let dir = std::env::temp_dir().join(format!("gs-it-graphar-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    gs_graphar::write_archive(&dir, &social.data).unwrap();
    let reloaded = gs_graphar::read_archive(&dir, 2).unwrap();
    let store_a = VineyardGraph::build(&social.data).unwrap();
    let store_b = VineyardGraph::build(&reloaded).unwrap();
    let plan = bi_plan(2, &social.data.schema, &social.labels, &BiParams::default()).unwrap();
    let phys = Optimizer::rbo_only().optimize(&plan).unwrap();
    let engine: &dyn QueryEngine = &ReferenceEngine::default();
    let a = engine.execute(&phys, &store_a).unwrap();
    let b = engine.execute(&phys, &store_b).unwrap();
    assert_eq!(a, b);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Analytical agreement across every engine on one dataset: GRAPE CPU,
/// GRAPE GPU-sim, PowerGraph, Gemini, Gunrock, Groute (PageRank + BFS).
#[test]
fn all_analytics_engines_agree() {
    use gs_baselines::{GeminiEngine, GrouteEngine, GunrockEngine, PowerGraphEngine};
    use gs_grape::{algorithms, bfs_gpu, pagerank_gpu, GpuCluster};
    let el = gs_datagen::catalog::Dataset::by_abbr("FB0")
        .unwrap()
        .edges(0.02);
    let n = el.vertex_count();
    let edges = el.edges().to_vec();
    let csr = gs_graph::Csr::from_edges(n, &edges);
    let iters = 8;

    let grape = GrapeEngine::from_edges(n, &edges, 3);
    let pr_ref = algorithms::pagerank(&grape, 0.85, iters);
    let pr_pg = PowerGraphEngine::new(n, &edges, 3).pagerank(0.85, iters);
    let pr_gm = GeminiEngine::new(n, &edges, 3).pagerank(0.85, iters);
    let pr_gk = GunrockEngine::new(2, 2).pagerank(n, &csr, 0.85, iters);
    let pr_gpu = pagerank_gpu(&GpuCluster::new(2, 2), n, &csr, 0.85, iters);
    for i in 0..n {
        for other in [&pr_pg, &pr_gm, &pr_gk, &pr_gpu] {
            assert!((pr_ref[i] - other[i]).abs() < 1e-9, "vertex {i}");
        }
    }

    let src = VId(0);
    let bfs_ref = algorithms::bfs(&grape, src);
    assert_eq!(bfs_ref, PowerGraphEngine::new(n, &edges, 3).bfs(src));
    assert_eq!(bfs_ref, GeminiEngine::new(n, &edges, 3).bfs(src));
    assert_eq!(bfs_ref, GunrockEngine::new(2, 2).bfs(n, &csr, src));
    assert_eq!(bfs_ref, GrouteEngine::new(2, 2).bfs(n, &csr, src));
    assert_eq!(bfs_ref, bfs_gpu(&GpuCluster::new(2, 2), n, &csr, src));
}

/// flexbuild presets drive real deployments: the fraud preset's component
/// set actually matches what FraudApp uses.
#[test]
fn flexbuild_presets_compose_and_apps_run() {
    let d = FlexBuild::fraud_oltp_preset().unwrap();
    assert!(d.components.contains(&Component::HiActor));
    assert!(d.components.contains(&Component::Gart));
    let w = gs_datagen::apps::fraud_graph(200, 80, 800, 20, 3);
    let app = gs_flex::FraudApp::new(&w, gs_flex::FraudConfig::default(), 2).unwrap();
    for &(a, it, dt) in w.order_stream.iter().take(20) {
        app.process_order(a, it, dt).unwrap();
    }
}
