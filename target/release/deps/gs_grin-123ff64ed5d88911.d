/root/repo/target/release/deps/gs_grin-123ff64ed5d88911.d: crates/gs-grin/src/lib.rs crates/gs-grin/src/capability.rs crates/gs-grin/src/graph.rs crates/gs-grin/src/predicate.rs

/root/repo/target/release/deps/libgs_grin-123ff64ed5d88911.rlib: crates/gs-grin/src/lib.rs crates/gs-grin/src/capability.rs crates/gs-grin/src/graph.rs crates/gs-grin/src/predicate.rs

/root/repo/target/release/deps/libgs_grin-123ff64ed5d88911.rmeta: crates/gs-grin/src/lib.rs crates/gs-grin/src/capability.rs crates/gs-grin/src/graph.rs crates/gs-grin/src/predicate.rs

crates/gs-grin/src/lib.rs:
crates/gs-grin/src/capability.rs:
crates/gs-grin/src/graph.rs:
crates/gs-grin/src/predicate.rs:
