//! A small self-contained JSON value model, parser, and writer.
//!
//! The stack persists a handful of metadata documents — graph schemas
//! (GraphAr archives, CSV exports) and flexbuild deployment manifests —
//! as JSON. The build environment vendors its external dependencies, so
//! rather than carrying a serde stack for three document types, this
//! module provides an explicit [`Json`] tree with `parse`/`render` and
//! typed accessors. Types that persist themselves implement `to_json` /
//! `from_json` by hand; the format on disk is ordinary JSON, readable by
//! any other tool.

use crate::error::{GraphError, Result};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document tree. Object keys keep sorted order (BTreeMap) so
/// rendered output is deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    // ---- typed accessors -------------------------------------------------

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(f) => Some(*f),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Object field lookup that errors with context (for decoders).
    pub fn field(&self, key: &str) -> Result<&Json> {
        self.get(key)
            .ok_or_else(|| GraphError::Corrupt(format!("missing json field `{key}`")))
    }

    // ---- rendering -------------------------------------------------------

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty-printed rendering with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // keep a decimal point so the value re-parses as float
                    if f.fract() == 0.0 && f.abs() < 1e15 {
                        let _ = write!(out, "{f:.1}");
                    } else {
                        let _ = write!(out, "{f}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !map.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }

    // ---- parsing ---------------------------------------------------------

    /// Parses a JSON document, requiring it to span the whole input.
    pub fn parse(input: &str) -> Result<Json> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(GraphError::Corrupt(format!(
                "trailing bytes after json document at offset {pos}"
            )));
        }
        Ok(value)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn corrupt(msg: &str, pos: usize) -> GraphError {
    GraphError::Corrupt(format!("json: {msg} at offset {pos}"))
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<()> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(corrupt(&format!("expected `{lit}`"), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(corrupt("unexpected end of input", *pos)),
        Some(b'n') => expect(bytes, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(corrupt("expected `,` or `]`", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(corrupt("expected `:`", *pos));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(corrupt("expected `,` or `}`", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(corrupt("expected string", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(corrupt("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| corrupt("truncated \\u escape", *pos))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| corrupt("bad \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| corrupt("bad \\u escape", *pos))?;
                        // surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement character
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(corrupt("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // consume one UTF-8 scalar
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| corrupt("invalid utf-8", *pos))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let mut is_float = false;
    if bytes.get(*pos) == Some(&b'.') {
        is_float = true;
        *pos += 1;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e') | Some(b'E')) {
        is_float = true;
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| corrupt("invalid number", start))?;
    if text.is_empty() || text == "-" {
        return Err(corrupt("expected value", start));
    }
    if is_float {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| corrupt("invalid float", start))
    } else {
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| corrupt("integer out of range", start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for doc in ["null", "true", "false", "0", "-42", "\"hi\""] {
            let v = Json::parse(doc).unwrap();
            assert_eq!(v.render(), doc);
        }
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::Float(1.5).render(), "1.5");
        assert_eq!(Json::Float(2.0).render(), "2.0");
    }

    #[test]
    fn nested_round_trip() {
        let doc = Json::obj([
            ("name", Json::str("snb")),
            (
                "counts",
                Json::arr([Json::Int(1), Json::Int(2), Json::Int(3)]),
            ),
            ("nested", Json::obj([("flag", Json::Bool(true))])),
            ("none", Json::Null),
        ]);
        for rendered in [doc.render(), doc.pretty()] {
            assert_eq!(Json::parse(&rendered).unwrap(), doc);
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "quote \" backslash \\ newline \n tab \t unicode \u{1F600} ctrl \u{1}";
        let doc = Json::Str(s.to_string());
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : { } } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b"), Some(&Json::Obj(BTreeMap::new())));
    }

    #[test]
    fn malformed_documents_error() {
        for doc in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "nul",
            "[1]]",
        ] {
            assert!(Json::parse(doc).is_err(), "should reject {doc:?}");
        }
    }

    #[test]
    fn typed_accessors() {
        let v = Json::parse("{\"i\":7,\"f\":2.5,\"s\":\"x\",\"b\":true}").unwrap();
        assert_eq!(v.field("i").unwrap().as_u64(), Some(7));
        assert_eq!(v.field("f").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.field("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.field("b").unwrap().as_bool(), Some(true));
        assert!(v.field("missing").is_err());
        assert_eq!(v.field("f").unwrap().as_i64(), None);
    }
}
