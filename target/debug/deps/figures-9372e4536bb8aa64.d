/root/repo/target/debug/deps/figures-9372e4536bb8aa64.d: crates/gs-bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-9372e4536bb8aa64: crates/gs-bench/src/bin/figures.rs

crates/gs-bench/src/bin/figures.rs:
