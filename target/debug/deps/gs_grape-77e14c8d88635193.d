/root/repo/target/debug/deps/gs_grape-77e14c8d88635193.d: crates/gs-grape/src/lib.rs crates/gs-grape/src/algorithms/mod.rs crates/gs-grape/src/algorithms/bfs.rs crates/gs-grape/src/algorithms/cdlp.rs crates/gs-grape/src/algorithms/kcore.rs crates/gs-grape/src/algorithms/lcc.rs crates/gs-grape/src/algorithms/pagerank.rs crates/gs-grape/src/algorithms/sssp.rs crates/gs-grape/src/algorithms/wcc.rs crates/gs-grape/src/compat.rs crates/gs-grape/src/engine.rs crates/gs-grape/src/flash.rs crates/gs-grape/src/fragment.rs crates/gs-grape/src/gpu.rs crates/gs-grape/src/ingress.rs crates/gs-grape/src/messages.rs crates/gs-grape/src/pie.rs

/root/repo/target/debug/deps/libgs_grape-77e14c8d88635193.rlib: crates/gs-grape/src/lib.rs crates/gs-grape/src/algorithms/mod.rs crates/gs-grape/src/algorithms/bfs.rs crates/gs-grape/src/algorithms/cdlp.rs crates/gs-grape/src/algorithms/kcore.rs crates/gs-grape/src/algorithms/lcc.rs crates/gs-grape/src/algorithms/pagerank.rs crates/gs-grape/src/algorithms/sssp.rs crates/gs-grape/src/algorithms/wcc.rs crates/gs-grape/src/compat.rs crates/gs-grape/src/engine.rs crates/gs-grape/src/flash.rs crates/gs-grape/src/fragment.rs crates/gs-grape/src/gpu.rs crates/gs-grape/src/ingress.rs crates/gs-grape/src/messages.rs crates/gs-grape/src/pie.rs

/root/repo/target/debug/deps/libgs_grape-77e14c8d88635193.rmeta: crates/gs-grape/src/lib.rs crates/gs-grape/src/algorithms/mod.rs crates/gs-grape/src/algorithms/bfs.rs crates/gs-grape/src/algorithms/cdlp.rs crates/gs-grape/src/algorithms/kcore.rs crates/gs-grape/src/algorithms/lcc.rs crates/gs-grape/src/algorithms/pagerank.rs crates/gs-grape/src/algorithms/sssp.rs crates/gs-grape/src/algorithms/wcc.rs crates/gs-grape/src/compat.rs crates/gs-grape/src/engine.rs crates/gs-grape/src/flash.rs crates/gs-grape/src/fragment.rs crates/gs-grape/src/gpu.rs crates/gs-grape/src/ingress.rs crates/gs-grape/src/messages.rs crates/gs-grape/src/pie.rs

crates/gs-grape/src/lib.rs:
crates/gs-grape/src/algorithms/mod.rs:
crates/gs-grape/src/algorithms/bfs.rs:
crates/gs-grape/src/algorithms/cdlp.rs:
crates/gs-grape/src/algorithms/kcore.rs:
crates/gs-grape/src/algorithms/lcc.rs:
crates/gs-grape/src/algorithms/pagerank.rs:
crates/gs-grape/src/algorithms/sssp.rs:
crates/gs-grape/src/algorithms/wcc.rs:
crates/gs-grape/src/compat.rs:
crates/gs-grape/src/engine.rs:
crates/gs-grape/src/flash.rs:
crates/gs-grape/src/fragment.rs:
crates/gs-grape/src/gpu.rs:
crates/gs-grape/src/ingress.rs:
crates/gs-grape/src/messages.rs:
crates/gs-grape/src/pie.rs:
