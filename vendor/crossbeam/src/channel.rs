//! MPMC channels with crossbeam's semantics: cloneable senders and
//! receivers, `bounded` back-pressure, disconnect on last-handle drop.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    cap: Option<usize>,
    senders: AtomicUsize,
    receivers: AtomicUsize,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Error returned when sending on a channel with no receivers left.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned when receiving from an empty channel with no senders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with the channel still empty but connected.
    Timeout,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

/// The sending half; cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; cloneable (MPMC — receivers compete for messages).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a bounded MPMC channel; `send` blocks while `cap` messages are
/// queued. `cap == 0` is treated as capacity 1 (the workspace never uses
/// rendezvous channels).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        cap,
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Blocks until the message is queued, or errors if all receivers are
    /// gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut queue = self.shared.queue.lock().unwrap();
        loop {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            match self.shared.cap {
                Some(cap) if queue.len() >= cap => {
                    queue = self.shared.not_full.wait(queue).unwrap();
                }
                _ => break,
            }
        }
        queue.push_back(value);
        drop(queue);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Self {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // wake receivers blocked on an empty queue so they observe EOF
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives, or errors once the channel is empty
    /// and all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.queue.lock().unwrap();
        loop {
            if let Some(v) = queue.pop_front() {
                drop(queue);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvError);
            }
            queue = self.shared.not_empty.wait(queue).unwrap();
        }
    }

    /// Blocks until a message arrives or `timeout` elapses. Disconnect
    /// (empty queue, no senders) is reported in preference to timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.shared.queue.lock().unwrap();
        loop {
            if let Some(v) = queue.pop_front() {
                drop(queue);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .shared
                .not_empty
                .wait_timeout(queue, deadline - now)
                .unwrap();
            queue = guard;
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.queue.lock().unwrap();
        if let Some(v) = queue.pop_front() {
            drop(queue);
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if self.shared.senders.load(Ordering::SeqCst) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Messages queued right now.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().unwrap().len()
    }

    /// Whether the queue is empty right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking iterator that ends when the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Self {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            // wake senders blocked on a full queue so they observe the error
            self.shared.not_full.notify_all();
        }
    }
}

/// Borrowing blocking iterator over received messages.
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

/// Owning blocking iterator over received messages.
pub struct IntoIter<T> {
    receiver: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;
    fn into_iter(self) -> IntoIter<T> {
        IntoIter { receiver: self }
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.into_iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(7).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn bounded_applies_backpressure() {
        let (tx, rx) = bounded::<u64>(2);
        let producer = std::thread::spawn(move || {
            for i in 0..100u64 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for v in &rx {
            got.push(v);
        }
        producer.join().unwrap();
        assert_eq!(got.len(), 100);
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cloned_receivers_partition_messages() {
        let (tx, rx1) = unbounded::<u32>();
        let rx2 = rx1.clone();
        let h1 = std::thread::spawn(move || rx1.into_iter().count());
        let h2 = std::thread::spawn(move || rx2.into_iter().count());
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(h1.join().unwrap() + h2.join().unwrap(), 1000);
    }
}
