//! R-MAT / Graph500 Kronecker generator.
//!
//! The Graph500 benchmark (our `G500` dataset analogue) uses the recursive
//! matrix model with partition probabilities (a, b, c, d) = (0.57, 0.19,
//! 0.19, 0.05). Each edge picks one quadrant per level of recursion, which
//! yields the heavy-tailed degree distribution that stresses load balancing
//! in the analytical engines.

use gs_graph::edgelist::EdgeList;
use rand::Rng;
use rand_pcg::Pcg64Mcg;

/// R-MAT generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct RmatConfig {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Average edges per vertex (Graph500 uses 16).
    pub edge_factor: u32,
    pub a: f64,
    pub b: f64,
    pub c: f64,
    /// Random seed; same seed → same graph.
    pub seed: u64,
}

impl RmatConfig {
    /// The Graph500 standard parameterisation at the given scale.
    pub fn graph500(scale: u32) -> Self {
        Self {
            scale,
            edge_factor: 16,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed: 0x6500,
        }
    }

    /// Implied `d` quadrant probability.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generates an R-MAT edge list (directed, may contain duplicates/loops —
/// callers normalise with [`EdgeList::dedup_simple`] when they need a simple
/// graph, exactly like Graphalytics preprocessing does).
pub fn generate(cfg: &RmatConfig) -> EdgeList {
    assert!(cfg.scale <= 32, "scale too large for this simulator");
    assert!(cfg.d() >= 0.0, "quadrant probabilities exceed 1");
    let n = 1usize << cfg.scale;
    let m = n * cfg.edge_factor as usize;
    let mut rng = Pcg64Mcg::new(cfg.seed as u128 | 0x5851_f42d_4c95_7f2d_0000_0000_0000_0000);
    let mut el = EdgeList::new(n);
    // Noise added per level ("smoothing") avoids the exact self-similar
    // staircase, as in the Graph500 reference implementation.
    for _ in 0..m {
        let (mut x, mut y) = (0u64, 0u64);
        for level in 0..cfg.scale {
            let bit = 1u64 << (cfg.scale - 1 - level);
            let r: f64 = rng.gen();
            let (a, b, c) = (cfg.a, cfg.b, cfg.c);
            if r < a {
                // top-left: no bits set
            } else if r < a + b {
                y |= bit;
            } else if r < a + b + c {
                x |= bit;
            } else {
                x |= bit;
                y |= bit;
            }
        }
        el.push(gs_graph::VId(x), gs_graph::VId(y));
    }
    el
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_graph::VId;

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = RmatConfig::graph500(8);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = RmatConfig::graph500(8);
        let a = generate(&cfg);
        cfg.seed = 99;
        let b = generate(&cfg);
        assert_ne!(a, b);
    }

    #[test]
    fn counts_match_config() {
        let cfg = RmatConfig::graph500(10);
        let el = generate(&cfg);
        assert_eq!(el.vertex_count(), 1024);
        assert_eq!(el.edge_count(), 1024 * 16);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let cfg = RmatConfig::graph500(12);
        let el = generate(&cfg);
        let g = el.to_csr();
        let mut degrees: Vec<usize> = (0..g.vertex_count())
            .map(|v| g.degree(VId(v as u64)))
            .collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        // R-MAT skew: the top 1% of vertices should own far more than 1% of
        // edges (they own >20% at graph500 parameters).
        let top = degrees.iter().take(degrees.len() / 100).sum::<usize>();
        let total: usize = degrees.iter().sum();
        assert!(
            top * 5 > total,
            "expected heavy skew, top1% = {top}/{total}"
        );
    }

    #[test]
    #[should_panic(expected = "probabilities")]
    fn invalid_probabilities_panic() {
        let cfg = RmatConfig {
            scale: 4,
            edge_factor: 1,
            a: 0.5,
            b: 0.4,
            c: 0.3,
            seed: 1,
        };
        generate(&cfg);
    }
}
