//! Weakly connected components: min-label propagation (Pregel model).
//! Expects a symmetrized edge list (Graphalytics preprocessing).

use crate::engine::{run_pregel, GrapeEngine, PregelContext, PregelProgram};
use gs_graph::VId;

struct Wcc;

impl PregelProgram for Wcc {
    type Msg = u64;
    type Value = u64;

    fn init(&self, g: VId, _f: &crate::fragment::Fragment) -> u64 {
        g.0
    }

    fn compute(
        &self,
        step: usize,
        local: u32,
        value: &mut u64,
        msgs: &[u64],
        ctx: &mut PregelContext<'_, u64>,
    ) -> bool {
        let mut best = *value;
        for &m in msgs {
            best = best.min(m);
        }
        if step == 0 || best < *value {
            *value = best;
            ctx.send_to_out_neighbors(local, best);
        }
        false
    }

    fn combine(&self, a: u64, b: u64) -> Option<u64> {
        Some(a.min(b))
    }
}

/// Component labels (min global id per component), indexed by global id.
pub fn wcc(engine: &GrapeEngine) -> Vec<u64> {
    run_pregel(engine, &Wcc, engine.global_n() + 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::reference;
    use gs_graph::edgelist::EdgeList;

    #[test]
    fn matches_union_find_on_random_graph() {
        use rand::Rng;
        let mut rng = rand_pcg::Pcg64Mcg::new(13);
        let n = 200u64;
        let mut el = EdgeList::new(n as usize);
        for _ in 0..300 {
            el.push(VId(rng.gen_range(0..n)), VId(rng.gen_range(0..n)));
        }
        el.symmetrize();
        for k in [1, 2, 4] {
            let engine = GrapeEngine::from_edges(n as usize, el.edges(), k);
            let got = wcc(&engine);
            let want = reference::wcc(n as usize, el.edges());
            assert_eq!(got, want, "k={k}");
        }
    }

    #[test]
    fn isolated_vertices_are_their_own_component() {
        let el = EdgeList::new(5);
        let engine = GrapeEngine::from_edges(5, el.edges(), 2);
        assert_eq!(wcc(&engine), vec![0, 1, 2, 3, 4]);
    }
}
