//! Seeded negative tests: deliberately broken concurrency fixtures that
//! must trip each diagnostic code, plus clean-protocol controls that must
//! not. Only meaningful with the instrumentation compiled in.
#![cfg(feature = "sanitize")]

use gs_sanitizer::channel;
use gs_sanitizer::{
    with_sanitizer, SharedCell, TrackedBarrier, TrackedMutex, S_DATA_RACE, S_LOCK_CYCLE,
    S_LOST_MESSAGES, S_RECV_STUCK, S_SEND_DISCONNECTED, W_QUEUE_WATERMARK,
};

// ---------------------------------------------------------------------
// S001 — lock-order cycles
// ---------------------------------------------------------------------

#[test]
fn s001_lock_order_cycle_reported() {
    // A → B in one region, B → A in another. Sequential in one thread, so
    // nothing actually deadlocks — exactly the "latent deadlock" the
    // lock-order graph exists to catch before two threads hit it at once.
    let (_, report) = with_sanitizer(1, || {
        let a = TrackedMutex::new("fixture.lock.a", ());
        let b = TrackedMutex::new("fixture.lock.b", ());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        {
            let _gb = b.lock();
            let _ga = a.lock();
        }
    });
    assert!(report.has_code(S_LOCK_CYCLE), "{}", report.render());
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.code == S_LOCK_CYCLE)
        .unwrap();
    // both sites attributed
    assert!(diag.sites.contains(&"fixture.lock.a".to_string()));
    assert!(diag.sites.contains(&"fixture.lock.b".to_string()));
    assert!(diag.message.contains("potential deadlock"), "{diag}");
}

#[test]
fn s001_three_lock_cycle_reported() {
    // a → b → c → a, each edge from a different nesting
    let (_, report) = with_sanitizer(2, || {
        let a = TrackedMutex::new("fixture.tri.a", ());
        let b = TrackedMutex::new("fixture.tri.b", ());
        let c = TrackedMutex::new("fixture.tri.c", ());
        {
            let _x = a.lock();
            let _y = b.lock();
        }
        {
            let _x = b.lock();
            let _y = c.lock();
        }
        {
            let _x = c.lock();
            let _y = a.lock();
        }
    });
    assert!(report.has_code(S_LOCK_CYCLE), "{}", report.render());
}

#[test]
fn consistent_lock_order_is_clean() {
    let (_, report) = with_sanitizer(3, || {
        let a = TrackedMutex::new("fixture.ordered.a", ());
        let b = TrackedMutex::new("fixture.ordered.b", ());
        for _ in 0..4 {
            let _ga = a.lock();
            let _gb = b.lock();
        }
    });
    assert!(report.is_clean(), "{}", report.render());
}

// ---------------------------------------------------------------------
// S002 — happens-before races on SharedCell
// ---------------------------------------------------------------------

/// Each thread must perform a tracked warm-up op before the racy access:
/// a thread's clock is initialised at its first tracked operation by
/// joining everything live (the approximate spawn edge), so an access at
/// first sight would be spuriously ordered. The post-gate bump advances
/// each thread's own clock past anything that join could have seen.
fn warmed_up(label: &'static str, gate: &std::sync::Barrier) -> TrackedMutex<()> {
    let warm = TrackedMutex::new(label, ());
    drop(warm.lock()); // register this thread with the sanitizer
    gate.wait(); // untracked: deliberately NOT a happens-before edge
    drop(warm.lock()); // bump own clock past any registration join
    warm
}

#[test]
fn s002_unordered_update_vs_read_reported() {
    let (_, report) = with_sanitizer(4, || {
        let cell = SharedCell::new("fixture.racy", 0u64);
        let gate = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            s.spawn(|| {
                let _w = warmed_up("fixture.warm.a", &gate);
                cell.update(|v| *v += 1);
            });
            s.spawn(|| {
                let _w = warmed_up("fixture.warm.b", &gate);
                let _ = cell.get();
            });
        });
    });
    assert!(report.has_code(S_DATA_RACE), "{}", report.render());
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.code == S_DATA_RACE)
        .unwrap();
    assert_eq!(diag.sites, vec!["fixture.racy".to_string()]);
}

#[test]
fn s002_unordered_set_vs_update_reported() {
    // the GRAPE aggregator bug this was built for: a reset (`set`) racing
    // a contribution (`update`) with no barrier between them
    let (_, report) = with_sanitizer(5, || {
        let cell = SharedCell::new("fixture.reset_race", 0u64);
        let gate = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            s.spawn(|| {
                let _w = warmed_up("fixture.warm.c", &gate);
                cell.update(|v| *v += 7);
            });
            s.spawn(|| {
                let _w = warmed_up("fixture.warm.d", &gate);
                cell.set(0);
            });
        });
    });
    assert!(report.has_code(S_DATA_RACE), "{}", report.render());
}

#[test]
fn concurrent_updates_alone_are_clean() {
    // combining writes are unordered by design (fetch_add-style)
    let (_, report) = with_sanitizer(6, || {
        let cell = SharedCell::new("fixture.combining", 0u64);
        let gate = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            for label in ["fixture.warm.e", "fixture.warm.f"] {
                s.spawn(|| {
                    let _w = warmed_up(label, &gate);
                    for _ in 0..100 {
                        cell.update(|v| *v += 1);
                    }
                });
            }
        });
        assert_eq!(cell.get(), 200);
    });
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn barrier_ordered_reset_is_clean() {
    // the correct double-buffer protocol: update → barrier → read →
    // barrier → leader reset; the TrackedBarrier provides the edges
    let (_, report) = with_sanitizer(7, || {
        let cell = SharedCell::new("fixture.protocol", 0u64);
        let barrier = TrackedBarrier::new("fixture.protocol.barrier", 2);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    for _ in 0..5 {
                        cell.update(|v| *v += 1);
                        barrier.wait();
                        assert_eq!(cell.get() % 2, 0);
                        if barrier.wait().is_leader() {
                            cell.set(0);
                        }
                        barrier.wait();
                    }
                });
            }
        });
    });
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn channel_ordered_read_is_clean() {
    // a tracked message carries the sender's clock: write → send → recv →
    // read is ordered
    let (_, report) = with_sanitizer(8, || {
        let cell = SharedCell::new("fixture.piped", 0u64);
        let (tx, rx) = channel::unbounded::<()>("fixture.pipe");
        std::thread::scope(|s| {
            s.spawn(|| {
                cell.update(|v| *v = 41);
                tx.send(()).unwrap();
            });
            s.spawn(|| {
                rx.recv().unwrap();
                assert_eq!(cell.get(), 41);
            });
        });
    });
    assert!(report.is_clean(), "{}", report.render());
}

// ---------------------------------------------------------------------
// S003 / S004 / S005 / W201 — channel liveness
// ---------------------------------------------------------------------

#[test]
fn s003_send_on_disconnected_reported() {
    let (send_result, report) = with_sanitizer(9, || {
        let (tx, rx) = channel::unbounded::<u64>("fixture.disconnected");
        drop(rx);
        tx.send(42)
    });
    assert!(send_result.is_err(), "send must surface the error too");
    assert_eq!(send_result.unwrap_err().0, 42, "payload is recoverable");
    assert!(report.has_code(S_SEND_DISCONNECTED), "{}", report.render());
}

#[test]
fn s004_receiver_blocked_at_report_time_reported() {
    let ((tx, handle), report) = with_sanitizer(10, || {
        let (tx, rx) = channel::unbounded::<u64>("fixture.stuck");
        let handle = std::thread::spawn(move || rx.recv());
        // wait until the fixture thread is actually parked in recv()
        while gs_sanitizer::blocked_receivers() == 0 {
            std::thread::yield_now();
        }
        (tx, handle)
    });
    assert!(report.has_code(S_RECV_STUCK), "{}", report.render());
    // unblock and reap the fixture thread
    drop(tx);
    assert!(handle.join().unwrap().is_err());
}

#[test]
fn s005_last_receiver_dropped_with_queue_reported() {
    let (_, report) = with_sanitizer(11, || {
        let (tx, rx) = channel::unbounded::<u64>("fixture.lost");
        for i in 0..3 {
            tx.send(i).unwrap();
        }
        drop(rx); // sender still alive: three messages silently discarded
        tx
    });
    assert!(report.has_code(S_LOST_MESSAGES), "{}", report.render());
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.code == S_LOST_MESSAGES)
        .unwrap();
    assert!(diag.message.contains("3 message(s)"), "{diag}");
}

#[test]
fn w201_unbounded_high_watermark_reported() {
    let (_, report) = with_sanitizer(12, || {
        gs_sanitizer::set_unbounded_watermark(8);
        let (tx, rx) = channel::unbounded::<u64>("fixture.flood");
        for i in 0..20 {
            tx.send(i).unwrap();
        }
        for _ in 0..20 {
            rx.recv().unwrap();
        }
    });
    assert!(report.has_code(W_QUEUE_WATERMARK), "{}", report.render());
    assert_eq!(report.error_count(), 0, "{}", report.render());
    assert_eq!(report.warning_count(), 1);
}

#[test]
fn bounded_channel_never_trips_w201() {
    let (_, report) = with_sanitizer(13, || {
        gs_sanitizer::set_unbounded_watermark(2);
        let (tx, rx) = channel::bounded::<u64>("fixture.backpressure", 64);
        for i in 0..40 {
            tx.send(i).unwrap();
        }
        for _ in 0..40 {
            rx.recv().unwrap();
        }
    });
    assert!(report.is_clean(), "{}", report.render());
}

// ---------------------------------------------------------------------
// Event log
// ---------------------------------------------------------------------

#[test]
fn events_record_thread_and_site() {
    let ((), report) = with_sanitizer(14, || {
        let m = TrackedMutex::new("fixture.events.lock", 0u64);
        *m.lock() += 1;
        let (tx, rx) = channel::unbounded::<u64>("fixture.events.chan");
        tx.send(9).unwrap();
        rx.recv().unwrap();
        let (events, dropped) = gs_sanitizer::take_events();
        assert_eq!(dropped, 0);
        let kinds: Vec<&str> = events
            .iter()
            .filter(|e| e.site.starts_with("fixture.events."))
            .map(|e| e.kind)
            .collect();
        assert_eq!(kinds, vec!["acquire", "release", "send", "recv"]);
        // seq is a total order
        for w in events.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    });
    assert!(report.is_clean(), "{}", report.render());
}
