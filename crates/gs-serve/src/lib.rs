//! # gs-serve — the production serving layer over the Flex stack
//!
//! The paper's deployments (§8) are *services*: many concurrent users,
//! repeated parameterised statements, storage that keeps moving under
//! reads. This crate is that front end, assembled from bricks below it:
//!
//! * **Sessions** ([`Server::session`]) carry a tenant identity and a
//!   [`Priority`] class; they are cheap handles sharing one engine.
//! * **Prepared statements** ([`Session::prepare`] /
//!   [`Session::execute`]): parse → lower → optimize → irlint-verify runs
//!   **once** per statement (through `gs_lang::Frontend::compile`), the
//!   engine-side handle (`gs_ir::PreparedQuery`) executes many times.
//!   Compiled plans live in a bounded LRU **plan cache** keyed by
//!   (statement key, schema epoch), so equal statements across sessions
//!   share one compilation.
//! * **Result cache**: row batches are cached under (statement key, data
//!   version). GART commits bump the version; stale entries silently stop
//!   matching — *the* invalidation rule, there is no explicit purge.
//! * **Admission control** ([`admission`]): per-tenant quotas and a
//!   priority shed ladder over the PR 5 circuit breaker — under overload
//!   the service sheds (`Overloaded`) instead of collapsing.
//! * **Static cost gate** ([`CostGate`]): every prepared statement
//!   carries its `gs_ir::cost` bounds; a statement whose *static*
//!   estimate exceeds the (per-tenant) budget is shed or demoted to
//!   [`Priority::Low`] **before** the admission ladder — abusive queries
//!   are rejected from the plan alone, never executed.
//!
//! Telemetry rows: `serve.admitted`, `serve.shed{reason,priority}`,
//! `serve.breaker.rejected`, `serve.cost.demoted`,
//! `serve.plan_cache.{hit,miss}`, `serve.result_cache.{hit,miss}`,
//! `serve.exec_ns{cache}`, `serve.sessions`.

pub mod admission;
pub mod cache;
pub mod store;

pub use admission::{AdmissionConfig, AdmissionController, Priority, TenantQuota};
pub use cache::LruCache;
pub use gs_ir::cost::CostBudget;
pub use store::{GartServeStore, ServeStore, StaticServeStore};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use gs_graph::{GraphError, Result, Value};
use gs_ir::cost::{cost_physical, CostReport, CostStats};
use gs_ir::{PreparedQuery, QueryEngine, Record};
use gs_lang::{CompiledQuery, Frontend};
use gs_optimizer::Optimizer;
use gs_telemetry::{counter, observe};
use std::collections::HashMap;

/// What to do with a statement whose static cost bound exceeds the
/// tenant's budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostAction {
    /// Reject with `Overloaded` before the admission ladder — the query
    /// never reaches an engine.
    Shed,
    /// Let it run, but demoted to [`Priority::Low`] so the watermark
    /// ladder sheds it first under load.
    Demote,
}

/// The static-cost rung of the admission ladder: prepared statements are
/// costed once at compile time (`gs_ir::cost`) and checked against a
/// budget at every execution.
#[derive(Clone, Debug)]
pub struct CostGate {
    /// Budget applied to tenants without an override.
    pub budget: CostBudget,
    /// Per-tenant budget overrides.
    pub tenants: HashMap<String, CostBudget>,
    pub action: CostAction,
}

impl Default for CostGate {
    fn default() -> Self {
        Self {
            budget: CostBudget::default(),
            tenants: HashMap::new(),
            action: CostAction::Shed,
        }
    }
}

impl CostGate {
    fn budget_for(&self, tenant: &str) -> &CostBudget {
        self.tenants.get(tenant).unwrap_or(&self.budget)
    }
}

/// Server tuning knobs.
pub struct ServeConfig {
    /// Plan-cache capacity (compiled statements kept hot).
    pub plan_cache_capacity: usize,
    /// Result-cache capacity (row batches kept per data version).
    pub result_cache_capacity: usize,
    /// Disable to force parse → optimize → verify on *every* request —
    /// the baseline `gs-bench storm` measures the prepared path against.
    pub cache_plans: bool,
    /// Disable to force execution on every request.
    pub cache_results: bool,
    /// Admission ladder tuning.
    pub admission: AdmissionConfig,
    /// Static-cost admission gate (`None` = no gating; plans are still
    /// costed so the bounds show up in diagnostics).
    pub cost: Option<CostGate>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            plan_cache_capacity: 128,
            result_cache_capacity: 512,
            cache_plans: true,
            cache_results: true,
            admission: AdmissionConfig::default(),
            cost: None,
        }
    }
}

/// One compiled + engine-prepared statement, shared across sessions.
struct PlanEntry {
    compiled: CompiledQuery,
    prepared: Box<dyn PreparedQuery>,
    /// Static cost bounds of the physical plan, computed once at
    /// compile time with the optimizer's statistics (conservative
    /// defaults without a catalog).
    cost: CostReport,
}

/// A counter snapshot for tests and the storm harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    pub plan_hits: u64,
    pub plan_misses: u64,
    pub plan_evictions: u64,
    pub result_hits: u64,
    pub result_misses: u64,
    pub result_evictions: u64,
    pub admitted: u64,
    pub shed_low: u64,
    pub shed_normal: u64,
    pub shed_high: u64,
    pub breaker_rejections: u64,
    pub cost_shed: u64,
    pub cost_demoted: u64,
    pub executed: u64,
    pub errors: u64,
    pub sessions: u64,
}

/// The serving front end: one engine, one store, shared caches, shared
/// admission state. Create it once, wrap it in an [`Arc`], and open
/// sessions from any thread.
pub struct Server {
    engine: Box<dyn QueryEngine>,
    store: Box<dyn ServeStore>,
    optimizer: Optimizer,
    config: ServeConfig,
    plans: LruCache<(u64, u64), Arc<PlanEntry>>,
    results: LruCache<(u64, u64), Arc<Vec<Record>>>,
    admission: AdmissionController,
    /// Statistics for static plan costing, snapshotted from the
    /// optimizer's catalog at construction.
    cost_stats: Option<CostStats>,
    cost_shed: AtomicU64,
    cost_demoted: AtomicU64,
    executed: AtomicU64,
    errors: AtomicU64,
    sessions: AtomicU64,
}

impl Server {
    /// A server over `engine` and `store` with the default rule-based
    /// optimizer.
    pub fn new(
        engine: Box<dyn QueryEngine>,
        store: Box<dyn ServeStore>,
        config: ServeConfig,
    ) -> Self {
        Self::with_optimizer(engine, store, config, Optimizer::rbo_only())
    }

    /// A server with an explicit optimizer — pass `Optimizer::new(catalog)`
    /// to give the static cost gate real statistics (otherwise it runs on
    /// conservative defaults).
    pub fn with_optimizer(
        engine: Box<dyn QueryEngine>,
        store: Box<dyn ServeStore>,
        config: ServeConfig,
        optimizer: Optimizer,
    ) -> Self {
        Self {
            plans: LruCache::new("serve.plan_cache", config.plan_cache_capacity),
            results: LruCache::new("serve.result_cache", config.result_cache_capacity),
            admission: AdmissionController::new(config.admission.clone()),
            cost_stats: optimizer.catalog.as_ref().map(|c| c.to_cost_stats()),
            engine,
            store,
            optimizer,
            config,
            cost_shed: AtomicU64::new(0),
            cost_demoted: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            sessions: AtomicU64::new(0),
        }
    }

    /// Opens a session for `tenant` at `priority`.
    pub fn session(self: &Arc<Self>, tenant: &str, priority: Priority) -> Session {
        self.sessions.fetch_add(1, Ordering::Relaxed);
        counter!("serve.sessions");
        Session {
            server: Arc::clone(self),
            tenant: tenant.to_string(),
            priority,
            statements: gs_sanitizer::TrackedMutex::new("serve.statements", Vec::new()),
        }
    }

    /// The engine serving this server (for diagnostics).
    pub fn engine_name(&self) -> &'static str {
        self.engine.name()
    }

    /// The admission controller (exposed for harnesses that need to
    /// inspect in-flight load).
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> ServerStats {
        let (plan_hits, plan_misses, plan_evictions) = self.plans.stats();
        let (result_hits, result_misses, result_evictions) = self.results.stats();
        let (admitted, shed_low, shed_normal, shed_high, breaker_rejections) =
            self.admission.stats();
        ServerStats {
            plan_hits,
            plan_misses,
            plan_evictions,
            result_hits,
            result_misses,
            result_evictions,
            admitted,
            shed_low,
            shed_normal,
            shed_high,
            breaker_rejections,
            cost_shed: self.cost_shed.load(Ordering::Relaxed),
            cost_demoted: self.cost_demoted.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            sessions: self.sessions.load(Ordering::Relaxed),
        }
    }

    /// Compile-or-fetch: the verify-once half of the prepare/execute
    /// split. Keyed by (statement key, schema epoch) — a schema change
    /// orphans every cached plan.
    fn plan_entry(
        &self,
        frontend: Frontend,
        text: &str,
        params: &HashMap<String, Value>,
    ) -> Result<Arc<PlanEntry>> {
        let key = (
            gs_lang::statement_key(frontend, text, params),
            self.store.schema_epoch(),
        );
        if self.config.cache_plans {
            if let Some(entry) = self.plans.get(&key) {
                counter!("serve.plan_cache.hit");
                return Ok(entry);
            }
            counter!("serve.plan_cache.miss");
        }
        let compiled = frontend.compile_with(text, self.store.schema(), params, &self.optimizer)?;
        let prepared = self.engine.prepare(&compiled.physical)?;
        let budget = self
            .config
            .cost
            .as_ref()
            .map(|g| g.budget)
            .unwrap_or_default();
        let cost = cost_physical(&compiled.physical, self.cost_stats.as_ref(), &budget);
        let entry = Arc::new(PlanEntry {
            compiled,
            prepared,
            cost,
        });
        if self.config.cache_plans {
            self.plans.insert(key, Arc::clone(&entry));
        }
        Ok(entry)
    }

    /// The execute-many half: cost gate, admission ladder, result cache,
    /// engine.
    fn run_entry(
        &self,
        tenant: &str,
        priority: Priority,
        entry: &PlanEntry,
    ) -> Result<Arc<Vec<Record>>> {
        // static-cost rung: decided from the plan's compile-time bounds,
        // before the dynamic ladder — a shed statement never executes
        let mut priority = priority;
        if let Some(gate) = &self.config.cost {
            if entry.cost.over_budget(gate.budget_for(tenant)) {
                match gate.action {
                    CostAction::Shed => {
                        self.cost_shed.fetch_add(1, Ordering::Relaxed);
                        counter!("serve.shed", reason = "cost", priority = priority.name());
                        return Err(GraphError::Overloaded {
                            shard: 0,
                            depth: entry.cost.total_est_rows as u64,
                        });
                    }
                    CostAction::Demote => {
                        if priority != Priority::Low {
                            self.cost_demoted.fetch_add(1, Ordering::Relaxed);
                            counter!("serve.cost.demoted");
                            priority = Priority::Low;
                        }
                    }
                }
            }
        }
        let guard = self.admission.admit(tenant, priority, Instant::now())?;
        // snapshot + its pinned version, atomically: results are cached
        // under exactly the version they were computed at
        let (snapshot, version) = self.store.snapshot();
        let rkey = (entry.compiled.cache_key, version);
        if self.config.cache_results {
            if let Some(rows) = self.results.get(&rkey) {
                counter!("serve.result_cache.hit");
                drop(guard);
                return Ok(rows);
            }
            counter!("serve.result_cache.miss");
        }
        let started = Instant::now();
        let outcome = entry.prepared.execute(snapshot.as_ref());
        self.admission
            .record_result(outcome.is_ok(), Instant::now());
        drop(guard);
        match outcome {
            Ok(rows) => {
                self.executed.fetch_add(1, Ordering::Relaxed);
                observe!("serve.exec_ns", cache = "miss"; started.elapsed().as_nanos() as u64);
                let rows = Arc::new(rows);
                if self.config.cache_results {
                    self.results.insert(rkey, Arc::clone(&rows));
                }
                Ok(rows)
            }
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                counter!("serve.errors");
                Err(e)
            }
        }
    }
}

/// Index of a statement prepared on a [`Session`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StatementId(usize);

/// A tenant-scoped handle onto a shared [`Server`].
pub struct Session {
    server: Arc<Server>,
    tenant: String,
    priority: Priority,
    statements: gs_sanitizer::TrackedMutex<Vec<Arc<PlanEntry>>>,
}

impl Session {
    /// Compiles (or fetches from the plan cache) a statement and pins it
    /// to this session. The heavy work happens here, once.
    pub fn prepare(
        &self,
        frontend: Frontend,
        text: &str,
        params: &HashMap<String, Value>,
    ) -> Result<StatementId> {
        let entry = self.server.plan_entry(frontend, text, params)?;
        let mut stmts = self.statements.lock();
        stmts.push(entry);
        Ok(StatementId(stmts.len() - 1))
    }

    /// Executes a prepared statement against the store's current version.
    pub fn execute(&self, stmt: StatementId) -> Result<Arc<Vec<Record>>> {
        let entry = {
            let stmts = self.statements.lock();
            stmts
                .get(stmt.0)
                .cloned()
                .ok_or_else(|| GraphError::Query(format!("unknown statement id {}", stmt.0)))?
        };
        self.server.run_entry(&self.tenant, self.priority, &entry)
    }

    /// One-shot convenience: prepare (with caching) + execute, without
    /// pinning the statement to the session.
    pub fn query(
        &self,
        frontend: Frontend,
        text: &str,
        params: &HashMap<String, Value>,
    ) -> Result<Arc<Vec<Record>>> {
        let entry = self.server.plan_entry(frontend, text, params)?;
        self.server.run_entry(&self.tenant, self.priority, &entry)
    }

    /// The tenant this session authenticates as.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The session's priority class.
    pub fn priority(&self) -> Priority {
        self.priority
    }
}
