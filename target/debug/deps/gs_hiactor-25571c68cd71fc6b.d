/root/repo/target/debug/deps/gs_hiactor-25571c68cd71fc6b.d: crates/gs-hiactor/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgs_hiactor-25571c68cd71fc6b.rmeta: crates/gs-hiactor/src/lib.rs Cargo.toml

crates/gs-hiactor/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
