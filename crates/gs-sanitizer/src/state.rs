//! The sanitizer's global state: per-thread vector clocks, the lock-order
//! graph, per-cell access histories, channel liveness counters, and the
//! event log. Only compiled with the `sanitize` feature; every entry point
//! is a no-op unless [`crate::enable`] has been called.
//!
//! **Happens-before model.** Each thread carries a vector clock. Tracked
//! locks join the releaser's clock into the next acquirer; tracked channel
//! messages carry the sender's clock to the receiver; tracked barriers
//! join all participants. Thread-creation edges are approximated: a
//! thread's clock starts at the join of every clock live at its first
//! tracked operation (the stack spawns workers from a coordinating thread,
//! so this matches the real spawn edge in practice).

use crate::report::{Diagnostic, Event, Report, Severity};
use crate::report::{
    S_DATA_RACE, S_LOCK_CYCLE, S_LOST_MESSAGES, S_RECV_STUCK, S_SEND_DISCONNECTED,
    W_QUEUE_WATERMARK,
};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, Weak};

/// A vector clock, indexed by sanitizer thread id.
pub(crate) type Vc = Vec<u32>;

fn join(a: &mut Vc, b: &Vc) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    for (i, &v) in b.iter().enumerate() {
        if a[i] < v {
            a[i] = v;
        }
    }
}

/// `true` iff the event at `(thread, clock)` happened-before the owner of
/// `vc` (or is the owner's own past).
fn ordered(vc: &Vc, thread: usize, clock: u32) -> bool {
    vc.get(thread).copied().unwrap_or(0) >= clock
}

/// Default unbounded-queue high-watermark (see `W201`).
pub(crate) const DEFAULT_WATERMARK: u64 = 8192;
const MAX_EVENTS: usize = 65536;

/// How a tracked lock is being taken, for reentrancy checks.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum LockMode {
    Excl,
    Read,
}

/// How a [`crate::SharedCell`] is being touched.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum CellAccess {
    /// `read_with`/`get`: must be ordered after every write.
    Read,
    /// `update`: a combining write — unordered with other updates by
    /// design, but must be ordered with reads and exclusive writes.
    Update,
    /// `set`: an exclusive write — must be ordered after everything.
    Set,
}

struct ThreadInfo {
    vc: Vc,
    /// Lock ids currently held (with the mode they were taken in).
    held: Vec<(usize, LockMode)>,
}

struct LockInfo {
    label: &'static str,
    release_vc: Vc,
}

struct CellInfo {
    label: &'static str,
    /// Last exclusive write, as `(thread, clock)`.
    excl: Option<(usize, u32)>,
    /// Last combining write per thread.
    writes: HashMap<usize, u32>,
    /// Last read per thread.
    reads: HashMap<usize, u32>,
}

/// Liveness counters shared between a channel's handles and the global
/// state (via a weak registration, so dropped channels disappear).
pub(crate) struct ChanInfo {
    pub(crate) label: &'static str,
    pub(crate) bounded: Option<usize>,
    /// Messages currently queued (tracked by the wrappers; the underlying
    /// channel is not consulted so tracking never perturbs it).
    pub(crate) len: AtomicI64,
    /// Highest queue length ever observed at a send.
    pub(crate) hwm: AtomicU64,
    /// Live tracked receivers.
    pub(crate) receivers: AtomicUsize,
    /// Receivers currently blocked inside `recv()`.
    pub(crate) receiving: AtomicUsize,
}

#[derive(Default)]
struct State {
    threads: Vec<ThreadInfo>,
    locks: Vec<LockInfo>,
    cells: Vec<CellInfo>,
    /// Lock-order edges `(held label, acquired label)` → first witness.
    order: HashMap<(&'static str, &'static str), String>,
    channels: Vec<Weak<ChanInfo>>,
    diagnostics: Vec<Diagnostic>,
    /// Dedup keys for event-driven diagnostics (one finding per site/kind).
    emitted: HashSet<String>,
    events: Vec<Event>,
    events_dropped: u64,
    seq: u64,
    watermark: u64,
}

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| {
        Mutex::new(State {
            watermark: DEFAULT_WATERMARK,
            ..State::default()
        })
    })
}

thread_local! {
    static TID: std::cell::Cell<u32> = const { std::cell::Cell::new(u32::MAX) };
}

/// This thread's dense id, registering it on first use. A new thread's
/// clock starts at the join of all live clocks (approximate spawn edge).
fn tid(st: &mut State) -> usize {
    let cached = TID.with(|c| c.get());
    if cached != u32::MAX {
        return cached as usize;
    }
    let mut vc = Vc::new();
    for th in &st.threads {
        join(&mut vc, &th.vc);
    }
    let id = st.threads.len();
    if vc.len() <= id {
        vc.resize(id + 1, 0);
    }
    vc[id] = 1;
    st.threads.push(ThreadInfo {
        vc,
        held: Vec::new(),
    });
    TID.with(|c| c.set(id as u32));
    id
}

fn record_event(st: &mut State, thread: usize, kind: &'static str, site: &'static str) {
    st.seq += 1;
    if st.events.len() >= MAX_EVENTS {
        st.events_dropped += 1;
        return;
    }
    let seq = st.seq;
    st.events.push(Event {
        seq,
        thread: thread as u32,
        kind,
        site,
    });
}

fn push_diag(
    st: &mut State,
    code: &'static str,
    severity: Severity,
    sites: Vec<String>,
    message: String,
) {
    let key = format!("{code}:{}:{message}", sites.join("|"));
    if st.emitted.insert(key) {
        st.diagnostics.push(Diagnostic {
            code,
            severity,
            sites,
            message,
        });
    }
}

// ---------------------------------------------------------------------
// Locks
// ---------------------------------------------------------------------

pub(crate) fn register_lock(label: &'static str) -> usize {
    let mut st = state().lock();
    st.locks.push(LockInfo {
        label,
        release_vc: Vc::new(),
    });
    st.locks.len() - 1
}

/// Called before blocking on the underlying lock: records the event,
/// extends the lock-order graph with `held → acquired` edges, and flags
/// same-instance reentrancy (an immediate self-deadlock).
pub(crate) fn before_acquire(lock_id: usize, label: &'static str, mode: LockMode) {
    if !crate::enabled() {
        return;
    }
    let mut st = state().lock();
    let t = tid(&mut st);
    record_event(&mut st, t, "acquire", label);
    let held = st.threads[t].held.clone();
    for &(h, hmode) in &held {
        if h == lock_id && (mode == LockMode::Excl || hmode == LockMode::Excl) {
            let msg = format!(
                "thread t{t} re-acquires `{label}` while already holding it \
                 (self-deadlock on a non-reentrant lock)"
            );
            push_diag(
                &mut st,
                S_LOCK_CYCLE,
                Severity::Error,
                vec![label.to_string(), label.to_string()],
                msg,
            );
        }
        let from = st.locks[h].label;
        st.order
            .entry((from, label))
            .or_insert_with(|| format!("thread t{t} acquired `{label}` while holding `{from}`"));
    }
    st.threads[t].held.push((lock_id, mode));
}

/// Called once the underlying lock is held: joins the last release's clock
/// into the acquirer (the happens-before edge a lock provides).
pub(crate) fn after_acquire(lock_id: usize) {
    if !crate::enabled() {
        return;
    }
    let mut st = state().lock();
    let t = tid(&mut st);
    let rvc = st.locks[lock_id].release_vc.clone();
    join(&mut st.threads[t].vc, &rvc);
}

/// Called from guard drop, just before the underlying unlock.
pub(crate) fn on_release(lock_id: usize, label: &'static str) {
    if !crate::enabled() {
        return;
    }
    let mut st = state().lock();
    let t = tid(&mut st);
    record_event(&mut st, t, "release", label);
    if let Some(pos) = st.threads[t]
        .held
        .iter()
        .rposition(|&(id, _)| id == lock_id)
    {
        st.threads[t].held.remove(pos);
    }
    let tvc = st.threads[t].vc.clone();
    join(&mut st.locks[lock_id].release_vc, &tvc);
    st.threads[t].vc[t] += 1;
}

// ---------------------------------------------------------------------
// Barriers
// ---------------------------------------------------------------------

/// Called before the underlying `Barrier::wait`: contributes this thread's
/// clock to the round's gather slot. Returns the round to join after the
/// wait completes.
pub(crate) fn barrier_arrive(
    bar: &Mutex<BarrierRounds>,
    n: usize,
    label: &'static str,
) -> Option<u64> {
    if !crate::enabled() {
        return None;
    }
    let my_vc = {
        let mut st = state().lock();
        let t = tid(&mut st);
        record_event(&mut st, t, "barrier", label);
        st.threads[t].vc.clone()
    };
    let mut b = bar.lock();
    let round = b.round;
    let entry = b.gather.entry(round).or_insert_with(|| (0, Vc::new()));
    join(&mut entry.1, &my_vc);
    b.arrived += 1;
    if b.arrived == n {
        b.arrived = 0;
        b.round += 1;
    }
    Some(round)
}

/// Called after the underlying wait: joins the round's gathered clock into
/// this thread (every participant happens-before everyone's continuation).
pub(crate) fn barrier_depart(bar: &Mutex<BarrierRounds>, n: usize, round: u64) {
    let joined = {
        let mut b = bar.lock();
        let Some(entry) = b.gather.get_mut(&round) else {
            return;
        };
        entry.0 += 1;
        let vc = entry.1.clone();
        if entry.0 == n {
            b.gather.remove(&round);
        }
        vc
    };
    let mut st = state().lock();
    let t = tid(&mut st);
    join(&mut st.threads[t].vc, &joined);
    st.threads[t].vc[t] += 1;
}

/// Per-barrier gather state: round number → (departures so far, joined
/// clock). Kept per round so a fast thread racing two rounds ahead cannot
/// clobber a slot a slow thread has not read yet.
#[derive(Default)]
pub(crate) struct BarrierRounds {
    round: u64,
    arrived: usize,
    gather: HashMap<u64, (usize, Vc)>,
}

// ---------------------------------------------------------------------
// Channels
// ---------------------------------------------------------------------

pub(crate) fn register_channel(info: &Arc<ChanInfo>) {
    state().lock().channels.push(Arc::downgrade(info));
}

/// Records a send and returns the clock snapshot to ship with the message.
pub(crate) fn on_send(site: &'static str) -> Vc {
    if !crate::enabled() {
        return Vc::new();
    }
    let mut st = state().lock();
    let t = tid(&mut st);
    record_event(&mut st, t, "send", site);
    let vc = st.threads[t].vc.clone();
    st.threads[t].vc[t] += 1;
    vc
}

pub(crate) fn on_send_disconnected(site: &'static str) {
    if !crate::enabled() {
        return;
    }
    let mut st = state().lock();
    let t = tid(&mut st);
    let msg = format!("thread t{t} sent on `{site}` after every receiver was dropped");
    push_diag(
        &mut st,
        S_SEND_DISCONNECTED,
        Severity::Error,
        vec![site.to_string()],
        msg,
    );
}

/// Records a successful receive, joining the sender's clock.
pub(crate) fn on_recv(msg_vc: &Vc, site: &'static str) {
    if !crate::enabled() {
        return;
    }
    let mut st = state().lock();
    let t = tid(&mut st);
    record_event(&mut st, t, "recv", site);
    join(&mut st.threads[t].vc, msg_vc);
}

/// Called when a channel's last receiver drops: queued messages are lost
/// (`S005`), and this is also the last chance to judge an unbounded
/// queue's high-watermark (`W201`) — the channel will be gone by report
/// time.
pub(crate) fn on_receiver_gone(site: &'static str, queued: i64, hwm: u64, bounded: bool) {
    if !crate::enabled() {
        return;
    }
    let mut st = state().lock();
    if queued > 0 {
        let msg =
            format!("last receiver of `{site}` dropped with {queued} message(s) still queued");
        push_diag(
            &mut st,
            S_LOST_MESSAGES,
            Severity::Error,
            vec![site.to_string()],
            msg,
        );
    }
    let watermark = st.watermark;
    if !bounded && hwm >= watermark {
        let msg = format!(
            "unbounded channel `{site}` reached a queue high-watermark of {hwm} \
             (threshold {watermark}); producers outpace consumers"
        );
        push_diag(
            &mut st,
            W_QUEUE_WATERMARK,
            Severity::Warning,
            vec![site.to_string()],
            msg,
        );
    }
}

// ---------------------------------------------------------------------
// Shared cells
// ---------------------------------------------------------------------

pub(crate) fn register_cell(label: &'static str) -> usize {
    let mut st = state().lock();
    st.cells.push(CellInfo {
        label,
        excl: None,
        writes: HashMap::new(),
        reads: HashMap::new(),
    });
    st.cells.len() - 1
}

pub(crate) fn on_cell_access(cell_id: usize, access: CellAccess) {
    if !crate::enabled() {
        return;
    }
    let mut st = state().lock();
    let t = tid(&mut st);
    let my_vc = st.threads[t].vc.clone();
    let my_clk = my_vc[t];
    let label = st.cells[cell_id].label;
    let kind = match access {
        CellAccess::Read => "cell.read",
        CellAccess::Update => "cell.update",
        CellAccess::Set => "cell.set",
    };
    record_event(&mut st, t, kind, label);

    // Gather conflicts before mutating the history.
    let mut conflicts: Vec<(usize, &'static str)> = Vec::new();
    {
        let cell = &st.cells[cell_id];
        if let Some((wt, wc)) = cell.excl {
            if wt != t && !ordered(&my_vc, wt, wc) {
                conflicts.push((wt, "exclusive write"));
            }
        }
        if access != CellAccess::Update {
            // reads and exclusive writes must be ordered after updates
            for (&wt, &wc) in &cell.writes {
                if wt != t && !ordered(&my_vc, wt, wc) {
                    conflicts.push((wt, "write"));
                }
            }
        }
        if access != CellAccess::Read {
            // any write must be ordered after every read
            for (&rt, &rc) in &cell.reads {
                if rt != t && !ordered(&my_vc, rt, rc) {
                    conflicts.push((rt, "read"));
                }
            }
        }
    }
    for (other, what) in conflicts {
        let verb = match access {
            CellAccess::Read => "read",
            CellAccess::Update => "update",
            CellAccess::Set => "set",
        };
        let msg = format!(
            "unordered access on `{label}`: thread t{t} {verb} races a prior {what} \
             by thread t{other} (no happens-before edge between them)"
        );
        push_diag(
            &mut st,
            S_DATA_RACE,
            Severity::Error,
            vec![label.to_string()],
            msg,
        );
    }

    let cell = &mut st.cells[cell_id];
    match access {
        CellAccess::Read => {
            cell.reads.insert(t, my_clk);
        }
        CellAccess::Update => {
            cell.writes.insert(t, my_clk);
        }
        CellAccess::Set => {
            cell.excl = Some((t, my_clk));
            cell.writes.clear();
            cell.reads.clear();
        }
    }
}

// ---------------------------------------------------------------------
// Report generation
// ---------------------------------------------------------------------

/// Finds lock-order cycles: for every edge `a → b`, if `b` reaches `a`
/// the edge closes a cycle; each distinct node set is reported once.
fn lock_cycles(order: &HashMap<(&'static str, &'static str), String>) -> Vec<Diagnostic> {
    let mut adj: HashMap<&str, Vec<&str>> = HashMap::new();
    for &(a, b) in order.keys() {
        adj.entry(a).or_default().push(b);
    }
    let mut seen: HashSet<BTreeSet<&str>> = HashSet::new();
    let mut out = Vec::new();
    for &(a, b) in order.keys() {
        // BFS from b looking for a, tracking parents to rebuild the path
        let mut parent: HashMap<&str, &str> = HashMap::new();
        let mut q = VecDeque::from([b]);
        let mut found = a == b;
        while let Some(n) = q.pop_front() {
            if found {
                break;
            }
            for &m in adj.get(n).into_iter().flatten() {
                if m == a {
                    parent.insert(m, n);
                    found = true;
                    break;
                }
                if !parent.contains_key(m) && m != b {
                    parent.insert(m, n);
                    q.push_back(m);
                }
            }
        }
        if !found {
            continue;
        }
        // path: a -> b -> ... -> a
        let mut cycle = vec![a, b];
        if a != b {
            let mut cur = a;
            let mut back = Vec::new();
            while let Some(&p) = parent.get(cur) {
                if p == b {
                    break;
                }
                back.push(p);
                cur = p;
            }
            back.reverse();
            cycle.extend(back);
            cycle.push(a);
        }
        let key: BTreeSet<&str> = cycle.iter().copied().collect();
        if !seen.insert(key) {
            continue;
        }
        let mut witnesses = Vec::new();
        for w in cycle.windows(2) {
            if let Some(msg) = order.get(&(w[0], w[1])) {
                witnesses.push(msg.clone());
            }
        }
        out.push(Diagnostic {
            code: S_LOCK_CYCLE,
            severity: Severity::Error,
            sites: cycle.iter().map(|s| s.to_string()).collect(),
            message: format!(
                "potential deadlock: lock-order cycle {}; {}",
                cycle
                    .iter()
                    .map(|s| format!("`{s}`"))
                    .collect::<Vec<_>>()
                    .join(" \u{2192} "),
                witnesses.join("; ")
            ),
        });
    }
    out
}

/// Drains all findings and resets the per-run analysis state (lock-order
/// edges, cell histories, watermarks, event log). Thread registrations and
/// clocks survive, so long-lived threads stay consistent across runs.
pub(crate) fn take_report() -> Report {
    let mut st = state().lock();
    let mut diagnostics = std::mem::take(&mut st.diagnostics);
    diagnostics.extend(lock_cycles(&st.order));

    let live: Vec<Arc<ChanInfo>> = st.channels.iter().filter_map(Weak::upgrade).collect();
    let watermark = st.watermark;
    for c in &live {
        let blocked = c.receiving.load(Ordering::SeqCst);
        if blocked > 0 {
            diagnostics.push(Diagnostic {
                code: S_RECV_STUCK,
                severity: Severity::Error,
                sites: vec![c.label.to_string()],
                message: format!(
                    "{blocked} receiver(s) of `{}` still blocked in recv() at report time",
                    c.label
                ),
            });
        }
        let hwm = c.hwm.load(Ordering::SeqCst);
        if c.bounded.is_none() && hwm >= watermark {
            diagnostics.push(Diagnostic {
                code: W_QUEUE_WATERMARK,
                severity: Severity::Warning,
                sites: vec![c.label.to_string()],
                message: format!(
                    "unbounded channel `{}` reached a queue high-watermark of {hwm} \
                     (threshold {watermark}); producers outpace consumers",
                    c.label
                ),
            });
        }
        c.hwm
            .store(c.len.load(Ordering::SeqCst).max(0) as u64, Ordering::SeqCst);
    }
    st.channels.retain(|w| w.strong_count() > 0);

    st.order.clear();
    st.emitted.clear();
    for th in &mut st.threads {
        th.held.clear();
    }
    for cell in &mut st.cells {
        cell.excl = None;
        cell.writes.clear();
        cell.reads.clear();
    }
    st.events.clear();
    st.events_dropped = 0;
    st.watermark = DEFAULT_WATERMARK;
    Report { diagnostics }
}

/// Copies out the event log without resetting analysis state.
pub(crate) fn events() -> (Vec<Event>, u64) {
    let st = state().lock();
    (st.events.clone(), st.events_dropped)
}

pub(crate) fn set_watermark(n: u64) {
    state().lock().watermark = n.max(1);
}

/// Receivers currently blocked in `recv()` across all live channels.
pub(crate) fn blocked_receivers() -> usize {
    let st = state().lock();
    st.channels
        .iter()
        .filter_map(Weak::upgrade)
        .map(|c| c.receiving.load(Ordering::SeqCst))
        .sum()
}
