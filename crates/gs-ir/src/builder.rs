//! Fluent logical-plan builder.
//!
//! Front-ends (the Gremlin/Cypher parsers in `gs-lang`) and programmatic
//! clients (the BI query library) build logical plans through this API. The
//! builder maintains the *canonical* record layout after every op, binds
//! alias/property references to columns, and validates against the schema.

use crate::expr::{BinOp, Expr};
use crate::logical::{LogicalOp, LogicalPlan, ProjectItem};
use crate::pattern::Pattern;
use crate::record::{ColumnKind, Layout};
use gs_graph::schema::GraphSchema;
use gs_graph::{GraphError, LabelId, Result, Value};
use gs_grin::Direction;

/// Builds a [`LogicalPlan`] step by step.
pub struct PlanBuilder {
    schema: GraphSchema,
    ops: Vec<LogicalOp>,
    layouts: Vec<Layout>,
}

impl PlanBuilder {
    /// New builder over a schema.
    pub fn new(schema: &GraphSchema) -> Self {
        Self {
            schema: schema.clone(),
            ops: Vec::new(),
            layouts: vec![Layout::new()],
        }
    }

    /// The schema being planned against.
    pub fn schema(&self) -> &GraphSchema {
        &self.schema
    }

    /// The current (canonical) layout.
    pub fn layout(&self) -> &Layout {
        self.layouts.last().unwrap()
    }

    fn push_op(&mut self, op: LogicalOp, layout: Layout) {
        self.ops.push(op);
        self.layouts.push(layout);
    }

    // ------------- graph ops -------------

    /// `g.V().hasLabel(label)` — bind all vertices of `label` as `alias`.
    pub fn scan(mut self, alias: &str, label: &str) -> Result<Self> {
        let l = self.resolve_vlabel(label)?;
        let mut layout = self.layout().clone();
        layout.push(alias, ColumnKind::Vertex(l))?;
        self.push_op(
            LogicalOp::ScanVertex {
                alias: alias.into(),
                label: l,
                predicate: None,
            },
            layout,
        );
        Ok(self)
    }

    /// Scan with a vertex predicate (written against column 0 via
    /// [`PlanBuilder::scan_pred`]).
    pub fn scan_where(mut self, alias: &str, label: &str, pred: Expr) -> Result<Self> {
        let l = self.resolve_vlabel(label)?;
        let mut layout = self.layout().clone();
        layout.push(alias, ColumnKind::Vertex(l))?;
        self.push_op(
            LogicalOp::ScanVertex {
                alias: alias.into(),
                label: l,
                predicate: Some(pred),
            },
            layout,
        );
        Ok(self)
    }

    /// Expand edges from a bound vertex alias.
    pub fn expand_edge(
        mut self,
        src: &str,
        elabel: &str,
        dir: Direction,
        edge_alias: &str,
    ) -> Result<Self> {
        let el = self.resolve_elabel(elabel)?;
        self.layout().require(src)?;
        let mut layout = self.layout().clone();
        layout.push(edge_alias, ColumnKind::Edge(el))?;
        self.push_op(
            LogicalOp::ExpandEdge {
                src: src.into(),
                elabel: el,
                dir,
                alias: edge_alias.into(),
                predicate: None,
            },
            layout,
        );
        Ok(self)
    }

    /// Far endpoint of a bound edge alias.
    pub fn get_vertex(mut self, edge: &str, alias: &str) -> Result<Self> {
        let ecol = self.layout().require(edge)?;
        let ColumnKind::Edge(el) = self.layout().kind(ecol).clone() else {
            return Err(GraphError::Query(format!("`{edge}` is not an edge alias")));
        };
        // figure out the produced vertex label from the edge def + the
        // direction used when the edge was expanded
        let (vlabel, _) = self.edge_far_label(el, edge)?;
        let mut layout = self.layout().clone();
        layout.push(alias, ColumnKind::Vertex(vlabel))?;
        self.push_op(
            LogicalOp::GetVertex {
                edge: edge.into(),
                alias: alias.into(),
                predicate: None,
            },
            layout,
        );
        Ok(self)
    }

    /// Declarative pattern match. New aliases (pattern vertices not already
    /// bound, then aliased edges) are appended in declaration order.
    pub fn match_pattern(mut self, pattern: Pattern) -> Result<Self> {
        pattern.validate()?;
        let mut layout = self.layout().clone();
        for pv in &pattern.vertices {
            if layout.index_of(&pv.alias).is_none() {
                layout.push(&pv.alias, ColumnKind::Vertex(pv.label))?;
            }
        }
        for pe in &pattern.edges {
            if let Some(a) = &pe.alias {
                layout.push(a, ColumnKind::Edge(pe.label))?;
            }
        }
        self.push_op(LogicalOp::Match { pattern }, layout);
        Ok(self)
    }

    // ------------- relational ops -------------

    /// Filter by an expression over the current layout.
    pub fn select(mut self, predicate: Expr) -> Self {
        let layout = self.layout().clone();
        self.push_op(LogicalOp::Select { predicate }, layout);
        self
    }

    /// Projection / WITH. Aggregates group by the non-aggregate items.
    pub fn project(mut self, items: Vec<(ProjectItem, &str)>) -> Result<Self> {
        let mut layout = Layout::new();
        for (it, name) in &items {
            let kind = match it {
                ProjectItem::Expr(Expr::Column(c)) => self.layout().kind(*c).clone(),
                _ => ColumnKind::Scalar,
            };
            layout.push(name, kind)?;
        }
        self.push_op(
            LogicalOp::Project {
                items: items
                    .into_iter()
                    .map(|(it, n)| (it, n.to_string()))
                    .collect(),
            },
            layout,
        );
        Ok(self)
    }

    /// Sort by keys; `asc=false` for descending.
    pub fn order(mut self, keys: Vec<(Expr, bool)>, limit: Option<usize>) -> Self {
        let layout = self.layout().clone();
        self.push_op(LogicalOp::Order { keys, limit }, layout);
        self
    }

    /// Distinct over the given aliases (empty = whole record).
    pub fn dedup(mut self, aliases: &[&str]) -> Result<Self> {
        for a in aliases {
            self.layout().require(a)?;
        }
        let layout = self.layout().clone();
        self.push_op(
            LogicalOp::Dedup {
                columns: aliases.iter().map(|s| s.to_string()).collect(),
            },
            layout,
        );
        Ok(self)
    }

    /// Keep at most `n` records.
    pub fn limit(mut self, n: usize) -> Self {
        let layout = self.layout().clone();
        self.push_op(LogicalOp::Limit { n }, layout);
        self
    }

    /// Finalises the plan.
    pub fn build(self) -> LogicalPlan {
        LogicalPlan {
            ops: self.ops,
            layouts: self.layouts,
        }
    }

    // ------------- expression helpers -------------

    /// Whole-column reference to an alias.
    pub fn col(&self, alias: &str) -> Result<Expr> {
        Ok(Expr::Column(self.layout().require(alias)?))
    }

    /// Property access `alias.prop`, resolved against the alias's bound
    /// label. `vertexalias.id` resolves to the external id when the label
    /// has no `id` property.
    pub fn prop(&self, alias: &str, prop: &str) -> Result<Expr> {
        let col = self.layout().require(alias)?;
        match self.layout().kind(col) {
            ColumnKind::Vertex(l) => {
                if let Some(p) = self.schema.vertex_property(*l, prop) {
                    Ok(Expr::VertexProp {
                        col,
                        label: *l,
                        prop: p.id,
                    })
                } else if prop == "id" {
                    Ok(Expr::VertexId { col, label: *l })
                } else {
                    Err(GraphError::Query(format!(
                        "vertex label has no property `{prop}`"
                    )))
                }
            }
            ColumnKind::Edge(l) => {
                let p = self.schema.edge_property(*l, prop).ok_or_else(|| {
                    GraphError::Query(format!("edge label has no property `{prop}`"))
                })?;
                Ok(Expr::EdgeProp {
                    col,
                    label: *l,
                    prop: p.id,
                })
            }
            ColumnKind::Scalar => Err(GraphError::Query(format!(
                "`{alias}` is a scalar; it has no properties"
            ))),
        }
    }

    /// A *scan predicate* over a vertex of `label`: property compare bound
    /// to column 0 (the convention scan/expand predicates use).
    pub fn scan_pred(&self, label: &str, prop: &str, op: BinOp, v: Value) -> Result<Expr> {
        let l = self.resolve_vlabel(label)?;
        if let Some(p) = self.schema.vertex_property(l, prop) {
            Ok(Expr::bin(
                op,
                Expr::VertexProp {
                    col: 0,
                    label: l,
                    prop: p.id,
                },
                Expr::Const(v),
            ))
        } else if prop == "id" {
            Ok(Expr::bin(
                op,
                Expr::VertexId { col: 0, label: l },
                Expr::Const(v),
            ))
        } else {
            Err(GraphError::Query(format!("no property `{prop}`")))
        }
    }

    /// An *edge predicate* bound to column 0.
    pub fn edge_pred(&self, elabel: &str, prop: &str, op: BinOp, v: Value) -> Result<Expr> {
        let l = self.resolve_elabel(elabel)?;
        let p = self
            .schema
            .edge_property(l, prop)
            .ok_or_else(|| GraphError::Query(format!("no edge property `{prop}`")))?;
        Ok(Expr::bin(
            op,
            Expr::EdgeProp {
                col: 0,
                label: l,
                prop: p.id,
            },
            Expr::Const(v),
        ))
    }

    /// Resolves a vertex label name.
    pub fn resolve_vlabel(&self, name: &str) -> Result<LabelId> {
        self.schema
            .vertex_label_by_name(name)
            .map(|l| l.id)
            .ok_or_else(|| GraphError::Query(format!("unknown vertex label `{name}`")))
    }

    /// Resolves an edge label name.
    pub fn resolve_elabel(&self, name: &str) -> Result<LabelId> {
        self.schema
            .edge_label_by_name(name)
            .map(|l| l.id)
            .ok_or_else(|| GraphError::Query(format!("unknown edge label `{name}`")))
    }

    /// The vertex label at the far end of `edge_alias`; looks back through
    /// the ops to find the expansion direction.
    fn edge_far_label(&self, el: LabelId, edge_alias: &str) -> Result<(LabelId, Direction)> {
        let def = self.schema.edge_label(el)?;
        for op in self.ops.iter().rev() {
            if let LogicalOp::ExpandEdge { alias, dir, .. } = op {
                if alias == edge_alias {
                    let far = match dir {
                        Direction::Out => def.dst,
                        Direction::In => def.src,
                        Direction::Both => def.dst, // homogeneous by schema check below
                    };
                    if *dir == Direction::Both && def.src != def.dst {
                        return Err(GraphError::Query(
                            "both() on a heterogeneous edge label is ambiguous".into(),
                        ));
                    }
                    return Ok((far, *dir));
                }
            }
        }
        Err(GraphError::Query(format!(
            "edge alias `{edge_alias}` not produced by ExpandEdge"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_graph::ValueType;

    fn schema() -> GraphSchema {
        let mut s = GraphSchema::new();
        let person = s.add_vertex_label("Person", &[("age", ValueType::Int)]);
        let item = s.add_vertex_label("Item", &[("price", ValueType::Float)]);
        s.add_edge_label("BUY", person, item, &[("date", ValueType::Date)]);
        s.add_edge_label("KNOWS", person, person, &[]);
        s
    }

    #[test]
    fn gremlin_style_chain_builds() {
        let s = schema();
        let plan = PlanBuilder::new(&s)
            .scan("a", "Person")
            .unwrap()
            .expand_edge("a", "KNOWS", Direction::Out, "e")
            .unwrap()
            .get_vertex("e", "b")
            .unwrap()
            .build();
        assert_eq!(plan.ops.len(), 3);
        assert_eq!(plan.output_layout().width(), 3);
        assert_eq!(plan.output_layout().vertex_label("b").unwrap(), LabelId(0));
    }

    #[test]
    fn heterogeneous_get_vertex_resolves_far_label() {
        let s = schema();
        let b = PlanBuilder::new(&s)
            .scan("a", "Person")
            .unwrap()
            .expand_edge("a", "BUY", Direction::Out, "e")
            .unwrap()
            .get_vertex("e", "item")
            .unwrap();
        assert_eq!(
            b.layout().vertex_label("item").unwrap(),
            LabelId(1) // Item
        );
    }

    #[test]
    fn prop_binding_resolves_ids() {
        let s = schema();
        let b = PlanBuilder::new(&s).scan("a", "Person").unwrap();
        match b.prop("a", "age").unwrap() {
            Expr::VertexProp { col: 0, prop, .. } => assert_eq!(prop.index(), 0),
            other => panic!("{other:?}"),
        }
        // `id` falls back to external id
        assert!(matches!(b.prop("a", "id").unwrap(), Expr::VertexId { .. }));
        assert!(b.prop("a", "ghost").is_err());
    }

    #[test]
    fn unknown_labels_and_aliases_error() {
        let s = schema();
        assert!(PlanBuilder::new(&s).scan("a", "Ghost").is_err());
        let b = PlanBuilder::new(&s).scan("a", "Person").unwrap();
        assert!(b.col("zz").is_err());
    }

    #[test]
    fn match_pattern_extends_layout_in_declaration_order() {
        let s = schema();
        let mut p = Pattern::new();
        let a = p.add_vertex("a", LabelId(0));
        let b = p.add_vertex("b", LabelId(0));
        let c = p.add_vertex("c", LabelId(1));
        p.add_edge(Some("k"), LabelId(1), a, b); // KNOWS
        p.add_edge(None, LabelId(0), b, c); // BUY
        let builder = PlanBuilder::new(&s).match_pattern(p).unwrap();
        let aliases: Vec<&str> = builder.layout().aliases().collect();
        assert_eq!(aliases, vec!["a", "b", "c", "k"]);
    }
}
