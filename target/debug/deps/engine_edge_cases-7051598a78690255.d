/root/repo/target/debug/deps/engine_edge_cases-7051598a78690255.d: tests/engine_edge_cases.rs

/root/repo/target/debug/deps/engine_edge_cases-7051598a78690255: tests/engine_edge_cases.rs

tests/engine_edge_cases.rs:
