//! Layout × algorithm analytics benchmark (BENCH_analytics.json).
//!
//! ```text
//! analytics                full run, writes BENCH_analytics.json
//! analytics --deny         fail if DO-BFS is slower than push-only BFS
//! analytics --seed N       pin the generators (default 42)
//! analytics --out PATH     output path (default BENCH_analytics.json)
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let deny = args.iter().any(|a| a == "--deny");
    let mut seed = 42u64;
    let mut out = "BENCH_analytics.json".to_string();
    for w in args.windows(2) {
        match w[0].as_str() {
            "--seed" => seed = w[1].parse().expect("--seed takes an integer"),
            "--out" => out = w[1].clone(),
            _ => {}
        }
    }
    std::process::exit(gs_bench::analytics::run_cli(deny, seed, &out));
}
