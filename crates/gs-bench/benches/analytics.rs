//! Criterion microbenchmarks for the analytical engines (Fig. 7h–7k
//! companions): PageRank and BFS across GRAPE and the baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use gs_baselines::{GeminiEngine, GunrockEngine, PowerGraphEngine};
use gs_datagen::catalog::Dataset;
use gs_grape::{algorithms, pagerank_gpu, GpuCluster, GrapeEngine};
use gs_graph::{Csr, VId};

fn pagerank_engines(c: &mut Criterion) {
    let el = Dataset::by_abbr("FB0").unwrap().edges(0.05);
    let n = el.vertex_count();
    let edges = el.edges().to_vec();
    let csr = Csr::from_edges(n, &edges);
    let iters = 5;
    let k = 2;

    let mut group = c.benchmark_group("pagerank");
    let grape = GrapeEngine::from_edges(n, &edges, k);
    group.bench_function("grape", |b| {
        b.iter(|| algorithms::pagerank(&grape, 0.85, iters))
    });
    let gemini = GeminiEngine::new(n, &edges, k);
    group.bench_function("gemini", |b| b.iter(|| gemini.pagerank(0.85, iters)));
    let pg = PowerGraphEngine::new(n, &edges, k);
    group.bench_function("powergraph", |b| b.iter(|| pg.pagerank(0.85, iters)));
    let cluster = GpuCluster::new(2, 2);
    group.bench_function("grape_gpu_sim", |b| {
        b.iter(|| pagerank_gpu(&cluster, n, &csr, 0.85, iters))
    });
    let gunrock = GunrockEngine::new(2, 2);
    group.bench_function("gunrock_sim", |b| {
        b.iter(|| gunrock.pagerank(n, &csr, 0.85, iters))
    });
    group.finish();
}

fn bfs_engines(c: &mut Criterion) {
    let el = Dataset::by_abbr("G500").unwrap().edges(0.05);
    let n = el.vertex_count();
    let edges = el.edges().to_vec();
    let k = 2;
    let mut group = c.benchmark_group("bfs");
    let grape = GrapeEngine::from_edges(n, &edges, k);
    group.bench_function("grape", |b| b.iter(|| algorithms::bfs(&grape, VId(0))));
    let gemini = GeminiEngine::new(n, &edges, k);
    group.bench_function("gemini", |b| b.iter(|| gemini.bfs(VId(0))));
    group.finish();
}

fn message_manager(c: &mut Criterion) {
    use gs_grape::{MessageBlock, OutBuffers};
    let mut group = c.benchmark_group("message_manager");
    group.bench_function("aggregate_100k_f64", |b| {
        b.iter(|| {
            let mut out = OutBuffers::new(4);
            for i in 0..100_000u64 {
                out.send((i % 4) as usize, VId(i), 0.5f64);
            }
            out.take()
        })
    });
    let mut out = OutBuffers::new(1);
    for i in 0..100_000u64 {
        out.send(0, VId(i), 0.5f64);
    }
    let blocks: Vec<MessageBlock> = out.take();
    group.bench_function("decode_100k_f64", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            blocks[0].for_each::<f64>(|_, x| acc += x);
            acc
        })
    });
    group.finish();
}

fn bench_config() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = bench_config();
    targets = pagerank_engines, bfs_engines, message_manager
}
criterion_main!(benches);
