//! Property-based invariants across the stack (proptest).

use graphscope_flex::prelude::*;
use gs_graph::varint;
use gs_ir::physical::lower_naive;
use proptest::prelude::*;

/// All plan execution in this file goes through the unified
/// [`QueryEngine`] interface, via the prepared-handle path.
fn run(
    engine: &dyn QueryEngine,
    plan: &gs_ir::PhysicalPlan,
    graph: &dyn GrinGraph,
) -> Vec<Vec<Value>> {
    engine.prepare(plan).unwrap().execute(graph).unwrap()
}

/// Arbitrary small digraphs as (n, edge list).
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = (usize, Vec<(u64, u64)>)> {
    (2..max_n).prop_flat_map(move |n| {
        let edges = proptest::collection::vec((0..n as u64, 0..n as u64), 0..max_m);
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR preserves the edge multiset and degrees.
    #[test]
    fn csr_round_trips_edge_multiset((n, edges) in arb_graph(40, 200)) {
        let pairs: Vec<(VId, VId)> = edges.iter().map(|&(s, d)| (VId(s), VId(d))).collect();
        let csr = gs_graph::Csr::from_edges(n, &pairs);
        prop_assert_eq!(csr.edge_count(), pairs.len());
        let mut from_csr: Vec<(u64, u64)> = Vec::new();
        for v in 0..n {
            for &w in csr.neighbors(VId(v as u64)) {
                from_csr.push((v as u64, w.0));
            }
        }
        let mut want = edges.clone();
        want.sort_unstable();
        from_csr.sort_unstable();
        prop_assert_eq!(from_csr, want);
        // transpose twice is identity
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    /// Varint delta coding round-trips any u64 sequence.
    #[test]
    fn delta_codec_round_trips(values in proptest::collection::vec(any::<u64>(), 0..300)) {
        let mut buf = Vec::new();
        varint::encode_deltas(&values, &mut buf);
        let (back, used) = varint::decode_deltas(&buf).unwrap();
        prop_assert_eq!(back, values);
        prop_assert_eq!(used, buf.len());
    }

    /// GraphAr column chunks round-trip arbitrary int-with-null columns,
    /// and corruption of any single byte is detected (or yields the same
    /// data — CRC collisions aside, flipping a bit must never silently
    /// produce *different* data).
    #[test]
    fn graphar_chunk_round_trip_and_corruption(
        ints in proptest::collection::vec(proptest::option::of(any::<i64>()), 1..100),
        flip in any::<(usize, u8)>(),
    ) {
        let values: Vec<Value> = ints
            .iter()
            .map(|o| o.map(Value::Int).unwrap_or(Value::Null))
            .collect();
        let chunk = gs_graphar::codec::encode_column(&values, ValueType::Int).unwrap();
        let back = gs_graphar::codec::decode_column(&chunk).unwrap();
        prop_assert_eq!(&back, &values);
        // single-byte corruption
        let (pos, xor) = flip;
        if xor != 0 {
            let mut bad = chunk.to_vec();
            let i = pos % bad.len();
            bad[i] ^= xor;
            match gs_graphar::codec::decode_column(&bad) {
                Err(_) => {}
                Ok(data) => prop_assert_eq!(data, values, "silent corruption"),
            }
        }
    }

    /// GART: a snapshot taken before a batch of edge inserts never sees
    /// them; one taken after sees all of them.
    #[test]
    fn gart_snapshot_isolation((n, edges) in arb_graph(30, 120)) {
        let schema = GraphSchema::homogeneous(false);
        let store = GartStore::new(schema);
        for v in 0..n as u64 {
            store.add_vertex(gs_graph::LabelId(0), v, vec![]).unwrap();
        }
        store.commit();
        let split = edges.len() / 2;
        for &(s, d) in &edges[..split] {
            store.add_edge(gs_graph::LabelId(0), s, d, vec![]).unwrap();
        }
        store.commit();
        let snap_mid = store.snapshot();
        for &(s, d) in &edges[split..] {
            store.add_edge(gs_graph::LabelId(0), s, d, vec![]).unwrap();
        }
        store.commit();
        let snap_end = store.snapshot();
        prop_assert_eq!(snap_mid.edge_count(gs_graph::LabelId(0)), split);
        prop_assert_eq!(snap_end.edge_count(gs_graph::LabelId(0)), edges.len());
    }

    /// Optimizer passes never change query results (random 2-hop + filter
    /// queries over random graphs).
    #[test]
    fn optimizer_preserves_semantics(
        (n, edges) in arb_graph(25, 120),
        threshold in 0i64..20,
    ) {
        let pairs: Vec<(u64, u64)> = edges.clone();
        let data = PropertyGraphData::from_edge_list(n, &pairs);
        let store = VineyardGraph::build(&data).unwrap();
        let schema = data.schema.clone();
        let q = format!(
            "MATCH (a:V)-[:E]->(b:V)-[:E]->(c:V) WHERE a.id > {threshold} \
             RETURN a, COUNT(c) AS n"
        );
        let plan = parse_cypher(&q, &schema, &Default::default()).unwrap();
        let baseline = run(&ReferenceEngine::default(), &lower_naive(&plan).unwrap(), &store);
        let optimized = Optimizer::new(GlogueCatalog::build(&store, 50))
            .optimize(&plan)
            .unwrap();
        let opt = run(&ReferenceEngine::default(), &optimized, &store);
        let canon = |mut v: Vec<Vec<Value>>| {
            v.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
            v
        };
        prop_assert_eq!(canon(opt), canon(baseline));
    }

    /// Distributed WCC equals union-find for any symmetrized graph and any
    /// fragment count.
    #[test]
    fn wcc_matches_union_find((n, edges) in arb_graph(40, 150), k in 1usize..5) {
        let mut el = gs_graph::EdgeList::from_pairs(n, edges);
        el.symmetrize();
        let engine = GrapeEngine::from_edges(n, el.edges(), k);
        let got = grape_algorithms::wcc(&engine);
        let want = grape_algorithms::reference::wcc(n, el.edges());
        prop_assert_eq!(got, want);
    }

    /// GRAPE BFS equals the sequential reference for any graph/partitioning.
    #[test]
    fn bfs_matches_reference((n, edges) in arb_graph(40, 150), k in 1usize..5) {
        let pairs: Vec<(VId, VId)> = edges.iter().map(|&(s, d)| (VId(s), VId(d))).collect();
        let engine = GrapeEngine::from_edges(n, &pairs, k);
        let got = grape_algorithms::bfs(&engine, VId(0));
        let want = grape_algorithms::reference::bfs(n, &pairs, VId(0));
        prop_assert_eq!(got, want);
    }

    /// Gaia with any worker count matches the reference executor on a
    /// group-by query.
    #[test]
    fn gaia_parallelism_is_transparent((n, edges) in arb_graph(25, 100), workers in 1usize..6) {
        let data = PropertyGraphData::from_edge_list(n, &edges);
        let store = VineyardGraph::build(&data).unwrap();
        let schema = data.schema.clone();
        let q = "MATCH (a:V)-[:E]->(b:V) RETURN b, COUNT(a) AS indeg";
        let plan = parse_cypher(q, &schema, &Default::default()).unwrap();
        let phys = lower_naive(&plan).unwrap();
        let reference = run(&ReferenceEngine::default(), &phys, &store);
        let parallel = run(&GaiaEngine::new(workers), &phys, &store);
        let canon = |mut v: Vec<Vec<Value>>| {
            v.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
            v
        };
        prop_assert_eq!(canon(parallel), canon(reference));
    }

    /// Sampler fan-out bounds hold for arbitrary graphs and fan-out vectors.
    #[test]
    fn sampler_respects_fanouts(
        (n, edges) in arb_graph(30, 200),
        fanouts in proptest::collection::vec(1usize..6, 1..3),
        nseeds in 1usize..5,
    ) {
        let data = PropertyGraphData::from_edge_list(n, &edges);
        let store = VineyardGraph::build(&data).unwrap();
        let sampler = gs_learn::Sampler::new(
            &store,
            gs_graph::LabelId(0),
            gs_graph::LabelId(0),
            fanouts.clone(),
            4,
        );
        let seeds: Vec<VId> = (0..nseeds.min(n) as u64).map(VId).collect();
        let batch = sampler.sample(&seeds, 11);
        prop_assert_eq!(batch.layers.len(), fanouts.len() + 1);
        for (k, fo) in fanouts.iter().enumerate() {
            // each frontier vertex contributes at most `fo` samples
            prop_assert!(batch.layers[k + 1].len() <= batch.layers[k].len() * fo);
            for (i, nbrs) in batch.hops[k].iter().enumerate() {
                prop_assert!(nbrs.len() <= *fo, "hop {k} vertex {i}");
            }
        }
    }
}
