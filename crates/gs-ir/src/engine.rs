//! The unified execution interface over GraphIR physical plans.
//!
//! The Flex stack has three ways to run a [`PhysicalPlan`] — the
//! single-threaded reference [`exec`](crate::exec)utor, Gaia's
//! data-parallel dataflow runtime, and HiActor's shard-actor OLTP
//! runtime. [`QueryEngine`] is the one interface all three implement, so
//! engine choice becomes a value-level decision (`&dyn QueryEngine`)
//! instead of a call-site decision: differential tests iterate over a
//! slice of engines, and `gs-flex`'s builder hands back whichever engine
//! the deployment descriptor selected.

use crate::physical::PhysicalPlan;
use crate::record::Record;
use crate::verify::{verify_on_submit, VerifyLevel};
use crate::Result;
use gs_grin::GrinGraph;

/// A query-execution engine: runs a physical plan over a GRIN graph to a
/// materialised record batch.
///
/// All implementations must agree with the reference executor's operator
/// semantics ([`crate::exec::apply`]); they differ only in *how* the work
/// is scheduled (single thread, data-parallel workers, shard actors).
pub trait QueryEngine {
    /// Runs `plan` to completion and returns every output record.
    ///
    /// Implementations may parallelise internally but must not return
    /// until the batch is fully materialised, and must not retain any
    /// reference to `graph` afterwards.
    fn execute(&self, plan: &PhysicalPlan, graph: &dyn GrinGraph) -> Result<Vec<Record>>;

    /// Short engine identifier for diagnostics and telemetry labels.
    fn name(&self) -> &'static str;
}

/// The definitional engine: single-threaded, materialised intermediates,
/// delegating straight to [`crate::exec::execute`]. Every other engine is
/// differential-tested against this one.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReferenceEngine {
    /// Submit-time plan verification policy (defaults to
    /// [`VerifyLevel::Warn`]: verify and count, never reject).
    pub verify: VerifyLevel,
}

impl ReferenceEngine {
    /// Engine with an explicit submit-time verification level.
    pub fn with_verify(verify: VerifyLevel) -> Self {
        Self { verify }
    }
}

impl QueryEngine for ReferenceEngine {
    fn execute(&self, plan: &PhysicalPlan, graph: &dyn GrinGraph) -> Result<Vec<Record>> {
        verify_on_submit(plan, graph.schema(), self.verify, self.name())?;
        crate::exec::execute(plan, graph)
    }

    fn name(&self) -> &'static str {
        "reference"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::lower_naive;
    use crate::PlanBuilder;
    use gs_grin::graph::mock::MockGraph;

    #[test]
    fn reference_engine_matches_exec() {
        let g = MockGraph::new(20, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]);
        let s = g.schema().clone();
        let plan = lower_naive(&PlanBuilder::new(&s).scan("a", "V").unwrap().build()).unwrap();
        let engine: &dyn QueryEngine = &ReferenceEngine::default();
        assert_eq!(engine.name(), "reference");
        let rows = engine.execute(&plan, &g).unwrap();
        assert_eq!(rows, crate::exec::execute(&plan, &g).unwrap());
        assert_eq!(rows.len(), 20);
    }

    #[test]
    fn deny_level_rejects_bad_plan_on_submit() {
        use crate::physical::PhysicalOp;
        use crate::record::Layout;
        use crate::verify::VerifyLevel;
        let g = MockGraph::new(4, &[(0, 1, 1.0)]);
        let bad = PhysicalPlan {
            ops: vec![PhysicalOp::Scan {
                label: crate::LabelId(42),
                predicate: None,
                index_lookup: None,
            }],
            layout: Layout::new(),
        };
        let deny = ReferenceEngine::with_verify(VerifyLevel::Deny);
        let err = deny.execute(&bad, &g).unwrap_err();
        assert!(err.to_string().contains("E001"), "{err}");
        // Off never raises the verifier's diagnostic (whatever exec does).
        let off = ReferenceEngine::with_verify(VerifyLevel::Off);
        if let Err(e) = off.execute(&bad, &g) {
            assert!(!e.to_string().contains("E001"), "{e}");
        }
    }
}
