/root/repo/target/debug/deps/gs_bench-a404053beb597ec2.d: crates/gs-bench/src/lib.rs crates/gs-bench/src/experiments/mod.rs crates/gs-bench/src/experiments/ablations.rs crates/gs-bench/src/experiments/analytics.rs crates/gs-bench/src/experiments/apps.rs crates/gs-bench/src/experiments/learning.rs crates/gs-bench/src/experiments/query.rs crates/gs-bench/src/experiments/storage.rs crates/gs-bench/src/util.rs Cargo.toml

/root/repo/target/debug/deps/libgs_bench-a404053beb597ec2.rmeta: crates/gs-bench/src/lib.rs crates/gs-bench/src/experiments/mod.rs crates/gs-bench/src/experiments/ablations.rs crates/gs-bench/src/experiments/analytics.rs crates/gs-bench/src/experiments/apps.rs crates/gs-bench/src/experiments/learning.rs crates/gs-bench/src/experiments/query.rs crates/gs-bench/src/experiments/storage.rs crates/gs-bench/src/util.rs Cargo.toml

crates/gs-bench/src/lib.rs:
crates/gs-bench/src/experiments/mod.rs:
crates/gs-bench/src/experiments/ablations.rs:
crates/gs-bench/src/experiments/analytics.rs:
crates/gs-bench/src/experiments/apps.rs:
crates/gs-bench/src/experiments/learning.rs:
crates/gs-bench/src/experiments/query.rs:
crates/gs-bench/src/experiments/storage.rs:
crates/gs-bench/src/util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
