/root/repo/target/release/deps/gs_bench-a63256cee1a33441.d: crates/gs-bench/src/lib.rs crates/gs-bench/src/experiments/mod.rs crates/gs-bench/src/experiments/ablations.rs crates/gs-bench/src/experiments/analytics.rs crates/gs-bench/src/experiments/apps.rs crates/gs-bench/src/experiments/learning.rs crates/gs-bench/src/experiments/query.rs crates/gs-bench/src/experiments/storage.rs crates/gs-bench/src/util.rs

/root/repo/target/release/deps/libgs_bench-a63256cee1a33441.rlib: crates/gs-bench/src/lib.rs crates/gs-bench/src/experiments/mod.rs crates/gs-bench/src/experiments/ablations.rs crates/gs-bench/src/experiments/analytics.rs crates/gs-bench/src/experiments/apps.rs crates/gs-bench/src/experiments/learning.rs crates/gs-bench/src/experiments/query.rs crates/gs-bench/src/experiments/storage.rs crates/gs-bench/src/util.rs

/root/repo/target/release/deps/libgs_bench-a63256cee1a33441.rmeta: crates/gs-bench/src/lib.rs crates/gs-bench/src/experiments/mod.rs crates/gs-bench/src/experiments/ablations.rs crates/gs-bench/src/experiments/analytics.rs crates/gs-bench/src/experiments/apps.rs crates/gs-bench/src/experiments/learning.rs crates/gs-bench/src/experiments/query.rs crates/gs-bench/src/experiments/storage.rs crates/gs-bench/src/util.rs

crates/gs-bench/src/lib.rs:
crates/gs-bench/src/experiments/mod.rs:
crates/gs-bench/src/experiments/ablations.rs:
crates/gs-bench/src/experiments/analytics.rs:
crates/gs-bench/src/experiments/apps.rs:
crates/gs-bench/src/experiments/learning.rs:
crates/gs-bench/src/experiments/query.rs:
crates/gs-bench/src/experiments/storage.rs:
crates/gs-bench/src/util.rs:
