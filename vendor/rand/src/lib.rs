//! Minimal in-tree replacement for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny subset of the `rand` API it actually uses:
//! [`RngCore`], the [`Rng`] extension trait with `gen`/`gen_range`/
//! `gen_bool`, and uniform sampling over integer and float ranges. The
//! sampling is intentionally simple (modulo reduction); the workspace uses
//! RNGs for test-data generation and simulated workloads, not cryptography
//! or statistics-grade uniformity.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from `Standard` (i.e. `rng.gen()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range that can be sampled to yield a `T` (the argument of
/// [`Rng::gen_range`]).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % width;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % width;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Extension methods every `RngCore` gets for free (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = Counter(7);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v: usize = rng.gen_range(0..=2);
            seen[v] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }
}
