//! # gs-datagen — synthetic dataset generators
//!
//! The paper evaluates on billion-edge public datasets (Table 1) and
//! production graphs that we cannot ship. This crate generates
//! *shape-preserving, scaled-down* equivalents:
//!
//! * [`rmat`] — Graph500-style R-MAT graphs (G500 analogue; heavy-tailed,
//!   community-free skew),
//! * [`powerlaw`] — preferential-attachment power-law graphs (social-network
//!   analogues: FB0/FB1/CF/TW) and a high-locality copying-model variant
//!   (webgraph analogues: WB/UK/IT/AR), plus a sparse Zipf variant (ZF),
//! * [`snb`] — an LDBC SNB-lite social network with the Person/Forum/Post/
//!   Comment/Tag labeled-property schema used by the interactive and BI
//!   workloads,
//! * [`apps`] — the §8 application graphs (transactions for fraud detection,
//!   equity ownership, cybersecurity process/connection graphs),
//! * [`catalog`] — the Table 1 catalog mapping dataset abbreviations to
//!   generator configurations at a configurable scale.
//!
//! All generators are deterministic given a seed (PCG streams), so every
//! figure in `gs-bench` is reproducible bit-for-bit.

pub mod apps;
pub mod catalog;
pub mod powerlaw;
pub mod rmat;
pub mod snb;

pub use catalog::{Dataset, DatasetKind};
pub use snb::{SnbGraph, SnbSchema};
