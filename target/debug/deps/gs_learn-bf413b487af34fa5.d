/root/repo/target/debug/deps/gs_learn-bf413b487af34fa5.d: crates/gs-learn/src/lib.rs crates/gs-learn/src/ncn.rs crates/gs-learn/src/pipeline.rs crates/gs-learn/src/sage.rs crates/gs-learn/src/sampler.rs crates/gs-learn/src/tensor.rs

/root/repo/target/debug/deps/libgs_learn-bf413b487af34fa5.rlib: crates/gs-learn/src/lib.rs crates/gs-learn/src/ncn.rs crates/gs-learn/src/pipeline.rs crates/gs-learn/src/sage.rs crates/gs-learn/src/sampler.rs crates/gs-learn/src/tensor.rs

/root/repo/target/debug/deps/libgs_learn-bf413b487af34fa5.rmeta: crates/gs-learn/src/lib.rs crates/gs-learn/src/ncn.rs crates/gs-learn/src/pipeline.rs crates/gs-learn/src/sage.rs crates/gs-learn/src/sampler.rs crates/gs-learn/src/tensor.rs

crates/gs-learn/src/lib.rs:
crates/gs-learn/src/ncn.rs:
crates/gs-learn/src/pipeline.rs:
crates/gs-learn/src/sage.rs:
crates/gs-learn/src/sampler.rs:
crates/gs-learn/src/tensor.rs:
