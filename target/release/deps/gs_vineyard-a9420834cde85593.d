/root/repo/target/release/deps/gs_vineyard-a9420834cde85593.d: crates/gs-vineyard/src/lib.rs

/root/repo/target/release/deps/libgs_vineyard-a9420834cde85593.rlib: crates/gs-vineyard/src/lib.rs

/root/repo/target/release/deps/libgs_vineyard-a9420834cde85593.rmeta: crates/gs-vineyard/src/lib.rs

crates/gs-vineyard/src/lib.rs:
