//! Negative fixtures: every L-code must fire on a minimal bad example
//! and stay quiet on the corresponding good one, and the suppression
//! mechanisms must round-trip. Fixtures are inline strings (never files
//! on disk) so the workspace sweep itself stays clean.

use gs_lint::lints::{collect_facts, l005, CrateFacts, FileCx};
use gs_lint::{lint_source, LintConfig, TelemetryRegistry, L001, L002, L003, L004, L005, L006};
use std::collections::{BTreeMap, BTreeSet};

fn registry() -> TelemetryRegistry {
    TelemetryRegistry::from_design_md(
        "| Layer | Counters |\n|---|---|\n\
         | Gaia | `gaia.records{op}`, `gaia.exchange_stall_ns` |\n",
    )
}

fn codes(findings: &[gs_lint::Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.code).collect()
}

// ---------------------------------------------------------------- L001

#[test]
fn l001_fires_on_raw_primitives_in_instrumented_crate() {
    let src = "\
use std::sync::{Arc, Mutex};\n\
struct S { lock: parking_lot::RwLock<u32>, b: std::sync::Barrier }\n\
fn sig(g: std::sync::MutexGuard<'_, u32>) {}\n\
#[cfg(test)]\n\
mod tests {\n\
    use std::sync::Mutex; // exempt: test code\n\
}\n";
    let (found, _, _) = lint_source(
        "crates/gs-grape/src/x.rs",
        "gs-grape",
        src,
        &LintConfig::default(),
        &registry(),
    );
    // Mutex (import), RwLock, Barrier — but not MutexGuard, not the
    // test-module import
    assert_eq!(codes(&found), vec![L001, L001, L001], "{found:?}");
    assert!(found.iter().all(|f| f.line <= 2), "{found:?}");
}

#[test]
fn l001_silent_in_uninstrumented_crate() {
    let src = "use std::sync::Mutex;\n";
    let (found, _, _) = lint_source(
        "crates/gs-baselines/src/x.rs",
        "gs-baselines",
        src,
        &LintConfig::default(),
        &registry(),
    );
    assert!(found.is_empty(), "{found:?}");
}

// ---------------------------------------------------------------- L002

#[test]
fn l002_fires_on_hash_iteration_feeding_float_accumulation() {
    let src = "\
fn reduce(parts: &HashMap<u64, f64>) -> f64 {\n\
    let mut total = 0.0;\n\
    for (_, v) in parts.iter() {\n\
        total += *v;\n\
    }\n\
    total\n\
}\n\
fn chain(parts: &HashMap<u64, f64>) -> f64 {\n\
    parts.values().sum::<f64>()\n\
}\n";
    let (found, _, _) = lint_source(
        "crates/gs-grape/src/x.rs",
        "gs-grape",
        src,
        &LintConfig::default(),
        &registry(),
    );
    assert_eq!(codes(&found), vec![L002, L002], "{found:?}");
}

#[test]
fn l002_silent_on_btreemap_and_keyed_accumulation() {
    let src = "\
fn ordered(ranked: &BTreeMap<u64, f64>) -> f64 {\n\
    let mut total = 0.0;\n\
    for (_, v) in ranked.iter() { total += *v; }\n\
    total\n\
}\n\
fn keyed(parts: &HashMap<u64, f64>, out: &mut HashMap<u64, f64>) {\n\
    for (k, v) in parts.iter() {\n\
        *out.entry(*k).or_insert(0.0) += *v;\n\
    }\n\
}\n";
    let (found, _, _) = lint_source(
        "crates/gs-grape/src/x.rs",
        "gs-grape",
        src,
        &LintConfig::default(),
        &registry(),
    );
    assert!(found.is_empty(), "{found:?}");
}

// ---------------------------------------------------------------- L003

#[test]
fn l003_fires_on_channel_unwrap_in_engine_crate() {
    let src = "\
fn pump(rx: &Receiver<u32>, tx: &Sender<u32>) {\n\
    let v = rx.recv().unwrap();\n\
    tx.send(v).expect(\"peer alive\");\n\
    let _ = rx.try_recv();\n\
}\n\
#[test]\n\
fn in_test() { rx.recv().unwrap(); }\n";
    let (found, _, _) = lint_source(
        "crates/gs-hiactor/src/x.rs",
        "gs-hiactor",
        src,
        &LintConfig::default(),
        &registry(),
    );
    assert_eq!(codes(&found), vec![L003, L003], "{found:?}");
    assert_eq!(found[0].line, 2);
    assert_eq!(found[1].line, 3);
}

#[test]
fn l003_silent_outside_engine_crates() {
    let src = "fn f(rx: &Receiver<u32>) { rx.recv().unwrap(); }\n";
    let (found, _, _) = lint_source(
        "crates/gs-datagen/src/x.rs",
        "gs-datagen",
        src,
        &LintConfig::default(),
        &registry(),
    );
    assert!(found.is_empty(), "{found:?}");
}

// ---------------------------------------------------------------- L004

#[test]
fn l004_fires_on_malformed_unknown_and_untemplated_names() {
    let src = "\
fn f() {\n\
    counter!(\"BadName\"; 1);\n\
    counter!(\"gaia.not_documented\"; 1);\n\
    counter!(\"gaia.exchange_stall_ns\", op = \"x\"; 1);\n\
    counter!(\"gaia.records\", op = \"scan\"; 1);\n\
    let c = StaticCounter::new(\"gaia.exchange_stall_ns\");\n\
}\n";
    let (found, _, _) = lint_source(
        "crates/gs-gaia/src/x.rs",
        "gs-gaia",
        src,
        &LintConfig::default(),
        &registry(),
    );
    // line 2: convention violation; line 3: unknown; line 4: fields on an
    // untemplated name; lines 5–6 are fine
    assert_eq!(codes(&found), vec![L004, L004, L004], "{found:?}");
    assert_eq!(
        found.iter().map(|f| f.line).collect::<Vec<_>>(),
        vec![2, 3, 4]
    );
}

// ---------------------------------------------------------------- L005

fn facts_for(name: &str, manifest_text: &str, src: &str) -> CrateFacts {
    let lexed = gs_lint::lexer::lex(src);
    let cx = FileCx::new("crates/x/src/lib.rs", name, false, &lexed.tokens, src);
    let mut facts = CrateFacts {
        name: name.to_string(),
        manifest_path: "crates/x/Cargo.toml".into(),
        manifest: gs_lint::manifest::parse(manifest_text),
        features_line: 1,
        ..CrateFacts::default()
    };
    collect_facts(&cx, &mut facts);
    facts
}

fn declarers() -> BTreeMap<String, BTreeSet<String>> {
    let mut m = BTreeMap::new();
    m.insert(
        "sanitize".to_string(),
        ["gs-sanitizer", "gs-telemetry"]
            .iter()
            .map(|s| s.to_string())
            .collect::<BTreeSet<_>>(),
    );
    m
}

#[test]
fn l005_fires_on_missing_hook_forward() {
    let facts = facts_for(
        "gs-x",
        "[package]\nname = \"gs-x\"\n[dependencies]\ngs-sanitizer.workspace = true\n",
        "use gs_sanitizer::TrackedMutex;\n",
    );
    let found = l005(&facts, &declarers());
    assert_eq!(codes(&found), vec![L005], "{found:?}");
    assert!(found[0].message.contains("gs-sanitizer/sanitize"));
}

#[test]
fn l005_fires_on_unforwarded_dependency_feature() {
    let facts = facts_for(
        "gs-x",
        "[package]\nname = \"gs-x\"\n\
         [dependencies]\ngs-sanitizer.workspace = true\ngs-telemetry.workspace = true\n\
         [features]\nsanitize = [\"gs-sanitizer/sanitize\"]\n",
        "use gs_sanitizer::TrackedMutex;\n",
    );
    let found = l005(&facts, &declarers());
    // forwards the definer but not gs-telemetry, which also declares it
    assert_eq!(codes(&found), vec![L005], "{found:?}");
    assert!(found[0].message.contains("gs-telemetry"));
}

#[test]
fn l005_fires_on_cfg_without_passthrough() {
    let facts = facts_for(
        "gs-x",
        "[package]\nname = \"gs-x\"\n[features]\nfast = []\n",
        "#[cfg(feature = \"fast\")]\nfn fast_path() {}\n",
    );
    let found = l005(&facts, &declarers());
    assert_eq!(codes(&found), vec![L005], "{found:?}");
    assert!(found[0].message.contains("passthrough"));
}

#[test]
fn l005_silent_when_hygiene_holds() {
    let facts = facts_for(
        "gs-x",
        "[package]\nname = \"gs-x\"\n\
         [dependencies]\ngs-sanitizer.workspace = true\ngs-telemetry.workspace = true\n\
         [features]\nsanitize = [\"gs-sanitizer/sanitize\", \"gs-telemetry/sanitize\"]\nfast = []\n",
        "use gs_sanitizer::TrackedMutex;\n\
         #[cfg(feature = \"fast\")]\nfn fast_path() {}\n\
         #[cfg(not(feature = \"fast\"))]\nfn fast_path() {}\n",
    );
    let found = l005(&facts, &declarers());
    assert!(found.is_empty(), "{found:?}");
}

// ---------------------------------------------------------------- L006

#[test]
fn l006_fires_only_in_deterministic_paths() {
    let src = "fn stamp() -> Instant { let t = Instant::now(); t }\n\
               fn wall() -> SystemTime { SystemTime::now() }\n";
    let cfg = LintConfig::default();
    let (found, _, _) = lint_source(
        "crates/gs-grape/src/recover.rs",
        "gs-grape",
        src,
        &cfg,
        &registry(),
    );
    assert_eq!(codes(&found), vec![L006, L006], "{found:?}");
    let (outside, _, _) = lint_source(
        "crates/gs-grape/src/engine.rs",
        "gs-grape",
        src,
        &cfg,
        &registry(),
    );
    assert!(outside.is_empty(), "{outside:?}");
}

// ----------------------------------------------------- suppression

#[test]
fn inline_allow_suppresses_with_reason_and_reports_malformed() {
    let src = "\
// gs-lint: allow(L001 init-only, single-threaded at this point)\n\
use std::sync::Mutex;\n\
// gs-lint: allow(L001)\n\
use std::sync::Barrier;\n";
    let (found, suppressed, malformed) = lint_source(
        "crates/gs-grape/src/x.rs",
        "gs-grape",
        src,
        &LintConfig::default(),
        &registry(),
    );
    // the reasoned allow suppresses the Mutex; the reasonless one is
    // malformed and the Barrier finding survives
    assert_eq!(codes(&found), vec![L001], "{found:?}");
    assert!(found[0].message.contains("Barrier"));
    assert_eq!(suppressed.len(), 1);
    assert_eq!(suppressed[0].mechanism, "inline");
    assert!(suppressed[0].reason.contains("init-only"));
    assert_eq!(malformed.len(), 1, "{malformed:?}");
}

#[test]
fn baseline_round_trip_suppresses_and_detects_stale() {
    use gs_lint::suppress::{apply_baseline, format_baseline, parse_baseline, BaselineEntry};
    let (found, _, _) = lint_source(
        "crates/gs-grape/src/x.rs",
        "gs-grape",
        "use std::sync::Mutex;\n",
        &LintConfig::default(),
        &registry(),
    );
    assert_eq!(codes(&found), vec![L001]);
    let entries = vec![
        BaselineEntry {
            code: "L001".into(),
            file: "crates/gs-grape/src/x.rs".into(),
            occurrence: 0,
            snippet: found[0].snippet.clone(),
            reason: "legacy lock, tracked conversion scheduled".into(),
        },
        BaselineEntry {
            code: "L006".into(),
            file: "crates/gone.rs".into(),
            occurrence: 0,
            snippet: "Instant::now()".into(),
            reason: "no longer exists".into(),
        },
    ];
    // the committed format round-trips…
    let (parsed, errors) = parse_baseline(&format_baseline(&entries));
    assert!(errors.is_empty(), "{errors:?}");
    assert_eq!(parsed, entries);
    // …the live finding is suppressed with its reason, and the entry
    // whose code matches nothing is reported stale
    let (kept, suppressed, stale) = apply_baseline(found, &parsed);
    assert!(kept.is_empty(), "{kept:?}");
    assert_eq!(suppressed.len(), 1);
    assert!(suppressed[0].1.contains("legacy lock"));
    assert_eq!(stale.len(), 1);
    assert_eq!(stale[0].code, "L006");
}

// ------------------------------------------------- the self-host bar

/// The CI gate, as a test: the workspace's own sources must lint clean
/// (empty or justified baseline, no malformed suppressions, warnings
/// included).
#[test]
fn workspace_sweep_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let report = gs_lint::lint_workspace(&root, &LintConfig::default()).expect("sweep");
    assert!(report.files_scanned > 100, "walker found the workspace");
    assert!(
        report.registry_size > 30,
        "registry extracted from DESIGN.md"
    );
    let problems: Vec<String> = report
        .findings
        .iter()
        .map(|(f, _)| f.to_string())
        .chain(
            report
                .stale_baseline
                .iter()
                .map(|e| format!("stale baseline: {} {}", e.code, e.file)),
        )
        .chain(
            report
                .malformed_allows
                .iter()
                .map(|(f, l, m)| format!("malformed allow {f}:{l} {m}")),
        )
        .collect();
    assert_eq!(report.error_count(true), 0, "{problems:#?}");
}
