//! Scoped threads with crossbeam's calling convention, over `std::thread`.

/// Placeholder passed to spawn closures where crossbeam passes `&Scope`
/// (for nested spawns, which the workspace does not use).
#[derive(Clone, Copy, Debug)]
pub struct NestedScope;

/// A scope handle; `spawn` borrows from the enclosing environment.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure's argument is a placeholder for
    /// crossbeam's nested-scope handle.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(NestedScope) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(NestedScope)),
        }
    }
}

/// Handle to a scoped thread; `join` returns `Err` if the thread panicked.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

/// Creates a scope for spawning borrowing threads; all threads are joined
/// before this returns. Unlike crossbeam, a panic in an *unjoined* thread
/// propagates as a panic here rather than an `Err` — callers in this
/// workspace `.expect()` the result, so the observable behaviour matches.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn joined_panic_is_an_err() {
        let r = super::scope(|s| s.spawn(|_| panic!("boom")).join());
        assert!(r.unwrap().is_err());
    }
}
