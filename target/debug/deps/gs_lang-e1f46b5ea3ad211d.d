/root/repo/target/debug/deps/gs_lang-e1f46b5ea3ad211d.d: crates/gs-lang/src/lib.rs crates/gs-lang/src/cypher.rs crates/gs-lang/src/gremlin.rs crates/gs-lang/src/lexer.rs

/root/repo/target/debug/deps/gs_lang-e1f46b5ea3ad211d: crates/gs-lang/src/lib.rs crates/gs-lang/src/cypher.rs crates/gs-lang/src/gremlin.rs crates/gs-lang/src/lexer.rs

crates/gs-lang/src/lib.rs:
crates/gs-lang/src/cypher.rs:
crates/gs-lang/src/gremlin.rs:
crates/gs-lang/src/lexer.rs:
