/root/repo/target/debug/deps/gs_baselines-739cb2f8ea61be64.d: crates/gs-baselines/src/lib.rs crates/gs-baselines/src/gemini.rs crates/gs-baselines/src/gpu_baselines.rs crates/gs-baselines/src/livegraph.rs crates/gs-baselines/src/powergraph.rs crates/gs-baselines/src/sqlengine.rs crates/gs-baselines/src/tugraph.rs

/root/repo/target/debug/deps/gs_baselines-739cb2f8ea61be64: crates/gs-baselines/src/lib.rs crates/gs-baselines/src/gemini.rs crates/gs-baselines/src/gpu_baselines.rs crates/gs-baselines/src/livegraph.rs crates/gs-baselines/src/powergraph.rs crates/gs-baselines/src/sqlengine.rs crates/gs-baselines/src/tugraph.rs

crates/gs-baselines/src/lib.rs:
crates/gs-baselines/src/gemini.rs:
crates/gs-baselines/src/gpu_baselines.rs:
crates/gs-baselines/src/livegraph.rs:
crates/gs-baselines/src/powergraph.rs:
crates/gs-baselines/src/sqlengine.rs:
crates/gs-baselines/src/tugraph.rs:
