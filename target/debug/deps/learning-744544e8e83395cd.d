/root/repo/target/debug/deps/learning-744544e8e83395cd.d: crates/gs-bench/benches/learning.rs Cargo.toml

/root/repo/target/debug/deps/liblearning-744544e8e83395cd.rmeta: crates/gs-bench/benches/learning.rs Cargo.toml

crates/gs-bench/benches/learning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
