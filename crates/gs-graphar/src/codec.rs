//! Column-chunk codec: lightweight encodings plus CRC32 integrity.
//!
//! GraphAr builds on columnar formats (ORC/Parquet in the paper); this
//! module provides the equivalent building block — a self-describing,
//! checksummed, lightweight-encoded column chunk:
//!
//! * Int/Date columns: zigzag **delta varint** (sorted id columns compress
//!   to ~1 byte/row),
//! * Float columns: raw little-endian words,
//! * Str columns: **dictionary encoding** when beneficial, length-prefixed
//!   raw otherwise,
//! * Bool columns: bit-packed,
//! * every chunk ends with a CRC32 footer so corruption is detected at
//!   load time rather than producing silently wrong graphs.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use gs_graph::props::PropertyColumn;
use gs_graph::varint;
use gs_graph::{GraphError, Result, Value, ValueType};
use std::collections::HashMap;

/// Chunk type tags written to the wire.
const TAG_INT_DELTA: u8 = 1;
const TAG_FLOAT_RAW: u8 = 2;
const TAG_STR_RAW: u8 = 3;
const TAG_STR_DICT: u8 = 4;
const TAG_BOOL_BITS: u8 = 5;
const TAG_DATE_DELTA: u8 = 6;

/// CRC32 (IEEE 802.3, reflected) — table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Bytes a value occupies in a naive fixed/plain representation; the
/// baseline for telemetry's encoded-vs-raw ratio.
fn raw_value_size(v: &Value) -> u64 {
    match v {
        Value::Bool(_) => 1,
        Value::Str(s) => s.len() as u64 + 1,
        _ => 8,
    }
}

/// Encodes one column's values (with a validity bitmap baked in as a null
/// mask) into a checksummed chunk.
pub fn encode_column(values: &[Value], vt: ValueType) -> Result<Bytes> {
    let chunk = encode_column_inner(values, vt)?;
    if gs_telemetry::enabled() {
        gs_telemetry::counter!("graphar.bytes_raw";
            values.iter().map(raw_value_size).sum());
        gs_telemetry::counter!("graphar.bytes_encoded"; chunk.len() as u64);
    }
    Ok(chunk)
}

fn encode_column_inner(values: &[Value], vt: ValueType) -> Result<Bytes> {
    let mut body = BytesMut::new();
    // null mask (bit-packed; 1 = valid)
    let mut mask = vec![0u8; values.len().div_ceil(8)];
    for (i, v) in values.iter().enumerate() {
        if !v.is_null() {
            mask[i / 8] |= 1 << (i % 8);
        }
    }
    let mut scratch = Vec::new();
    varint::encode_u64(values.len() as u64, &mut scratch);
    body.put_slice(&scratch);
    body.put_slice(&mask);

    match vt {
        ValueType::Int | ValueType::Date => {
            let tag = if vt == ValueType::Int {
                TAG_INT_DELTA
            } else {
                TAG_DATE_DELTA
            };
            let ints: Vec<u64> = values
                .iter()
                .map(|v| v.as_int().unwrap_or(0) as u64)
                .collect();
            let mut buf = Vec::new();
            varint::encode_deltas(&ints, &mut buf);
            let mut out = BytesMut::with_capacity(buf.len() + body.len() + 16);
            out.put_u8(tag);
            out.put_slice(&body);
            out.put_slice(&buf);
            Ok(seal(out))
        }
        ValueType::Float => {
            let mut out = BytesMut::with_capacity(values.len() * 8 + body.len() + 16);
            out.put_u8(TAG_FLOAT_RAW);
            out.put_slice(&body);
            for v in values {
                out.put_f64_le(v.as_float().unwrap_or(0.0));
            }
            Ok(seal(out))
        }
        ValueType::Bool => {
            let mut bits = vec![0u8; values.len().div_ceil(8)];
            for (i, v) in values.iter().enumerate() {
                if v.as_bool().unwrap_or(false) {
                    bits[i / 8] |= 1 << (i % 8);
                }
            }
            let mut out = BytesMut::new();
            out.put_u8(TAG_BOOL_BITS);
            out.put_slice(&body);
            out.put_slice(&bits);
            Ok(seal(out))
        }
        ValueType::Str => {
            let strs: Vec<&str> = values.iter().map(|v| v.as_str().unwrap_or("")).collect();
            // dictionary wins when distinct values are few
            let mut dict: Vec<&str> = Vec::new();
            let mut index: HashMap<&str, u32> = HashMap::new();
            for s in &strs {
                if !index.contains_key(s) {
                    index.insert(s, dict.len() as u32);
                    dict.push(s);
                }
            }
            let use_dict = dict.len() * 4 < strs.len();
            let mut out = BytesMut::new();
            if use_dict {
                out.put_u8(TAG_STR_DICT);
                out.put_slice(&body);
                let mut buf = Vec::new();
                varint::encode_u64(dict.len() as u64, &mut buf);
                for d in &dict {
                    varint::encode_u64(d.len() as u64, &mut buf);
                    buf.extend_from_slice(d.as_bytes());
                }
                for s in &strs {
                    varint::encode_u64(index[s] as u64, &mut buf);
                }
                out.put_slice(&buf);
            } else {
                out.put_u8(TAG_STR_RAW);
                out.put_slice(&body);
                let mut buf = Vec::new();
                for s in &strs {
                    varint::encode_u64(s.len() as u64, &mut buf);
                    buf.extend_from_slice(s.as_bytes());
                }
                out.put_slice(&buf);
            }
            Ok(seal(out))
        }
        other => Err(GraphError::Schema(format!(
            "unencodable column type {other:?}"
        ))),
    }
}

fn seal(mut body: BytesMut) -> Bytes {
    let crc = crc32(&body);
    body.put_u32_le(crc);
    body.freeze()
}

/// Decodes a chunk produced by [`encode_column`].
pub fn decode_column(chunk: &[u8]) -> Result<Vec<Value>> {
    if chunk.len() < 5 {
        return Err(GraphError::Corrupt("chunk too small".into()));
    }
    let (body, crc_bytes) = chunk.split_at(chunk.len() - 4);
    let want = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(body) != want {
        return Err(GraphError::Corrupt("chunk CRC mismatch".into()));
    }
    let tag = body[0];
    let mut rest = &body[1..];
    let (len, n) =
        varint::decode_u64(rest).ok_or_else(|| GraphError::Corrupt("bad chunk length".into()))?;
    rest = &rest[n..];
    let len = len as usize;
    let mask_len = len.div_ceil(8);
    if rest.len() < mask_len {
        return Err(GraphError::Corrupt("truncated null mask".into()));
    }
    let (mask, mut data) = rest.split_at(mask_len);
    let valid = |i: usize| mask[i / 8] >> (i % 8) & 1 == 1;

    let mut out = Vec::with_capacity(len);
    match tag {
        TAG_INT_DELTA | TAG_DATE_DELTA => {
            let (ints, _) = varint::decode_deltas(data)
                .ok_or_else(|| GraphError::Corrupt("bad delta block".into()))?;
            if ints.len() != len {
                return Err(GraphError::Corrupt("delta block length skew".into()));
            }
            for (i, v) in ints.into_iter().enumerate() {
                out.push(if valid(i) {
                    if tag == TAG_INT_DELTA {
                        Value::Int(v as i64)
                    } else {
                        Value::Date(v as i64)
                    }
                } else {
                    Value::Null
                });
            }
        }
        TAG_FLOAT_RAW => {
            if data.len() < len * 8 {
                return Err(GraphError::Corrupt("truncated float block".into()));
            }
            for i in 0..len {
                let v = (&data[i * 8..]).get_f64_le();
                out.push(if valid(i) {
                    Value::Float(v)
                } else {
                    Value::Null
                });
            }
        }
        TAG_BOOL_BITS => {
            let bits_len = len.div_ceil(8);
            if data.len() < bits_len {
                return Err(GraphError::Corrupt("truncated bool block".into()));
            }
            for i in 0..len {
                let b = data[i / 8] >> (i % 8) & 1 == 1;
                out.push(if valid(i) {
                    Value::Bool(b)
                } else {
                    Value::Null
                });
            }
        }
        TAG_STR_RAW => {
            for i in 0..len {
                let (slen, n) = varint::decode_u64(data)
                    .ok_or_else(|| GraphError::Corrupt("bad str len".into()))?;
                data = &data[n..];
                let slen = slen as usize;
                if data.len() < slen {
                    return Err(GraphError::Corrupt("truncated str".into()));
                }
                let s = std::str::from_utf8(&data[..slen])
                    .map_err(|_| GraphError::Corrupt("invalid utf8".into()))?;
                data = &data[slen..];
                out.push(if valid(i) {
                    Value::Str(s.to_string())
                } else {
                    Value::Null
                });
            }
        }
        TAG_STR_DICT => {
            let (dlen, n) = varint::decode_u64(data)
                .ok_or_else(|| GraphError::Corrupt("bad dict len".into()))?;
            data = &data[n..];
            let mut dict = Vec::with_capacity(dlen as usize);
            for _ in 0..dlen {
                let (slen, n) = varint::decode_u64(data)
                    .ok_or_else(|| GraphError::Corrupt("bad dict entry len".into()))?;
                data = &data[n..];
                let slen = slen as usize;
                if data.len() < slen {
                    return Err(GraphError::Corrupt("truncated dict entry".into()));
                }
                dict.push(
                    std::str::from_utf8(&data[..slen])
                        .map_err(|_| GraphError::Corrupt("invalid utf8".into()))?
                        .to_string(),
                );
                data = &data[slen..];
            }
            for i in 0..len {
                let (idx, n) = varint::decode_u64(data)
                    .ok_or_else(|| GraphError::Corrupt("bad dict code".into()))?;
                data = &data[n..];
                let s = dict
                    .get(idx as usize)
                    .ok_or_else(|| GraphError::Corrupt("dict code out of range".into()))?;
                out.push(if valid(i) {
                    Value::Str(s.clone())
                } else {
                    Value::Null
                });
            }
        }
        t => return Err(GraphError::Corrupt(format!("unknown chunk tag {t}"))),
    }
    Ok(out)
}

/// Encodes a plain u64 sequence (offsets / adjacency targets) as a
/// checksummed delta chunk.
pub fn encode_u64_chunk(values: &[u64]) -> Bytes {
    let mut buf = Vec::new();
    varint::encode_deltas(values, &mut buf);
    let mut out = BytesMut::with_capacity(buf.len() + 4);
    out.put_slice(&buf);
    let chunk = seal(out);
    if gs_telemetry::enabled() {
        gs_telemetry::counter!("graphar.bytes_raw"; values.len() as u64 * 8);
        gs_telemetry::counter!("graphar.bytes_encoded"; chunk.len() as u64);
    }
    chunk
}

/// Decodes a chunk from [`encode_u64_chunk`].
pub fn decode_u64_chunk(chunk: &[u8]) -> Result<Vec<u64>> {
    if chunk.len() < 4 {
        return Err(GraphError::Corrupt("u64 chunk too small".into()));
    }
    let (body, crc_bytes) = chunk.split_at(chunk.len() - 4);
    if crc32(body) != u32::from_le_bytes(crc_bytes.try_into().unwrap()) {
        return Err(GraphError::Corrupt("u64 chunk CRC mismatch".into()));
    }
    varint::decode_deltas(body)
        .map(|(v, _)| v)
        .ok_or_else(|| GraphError::Corrupt("bad u64 chunk".into()))
}

/// Extracts values from a [`PropertyColumn`] row range for encoding.
pub fn column_slice(col: &PropertyColumn, range: std::ops::Range<usize>) -> Vec<Value> {
    range.map(|i| col.get(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(values: Vec<Value>, vt: ValueType) {
        let chunk = encode_column(&values, vt).unwrap();
        let back = decode_column(&chunk).unwrap();
        assert_eq!(back, values);
    }

    #[test]
    fn int_round_trip_with_nulls() {
        round_trip(
            vec![
                Value::Int(5),
                Value::Null,
                Value::Int(-3),
                Value::Int(1_000_000),
            ],
            ValueType::Int,
        );
    }

    #[test]
    fn date_round_trip() {
        round_trip(
            vec![Value::Date(15000), Value::Date(15001)],
            ValueType::Date,
        );
    }

    #[test]
    fn float_round_trip() {
        round_trip(
            vec![
                Value::Float(1.5),
                Value::Null,
                Value::Float(-0.0),
                Value::Float(f64::MAX),
            ],
            ValueType::Float,
        );
    }

    #[test]
    fn bool_round_trip() {
        round_trip(
            vec![Value::Bool(true), Value::Bool(false), Value::Null],
            ValueType::Bool,
        );
    }

    #[test]
    fn str_raw_round_trip() {
        round_trip(
            vec![Value::Str("a".into()), Value::Str("ββ".into()), Value::Null],
            ValueType::Str,
        );
    }

    #[test]
    fn str_dict_kicks_in_and_round_trips() {
        let values: Vec<Value> = (0..100)
            .map(|i| Value::Str(if i % 2 == 0 { "x" } else { "y" }.to_string()))
            .collect();
        let chunk = encode_column(&values, ValueType::Str).unwrap();
        assert_eq!(chunk[0], TAG_STR_DICT);
        assert_eq!(decode_column(&chunk).unwrap(), values);
    }

    #[test]
    fn dict_is_smaller_than_raw_for_repetitive_data() {
        let values: Vec<Value> = (0..1000)
            .map(|i| Value::Str(format!("category-{}", i % 4)))
            .collect();
        let chunk = encode_column(&values, ValueType::Str).unwrap();
        let raw_size: usize = values.iter().map(|v| v.as_str().unwrap().len() + 1).sum();
        assert!(
            chunk.len() < raw_size / 2,
            "{} vs {}",
            chunk.len(),
            raw_size
        );
    }

    #[test]
    fn corruption_is_detected() {
        let chunk = encode_column(&[Value::Int(5)], ValueType::Int).unwrap();
        let mut bad = chunk.to_vec();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xFF;
        assert!(matches!(decode_column(&bad), Err(GraphError::Corrupt(_))));
    }

    #[test]
    fn truncation_is_detected() {
        let chunk = encode_column(&[Value::Int(5), Value::Int(6)], ValueType::Int).unwrap();
        assert!(decode_column(&chunk[..chunk.len() - 6]).is_err());
    }

    #[test]
    fn u64_chunk_round_trip() {
        let vals: Vec<u64> = (0..500).map(|i| i * 3).collect();
        let chunk = encode_u64_chunk(&vals);
        assert_eq!(decode_u64_chunk(&chunk).unwrap(), vals);
        let mut bad = chunk.to_vec();
        bad[2] ^= 1;
        assert!(decode_u64_chunk(&bad).is_err());
    }

    #[test]
    fn crc32_known_value() {
        // CRC32("123456789") = 0xCBF43926 (standard check value)
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
