/root/repo/target/debug/deps/gs_hiactor-ad9d2bfdc1412c71.d: crates/gs-hiactor/src/lib.rs

/root/repo/target/debug/deps/gs_hiactor-ad9d2bfdc1412c71: crates/gs-hiactor/src/lib.rs

crates/gs-hiactor/src/lib.rs:
