//! LDBC SNB workloads (lite): the interactive (Fig. 7f) and BI (Fig. 7g)
//! query sets plus the storage backends they run on.

pub mod backend;
pub mod bi;
pub mod interactive;

pub use backend::{FlexBackend, SnbBackend, TuBackend};
pub use bi::{bi_plan, BiParams, BI_COUNT};
pub use interactive::{Params, Rows, COMPLEX_QUERIES, SHORT_QUERIES};

#[cfg(test)]
mod tests {
    use super::*;
    use gs_datagen::snb::{generate, SnbConfig};
    use gs_gaia::GaiaEngine;
    use gs_ir::exec::execute;
    use gs_ir::physical::lower_naive;
    use gs_optimizer::{GlogueCatalog, Optimizer};
    use gs_vineyard::VineyardGraph;
    use interactive::{canonical, UpdateIds};

    fn small_graph() -> gs_datagen::snb::SnbGraph {
        generate(&SnbConfig::lite(120))
    }

    /// Every complex + short query must return identical results on the
    /// Flex (GART) and TuGraph-like backends.
    #[test]
    fn interactive_queries_agree_across_backends() {
        let g = small_graph();
        let flex = FlexBackend::load(&g).unwrap();
        let tu = TuBackend::load(&g).unwrap();
        backend::validate_backend_pair(&flex, &tu).unwrap();
        let mut params = Params::example();
        params.person = 3;
        params.person2 = 77;
        for (name, q) in COMPLEX_QUERIES.iter().chain(SHORT_QUERIES.iter()) {
            let a = canonical(q(&flex, &params));
            let b = canonical(q(&tu, &params));
            assert_eq!(a, b, "query {name} diverged");
        }
    }

    /// Updates must be visible to subsequent reads on both backends.
    #[test]
    fn updates_apply_on_both_backends() {
        let g = small_graph();
        let flex = FlexBackend::load(&g).unwrap();
        let tu = TuBackend::load(&g).unwrap();
        for b in [&flex as &dyn SnbBackend, &tu as &dyn SnbBackend] {
            let mut ids = UpdateIds {
                next_person: 1_000_000,
                next_post: 1_000_000,
                next_comment: 1_000_000,
                next_forum: 1_000_000,
            };
            let p = interactive::iu1(b, &mut ids, 15400).unwrap();
            interactive::iu8(b, p, 0, 15401).unwrap();
            assert!(b.friends(p).contains(&0), "new friendship visible");
            let f = interactive::iu4(b, &mut ids, 15400).unwrap();
            interactive::iu5(b, f, p, 15402).unwrap();
            let post = interactive::iu6(b, &mut ids, p, f, 15403).unwrap();
            let c = interactive::iu7(b, &mut ids, 0, post, 15404).unwrap();
            interactive::iu2(b, 0, post, 15405).unwrap();
            interactive::iu3(b, p, 2).unwrap();
            assert_eq!(b.post_creator(post), Some(p));
            assert_eq!(b.replies_of_post(post), vec![c]);
            assert_eq!(b.likes_of_post(post), vec![(0, 15405)]);
            assert!(b.interests(p).contains(&2));
        }
    }

    /// All 20 BI plans compile, optimize, and give identical results on the
    /// Gaia engine (optimized, parallel) and the reference executor (naive
    /// plan, single-threaded) — the two sides of Fig. 7(g).
    #[test]
    fn bi_queries_agree_between_gaia_and_reference() {
        let g = small_graph();
        let store = VineyardGraph::build(&g.data).unwrap();
        let schema = g.data.schema.clone();
        let catalog = GlogueCatalog::build(&store, 200);
        let optimizer = Optimizer::new(catalog);
        let gaia = GaiaEngine::new(4);
        let params = BiParams::default();
        for n in 1..=BI_COUNT {
            let plan = bi_plan(n, &schema, &g.labels, &params)
                .unwrap_or_else(|e| panic!("BI{n} build: {e}"));
            let optimized = optimizer
                .optimize(&plan)
                .unwrap_or_else(|e| panic!("BI{n} optimize: {e}"));
            let fast = gaia
                .execute(&optimized, &store)
                .unwrap_or_else(|e| panic!("BI{n} gaia: {e}"));
            let naive = lower_naive(&plan).unwrap();
            let slow = execute(&naive, &store).unwrap_or_else(|e| panic!("BI{n} ref: {e}"));
            assert_eq!(canonical(fast), canonical(slow), "BI{n} results diverged");
        }
    }
}
