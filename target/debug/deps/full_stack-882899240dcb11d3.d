/root/repo/target/debug/deps/full_stack-882899240dcb11d3.d: tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-882899240dcb11d3: tests/full_stack.rs

tests/full_stack.rs:
