//! Capability flags: how a storage backend "clearly communicates its
//! capabilities and limitations" (paper §4.1).
//!
//! Each flag corresponds to one GRIN trait. Engines query
//! [`Capabilities::supports`] before choosing a fast path; the *required*
//! baseline every backend must provide is iterator-based topology access.

use std::fmt;

/// A bit-set of supported GRIN traits.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct Capabilities(u32);

impl Capabilities {
    // -- topology category --
    /// Array-like (slice) vertex list access.
    pub const VERTEX_LIST_ARRAY: Capabilities = Capabilities(1 << 0);
    /// Iterator-based vertex list access (baseline, always set).
    pub const VERTEX_LIST_ITER: Capabilities = Capabilities(1 << 1);
    /// Array-like (slice) adjacent list access.
    pub const ADJ_LIST_ARRAY: Capabilities = Capabilities(1 << 2);
    /// Iterator-based adjacent list access (baseline, always set).
    pub const ADJ_LIST_ITER: Capabilities = Capabilities(1 << 3);
    /// Incoming-adjacency (CSC) is available, not just outgoing.
    pub const IN_ADJACENCY: Capabilities = Capabilities(1 << 4);

    // -- property category --
    /// Vertex/edge property retrieval (LPG model).
    pub const PROPERTY: Capabilities = Capabilities(1 << 5);
    /// Columnar property access (whole-column slices for scans).
    pub const PROPERTY_COLUMN: Capabilities = Capabilities(1 << 6);

    // -- partition category --
    /// The graph is partitioned; partition metadata is available.
    pub const PARTITION: Capabilities = Capabilities(1 << 7);

    // -- index category --
    /// External→internal id index.
    pub const INDEX_EXTERNAL_ID: Capabilities = Capabilities(1 << 8);
    /// Internal id assignment is dense per label (arrays indexable by VId).
    pub const INDEX_INTERNAL_ID: Capabilities = Capabilities(1 << 9);
    /// Property-value → vertex lookup index.
    pub const INDEX_PROPERTY: Capabilities = Capabilities(1 << 10);

    // -- predicate category --
    /// Predicate pushdown on adjacency expansion.
    pub const PREDICATE_PUSHDOWN: Capabilities = Capabilities(1 << 11);

    // -- common category --
    /// Multi-version snapshot reads (GART).
    pub const MVCC: Capabilities = Capabilities(1 << 12);
    /// Mutations are supported on the underlying store.
    pub const MUTABLE: Capabilities = Capabilities(1 << 13);

    // -- layout category --
    /// Adjacency lists are guaranteed sorted by neighbor id: binary-search
    /// membership and galloping intersection are valid.
    pub const SORTED_ADJACENCY: Capabilities = Capabilities(1 << 14);
    /// Topology is stored delta-varint compressed: no slice access, but
    /// the smallest memory footprint (decode-on-scan).
    pub const COMPRESSED_TOPOLOGY: Capabilities = Capabilities(1 << 15);

    // -- transactional category --
    /// Committed writes are logged to durable storage and survive a
    /// process kill (write-ahead log with replay-on-open).
    pub const DURABLE: Capabilities = Capabilities(1 << 16);
    /// Multi-operation transactions with snapshot-isolation semantics:
    /// begin/commit/abort, first-writer-wins conflict detection.
    pub const TRANSACTIONS: Capabilities = Capabilities(1 << 17);

    /// Empty capability set.
    pub const fn empty() -> Self {
        Capabilities(0)
    }

    /// Union of two capability sets.
    #[must_use]
    pub const fn union(self, other: Capabilities) -> Capabilities {
        Capabilities(self.0 | other.0)
    }

    /// Whether all flags in `required` are present.
    #[inline]
    pub const fn supports(self, required: Capabilities) -> bool {
        self.0 & required.0 == required.0
    }

    /// Builds a set from a list of flags.
    pub fn of(flags: &[Capabilities]) -> Capabilities {
        flags
            .iter()
            .fold(Capabilities::empty(), |acc, &f| acc.union(f))
    }

    /// Every flag paired with its name, for diagnostics.
    const NAMES: [(Capabilities, &'static str); 18] = [
        (Capabilities::VERTEX_LIST_ARRAY, "VERTEX_LIST_ARRAY"),
        (Capabilities::VERTEX_LIST_ITER, "VERTEX_LIST_ITER"),
        (Capabilities::ADJ_LIST_ARRAY, "ADJ_LIST_ARRAY"),
        (Capabilities::ADJ_LIST_ITER, "ADJ_LIST_ITER"),
        (Capabilities::IN_ADJACENCY, "IN_ADJACENCY"),
        (Capabilities::PROPERTY, "PROPERTY"),
        (Capabilities::PROPERTY_COLUMN, "PROPERTY_COLUMN"),
        (Capabilities::PARTITION, "PARTITION"),
        (Capabilities::INDEX_EXTERNAL_ID, "INDEX_EXTERNAL_ID"),
        (Capabilities::INDEX_INTERNAL_ID, "INDEX_INTERNAL_ID"),
        (Capabilities::INDEX_PROPERTY, "INDEX_PROPERTY"),
        (Capabilities::PREDICATE_PUSHDOWN, "PREDICATE_PUSHDOWN"),
        (Capabilities::MVCC, "MVCC"),
        (Capabilities::MUTABLE, "MUTABLE"),
        (Capabilities::SORTED_ADJACENCY, "SORTED_ADJACENCY"),
        (Capabilities::COMPRESSED_TOPOLOGY, "COMPRESSED_TOPOLOGY"),
        (Capabilities::DURABLE, "DURABLE"),
        (Capabilities::TRANSACTIONS, "TRANSACTIONS"),
    ];

    /// Capability flags implied by materialising topology in `kind`:
    /// sorted layouts report [`Capabilities::SORTED_ADJACENCY`], compressed
    /// layouts additionally report [`Capabilities::COMPRESSED_TOPOLOGY`]
    /// (and, lacking slices, must NOT report
    /// [`Capabilities::ADJ_LIST_ARRAY`] — see
    /// [`Capabilities::layout_masks`]).
    pub fn of_layout(kind: gs_graph::LayoutKind) -> Capabilities {
        match kind {
            gs_graph::LayoutKind::Csr => Capabilities::empty(),
            gs_graph::LayoutKind::SortedCsr => Capabilities::SORTED_ADJACENCY,
            gs_graph::LayoutKind::CompressedCsr => {
                Capabilities::SORTED_ADJACENCY | Capabilities::COMPRESSED_TOPOLOGY
            }
        }
    }

    /// `(add, remove)` capability adjustment for a backend whose base
    /// capability set assumes plain CSR: layouts without slice access lose
    /// `ADJ_LIST_ARRAY`, sorted layouts gain the layout flags.
    pub fn layout_masks(kind: gs_graph::LayoutKind) -> (Capabilities, Capabilities) {
        let add = Capabilities::of_layout(kind);
        let remove = if kind.has_slices() {
            Capabilities::empty()
        } else {
            Capabilities::ADJ_LIST_ARRAY
        };
        (add, remove)
    }

    /// Removes every flag in `other` from this set.
    #[must_use]
    pub const fn difference(self, other: Capabilities) -> Capabilities {
        Capabilities(self.0 & !other.0)
    }

    /// Names of the flags in `needed` that this set lacks.
    pub fn missing_names(self, needed: Capabilities) -> Vec<String> {
        Self::NAMES
            .iter()
            .filter(|(flag, _)| needed.supports(*flag) && !self.supports(*flag))
            .map(|(_, name)| (*name).to_string())
            .collect()
    }

    /// Checks that every flag in `needed` is present, or returns a
    /// structured [`GraphError::UnsupportedCapability`] naming each
    /// missing flag. This is the contract engines use at their entry
    /// points instead of silently falling back or panicking deep inside a
    /// scan.
    ///
    /// [`GraphError::UnsupportedCapability`]: gs_graph::GraphError::UnsupportedCapability
    pub fn require(self, needed: Capabilities) -> Result<(), gs_graph::GraphError> {
        if self.supports(needed) {
            Ok(())
        } else {
            Err(gs_graph::GraphError::UnsupportedCapability {
                missing: self.missing_names(needed),
            })
        }
    }
}

impl std::ops::BitOr for Capabilities {
    type Output = Capabilities;
    fn bitor(self, rhs: Capabilities) -> Capabilities {
        self.union(rhs)
    }
}

/// Renders the contained flags joined by `|` (empty string when empty).
impl fmt::Display for Capabilities {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (flag, name) in Capabilities::NAMES {
            if self.supports(flag) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Capabilities {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Capabilities({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_supports() {
        let c = Capabilities::ADJ_LIST_ITER | Capabilities::PROPERTY;
        assert!(c.supports(Capabilities::ADJ_LIST_ITER));
        assert!(c.supports(Capabilities::PROPERTY));
        assert!(!c.supports(Capabilities::ADJ_LIST_ARRAY));
        assert!(c.supports(Capabilities::empty()));
    }

    #[test]
    fn supports_requires_all_flags() {
        let c = Capabilities::ADJ_LIST_ITER | Capabilities::PROPERTY;
        assert!(!c.supports(Capabilities::ADJ_LIST_ITER | Capabilities::MVCC));
        assert!(c.supports(Capabilities::ADJ_LIST_ITER | Capabilities::PROPERTY));
    }

    #[test]
    fn of_builds_from_slice() {
        let c = Capabilities::of(&[Capabilities::MVCC, Capabilities::MUTABLE]);
        assert!(c.supports(Capabilities::MVCC | Capabilities::MUTABLE));
    }

    #[test]
    fn debug_lists_flag_names() {
        let c = Capabilities::MVCC | Capabilities::MUTABLE;
        let s = format!("{c:?}");
        assert!(s.contains("MVCC"));
        assert!(s.contains("MUTABLE"));
        assert!(!s.contains("PROPERTY"));
    }

    #[test]
    fn display_joins_with_pipes() {
        let c = Capabilities::MVCC | Capabilities::MUTABLE;
        assert_eq!(c.to_string(), "MVCC|MUTABLE");
        assert_eq!(Capabilities::empty().to_string(), "");
    }

    #[test]
    fn require_passes_when_satisfied() {
        let c = Capabilities::ADJ_LIST_ITER | Capabilities::PROPERTY;
        assert!(c.require(Capabilities::ADJ_LIST_ITER).is_ok());
        assert!(c.require(Capabilities::empty()).is_ok());
    }

    #[test]
    fn layout_capability_mapping() {
        use gs_graph::LayoutKind;
        assert_eq!(
            Capabilities::of_layout(LayoutKind::Csr),
            Capabilities::empty()
        );
        assert!(
            Capabilities::of_layout(LayoutKind::SortedCsr).supports(Capabilities::SORTED_ADJACENCY)
        );
        let comp = Capabilities::of_layout(LayoutKind::CompressedCsr);
        assert!(comp.supports(Capabilities::SORTED_ADJACENCY | Capabilities::COMPRESSED_TOPOLOGY));
        // compressed loses slice access
        let (add, remove) = Capabilities::layout_masks(LayoutKind::CompressedCsr);
        let base = Capabilities::ADJ_LIST_ARRAY | Capabilities::ADJ_LIST_ITER;
        let adjusted = base.difference(remove).union(add);
        assert!(!adjusted.supports(Capabilities::ADJ_LIST_ARRAY));
        assert!(adjusted.supports(Capabilities::ADJ_LIST_ITER));
        // plain/sorted keep slices
        let (_, remove) = Capabilities::layout_masks(LayoutKind::SortedCsr);
        assert_eq!(remove, Capabilities::empty());
    }

    #[test]
    fn require_names_every_missing_flag() {
        let c = Capabilities::ADJ_LIST_ITER;
        let err = c
            .require(Capabilities::ADJ_LIST_ITER | Capabilities::MVCC | Capabilities::MUTABLE)
            .unwrap_err();
        match &err {
            gs_graph::GraphError::UnsupportedCapability { missing } => {
                assert_eq!(missing, &["MVCC".to_string(), "MUTABLE".to_string()]);
            }
            other => panic!("wrong error: {other:?}"),
        }
        assert_eq!(err.to_string(), "missing capabilities: MVCC|MUTABLE");
    }
}
