/root/repo/target/debug/deps/gs_gart-28e47419363f44b6.d: crates/gs-gart/src/lib.rs

/root/repo/target/debug/deps/libgs_gart-28e47419363f44b6.rlib: crates/gs-gart/src/lib.rs

/root/repo/target/debug/deps/libgs_gart-28e47419363f44b6.rmeta: crates/gs-gart/src/lib.rs

crates/gs-gart/src/lib.rs:
