//! Workspace source-invariant lint gate.
//!
//! ```text
//! lint                    report; fail on deny-level findings
//! lint --deny             also fail on warn-level findings (the CI bar)
//! lint --write-registry   regenerate telemetry-registry.txt from DESIGN.md
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let deny = args.iter().any(|a| a == "--deny");
    let write_registry = args.iter().any(|a| a == "--write-registry");
    std::process::exit(gs_bench::lint::run(deny, write_registry));
}
