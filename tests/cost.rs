//! Soundness of the `gs_ir::cost` abstract interpreter: on seeded R-MAT
//! graphs, the *actual* output cardinality of every operator must fall
//! inside the predicted `[lo, hi]` interval — with real catalog
//! statistics and with none at all (conservative bounds).

use gs_datagen::rmat::{generate, RmatConfig};
use gs_grin::graph::mock::MockGraph;
use gs_grin::Direction;
use gs_ir::cost::{cost_physical, CostBudget};
use gs_ir::exec::execute_traced;
use gs_ir::expr::{BinOp, Expr};
use gs_ir::logical::ProjectItem;
use gs_ir::physical::{ExpandOut, PhysicalOp, PhysicalPlan};
use gs_ir::{AggFunc, Layout};
use gs_optimizer::GlogueCatalog;
use proptest::prelude::*;

const V: gs_graph::LabelId = gs_graph::LabelId(0);
const E: gs_graph::LabelId = gs_graph::LabelId(0);

/// A seeded R-MAT graph as a MockGraph, tags set so predicates bite.
fn rmat_mock(scale: u32, edge_factor: u32, seed: u64) -> MockGraph {
    let edges = generate(&RmatConfig {
        scale,
        edge_factor,
        seed,
        ..RmatConfig::graph500(scale)
    });
    let triples: Vec<(u64, u64, f64)> = edges
        .edges()
        .iter()
        .map(|&(s, d)| (s.0, d.0, 1.0))
        .collect();
    let mut g = MockGraph::new(edges.vertex_count(), &triples);
    for v in 0..edges.vertex_count() as u64 {
        g.set_tag(gs_graph::VId(v), (v % 5) as i64);
    }
    g
}

fn scan(predicate: Option<Expr>) -> PhysicalOp {
    PhysicalOp::Scan {
        label: V,
        predicate,
        index_lookup: None,
    }
}

fn expand(src_col: usize, dir: Direction) -> PhysicalOp {
    PhysicalOp::Expand {
        src_col,
        src_label: V,
        elabel: E,
        dir,
        predicate: None,
        out: ExpandOut::VertexFused { label: V },
    }
}

fn tag_pred(col: usize) -> Expr {
    Expr::bin(
        BinOp::Eq,
        Expr::VertexProp {
            col,
            label: V,
            prop: gs_graph::PropId(0),
        },
        Expr::Const(gs_graph::Value::Int(2)),
    )
}

/// The plan zoo the soundness property runs over: scans, 1-hop and 2-hop
/// expansions in all directions, predicates, dedup, aggregation, limit.
fn plans() -> Vec<(&'static str, PhysicalPlan)> {
    let plan = |ops: Vec<PhysicalOp>| PhysicalPlan {
        ops,
        layout: Layout::new(),
    };
    vec![
        ("scan", plan(vec![scan(None)])),
        ("scan-filtered", plan(vec![scan(Some(tag_pred(0)))])),
        ("one-hop", plan(vec![scan(None), expand(0, Direction::Out)])),
        (
            "one-hop-in",
            plan(vec![scan(None), expand(0, Direction::In)]),
        ),
        (
            "two-hop-both",
            plan(vec![
                scan(None),
                expand(0, Direction::Both),
                expand(1, Direction::Both),
            ]),
        ),
        (
            "filter-then-expand",
            plan(vec![
                scan(Some(tag_pred(0))),
                expand(0, Direction::Out),
                PhysicalOp::Select {
                    predicate: tag_pred(1),
                },
            ]),
        ),
        (
            "dedup-limit",
            plan(vec![
                scan(None),
                expand(0, Direction::Out),
                PhysicalOp::Dedup { columns: vec![1] },
                PhysicalOp::Limit { n: 5 },
            ]),
        ),
        (
            "count",
            plan(vec![
                scan(None),
                expand(0, Direction::Out),
                PhysicalOp::Project {
                    items: vec![(
                        ProjectItem::Agg(AggFunc::Count, Expr::Column(1)),
                        "n".into(),
                    )],
                },
            ]),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Actual per-op cardinality ∈ predicted `[lo, hi]`, with statistics.
    #[test]
    fn actuals_fall_within_predicted_intervals(seed in 0u64..1000, scale in 3u32..6) {
        let g = rmat_mock(scale, 4, seed);
        let stats = GlogueCatalog::build(&g, 64).to_cost_stats();
        let budget = CostBudget::default();
        for (name, p) in plans() {
            let cost = cost_physical(&p, Some(&stats), &budget);
            let (_, actuals) = execute_traced(&p, &g).unwrap();
            prop_assert_eq!(cost.per_op.len(), actuals.len());
            for (i, actual) in actuals.iter().enumerate() {
                let iv = cost.per_op[i].interval;
                prop_assert!(
                    iv.contains(*actual as f64),
                    "{}[op {i} {}]: actual {} outside [{}, {}] (seed {seed}, scale {scale})",
                    name, p.ops[i].name(), actual, iv.lo, iv.hi
                );
            }
        }
    }

    /// Without a catalog the bounds are conservative but still sound.
    #[test]
    fn conservative_bounds_are_sound_without_statistics(seed in 0u64..200) {
        let g = rmat_mock(4, 4, seed);
        let budget = CostBudget::default();
        for (name, p) in plans() {
            let cost = cost_physical(&p, None, &budget);
            let (_, actuals) = execute_traced(&p, &g).unwrap();
            for (i, actual) in actuals.iter().enumerate() {
                let iv = cost.per_op[i].interval;
                prop_assert!(
                    iv.contains(*actual as f64),
                    "{}[op {i}]: actual {} outside [{}, {}] with no stats",
                    name, actual, iv.lo, iv.hi
                );
            }
        }
    }
}
