//! Real-world application experiments: Table 2 and Exp-5 … Exp-8.

use crate::util::{fmt_duration, fmt_speedup, time_it, TablePrinter};
use gs_datagen::apps::{cyber_graph, equity_graph, fraud_graph};
use gs_flex::cyber::CyberApp;
use gs_flex::equity::{equity_grape, equity_sql};
use gs_flex::fraud::{FraudApp, FraudConfig};
use gs_flex::social::{train_social, SocialConfig};
use std::sync::Arc;

/// Table 2 / Exp-5: real-time fraud detection throughput vs client threads.
pub fn table2(scale: f64) {
    println!("== Table 2 / Exp-5: fraud detection throughput vs threads ==");
    println!("paper shape: near-linear scaling with thread count\n");
    let accounts = (3000.0 * scale) as usize;
    let w = fraud_graph(
        accounts.max(300),
        accounts.max(300) / 3,
        accounts.max(300) * 5,
        4000,
        5,
    );
    let mut t = TablePrinter::new(&["#threads", "throughput (checks/s)", "scaling vs base"]);
    let mut base: Option<f64> = None;
    // the paper's 10..40 client threads, scaled to 1..8; on hosts with
    // fewer cores than threads the scaling column measures contention only
    for threads in [1usize, 2, 4, 8] {
        let app = Arc::new(FraudApp::new(&w, FraudConfig::default(), threads).unwrap());
        let qps = app.run_throughput(&w.order_stream, threads);
        let b = *base.get_or_insert(qps);
        t.row(vec![
            threads.to_string(),
            format!("{qps:.0}"),
            format!("{:.2}×", qps / b),
        ]);
    }
    t.print();
    // the analytics arm of the same deployment: PageRank risk scores over
    // the ingested store, loaded into GRAPE through GRIN
    let app = FraudApp::new(&w, FraudConfig::default(), 2).unwrap();
    let (tr, scores) = time_it(1, || app.risk_scores(4, 10).unwrap());
    let top = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "offline risk scoring (PageRank over GRIN-loaded KNOWS graph): \
         {} for {} accounts, top score {top:.5}",
        fmt_duration(tr),
        scores.len()
    );
}

/// Exp-6: equity analysis — GRAPE propagation vs the SQL pipeline.
pub fn exp6(scale: f64) {
    println!("== Exp-6: equity analysis — GRAPE vs SQL baseline ==");
    println!("paper shape: graph deployment completes full analysis; SQL struggles\n");
    let companies = (2000.0 * scale) as usize;
    let eq = equity_graph(companies.max(200), companies.max(200) / 2, 7);
    let (tg, controllers) = time_it(3, || equity_grape(&eq, 4, 0.5));
    let (ts, sql_controllers) = time_it(1, || equity_sql(&eq, 64, 0.5));
    assert_eq!(
        controllers.len(),
        sql_controllers.len(),
        "methods must agree"
    );
    let mut t = TablePrinter::new(&["method", "time", "companies with controller"]);
    t.row(vec![
        "GRAPE propagation".into(),
        fmt_duration(tg),
        controllers.len().to_string(),
    ]);
    t.row(vec![
        "SQL self-joins".into(),
        fmt_duration(ts),
        sql_controllers.len().to_string(),
    ]);
    t.print();
    println!("graph-over-SQL speedup: {}", fmt_speedup(ts, tg));
}

/// Exp-7: social relation prediction (NCN) — per-epoch time and quality.
pub fn exp7(scale: f64) {
    println!("== Exp-7: social relation prediction (NCN) ==");
    println!("paper shape: steady per-epoch time; model separates links from non-links\n");
    let cfg = SocialConfig {
        vertices: ((4000.0 * scale) as usize).max(400),
        train_pairs: ((600.0 * scale) as usize).max(150),
        epochs: 4,
        ..Default::default()
    };
    let run = train_social(&cfg).unwrap();
    let mut t = TablePrinter::new(&["epoch", "time", "mean loss"]);
    for (i, e) in run.epochs.iter().enumerate() {
        t.row(vec![
            (i + 1).to_string(),
            fmt_duration(e.duration),
            format!("{:.4}", e.mean_loss),
        ]);
    }
    t.print();
    println!(
        "held-out separation (positives − negatives): {:.3}",
        run.separation
    );
}

/// Exp-8: cybersecurity monitoring — graph traversal vs SQL joins.
pub fn exp8(scale: f64) {
    println!("== Exp-8: cybersecurity monitoring — 2-hop traversal vs SQL joins ==");
    println!("paper shape: orders-of-magnitude advantage for the graph traversal\n");
    let hosts = ((4000.0 * scale) as usize).max(300);
    let g = cyber_graph(hosts, 4, 3);
    let app = CyberApp::new(&g).unwrap();
    // per-check latency: one monitored host each way
    let probe_hosts: Vec<u64> = (0..50u64).collect();
    let (t_graph, _) = time_it(3, || {
        probe_hosts
            .iter()
            .filter(|&&h| app.host_compromised(h))
            .count()
    });
    let (t_sql, _) = time_it(1, || app.sweep_sql(&g));
    // SQL must redo the full join work per monitoring sweep; the graph path
    // answers per-host checks directly.
    let mut t = TablePrinter::new(&["method", "time (50 host checks)", "per-check"]);
    t.row(vec![
        "graph 2-hop traversal".into(),
        fmt_duration(t_graph),
        fmt_duration(t_graph / 50),
    ]);
    t.row(vec![
        "SQL self-joins (full sweep)".into(),
        fmt_duration(t_sql),
        fmt_duration(t_sql / 50),
    ]);
    t.print();
    println!("graph-over-SQL speedup: {}", fmt_speedup(t_sql, t_graph));
    // offline arm: WCC infrastructure mapping over the same store via GRIN
    let (t_wcc, comps) = time_it(1, || app.infrastructure_components(4).unwrap());
    let distinct: std::collections::HashSet<u64> = comps.values().copied().collect();
    println!(
        "infrastructure mapping (WCC over GRIN-loaded store): {} — {} hosts in {} components",
        fmt_duration(t_wcc),
        comps.len(),
        distinct.len()
    );
}
