//! Scoped timing spans.
//!
//! A span is entered with [`crate::span!`] and records its wall time into
//! the registry when the guard drops. Nesting is tracked per thread: each
//! guard appends its name to a thread-local path (`gaia.query/gaia.segment`)
//! so the report can render the span tree without any cross-thread
//! bookkeeping. Guards must therefore drop on the thread that created them
//! (they are `!Send` by construction, holding no `Send` handle is not
//! enough — `PhantomData<*const ()>` enforces it).

use crate::registry::Registry;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::time::Instant;

thread_local! {
    /// Current span path on this thread, segments joined by '/'.
    static PATH: RefCell<String> = const { RefCell::new(String::new()) };
}

/// RAII guard for an active span. Created by [`crate::span!`]; records the
/// elapsed wall time under the full nested path on drop.
pub struct SpanGuard {
    state: Option<(Registry, Instant, usize)>,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    /// Enters a span named `key` (already formatted with fields) against
    /// `registry`, pushing it onto this thread's path.
    pub fn enter(registry: Registry, key: &str) -> Self {
        let prev_len = PATH.with(|p| {
            let mut p = p.borrow_mut();
            let prev = p.len();
            if !p.is_empty() {
                p.push('/');
            }
            p.push_str(key);
            prev
        });
        Self {
            state: Some((registry, Instant::now(), prev_len)),
            _not_send: PhantomData,
        }
    }

    /// A guard that records nothing — returned when telemetry is disabled.
    pub fn noop() -> Self {
        Self {
            state: None,
            _not_send: PhantomData,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((registry, start, prev_len)) = self.state.take() {
            let ns = start.elapsed().as_nanos() as u64;
            PATH.with(|p| {
                let mut p = p.borrow_mut();
                registry.span_stat(&p).record(ns);
                p.truncate(prev_len);
            });
        }
    }
}

/// The current thread's span path (for tests and diagnostics).
pub fn current_path() -> String {
    PATH.with(|p| p.borrow().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_builds_slash_paths() {
        let r = Registry::new();
        {
            let _a = SpanGuard::enter(r.clone(), "outer");
            assert_eq!(current_path(), "outer");
            {
                let _b = SpanGuard::enter(r.clone(), "inner");
                assert_eq!(current_path(), "outer/inner");
            }
            assert_eq!(current_path(), "outer");
        }
        assert_eq!(current_path(), "");
        let names = r.span_names();
        assert!(names.contains(&"outer".to_string()));
        assert!(names.contains(&"outer/inner".to_string()));
    }

    #[test]
    fn noop_guard_records_nothing() {
        let r = Registry::new();
        {
            let _g = SpanGuard::noop();
            assert_eq!(current_path(), "");
        }
        assert!(r.span_names().is_empty());
    }
}
