/root/repo/target/debug/deps/gs_datagen-f73087eae324615b.d: crates/gs-datagen/src/lib.rs crates/gs-datagen/src/apps.rs crates/gs-datagen/src/catalog.rs crates/gs-datagen/src/powerlaw.rs crates/gs-datagen/src/rmat.rs crates/gs-datagen/src/snb.rs

/root/repo/target/debug/deps/libgs_datagen-f73087eae324615b.rlib: crates/gs-datagen/src/lib.rs crates/gs-datagen/src/apps.rs crates/gs-datagen/src/catalog.rs crates/gs-datagen/src/powerlaw.rs crates/gs-datagen/src/rmat.rs crates/gs-datagen/src/snb.rs

/root/repo/target/debug/deps/libgs_datagen-f73087eae324615b.rmeta: crates/gs-datagen/src/lib.rs crates/gs-datagen/src/apps.rs crates/gs-datagen/src/catalog.rs crates/gs-datagen/src/powerlaw.rs crates/gs-datagen/src/rmat.rs crates/gs-datagen/src/snb.rs

crates/gs-datagen/src/lib.rs:
crates/gs-datagen/src/apps.rs:
crates/gs-datagen/src/catalog.rs:
crates/gs-datagen/src/powerlaw.rs:
crates/gs-datagen/src/rmat.rs:
crates/gs-datagen/src/snb.rs:
