//! # gs-vineyard — immutable in-memory property-graph store
//!
//! Vineyard (paper §4.2) is GraphScope Flex's in-memory immutable backend:
//! it "adopts the property graph data model, handles graph partitioning
//! using edge-cut partitioning, and provides built-in indices such as CSR
//! and CSC representations ... and internal ID assignment", which lets it
//! implement *most* GRIN traits — including the array-like fast paths.
//!
//! This crate provides:
//!
//! * [`VineyardGraph`] — the store: per-vertex-label id maps and property
//!   tables, per-edge-label CSR + CSC with dense edge ids, and optional
//!   hash property indexes;
//! * a **native API** (inherent methods like [`VineyardGraph::out_neighbors`])
//!   used by the Fig. 7(b) "tightly-coupled baseline", and
//! * the [`GrinGraph`] implementation used by every engine in the stack.

use gs_graph::csr::Csr;
use gs_graph::data::PropertyGraphData;
use gs_graph::ids::IdMap;
use gs_graph::layout::{LayoutKind, TopologyLayout};
use gs_graph::props::PropertyTable;
use gs_graph::value::GroupKey;
use gs_grin::{
    AdjEntry, Capabilities, Direction, GraphError, GraphSchema, GrinGraph, LabelId, PropId, Result,
    VId, Value,
};
use std::collections::HashMap;

/// The immutable in-memory property graph.
pub struct VineyardGraph {
    schema: GraphSchema,
    /// Per-vertex-label external↔internal id maps.
    id_maps: Vec<IdMap>,
    /// Per-vertex-label property tables (rows indexed by internal VId).
    vprops: Vec<PropertyTable>,
    /// Per-edge-label property tables (rows indexed by EId).
    eprops: Vec<PropertyTable>,
    /// Per-edge-label out-topology over the source label's internal ids,
    /// materialised in the configured [`LayoutKind`].
    out_csr: Vec<TopologyLayout>,
    /// Per-edge-label in-topology (CSC) over the destination label's ids.
    in_csr: Vec<TopologyLayout>,
    /// The topology layout every edge label is stored in.
    layout: LayoutKind,
    /// Hash property indexes: (vertex label, prop) → value → vertices.
    prop_index: HashMap<(LabelId, PropId), HashMap<GroupKey, Vec<VId>>>,
}

impl VineyardGraph {
    /// Builds the store from an interchange payload. The payload is
    /// validated; edges referencing unknown vertices are an error (Vineyard
    /// is immutable, so the full vertex set must be present at build time).
    pub fn build(data: &PropertyGraphData) -> Result<Self> {
        Self::build_with_layout(data, LayoutKind::Csr)
    }

    /// [`VineyardGraph::build`] with an explicit topology layout — the
    /// flexbuild `layout` deployment knob lands here. Adjacency *contents*
    /// are identical across layouts; only representation (and therefore the
    /// advertised [`Capabilities`]) changes.
    pub fn build_with_layout(data: &PropertyGraphData, layout: LayoutKind) -> Result<Self> {
        data.validate()?;
        let schema = data.schema.clone();
        let nvl = schema.vertex_label_count();
        let nel = schema.edge_label_count();

        let mut id_maps: Vec<IdMap> = (0..nvl).map(|_| IdMap::new()).collect();
        let mut vprops: Vec<PropertyTable> = Vec::with_capacity(nvl);
        for ldef in schema.vertex_labels() {
            let defs: Vec<(String, _)> = ldef
                .properties
                .iter()
                .map(|p| (p.name.clone(), p.value_type))
                .collect();
            vprops.push(PropertyTable::new(&defs)?);
        }
        for batch in &data.vertices {
            let lid = batch.label.index();
            for (ext, props) in batch.external_ids.iter().zip(&batch.properties) {
                let v = id_maps[lid].get_or_insert(*ext);
                debug_assert_eq!(v.index(), vprops[lid].row_count());
                vprops[lid].push_row(props)?;
            }
        }

        let mut eprops: Vec<PropertyTable> = Vec::with_capacity(nel);
        let mut out_csr: Vec<TopologyLayout> = Vec::with_capacity(nel);
        let mut in_csr: Vec<TopologyLayout> = Vec::with_capacity(nel);
        for (ldef, batch) in schema.edge_labels().iter().zip(&data.edges) {
            let defs: Vec<(String, _)> = ldef
                .properties
                .iter()
                .map(|p| (p.name.clone(), p.value_type))
                .collect();
            let mut table = PropertyTable::new(&defs)?;
            let src_map = &id_maps[ldef.src.index()];
            let dst_map = &id_maps[ldef.dst.index()];
            let mut pairs = Vec::with_capacity(batch.endpoints.len());
            for (&(s, d), props) in batch.endpoints.iter().zip(&batch.properties) {
                let si = src_map.internal(s).ok_or_else(|| {
                    GraphError::NotFound(format!("edge src {s} for label {}", ldef.name))
                })?;
                let di = dst_map.internal(d).ok_or_else(|| {
                    GraphError::NotFound(format!("edge dst {d} for label {}", ldef.name))
                })?;
                pairs.push((si, di));
                table.push_row(props)?;
            }
            // Csr::from_edges assigns EId i to the i-th pushed pair, so the
            // property table rows (in batch order) align with edge ids.
            let csr = Csr::from_edges(id_maps[ldef.src.index()].len(), &pairs);
            // CSC needs dst-label sizing; transpose() keeps edge ids but its
            // vertex domain is the same as csr's. Build explicitly instead.
            let csc = transpose_sized(&csr, id_maps[ldef.dst.index()].len());
            out_csr.push(TopologyLayout::build(layout, csr));
            in_csr.push(TopologyLayout::build(layout, csc));
            eprops.push(table);
        }

        Ok(Self {
            schema,
            id_maps,
            vprops,
            eprops,
            out_csr,
            in_csr,
            layout,
            prop_index: HashMap::new(),
        })
    }

    /// The topology layout this store was built with.
    #[inline]
    pub fn layout(&self) -> LayoutKind {
        self.layout
    }

    /// Builds a hash index on `(label, prop)` enabling O(1)
    /// [`GrinGraph::vertices_by_property`] lookups (GRIN index category).
    pub fn build_property_index(&mut self, label: LabelId, prop: PropId) {
        let table = &self.vprops[label.index()];
        let mut idx: HashMap<GroupKey, Vec<VId>> = HashMap::new();
        for row in 0..table.row_count() {
            let v = table.get(row, prop);
            if !v.is_null() {
                idx.entry(GroupKey(v)).or_default().push(VId(row as u64));
            }
        }
        self.prop_index.insert((label, prop), idx);
    }

    // ---------------- native (non-GRIN) API: Fig 7(b) baseline ----------------

    /// Out-neighbors of `v` under `elabel` — direct slice access, static
    /// dispatch. The "tightly coupled" path original GraphScope used.
    /// Panics for compressed layouts, which have no borrowable slices; the
    /// GRIN iterator/visitor paths work for every layout.
    #[inline]
    pub fn out_neighbors(&self, elabel: LabelId, v: VId) -> &[VId] {
        self.out_csr[elabel.index()]
            .adj_slices(v)
            .expect("native slice API requires an uncompressed layout")
            .0
    }

    /// In-neighbors of `v` under `elabel`.
    #[inline]
    pub fn in_neighbors(&self, elabel: LabelId, v: VId) -> &[VId] {
        self.in_csr[elabel.index()]
            .adj_slices(v)
            .expect("native slice API requires an uncompressed layout")
            .0
    }

    /// Out edge ids parallel to [`VineyardGraph::out_neighbors`].
    #[inline]
    pub fn out_edge_ids(&self, elabel: LabelId, v: VId) -> &[gs_grin::EId] {
        self.out_csr[elabel.index()]
            .adj_slices(v)
            .expect("native slice API requires an uncompressed layout")
            .1
    }

    /// O(1) out-degree.
    #[inline]
    pub fn out_degree(&self, elabel: LabelId, v: VId) -> usize {
        self.out_csr[elabel.index()].degree(v)
    }

    /// Direct property-table access for a vertex label.
    #[inline]
    pub fn vertex_table(&self, label: LabelId) -> &PropertyTable {
        &self.vprops[label.index()]
    }

    /// Direct property-table access for an edge label.
    #[inline]
    pub fn edge_table(&self, label: LabelId) -> &PropertyTable {
        &self.eprops[label.index()]
    }

    /// The id map of a vertex label.
    #[inline]
    pub fn id_map(&self, label: LabelId) -> &IdMap {
        &self.id_maps[label.index()]
    }
}

/// Transposes `csr` into a structure indexed by destination vertices of a
/// (possibly different-sized) destination domain.
fn transpose_sized(csr: &Csr, dst_n: usize) -> Csr {
    let mut entries: Vec<(VId, VId, gs_grin::EId)> = Vec::with_capacity(csr.edge_count());
    for v in 0..csr.vertex_count() {
        let vid = VId(v as u64);
        for (d, e) in csr.adj(vid) {
            entries.push((d, vid, e));
        }
    }
    entries.sort_unstable_by_key(|&(d, s, _)| (d, s));
    let mut offsets = vec![0u64; dst_n + 1];
    for &(d, _, _) in &entries {
        offsets[d.index() + 1] += 1;
    }
    for i in 1..offsets.len() {
        offsets[i] += offsets[i - 1];
    }
    let targets: Vec<VId> = entries.iter().map(|&(_, s, _)| s).collect();
    let edge_ids: Vec<gs_grin::EId> = entries.iter().map(|&(_, _, e)| e).collect();
    Csr::from_parts(offsets, targets, edge_ids)
}

impl GrinGraph for VineyardGraph {
    fn capabilities(&self) -> Capabilities {
        let base = Capabilities::of(&[
            Capabilities::VERTEX_LIST_ARRAY,
            Capabilities::VERTEX_LIST_ITER,
            Capabilities::ADJ_LIST_ARRAY,
            Capabilities::ADJ_LIST_ITER,
            Capabilities::IN_ADJACENCY,
            Capabilities::PROPERTY,
            Capabilities::PROPERTY_COLUMN,
            Capabilities::INDEX_EXTERNAL_ID,
            Capabilities::INDEX_INTERNAL_ID,
            Capabilities::INDEX_PROPERTY,
            Capabilities::PREDICATE_PUSHDOWN,
        ]);
        // The layout decides what the adjacency arrays can advertise: a
        // compressed topology has no borrowable slices, so ADJ_LIST_ARRAY
        // is withdrawn and consumers fall back to iterators/visitors.
        let (add, remove) = Capabilities::layout_masks(self.layout);
        base.union(add).difference(remove)
    }

    fn topology_layout(&self) -> LayoutKind {
        self.layout
    }

    fn schema(&self) -> &GraphSchema {
        &self.schema
    }

    fn vertex_count(&self, label: LabelId) -> usize {
        self.id_maps.get(label.index()).map_or(0, |m| m.len())
    }

    fn edge_count(&self, label: LabelId) -> usize {
        self.out_csr
            .get(label.index())
            .map_or(0, |c| c.edge_count())
    }

    fn adjacent(
        &self,
        v: VId,
        _vlabel: LabelId,
        elabel: LabelId,
        dir: Direction,
    ) -> Box<dyn Iterator<Item = AdjEntry> + '_> {
        let out = &self.out_csr[elabel.index()];
        let inn = &self.in_csr[elabel.index()];
        match dir {
            Direction::Out => Box::new(safe_adj(out, v).map(|(nbr, edge)| AdjEntry { nbr, edge })),
            Direction::In => Box::new(safe_adj(inn, v).map(|(nbr, edge)| AdjEntry { nbr, edge })),
            Direction::Both => Box::new(
                safe_adj(out, v)
                    .chain(safe_adj(inn, v))
                    .map(|(nbr, edge)| AdjEntry { nbr, edge }),
            ),
        }
    }

    fn for_each_adjacent(
        &self,
        v: VId,
        _vlabel: LabelId,
        elabel: LabelId,
        dir: Direction,
        f: &mut dyn FnMut(AdjEntry),
    ) {
        // Array-like fast path: no iterator boxing, one virtual call per
        // scan — this is what keeps GRIN's overhead within the paper's 8%.
        // Compressed layouts decode inline instead of borrowing slices.
        let mut visit = |topo: &TopologyLayout| {
            if v.index() >= topo.vertex_count() {
                return;
            }
            topo.for_each_adj(v, |nbr, edge| f(AdjEntry { nbr, edge }));
        };
        match dir {
            Direction::Out => visit(&self.out_csr[elabel.index()]),
            Direction::In => visit(&self.in_csr[elabel.index()]),
            Direction::Both => {
                visit(&self.out_csr[elabel.index()]);
                visit(&self.in_csr[elabel.index()]);
            }
        }
    }

    fn adjacent_slice(
        &self,
        v: VId,
        _vlabel: LabelId,
        elabel: LabelId,
        dir: Direction,
    ) -> Option<(&[VId], &[gs_grin::EId])> {
        let topo = match dir {
            Direction::Out => &self.out_csr[elabel.index()],
            Direction::In => &self.in_csr[elabel.index()],
            Direction::Both => return None,
        };
        if v.index() >= topo.vertex_count() {
            return Some((&[], &[]));
        }
        // None for compressed layouts — callers take the iterator path.
        topo.adj_slices(v)
    }

    fn vertex_range(&self, label: LabelId) -> Option<std::ops::Range<u64>> {
        Some(0..self.vertex_count(label) as u64)
    }

    fn scan_adjacency(
        &self,
        vlabel: LabelId,
        elabel: LabelId,
        dir: Direction,
        f: &mut gs_grin::AdjScanFn<'_>,
    ) -> bool {
        let topo = match dir {
            Direction::Out => &self.out_csr[elabel.index()],
            Direction::In => &self.in_csr[elabel.index()],
            Direction::Both => return gs_grin::scan_via_iterators(self, vlabel, elabel, dir, f),
        };
        // Reused decode buffers keep the compressed path allocation-free
        // past the first hub vertex.
        let mut nbrs = Vec::new();
        let mut eids = Vec::new();
        for v in 0..self.vertex_count(vlabel) as u64 {
            let v = VId(v);
            if v.index() >= topo.vertex_count() {
                f(v, &[], &[]);
            } else if let Some((ns, es)) = topo.adj_slices(v) {
                f(v, ns, es);
            } else {
                topo.as_layout().copy_adj(v, &mut nbrs, &mut eids);
                f(v, &nbrs, &eids);
            }
        }
        true
    }

    fn degree(&self, v: VId, _vl: LabelId, elabel: LabelId, dir: Direction) -> usize {
        let out = &self.out_csr[elabel.index()];
        let inn = &self.in_csr[elabel.index()];
        let deg = |c: &TopologyLayout| {
            if v.index() < c.vertex_count() {
                c.degree(v)
            } else {
                0
            }
        };
        match dir {
            Direction::Out => deg(out),
            Direction::In => deg(inn),
            Direction::Both => deg(out) + deg(inn),
        }
    }

    fn vertex_property(&self, label: LabelId, v: VId, prop: PropId) -> Value {
        let t = &self.vprops[label.index()];
        if v.index() < t.row_count() {
            t.get(v.index(), prop)
        } else {
            Value::Null
        }
    }

    fn edge_property(&self, label: LabelId, e: gs_grin::EId, prop: PropId) -> Value {
        let t = &self.eprops[label.index()];
        if e.index() < t.row_count() {
            t.get(e.index(), prop)
        } else {
            Value::Null
        }
    }

    fn internal_id(&self, label: LabelId, external: u64) -> Option<VId> {
        self.id_maps.get(label.index())?.internal(external)
    }

    fn external_id(&self, label: LabelId, v: VId) -> Option<u64> {
        self.id_maps.get(label.index())?.external(v)
    }

    fn vertices_by_property(&self, label: LabelId, prop: PropId, value: &Value) -> Vec<VId> {
        if let Some(idx) = self.prop_index.get(&(label, prop)) {
            return idx
                .get(&GroupKey(value.clone()))
                .cloned()
                .unwrap_or_default();
        }
        // fall back to the default full scan
        let t = &self.vprops[label.index()];
        (0..t.row_count())
            .filter(|&row| {
                let v = t.get(row, prop);
                !v.is_null() && v.total_cmp(value).is_eq()
            })
            .map(|row| VId(row as u64))
            .collect()
    }
}

/// Adjacency iteration that treats out-of-domain vertices as isolated
/// (multi-label graphs may probe a vertex id past this label's CSR).
/// Slice-backed layouts iterate zero-copy; compressed ones decode into a
/// temporary buffer.
fn safe_adj(topo: &TopologyLayout, v: VId) -> Box<dyn Iterator<Item = (VId, gs_grin::EId)> + '_> {
    if v.index() >= topo.vertex_count() {
        return Box::new(std::iter::empty());
    }
    if let Some((nbrs, eids)) = topo.adj_slices(v) {
        Box::new(nbrs.iter().copied().zip(eids.iter().copied()))
    } else {
        let mut pairs = Vec::with_capacity(topo.degree(v));
        topo.for_each_adj(v, |w, e| pairs.push((w, e)));
        Box::new(pairs.into_iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_graph::schema::GraphSchema as Schema;
    use gs_graph::ValueType;

    fn buyers_graph() -> (PropertyGraphData, LabelId, LabelId, LabelId, LabelId) {
        let mut schema = Schema::new();
        let buyer = schema.add_vertex_label(
            "Buyer",
            &[("username", ValueType::Str), ("credits", ValueType::Int)],
        );
        let item = schema.add_vertex_label("Item", &[("price", ValueType::Float)]);
        let buy = schema.add_edge_label("BUY", buyer, item, &[("date", ValueType::Date)]);
        let knows = schema.add_edge_label("KNOWS", buyer, buyer, &[]);
        let mut g = PropertyGraphData::new(schema);
        // buyers: ext ids 100, 200; items: ext ids 7, 8, 9
        g.add_vertex(buyer, 100, vec![Value::Str("A1".into()), Value::Int(10)]);
        g.add_vertex(buyer, 200, vec![Value::Str("B2".into()), Value::Int(20)]);
        g.add_vertex(item, 7, vec![Value::Float(9.99)]);
        g.add_vertex(item, 8, vec![Value::Float(19.99)]);
        g.add_vertex(item, 9, vec![Value::Float(5.0)]);
        g.add_edge(buy, 100, 7, vec![Value::Date(15001)]);
        g.add_edge(buy, 100, 8, vec![Value::Date(15002)]);
        g.add_edge(buy, 200, 8, vec![Value::Date(15003)]);
        g.add_edge(knows, 100, 200, vec![]);
        g.add_edge(knows, 200, 100, vec![]);
        (g, buyer, item, buy, knows)
    }

    #[test]
    fn build_and_counts() {
        let (data, buyer, item, buy, knows) = buyers_graph();
        let g = VineyardGraph::build(&data).unwrap();
        assert_eq!(g.vertex_count(buyer), 2);
        assert_eq!(g.vertex_count(item), 3);
        assert_eq!(g.edge_count(buy), 3);
        assert_eq!(g.edge_count(knows), 2);
    }

    #[test]
    fn external_internal_round_trip() {
        let (data, buyer, ..) = buyers_graph();
        let g = VineyardGraph::build(&data).unwrap();
        let v = g.internal_id(buyer, 200).unwrap();
        assert_eq!(g.external_id(buyer, v), Some(200));
        assert_eq!(g.internal_id(buyer, 999), None);
    }

    #[test]
    fn adjacency_and_properties() {
        let (data, buyer, item, buy, _) = buyers_graph();
        let g = VineyardGraph::build(&data).unwrap();
        let a1 = g.internal_id(buyer, 100).unwrap();
        let bought: Vec<Value> = g
            .adjacent(a1, buyer, buy, Direction::Out)
            .map(|e| g.vertex_property(item, e.nbr, PropId(0)))
            .collect();
        assert_eq!(bought, vec![Value::Float(9.99), Value::Float(19.99)]);
        // edge property follows the edge id
        let first = g.adjacent(a1, buyer, buy, Direction::Out).next().unwrap();
        assert_eq!(
            g.edge_property(buy, first.edge, PropId(0)),
            Value::Date(15001)
        );
    }

    #[test]
    fn csc_in_adjacency_across_labels() {
        let (data, buyer, item, buy, _) = buyers_graph();
        let g = VineyardGraph::build(&data).unwrap();
        let item8 = g.internal_id(item, 8).unwrap();
        let buyers: Vec<u64> = g
            .adjacent(item8, item, buy, Direction::In)
            .map(|e| g.external_id(buyer, e.nbr).unwrap())
            .collect();
        assert_eq!(buyers, vec![100, 200]);
        // edge properties consistent through CSC
        for e in g.adjacent(item8, item, buy, Direction::In) {
            let d = g.edge_property(buy, e.edge, PropId(0));
            assert!(matches!(d, Value::Date(15002) | Value::Date(15003)));
        }
    }

    #[test]
    fn property_index_matches_scan() {
        let (data, buyer, ..) = buyers_graph();
        let mut g = VineyardGraph::build(&data).unwrap();
        let scan = g.vertices_by_property(buyer, PropId(0), &Value::Str("A1".into()));
        g.build_property_index(buyer, PropId(0));
        let indexed = g.vertices_by_property(buyer, PropId(0), &Value::Str("A1".into()));
        assert_eq!(scan, indexed);
        assert_eq!(indexed.len(), 1);
        assert!(g
            .vertices_by_property(buyer, PropId(0), &Value::Str("ZZ".into()))
            .is_empty());
    }

    #[test]
    fn dangling_edge_is_error() {
        let (mut data, _, _, buy, _) = buyers_graph();
        data.add_edge(buy, 100, 999, vec![Value::Date(1)]);
        assert!(VineyardGraph::build(&data).is_err());
    }

    #[test]
    fn native_api_equals_grin_api() {
        let (data, buyer, _, buy, _) = buyers_graph();
        let g = VineyardGraph::build(&data).unwrap();
        let a1 = g.internal_id(buyer, 100).unwrap();
        let native: Vec<VId> = g.out_neighbors(buy, a1).to_vec();
        let grin: Vec<VId> = g
            .adjacent(a1, buyer, buy, Direction::Out)
            .map(|e| e.nbr)
            .collect();
        assert_eq!(native, grin);
        assert_eq!(g.out_degree(buy, a1), 2);
    }

    #[test]
    fn bulk_scan_matches_per_vertex_adjacency() {
        let (data, buyer, _, buy, _) = buyers_graph();
        let g = VineyardGraph::build(&data).unwrap();
        let mut rows = Vec::new();
        let bulk = g.scan_adjacency(buyer, buy, Direction::Out, &mut |v, nbrs, eids| {
            rows.push((v, nbrs.to_vec(), eids.to_vec()));
        });
        assert!(bulk, "Vineyard must serve the array fast path");
        assert_eq!(rows.len(), g.vertex_count(buyer));
        for (v, nbrs, eids) in rows {
            let expect: Vec<AdjEntry> = g.adjacent(v, buyer, buy, Direction::Out).collect();
            assert_eq!(nbrs, expect.iter().map(|a| a.nbr).collect::<Vec<_>>());
            assert_eq!(eids, expect.iter().map(|a| a.edge).collect::<Vec<_>>());
        }
        assert_eq!(g.vertex_range(buyer), Some(0..2));
    }

    #[test]
    fn layouts_serve_identical_adjacency() {
        let (data, buyer, _, buy, knows) = buyers_graph();
        let base = VineyardGraph::build(&data).unwrap();
        assert_eq!(base.layout(), LayoutKind::Csr);
        for layout in LayoutKind::ALL {
            let g = VineyardGraph::build_with_layout(&data, layout).unwrap();
            assert_eq!(g.topology_layout(), layout);
            for elabel in [buy, knows] {
                for dir in [Direction::Out, Direction::In, Direction::Both] {
                    for v in 0..base.vertex_count(buyer) as u64 {
                        let v = VId(v);
                        let mut want: Vec<AdjEntry> =
                            base.adjacent(v, buyer, elabel, dir).collect();
                        let mut got: Vec<AdjEntry> = g.adjacent(v, buyer, elabel, dir).collect();
                        want.sort_by_key(|a| (a.nbr, a.edge));
                        got.sort_by_key(|a| (a.nbr, a.edge));
                        assert_eq!(got, want, "{layout} {dir:?} v{v:?}");
                        assert_eq!(
                            g.degree(v, buyer, elabel, dir),
                            base.degree(v, buyer, elabel, dir)
                        );
                        let mut visited = Vec::new();
                        g.for_each_adjacent(v, buyer, elabel, dir, &mut |e| visited.push(e));
                        visited.sort_by_key(|a| (a.nbr, a.edge));
                        assert_eq!(visited, want, "{layout} visitor {dir:?}");
                    }
                }
                // bulk scan stays available (decoding inline when compressed)
                let mut rows = 0;
                assert!(g.scan_adjacency(buyer, elabel, Direction::Out, &mut |_, _, _| rows += 1));
                assert_eq!(rows, g.vertex_count(buyer));
            }
        }
    }

    #[test]
    fn compressed_layout_withdraws_array_capability() {
        let (data, buyer, _, buy, _) = buyers_graph();
        let g = VineyardGraph::build_with_layout(&data, LayoutKind::CompressedCsr).unwrap();
        let caps = g.capabilities();
        assert!(!caps.supports(Capabilities::ADJ_LIST_ARRAY));
        assert!(caps.supports(Capabilities::COMPRESSED_TOPOLOGY | Capabilities::SORTED_ADJACENCY));
        assert!(caps.supports(Capabilities::ADJ_LIST_ITER));
        let a1 = g.internal_id(buyer, 100).unwrap();
        assert_eq!(g.adjacent_slice(a1, buyer, buy, Direction::Out), None);

        let sorted = VineyardGraph::build_with_layout(&data, LayoutKind::SortedCsr).unwrap();
        let caps = sorted.capabilities();
        assert!(caps.supports(Capabilities::ADJ_LIST_ARRAY | Capabilities::SORTED_ADJACENCY));
        assert!(sorted
            .adjacent_slice(a1, buyer, buy, Direction::Out)
            .is_some());
    }

    #[test]
    fn capabilities_include_array_and_index() {
        let (data, ..) = buyers_graph();
        let g = VineyardGraph::build(&data).unwrap();
        assert!(g.capabilities().supports(
            Capabilities::ADJ_LIST_ARRAY
                | Capabilities::INDEX_EXTERNAL_ID
                | Capabilities::PREDICATE_PUSHDOWN
        ));
        assert!(!g.capabilities().supports(Capabilities::MUTABLE));
    }
}
