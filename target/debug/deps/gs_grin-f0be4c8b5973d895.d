/root/repo/target/debug/deps/gs_grin-f0be4c8b5973d895.d: crates/gs-grin/src/lib.rs crates/gs-grin/src/capability.rs crates/gs-grin/src/graph.rs crates/gs-grin/src/predicate.rs

/root/repo/target/debug/deps/gs_grin-f0be4c8b5973d895: crates/gs-grin/src/lib.rs crates/gs-grin/src/capability.rs crates/gs-grin/src/graph.rs crates/gs-grin/src/predicate.rs

crates/gs-grin/src/lib.rs:
crates/gs-grin/src/capability.rs:
crates/gs-grin/src/graph.rs:
crates/gs-grin/src/predicate.rs:
