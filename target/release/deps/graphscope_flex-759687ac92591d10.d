/root/repo/target/release/deps/graphscope_flex-759687ac92591d10.d: src/lib.rs

/root/repo/target/release/deps/libgraphscope_flex-759687ac92591d10.rlib: src/lib.rs

/root/repo/target/release/deps/libgraphscope_flex-759687ac92591d10.rmeta: src/lib.rs

src/lib.rs:
