//! Crash recovery: checkpoint image codec and WAL replay.
//!
//! Replay re-executes every logged transaction through the *same*
//! op-application functions the live write path uses — including
//! transactions that later abort, whose edge-id and property-row
//! allocations are redone and then undone exactly as they were live. That
//! full re-execution is what makes recovered state bit-identical to the
//! pre-crash committed state (id holes included), which in turn lets the
//! durability corpus compare scans byte for byte.
//!
//! A checkpoint is a serialised image of the committed store taken at a
//! transaction-quiescent point. The log is rotated immediately after the
//! image is renamed into place; if the process dies between those two
//! steps, recovery sees the new image plus the *old* log and relies on
//! the skip rule — every record whose xid predates the image's
//! `next_xid` is already folded into the image and is ignored.

use crate::txn::{self, Tst, TxnCore};
use crate::wal::{self, Cursor, Frame, Rec};
use crate::{Inner, Version};
use gs_graph::ids::IdMap;
use gs_grin::{EId, GraphError, GraphSchema, LabelId, Result, VId};
use std::collections::HashMap;

const CKPT_MAGIC: &[u8; 8] = b"GSGARTCP";
const CKPT_FORMAT: u32 = 1;

// ---------------------------------------------------------------------
// Checkpoint image codec
// ---------------------------------------------------------------------

/// Serialises the committed state of `g`. Tagged marks are resolved
/// through the status table (committed tags become their commit version),
/// so the image is valid even when hint stamping is lazy. Must be called
/// at a quiescent point (no transaction in flight).
pub(crate) fn encode_inner(
    g: &Inner,
    schema: &GraphSchema,
    committed: Version,
    next_xid: u64,
) -> Result<Vec<u8>> {
    let mut b = Vec::with_capacity(4096);
    b.extend_from_slice(CKPT_MAGIC);
    b.extend_from_slice(&CKPT_FORMAT.to_le_bytes());
    b.extend_from_slice(&wal::schema_fingerprint(schema).to_le_bytes());
    b.extend_from_slice(&committed.to_le_bytes());
    b.extend_from_slice(&next_xid.to_le_bytes());
    let resolve = |m: Version| g.tst.resolve(m);
    for li in 0..schema.vertex_label_count() {
        let map = &g.id_maps[li];
        let n = map.len();
        b.extend_from_slice(&(n as u64).to_le_bytes());
        for i in 0..n {
            b.extend_from_slice(&map.external(VId(i as u64)).unwrap_or(0).to_le_bytes());
        }
        let fwd: Vec<(u64, VId)> = map.forward_iter().collect();
        b.extend_from_slice(&(fwd.len() as u64).to_le_bytes());
        for (ext, v) in fwd {
            b.extend_from_slice(&ext.to_le_bytes());
            b.extend_from_slice(&v.0.to_le_bytes());
        }
        for &c in &g.vertex_created[li] {
            b.extend_from_slice(&resolve(c).to_le_bytes());
        }
        for &d in &g.vertex_deleted[li] {
            b.extend_from_slice(&resolve(d).to_le_bytes());
        }
        b.extend_from_slice(&(g.shadow[li].len() as u64).to_le_bytes());
        for (ext, chain) in &g.shadow[li] {
            b.extend_from_slice(&ext.to_le_bytes());
            b.extend_from_slice(&(chain.len() as u64).to_le_bytes());
            for v in chain {
                b.extend_from_slice(&v.0.to_le_bytes());
            }
        }
        encode_table(&mut b, &g.vprops[li])?;
    }
    for li in 0..schema.edge_label_count() {
        b.extend_from_slice(&g.edge_counts[li].to_le_bytes());
        encode_table(&mut b, &g.eprops[li])?;
        encode_pool(&mut b, &g.adj_out[li], &resolve);
        encode_pool(&mut b, &g.adj_in[li], &resolve);
    }
    Ok(b)
}

fn encode_table(b: &mut Vec<u8>, t: &gs_graph::props::PropertyTable) -> Result<()> {
    b.extend_from_slice(&(t.row_count() as u64).to_le_bytes());
    for row in 0..t.row_count() {
        for col in 0..t.column_count() {
            wal::encode_value(b, &t.get(row, gs_grin::PropId(col as u16)))?;
        }
    }
    Ok(())
}

fn encode_pool(b: &mut Vec<u8>, pool: &crate::AdjPool, resolve: &dyn Fn(Version) -> Version) {
    let n = pool.vertex_count();
    b.extend_from_slice(&(n as u64).to_le_bytes());
    for v in 0..n {
        let (entries, tombs) = pool.raw_region(v);
        b.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for e in entries {
            b.extend_from_slice(&e.nbr.0.to_le_bytes());
            b.extend_from_slice(&e.eid.0.to_le_bytes());
            b.extend_from_slice(&resolve(e.created).to_le_bytes());
        }
        b.extend_from_slice(&(tombs.len() as u32).to_le_bytes());
        for &(eid, tv) in tombs {
            b.extend_from_slice(&eid.0.to_le_bytes());
            b.extend_from_slice(&resolve(tv).to_le_bytes());
        }
    }
}

/// Decodes a checkpoint image into a fresh `Inner`; returns the image's
/// committed version and next xid. The status table starts compacted at
/// `next_xid`.
pub(crate) fn decode_inner(bytes: &[u8], schema: &GraphSchema) -> Result<(Inner, Version, u64)> {
    let mut c = Cursor { buf: bytes, pos: 0 };
    if c.take(8)? != CKPT_MAGIC {
        return Err(GraphError::Corrupt("bad checkpoint magic".into()));
    }
    if c.u32()? != CKPT_FORMAT {
        return Err(GraphError::Corrupt("unknown checkpoint format".into()));
    }
    if c.u64()? != wal::schema_fingerprint(schema) {
        return Err(GraphError::Corrupt(
            "checkpoint was written under a different schema".into(),
        ));
    }
    let committed = c.u64()?;
    let next_xid = c.u64()?;
    let mut g = crate::fresh_inner(schema);
    g.tst = Tst::with_base(next_xid);
    for li in 0..schema.vertex_label_count() {
        let n = c.u64()? as usize;
        let mut reverse = Vec::with_capacity(n);
        for _ in 0..n {
            reverse.push(c.u64()?);
        }
        let nf = c.u64()? as usize;
        let mut fwd = Vec::with_capacity(nf);
        for _ in 0..nf {
            let ext = c.u64()?;
            let v = VId(c.u64()?);
            if v.index() >= n {
                return Err(GraphError::Corrupt("forward slot out of range".into()));
            }
            fwd.push((ext, v));
        }
        g.id_maps[li] = IdMap::from_parts(reverse, fwd);
        g.vertex_created[li] = (0..n).map(|_| c.u64()).collect::<Result<_>>()?;
        g.vertex_deleted[li] = (0..n).map(|_| c.u64()).collect::<Result<_>>()?;
        g.deleted_any[li] = g.vertex_deleted[li].iter().any(|&d| d != txn::NEVER);
        let ns = c.u64()? as usize;
        for _ in 0..ns {
            let ext = c.u64()?;
            let len = c.u64()? as usize;
            let mut chain = Vec::with_capacity(len);
            for _ in 0..len {
                chain.push(VId(c.u64()?));
            }
            g.shadow[li].insert(ext, chain);
        }
        decode_table(&mut c, &mut g.vprops[li])?;
    }
    for li in 0..schema.edge_label_count() {
        g.edge_counts[li] = c.u64()?;
        decode_table(&mut c, &mut g.eprops[li])?;
        g.adj_out[li] = decode_pool(&mut c)?;
        g.adj_in[li] = decode_pool(&mut c)?;
    }
    if c.pos != bytes.len() {
        return Err(GraphError::Corrupt("trailing bytes in checkpoint".into()));
    }
    Ok((g, committed, next_xid))
}

fn decode_table(c: &mut Cursor<'_>, t: &mut gs_graph::props::PropertyTable) -> Result<()> {
    let rows = c.u64()? as usize;
    let cols = t.column_count();
    let mut row = Vec::with_capacity(cols);
    for _ in 0..rows {
        row.clear();
        for _ in 0..cols {
            row.push(wal::decode_value(c)?);
        }
        t.push_row(&row)?;
    }
    Ok(())
}

fn decode_pool(c: &mut Cursor<'_>) -> Result<crate::AdjPool> {
    let n = c.u64()? as usize;
    let mut pool = crate::AdjPool::default();
    if n > 0 {
        pool.ensure(n - 1);
    }
    for v in 0..n {
        let len = c.u32()?;
        pool.reserve_exact(v, len);
        for _ in 0..len {
            let nbr = VId(c.u64()?);
            let eid = EId(c.u64()?);
            let created = c.u64()?;
            pool.push(v, nbr, eid, created);
        }
        let nt = c.u32()?;
        for _ in 0..nt {
            let eid = EId(c.u64()?);
            let tv = c.u64()?;
            pool.add_tombstone(v, eid, tv);
        }
    }
    Ok(pool)
}

// ---------------------------------------------------------------------
// WAL replay
// ---------------------------------------------------------------------

/// What one replay pass did.
pub(crate) struct Replay {
    /// Highest committed version after replay.
    pub committed: Version,
    /// Complete records processed (header included).
    pub records: u64,
    /// Transactions redone to completion.
    pub recovered: u64,
    /// Transactions discarded (no commit record by end of log).
    pub discarded: u64,
    /// Byte length of the valid prefix; shorter than the file when a
    /// torn tail was detected.
    pub valid_len: usize,
    pub torn: bool,
}

/// Replays `bytes` (the log file) into `g`. `g.tst.base` carries the
/// checkpoint's `next_xid`; records below it are skipped. Returns the
/// outcome; the caller truncates the file to `valid_len` if `torn`.
pub(crate) fn replay_wal(
    bytes: &[u8],
    g: &mut Inner,
    schema: &GraphSchema,
    base_committed: Version,
) -> Result<Replay> {
    let mut rep = Replay {
        committed: base_committed,
        records: 0,
        recovered: 0,
        discarded: 0,
        valid_len: 0,
        torn: false,
    };
    let mut active: HashMap<u64, TxnCore> = HashMap::new();
    let mut pos = 0usize;
    let mut saw_header = false;
    loop {
        let rec = match wal::parse_frame(bytes, pos) {
            Frame::Eof => break,
            Frame::Torn => {
                rep.torn = true;
                gs_telemetry::counter!("gart.recovery.torn_tails");
                break;
            }
            Frame::Ok(rec, next) => {
                pos = next;
                rec
            }
        };
        rep.valid_len = pos;
        rep.records += 1;
        if !saw_header {
            let Rec::Header {
                format,
                first_xid,
                schema_fp,
                ..
            } = rec
            else {
                return Err(GraphError::Corrupt(
                    "log does not start with a header".into(),
                ));
            };
            if format != wal::WAL_FORMAT {
                return Err(GraphError::Corrupt(format!("unknown WAL format {format}")));
            }
            if schema_fp != wal::schema_fingerprint(schema) {
                return Err(GraphError::Corrupt(
                    "log was written under a different schema".into(),
                ));
            }
            if first_xid > g.tst.base {
                return Err(GraphError::Corrupt(
                    "log continues a checkpoint that is missing".into(),
                ));
            }
            saw_header = true;
            continue;
        }
        let xid = match rec {
            Rec::Header { .. } => {
                return Err(GraphError::Corrupt("duplicate header record".into()))
            }
            Rec::Begin { xid, .. }
            | Rec::AddVertex { xid, .. }
            | Rec::AddEdge { xid, .. }
            | Rec::DelEdge { xid, .. }
            | Rec::DelVertex { xid, .. }
            | Rec::Commit { xid, .. }
            | Rec::Abort { xid } => xid,
        };
        if xid < g.tst.base {
            // already folded into the checkpoint image (the crash window
            // between checkpoint rename and log rotation)
            continue;
        }
        let missing = || GraphError::Corrupt(format!("record for unknown txn {xid}"));
        match rec {
            Rec::Header { .. } => unreachable!("matched above"),
            Rec::Begin { xid, begin } => {
                g.tst.ensure(xid);
                active.insert(xid, TxnCore::new(xid, begin));
            }
            Rec::AddVertex {
                label,
                external,
                props,
                ..
            } => {
                let core = active.get_mut(&xid).ok_or_else(missing)?;
                txn::apply_add_vertex(g, core, LabelId(label), external, &props)?;
            }
            Rec::AddEdge {
                label,
                src_ext,
                dst_ext,
                props,
                ..
            } => {
                let ldef = schema.edge_label(LabelId(label))?;
                let (sl, dl) = (ldef.src, ldef.dst);
                let core = active.get_mut(&xid).ok_or_else(missing)?;
                txn::apply_add_edge(g, core, LabelId(label), sl, dl, src_ext, dst_ext, &props)?;
            }
            Rec::DelEdge {
                label,
                src,
                dst,
                eid,
                ..
            } => {
                let core = active.get_mut(&xid).ok_or_else(missing)?;
                txn::apply_del_edge_resolved(g, core, LabelId(label), VId(src), VId(dst), EId(eid));
            }
            Rec::DelVertex { label, idx, .. } => {
                let core = active.get_mut(&xid).ok_or_else(missing)?;
                txn::apply_del_vertex_resolved(g, core, LabelId(label), VId(idx));
            }
            Rec::Commit { xid, version } => {
                let core = active.remove(&xid).ok_or_else(missing)?;
                g.tst.commit(xid, version);
                txn::stamp_txn(g, &core, version);
                rep.committed = rep.committed.max(version);
                rep.recovered += 1;
            }
            Rec::Abort { xid } => {
                let mut core = active.remove(&xid).ok_or_else(missing)?;
                txn::undo_to(g, &mut core, 0);
                g.tst.abort(xid);
            }
        }
    }
    // transactions with no completion record by end of log never
    // acknowledged a commit: discard them exactly as an abort would
    let mut leftovers: Vec<u64> = active.keys().copied().collect();
    leftovers.sort_unstable();
    for xid in leftovers {
        let mut core = active.remove(&xid).expect("key just listed");
        txn::undo_to(g, &mut core, 0);
        g.tst.abort(xid);
        rep.discarded += 1;
    }
    gs_telemetry::counter!("gart.recovery.replayed_records"; rep.records);
    gs_telemetry::counter!("gart.recovery.recovered_txns"; rep.recovered);
    gs_telemetry::counter!("gart.recovery.discarded_txns"; rep.discarded);
    Ok(rep)
}
