/root/repo/target/debug/deps/figures-b31d24d271f52250.d: crates/gs-bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-b31d24d271f52250.rmeta: crates/gs-bench/src/bin/figures.rs Cargo.toml

crates/gs-bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
