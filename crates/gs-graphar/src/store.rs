//! GRIN directly over the archive: chunk-granular lazy loading.
//!
//! "GraphAr ... can be directly used as a data source for applications by
//! integrating GRIN" (paper §4.2). [`GraphArStore`] implements [`GrinGraph`]
//! without materialising the whole graph: adjacency and property reads load
//! (and cache) only the chunk containing the requested vertex/edge. It is
//! deliberately the *slowest* backend (Fig. 7a) — every cold access pays
//! decode + I/O — but the only one whose memory footprint is O(working set).

use crate::codec;
use crate::format::{read_metadata, Metadata};
use gs_grin::{
    AdjEntry, Capabilities, Direction, GraphError, GraphSchema, GrinGraph, LabelId, PropId, Result,
    VId, Value,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Cache key: file-relative chunk path.
type ChunkKey = (String, usize);

enum Chunk {
    U64(Vec<u64>),
    Col(Vec<Value>),
}

/// Lazily-loading GRIN view of a GraphAr archive.
pub struct GraphArStore {
    dir: PathBuf,
    meta: Metadata,
    cache: Mutex<HashMap<ChunkKey, Arc<Chunk>>>,
}

impl GraphArStore {
    /// Opens an archive directory.
    pub fn open(dir: &Path) -> Result<Self> {
        let meta = read_metadata(dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            meta,
            cache: Mutex::new(HashMap::new()),
        })
    }

    /// Archive metadata.
    pub fn metadata(&self) -> &Metadata {
        &self.meta
    }

    /// Number of chunks currently cached (test/diagnostics hook).
    pub fn cached_chunks(&self) -> usize {
        self.cache.lock().len()
    }

    fn load_u64(&self, rel: String, k: usize) -> Result<Arc<Chunk>> {
        if let Some(c) = self.cache.lock().get(&(rel.clone(), k)) {
            return Ok(Arc::clone(c));
        }
        let path = self.dir.join(format!("{rel}.{k}"));
        let bytes =
            std::fs::read(&path).map_err(|e| GraphError::Io(format!("{}: {e}", path.display())))?;
        let chunk = Arc::new(Chunk::U64(codec::decode_u64_chunk(&bytes)?));
        self.cache.lock().insert((rel, k), Arc::clone(&chunk));
        Ok(chunk)
    }

    fn load_col(&self, rel: String, k: usize) -> Result<Arc<Chunk>> {
        if let Some(c) = self.cache.lock().get(&(rel.clone(), k)) {
            return Ok(Arc::clone(c));
        }
        let path = self.dir.join(format!("{rel}.{k}"));
        let bytes =
            std::fs::read(&path).map_err(|e| GraphError::Io(format!("{}: {e}", path.display())))?;
        let chunk = Arc::new(Chunk::Col(codec::decode_column(&bytes)?));
        self.cache.lock().insert((rel, k), Arc::clone(&chunk));
        Ok(chunk)
    }

    fn u64s(&self, rel: String, k: usize) -> Vec<u64> {
        match self.load_u64(rel, k) {
            Ok(c) => match &*c {
                Chunk::U64(v) => v.clone(),
                Chunk::Col(_) => Vec::new(),
            },
            Err(_) => Vec::new(),
        }
    }

    fn adjacency(&self, v: VId, elabel: LabelId, prefix: &str) -> Vec<AdjEntry> {
        let k = v.index() / self.meta.vertex_chunk;
        let local = v.index() % self.meta.vertex_chunk;
        let base = format!("edge/l{}/{prefix}", elabel.index());
        let offs = self.u64s(format!("{base}_offsets"), k);
        if local + 1 >= offs.len() {
            return Vec::new();
        }
        let lo = offs[local] as usize;
        let hi = offs[local + 1] as usize;
        let tgts = self.u64s(format!("{base}_targets"), k);
        let eids = self.u64s(format!("{base}_eids"), k);
        (lo..hi)
            .map(|i| AdjEntry {
                nbr: VId(tgts[i]),
                edge: gs_grin::EId(eids[i]),
            })
            .collect()
    }
}

impl GrinGraph for GraphArStore {
    fn capabilities(&self) -> Capabilities {
        Capabilities::of(&[
            Capabilities::VERTEX_LIST_ITER,
            Capabilities::ADJ_LIST_ITER,
            Capabilities::IN_ADJACENCY,
            Capabilities::PROPERTY,
            Capabilities::INDEX_EXTERNAL_ID,
        ])
    }

    fn schema(&self) -> &GraphSchema {
        &self.meta.schema
    }

    fn vertex_count(&self, label: LabelId) -> usize {
        self.meta.vertex_counts[label.index()]
    }

    fn edge_count(&self, label: LabelId) -> usize {
        self.meta.edge_counts[label.index()]
    }

    fn adjacent(
        &self,
        v: VId,
        _vlabel: LabelId,
        elabel: LabelId,
        dir: Direction,
    ) -> Box<dyn Iterator<Item = AdjEntry> + '_> {
        let entries = match dir {
            Direction::Out => self.adjacency(v, elabel, "out"),
            Direction::In => self.adjacency(v, elabel, "in"),
            Direction::Both => {
                let mut o = self.adjacency(v, elabel, "out");
                o.extend(self.adjacency(v, elabel, "in"));
                o
            }
        };
        Box::new(entries.into_iter())
    }

    fn scan_adjacency(
        &self,
        vlabel: LabelId,
        elabel: LabelId,
        dir: Direction,
        f: &mut gs_grin::AdjScanFn<'_>,
    ) -> bool {
        // Chunk-granular bulk path: decode each offsets/targets/eids chunk
        // once per scan instead of three clone-outs per vertex through
        // `adjacency`. Still O(working set): one chunk triple is resident
        // at a time.
        let prefix = match dir {
            Direction::Out => "out",
            Direction::In => "in",
            Direction::Both => return gs_grin::scan_via_iterators(self, vlabel, elabel, dir, f),
        };
        let n = self.vertex_count(vlabel);
        let base = format!("edge/l{}/{prefix}", elabel.index());
        let nchunks = n.div_ceil(self.meta.vertex_chunk).max(1);
        for k in 0..nchunks {
            let offs = self.u64s(format!("{base}_offsets"), k);
            let nbrs: Vec<VId> = self
                .u64s(format!("{base}_targets"), k)
                .into_iter()
                .map(VId)
                .collect();
            let eids: Vec<gs_grin::EId> = self
                .u64s(format!("{base}_eids"), k)
                .into_iter()
                .map(gs_grin::EId)
                .collect();
            for local in 0..self.meta.vertex_chunk {
                let v = k * self.meta.vertex_chunk + local;
                if v >= n {
                    break;
                }
                if local + 1 < offs.len() {
                    let hi = (offs[local + 1] as usize).min(nbrs.len()).min(eids.len());
                    let lo = (offs[local] as usize).min(hi);
                    f(VId(v as u64), &nbrs[lo..hi], &eids[lo..hi]);
                } else {
                    f(VId(v as u64), &[], &[]);
                }
            }
        }
        true
    }

    fn vertex_property(&self, label: LabelId, v: VId, prop: PropId) -> Value {
        let k = v.index() / self.meta.vertex_chunk;
        let local = v.index() % self.meta.vertex_chunk;
        let rel = format!("vertex/l{}/p{}", label.index(), prop.index());
        match self.load_col(rel, k) {
            Ok(c) => match &*c {
                Chunk::Col(vals) => vals.get(local).cloned().unwrap_or(Value::Null),
                Chunk::U64(_) => Value::Null,
            },
            Err(_) => Value::Null,
        }
    }

    fn edge_property(&self, label: LabelId, e: gs_grin::EId, prop: PropId) -> Value {
        let k = e.index() / self.meta.edge_chunk;
        let local = e.index() % self.meta.edge_chunk;
        let rel = format!("edge/l{}/p{}", label.index(), prop.index());
        match self.load_col(rel, k) {
            Ok(c) => match &*c {
                Chunk::Col(vals) => vals.get(local).cloned().unwrap_or(Value::Null),
                Chunk::U64(_) => Value::Null,
            },
            Err(_) => Value::Null,
        }
    }

    fn internal_id(&self, label: LabelId, external: u64) -> Option<VId> {
        // scan id chunks (archives are not indexed for point lookups)
        let n = self.meta.vertex_counts[label.index()];
        let nchunks = n.div_ceil(self.meta.vertex_chunk).max(1);
        let rel = format!("vertex/l{}/ids", label.index());
        for k in 0..nchunks {
            let ids = self.u64s(rel.clone(), k);
            if let Some(pos) = ids.iter().position(|&e| e == external) {
                return Some(VId((k * self.meta.vertex_chunk + pos) as u64));
            }
        }
        None
    }

    fn external_id(&self, label: LabelId, v: VId) -> Option<u64> {
        let k = v.index() / self.meta.vertex_chunk;
        let local = v.index() % self.meta.vertex_chunk;
        let ids = self.u64s(format!("vertex/l{}/ids", label.index()), k);
        ids.get(local).copied()
    }
}
