//! Minimal in-tree replacement for the `bytes` crate: [`Bytes`] /
//! [`BytesMut`] buffers plus the [`Buf`] / [`BufMut`] cursor traits, in
//! the subset the GraphAr codec uses. `Bytes` is a cheaply cloneable
//! reference-counted buffer; `BytesMut` is a growable builder.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply cloneable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: Arc::new(data.to_vec()),
        }
    }

    pub fn from_vec(data: Vec<u8>) -> Self {
        Self {
            data: Arc::new(data),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self::from_vec(data)
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Write cursor: append little-endian primitives and slices.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_slice(&mut self, src: &[u8]);

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read cursor over a byte source; panics if the source is exhausted,
/// matching the real crate.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer exhausted");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_f64_le(1.5);
        b.put_slice(&[1, 2, 3]);
        let frozen = b.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_f64_le(), 1.5);
        assert_eq!(cursor, &[1, 2, 3]);
    }

    #[test]
    fn bytes_clone_is_shallow_and_indexable() {
        let b = Bytes::from_vec(vec![9, 8, 7]);
        let c = b.clone();
        assert_eq!(c[0], 9);
        assert_eq!(c.to_vec(), vec![9, 8, 7]);
        assert_eq!(c.len(), 3);
    }

    #[test]
    #[should_panic(expected = "buffer exhausted")]
    fn short_read_panics() {
        let mut cursor: &[u8] = &[1, 2];
        let _ = cursor.get_u32_le();
    }
}
