//! Write-ahead log for the GART store.
//!
//! Every record is a length+checksum-framed byte string:
//! `[len: u32 LE][crc32(payload): u32 LE][payload]`. The payload's first
//! byte is an opcode. Mutations are logged *after* they apply in memory
//! (apply-then-log inside the writer critical section, so file order is
//! apply order); the commit record plus an `fsync` is the durability
//! point, and one sync covers every record written since the previous
//! one (group commit). Recovery reads the log in order, re-executes
//! every transaction through the same op-application functions, and
//! discards transactions with no commit record — a torn tail is detected
//! by the length/checksum frame and truncated.
//!
//! Fault injection: each durable write (log record or checkpoint chunk)
//! passes its sequence number through [`gs_chaos::wal_write_fault`],
//! which can kill the process between any two writes or tear the write
//! in half first. The sequence counter is shared between the log and
//! checkpoint files so a kill sweep covers checkpointing too.

use gs_grin::{GraphError, Result, Value};
use std::fs::File;
use std::io::Write;
use std::path::PathBuf;

/// When the log is forced to disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Durability {
    /// Records reach the OS on every write but `fsync` is never issued;
    /// a machine crash may lose a suffix of commits (never a prefix).
    Buffered,
    /// Every commit record is followed by `fsync` before the commit is
    /// acknowledged — the classic durability point.
    Sync,
}

/// Configuration for a durable [`GartStore`](crate::GartStore): the WAL
/// directory, the sync policy, and how many commits may accumulate
/// before an automatic checkpoint is attempted.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    pub dir: PathBuf,
    pub durability: Durability,
    /// `0` disables automatic checkpoints; explicit
    /// [`GartStore::checkpoint`](crate::GartStore::checkpoint) calls
    /// still work.
    pub checkpoint_every: u64,
}

impl DurabilityConfig {
    /// Synchronous durability, no automatic checkpoints.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            durability: Durability::Sync,
            checkpoint_every: 0,
        }
    }

    pub fn buffered(mut self) -> Self {
        self.durability = Durability::Buffered;
        self
    }

    pub fn checkpoint_every(mut self, commits: u64) -> Self {
        self.checkpoint_every = commits;
        self
    }
}

/// The on-disk WAL format version.
pub(crate) const WAL_FORMAT: u32 = 1;

const OP_BEGIN: u8 = 0;
const OP_ADD_VERTEX: u8 = 1;
const OP_ADD_EDGE: u8 = 2;
const OP_DEL_EDGE: u8 = 3;
const OP_DEL_VERTEX: u8 = 4;
const OP_COMMIT: u8 = 5;
const OP_ABORT: u8 = 6;
const OP_HEADER: u8 = 255;

/// One parsed log record.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Rec {
    /// First record of every log file.
    Header {
        format: u32,
        base_version: u64,
        first_xid: u64,
        schema_fp: u64,
    },
    Begin {
        xid: u64,
        begin: u64,
    },
    AddVertex {
        xid: u64,
        label: u16,
        external: u64,
        props: Vec<Value>,
    },
    AddEdge {
        xid: u64,
        label: u16,
        src_ext: u64,
        dst_ext: u64,
        props: Vec<Value>,
    },
    /// Deletion with the victim pre-resolved (internal endpoint slots +
    /// edge id) so replay never re-runs victim selection.
    DelEdge {
        xid: u64,
        label: u16,
        src: u64,
        dst: u64,
        eid: u64,
    },
    DelVertex {
        xid: u64,
        label: u16,
        external: u64,
        idx: u64,
    },
    Commit {
        xid: u64,
        version: u64,
    },
    Abort {
        xid: u64,
    },
}

// ---------------------------------------------------------------------
// CRC32 (IEEE), table-driven, const-initialised
// ---------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = (c >> 8) ^ CRC_TABLE[((c ^ b as u32) & 0xff) as usize];
    }
    !c
}

/// FNV-1a fingerprint of the schema's canonical JSON, stored in every
/// log/checkpoint header so recovery refuses a mismatched schema.
pub(crate) fn schema_fingerprint(schema: &gs_grin::GraphSchema) -> u64 {
    let text = schema.to_json().render();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Value and record codecs
// ---------------------------------------------------------------------

const V_NULL: u8 = 0;
const V_BOOL: u8 = 1;
const V_INT: u8 = 2;
const V_FLOAT: u8 = 3;
const V_STR: u8 = 4;
const V_DATE: u8 = 5;
const V_LIST: u8 = 6;

pub(crate) fn encode_value(buf: &mut Vec<u8>, v: &Value) -> Result<()> {
    match v {
        Value::Null => buf.push(V_NULL),
        Value::Bool(b) => {
            buf.push(V_BOOL);
            buf.push(*b as u8);
        }
        Value::Int(i) => {
            buf.push(V_INT);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            buf.push(V_FLOAT);
            buf.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(V_STR);
            buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
            buf.extend_from_slice(s.as_bytes());
        }
        Value::Date(d) => {
            buf.push(V_DATE);
            buf.extend_from_slice(&d.to_le_bytes());
        }
        Value::List(items) => {
            buf.push(V_LIST);
            buf.extend_from_slice(&(items.len() as u16).to_le_bytes());
            for it in items {
                encode_value(buf, it)?;
            }
        }
        Value::Vertex(..) | Value::Edge(..) | Value::Path(..) => {
            return Err(GraphError::Unsupported(
                "graph-reference values are not storable properties".into(),
            ))
        }
    }
    Ok(())
}

pub(crate) struct Cursor<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(GraphError::Corrupt("truncated WAL record payload".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

pub(crate) fn decode_value(c: &mut Cursor<'_>) -> Result<Value> {
    Ok(match c.u8()? {
        V_NULL => Value::Null,
        V_BOOL => Value::Bool(c.u8()? != 0),
        V_INT => Value::Int(c.u64()? as i64),
        V_FLOAT => Value::Float(f64::from_bits(c.u64()?)),
        V_STR => {
            let n = c.u32()? as usize;
            let bytes = c.take(n)?;
            Value::Str(
                String::from_utf8(bytes.to_vec())
                    .map_err(|_| GraphError::Corrupt("non-UTF-8 string in WAL record".into()))?,
            )
        }
        V_DATE => Value::Date(c.u64()? as i64),
        V_LIST => {
            let n = c.u16()? as usize;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_value(c)?);
            }
            Value::List(items)
        }
        t => return Err(GraphError::Corrupt(format!("unknown value tag {t}"))),
    })
}

fn encode_props(buf: &mut Vec<u8>, props: &[Value]) -> Result<()> {
    buf.extend_from_slice(&(props.len() as u16).to_le_bytes());
    for p in props {
        encode_value(buf, p)?;
    }
    Ok(())
}

fn decode_props(c: &mut Cursor<'_>) -> Result<Vec<Value>> {
    let n = c.u16()? as usize;
    let mut props = Vec::with_capacity(n);
    for _ in 0..n {
        props.push(decode_value(c)?);
    }
    Ok(props)
}

impl Rec {
    pub(crate) fn encode_payload(&self) -> Result<Vec<u8>> {
        let mut b = Vec::with_capacity(32);
        match self {
            Rec::Header {
                format,
                base_version,
                first_xid,
                schema_fp,
            } => {
                b.push(OP_HEADER);
                b.extend_from_slice(&format.to_le_bytes());
                b.extend_from_slice(&base_version.to_le_bytes());
                b.extend_from_slice(&first_xid.to_le_bytes());
                b.extend_from_slice(&schema_fp.to_le_bytes());
            }
            Rec::Begin { xid, begin } => {
                b.push(OP_BEGIN);
                b.extend_from_slice(&xid.to_le_bytes());
                b.extend_from_slice(&begin.to_le_bytes());
            }
            Rec::AddVertex {
                xid,
                label,
                external,
                props,
            } => {
                b.push(OP_ADD_VERTEX);
                b.extend_from_slice(&xid.to_le_bytes());
                b.extend_from_slice(&label.to_le_bytes());
                b.extend_from_slice(&external.to_le_bytes());
                encode_props(&mut b, props)?;
            }
            Rec::AddEdge {
                xid,
                label,
                src_ext,
                dst_ext,
                props,
            } => {
                b.push(OP_ADD_EDGE);
                b.extend_from_slice(&xid.to_le_bytes());
                b.extend_from_slice(&label.to_le_bytes());
                b.extend_from_slice(&src_ext.to_le_bytes());
                b.extend_from_slice(&dst_ext.to_le_bytes());
                encode_props(&mut b, props)?;
            }
            Rec::DelEdge {
                xid,
                label,
                src,
                dst,
                eid,
            } => {
                b.push(OP_DEL_EDGE);
                b.extend_from_slice(&xid.to_le_bytes());
                b.extend_from_slice(&label.to_le_bytes());
                b.extend_from_slice(&src.to_le_bytes());
                b.extend_from_slice(&dst.to_le_bytes());
                b.extend_from_slice(&eid.to_le_bytes());
            }
            Rec::DelVertex {
                xid,
                label,
                external,
                idx,
            } => {
                b.push(OP_DEL_VERTEX);
                b.extend_from_slice(&xid.to_le_bytes());
                b.extend_from_slice(&label.to_le_bytes());
                b.extend_from_slice(&external.to_le_bytes());
                b.extend_from_slice(&idx.to_le_bytes());
            }
            Rec::Commit { xid, version } => {
                b.push(OP_COMMIT);
                b.extend_from_slice(&xid.to_le_bytes());
                b.extend_from_slice(&version.to_le_bytes());
            }
            Rec::Abort { xid } => {
                b.push(OP_ABORT);
                b.extend_from_slice(&xid.to_le_bytes());
            }
        }
        Ok(b)
    }

    pub(crate) fn decode_payload(payload: &[u8]) -> Result<Rec> {
        let mut c = Cursor {
            buf: payload,
            pos: 0,
        };
        let rec = match c.u8()? {
            OP_HEADER => Rec::Header {
                format: c.u32()?,
                base_version: c.u64()?,
                first_xid: c.u64()?,
                schema_fp: c.u64()?,
            },
            OP_BEGIN => Rec::Begin {
                xid: c.u64()?,
                begin: c.u64()?,
            },
            OP_ADD_VERTEX => Rec::AddVertex {
                xid: c.u64()?,
                label: c.u16()?,
                external: c.u64()?,
                props: decode_props(&mut c)?,
            },
            OP_ADD_EDGE => Rec::AddEdge {
                xid: c.u64()?,
                label: c.u16()?,
                src_ext: c.u64()?,
                dst_ext: c.u64()?,
                props: decode_props(&mut c)?,
            },
            OP_DEL_EDGE => Rec::DelEdge {
                xid: c.u64()?,
                label: c.u16()?,
                src: c.u64()?,
                dst: c.u64()?,
                eid: c.u64()?,
            },
            OP_DEL_VERTEX => Rec::DelVertex {
                xid: c.u64()?,
                label: c.u16()?,
                external: c.u64()?,
                idx: c.u64()?,
            },
            OP_COMMIT => Rec::Commit {
                xid: c.u64()?,
                version: c.u64()?,
            },
            OP_ABORT => Rec::Abort { xid: c.u64()? },
            op => return Err(GraphError::Corrupt(format!("unknown WAL opcode {op}"))),
        };
        if c.pos != payload.len() {
            return Err(GraphError::Corrupt("trailing bytes in WAL record".into()));
        }
        Ok(rec)
    }
}

/// Frames a payload as `[len][crc][payload]`.
pub(crate) fn encode_frame(rec: &Rec) -> Result<Vec<u8>> {
    let payload = rec.encode_payload()?;
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

/// The result of pulling one frame off a byte stream.
pub(crate) enum Frame {
    /// A valid record and the offset just past it.
    Ok(Rec, usize),
    /// Clean end of stream.
    Eof,
    /// Torn or corrupt frame starting at this offset — recovery
    /// truncates here.
    Torn,
}

/// Parses the frame at `pos`; never panics on arbitrary bytes.
pub(crate) fn parse_frame(bytes: &[u8], pos: usize) -> Frame {
    if pos == bytes.len() {
        return Frame::Eof;
    }
    if pos + 8 > bytes.len() {
        return Frame::Torn;
    }
    let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
    if len > (1 << 30) || pos + 8 + len > bytes.len() {
        return Frame::Torn;
    }
    let payload = &bytes[pos + 8..pos + 8 + len];
    if crc32(payload) != crc {
        return Frame::Torn;
    }
    match Rec::decode_payload(payload) {
        Ok(rec) => Frame::Ok(rec, pos + 8 + len),
        Err(_) => Frame::Torn,
    }
}

// ---------------------------------------------------------------------
// The writer
// ---------------------------------------------------------------------

/// Appender over the active log file. `writes` is the durable-write
/// sequence number fed to the chaos hook; it is shared with checkpoint
/// chunk writes so kill plans can target any durable write the store
/// ever performs.
pub(crate) struct Wal {
    pub(crate) file: File,
    pub(crate) path: PathBuf,
    pub(crate) durability: Durability,
    pub(crate) writes: u64,
    pub(crate) records: u64,
    dirty: bool,
}

static WAL_RECORDS: gs_telemetry::StaticCounter =
    gs_telemetry::StaticCounter::new("gart.wal.records");
static WAL_BYTES: gs_telemetry::StaticCounter = gs_telemetry::StaticCounter::new("gart.wal.bytes");
static WAL_SYNCS: gs_telemetry::StaticCounter = gs_telemetry::StaticCounter::new("gart.wal.syncs");

impl Wal {
    pub(crate) fn new(file: File, path: PathBuf, durability: Durability) -> Self {
        Self {
            file,
            path,
            durability,
            writes: 0,
            records: 0,
            dirty: false,
        }
    }

    /// Appends one framed record (no sync). The chaos hook may kill the
    /// process before the write or after a torn prefix of it.
    pub(crate) fn append(&mut self, rec: &Rec) -> Result<()> {
        let frame = encode_frame(rec)?;
        durable_write(&mut self.file, &mut self.writes, &frame)?;
        self.records += 1;
        self.dirty = true;
        WAL_RECORDS.add(1);
        WAL_BYTES.add(frame.len() as u64);
        Ok(())
    }

    /// Forces everything appended so far to disk (the durability point;
    /// one call covers all records since the previous sync).
    pub(crate) fn sync(&mut self) -> Result<()> {
        if !self.dirty {
            return Ok(());
        }
        // gs-lint: allow(L006 fsync latency is telemetry-only wall time, never control flow)
        let started = std::time::Instant::now();
        self.file
            .sync_data()
            .map_err(|e| GraphError::Io(e.to_string()))?;
        self.dirty = false;
        WAL_SYNCS.add(1);
        gs_telemetry::observe!("gart.wal.sync_micros"; started.elapsed().as_micros() as u64);
        Ok(())
    }

    /// Swaps in a freshly-rotated log file (already containing a synced
    /// header) after a checkpoint renamed it over the old log.
    pub(crate) fn replace_file(&mut self, file: File) {
        self.file = file;
        self.records = 0;
        self.dirty = false;
    }
}

/// One durable write through the chaos seam. On a `Kill` verdict the
/// process dies *before* the write; on `Torn(k)` exactly `k` bytes are
/// written and synced first, leaving a mid-frame tear on disk.
pub(crate) fn durable_write(file: &mut File, seq: &mut u64, bytes: &[u8]) -> Result<()> {
    let n = *seq;
    *seq += 1;
    match gs_chaos::wal_write_fault(n, bytes.len()) {
        gs_chaos::WalWriteFault::Proceed => file
            .write_all(bytes)
            .map_err(|e| GraphError::Io(e.to_string())),
        gs_chaos::WalWriteFault::Kill => std::panic::panic_any(gs_chaos::ChaosUnwind("wal-kill")),
        gs_chaos::WalWriteFault::Torn(k) => {
            let _ = file.write_all(&bytes[..k.min(bytes.len())]);
            let _ = file.sync_data();
            std::panic::panic_any(gs_chaos::ChaosUnwind("wal-torn"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC32 of "123456789"
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn record_round_trips() {
        let recs = [
            Rec::Header {
                format: WAL_FORMAT,
                base_version: 7,
                first_xid: 3,
                schema_fp: 0xdead_beef,
            },
            Rec::Begin { xid: 9, begin: 4 },
            Rec::AddVertex {
                xid: 9,
                label: 1,
                external: 42,
                props: vec![
                    Value::Int(-5),
                    Value::Str("hi".into()),
                    Value::Null,
                    Value::Float(1.5),
                    Value::Bool(true),
                    Value::Date(19000),
                    Value::List(vec![Value::Int(1), Value::Int(2)]),
                ],
            },
            Rec::AddEdge {
                xid: 9,
                label: 0,
                src_ext: 1,
                dst_ext: 2,
                props: vec![],
            },
            Rec::DelEdge {
                xid: 9,
                label: 0,
                src: 0,
                dst: 1,
                eid: 17,
            },
            Rec::DelVertex {
                xid: 9,
                label: 1,
                external: 42,
                idx: 3,
            },
            Rec::Commit { xid: 9, version: 5 },
            Rec::Abort { xid: 10 },
        ];
        let mut bytes = Vec::new();
        for r in &recs {
            bytes.extend_from_slice(&encode_frame(r).unwrap());
        }
        let mut pos = 0;
        let mut parsed = Vec::new();
        loop {
            match parse_frame(&bytes, pos) {
                Frame::Ok(rec, next) => {
                    parsed.push(rec);
                    pos = next;
                }
                Frame::Eof => break,
                Frame::Torn => panic!("clean stream must not tear"),
            }
        }
        assert_eq!(parsed, recs);
    }

    #[test]
    fn torn_tail_is_detected_not_misparsed() {
        let good = encode_frame(&Rec::Commit { xid: 1, version: 1 }).unwrap();
        let torn = encode_frame(&Rec::Abort { xid: 2 }).unwrap();
        for cut in 1..torn.len() {
            let mut bytes = good.clone();
            bytes.extend_from_slice(&torn[..cut]);
            let Frame::Ok(_, next) = parse_frame(&bytes, 0) else {
                panic!("first frame intact");
            };
            assert!(
                matches!(parse_frame(&bytes, next), Frame::Torn),
                "cut at {cut} must read as torn"
            );
        }
        // flipping a payload bit breaks the checksum
        let mut bytes = good;
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert!(matches!(parse_frame(&bytes, 0), Frame::Torn));
    }
}
