//! Cost-analysis estimator quality + soundness check (BENCH_cost.json).
//!
//! ```text
//! costcheck                full run, writes BENCH_cost.json
//! costcheck --deny         fail on clean-corpus C-errors, soundness
//!                          violations, or missed pathological codes
//! costcheck --out PATH     output path (default BENCH_cost.json)
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let deny = args.iter().any(|a| a == "--deny");
    let mut out = "BENCH_cost.json".to_string();
    for w in args.windows(2) {
        if w[0].as_str() == "--out" {
            out = w[1].clone();
        }
    }
    gs_telemetry::install(gs_telemetry::Registry::new());
    let code = gs_bench::costcheck::run_cli(deny, &out);
    print!("{}", gs_telemetry::global().text_report());
    std::process::exit(code);
}
