//! GraphAr on-disk layout: metadata + chunked columnar files.
//!
//! Layout of an archive directory:
//!
//! ```text
//! <dir>/metadata.json                  graph schema + chunk inventory
//! <dir>/vertex/<label>/ids.<k>         external ids, u64 delta chunks
//! <dir>/vertex/<label>/p<prop>.<k>     property column chunks
//! <dir>/edge/<label>/out_offsets.<k>   CSR offsets for vertex range k
//! <dir>/edge/<label>/out_targets.<k>   neighbor ids for vertex range k
//! <dir>/edge/<label>/out_eids.<k>      edge ids for vertex range k
//! <dir>/edge/<label>/in_*.<k>          CSC mirror of the above
//! <dir>/edge/<label>/p<prop>.<k>       edge property chunks (EId order)
//! ```
//!
//! Vertices are chunked `VERTEX_CHUNK` per file and edges are chunked *by
//! source-vertex range*, so fetching the neighbours of one vertex touches a
//! single chunk — the "retrieve only the relevant data chunks" behaviour the
//! paper credits for GraphAr's loading speed. Chunks decode in parallel.

use crate::codec;
use gs_graph::data::{EdgeBatch, PropertyGraphData, VertexBatch};
use gs_graph::ids::IdMap;
use gs_graph::json::Json;
use gs_graph::schema::GraphSchema;
use gs_graph::{GraphError, LabelId, Result, VId, Value};
use std::fs;
use std::path::{Path, PathBuf};

/// Vertices per vertex chunk / per adjacency chunk.
pub const VERTEX_CHUNK: usize = 1024;
/// Edge-property rows per chunk.
pub const EDGE_CHUNK: usize = 4096;

/// Archive metadata persisted as JSON.
#[derive(Clone, Debug)]
pub struct Metadata {
    pub schema: GraphSchema,
    /// Vertex count per vertex label.
    pub vertex_counts: Vec<usize>,
    /// Edge count per edge label.
    pub edge_counts: Vec<usize>,
    pub vertex_chunk: usize,
    pub edge_chunk: usize,
}

impl Metadata {
    /// Number of vertex chunks for a label.
    pub fn vertex_chunks(&self, label: LabelId) -> usize {
        self.vertex_counts[label.index()]
            .div_ceil(self.vertex_chunk)
            .max(1)
    }

    /// Encodes the metadata document written to `metadata.json`.
    pub fn to_json(&self) -> Json {
        let counts = |c: &[usize]| Json::arr(c.iter().map(|&n| Json::Int(n as i64)));
        Json::obj([
            ("schema", self.schema.to_json()),
            ("vertex_counts", counts(&self.vertex_counts)),
            ("edge_counts", counts(&self.edge_counts)),
            ("vertex_chunk", Json::Int(self.vertex_chunk as i64)),
            ("edge_chunk", Json::Int(self.edge_chunk as i64)),
        ])
    }

    /// Decodes `metadata.json`.
    pub fn from_json(doc: &Json) -> Result<Self> {
        let counts = |key: &str| -> Result<Vec<usize>> {
            doc.field(key)?
                .as_arr()
                .ok_or_else(|| GraphError::Corrupt(format!("metadata: `{key}` not an array")))?
                .iter()
                .map(|v| {
                    v.as_usize().ok_or_else(|| {
                        GraphError::Corrupt(format!("metadata: bad count in `{key}`"))
                    })
                })
                .collect()
        };
        let chunk = |key: &str| -> Result<usize> {
            doc.field(key)?
                .as_usize()
                .filter(|&c| c > 0)
                .ok_or_else(|| GraphError::Corrupt(format!("metadata: bad `{key}`")))
        };
        Ok(Metadata {
            schema: GraphSchema::from_json(doc.field("schema")?)?,
            vertex_counts: counts("vertex_counts")?,
            edge_counts: counts("edge_counts")?,
            vertex_chunk: chunk("vertex_chunk")?,
            edge_chunk: chunk("edge_chunk")?,
        })
    }
}

fn vdir(dir: &Path, label: usize) -> PathBuf {
    dir.join("vertex").join(format!("l{label}"))
}
fn edir(dir: &Path, label: usize) -> PathBuf {
    dir.join("edge").join(format!("l{label}"))
}

/// Writes a [`PropertyGraphData`] as a GraphAr archive.
pub fn write_archive(dir: &Path, data: &PropertyGraphData) -> Result<Metadata> {
    data.validate()?;
    fs::create_dir_all(dir)?;
    let schema = &data.schema;

    // ---- vertices ----
    let mut id_maps: Vec<IdMap> = Vec::new();
    for batch in &data.vertices {
        let ldir = vdir(dir, batch.label.index());
        fs::create_dir_all(&ldir)?;
        let mut map = IdMap::with_capacity(batch.external_ids.len());
        for &e in &batch.external_ids {
            map.get_or_insert(e);
        }
        // ids chunks
        for (k, ids) in batch.external_ids.chunks(VERTEX_CHUNK).enumerate() {
            fs::write(ldir.join(format!("ids.{k}")), codec::encode_u64_chunk(ids))?;
        }
        if batch.external_ids.is_empty() {
            fs::write(ldir.join("ids.0"), codec::encode_u64_chunk(&[]))?;
        }
        // property chunks
        let defs = &schema.vertex_label(batch.label)?.properties;
        for (pi, pdef) in defs.iter().enumerate() {
            let col: Vec<Value> = batch.properties.iter().map(|r| r[pi].clone()).collect();
            for (k, rows) in col.chunks(VERTEX_CHUNK).enumerate() {
                let chunk = codec::encode_column(rows, pdef.value_type)?;
                fs::write(ldir.join(format!("p{pi}.{k}")), chunk)?;
            }
            if col.is_empty() {
                let chunk = codec::encode_column(&[], pdef.value_type)?;
                fs::write(ldir.join(format!("p{pi}.0")), chunk)?;
            }
        }
        id_maps.push(map);
    }

    // ---- edges ----
    for batch in &data.edges {
        let ldir = edir(dir, batch.label.index());
        fs::create_dir_all(&ldir)?;
        let ldef = schema.edge_label(batch.label)?;
        let src_map = &id_maps[ldef.src.index()];
        let dst_map = &id_maps[ldef.dst.index()];
        let src_n = src_map.len();
        let dst_n = dst_map.len();

        // resolve to internal ids; sort by (src, dst); EId = sorted position
        let mut rows: Vec<(VId, VId, usize)> = Vec::with_capacity(batch.endpoints.len());
        for (i, &(s, d)) in batch.endpoints.iter().enumerate() {
            let si = src_map
                .internal(s)
                .ok_or_else(|| GraphError::NotFound(format!("edge src {s}")))?;
            let di = dst_map
                .internal(d)
                .ok_or_else(|| GraphError::NotFound(format!("edge dst {d}")))?;
            rows.push((si, di, i));
        }
        rows.sort_unstable_by_key(|&(s, d, _)| (s, d));

        write_adjacency(
            &ldir,
            "out",
            src_n,
            rows.iter().map(|&(s, d, _)| (s, d)),
            (0..rows.len() as u64).collect(),
        )?;
        // CSC with the same edge ids
        let mut in_rows: Vec<(VId, VId, u64)> = rows
            .iter()
            .enumerate()
            .map(|(eid, &(s, d, _))| (d, s, eid as u64))
            .collect();
        in_rows.sort_unstable_by_key(|&(d, s, _)| (d, s));
        write_adjacency(
            &ldir,
            "in",
            dst_n,
            in_rows.iter().map(|&(d, s, _)| (d, s)),
            in_rows.iter().map(|&(_, _, e)| e).collect(),
        )?;

        // edge properties in EId (sorted) order
        let defs = &schema.edge_label(batch.label)?.properties;
        for (pi, pdef) in defs.iter().enumerate() {
            let col: Vec<Value> = rows
                .iter()
                .map(|&(_, _, orig)| batch.properties[orig][pi].clone())
                .collect();
            for (k, chunk_rows) in col.chunks(EDGE_CHUNK).enumerate() {
                let chunk = codec::encode_column(chunk_rows, pdef.value_type)?;
                fs::write(ldir.join(format!("p{pi}.{k}")), chunk)?;
            }
            if col.is_empty() {
                let chunk = codec::encode_column(&[], pdef.value_type)?;
                fs::write(ldir.join(format!("p{pi}.0")), chunk)?;
            }
        }
    }

    let meta = Metadata {
        schema: schema.clone(),
        vertex_counts: data.vertices.iter().map(|b| b.external_ids.len()).collect(),
        edge_counts: data.edges.iter().map(|b| b.endpoints.len()).collect(),
        vertex_chunk: VERTEX_CHUNK,
        edge_chunk: EDGE_CHUNK,
    };
    fs::write(dir.join("metadata.json"), meta.to_json().pretty())?;
    Ok(meta)
}

/// Writes one direction's adjacency, chunked by source-vertex range.
/// `sorted` must be sorted by source; `eids[i]` is the edge id of the i-th
/// sorted pair.
fn write_adjacency(
    ldir: &Path,
    prefix: &str,
    n: usize,
    sorted: impl Iterator<Item = (VId, VId)>,
    eids: Vec<u64>,
) -> Result<()> {
    let pairs: Vec<(VId, VId)> = sorted.collect();
    // global offsets
    let mut offsets = vec![0u64; n + 1];
    for &(s, _) in &pairs {
        offsets[s.index() + 1] += 1;
    }
    for i in 1..offsets.len() {
        offsets[i] += offsets[i - 1];
    }
    let nchunks = n.div_ceil(VERTEX_CHUNK).max(1);
    for k in 0..nchunks {
        let lo_v = k * VERTEX_CHUNK;
        let hi_v = ((k + 1) * VERTEX_CHUNK).min(n);
        let lo_e = offsets[lo_v] as usize;
        let hi_e = offsets[hi_v] as usize;
        // offsets relative to the chunk's first edge
        let rel: Vec<u64> = offsets[lo_v..=hi_v]
            .iter()
            .map(|&o| o - offsets[lo_v])
            .collect();
        fs::write(
            ldir.join(format!("{prefix}_offsets.{k}")),
            codec::encode_u64_chunk(&rel),
        )?;
        let targets: Vec<u64> = pairs[lo_e..hi_e].iter().map(|&(_, d)| d.0).collect();
        fs::write(
            ldir.join(format!("{prefix}_targets.{k}")),
            codec::encode_u64_chunk(&targets),
        )?;
        fs::write(
            ldir.join(format!("{prefix}_eids.{k}")),
            codec::encode_u64_chunk(&eids[lo_e..hi_e]),
        )?;
    }
    Ok(())
}

/// Reads archive metadata.
pub fn read_metadata(dir: &Path) -> Result<Metadata> {
    let json = fs::read_to_string(dir.join("metadata.json"))?;
    Metadata::from_json(&Json::parse(&json)?)
}

/// One decoded vertex chunk: external ids + one column per property.
type VertexChunk = (Vec<u64>, Vec<Vec<Value>>);
/// One decoded adjacency chunk: (offsets, targets, edge ids).
type AdjChunk = (Vec<u64>, Vec<u64>, Vec<u64>);

/// Loads a full archive back into interchange form, decoding chunks in
/// parallel across `threads` workers.
pub fn read_archive(dir: &Path, threads: usize) -> Result<PropertyGraphData> {
    let meta = read_metadata(dir)?;
    let schema = meta.schema.clone();
    let mut out = PropertyGraphData::new(schema.clone());

    // ---- vertices (parallel across labels × chunks) ----
    for (li, ldef) in schema.vertex_labels().iter().enumerate() {
        let ldir = vdir(dir, li);
        let n = meta.vertex_counts[li];
        let nchunks = n.div_ceil(meta.vertex_chunk).max(1);
        let nprops = ldef.properties.len();
        // decode chunks in parallel
        let chunk_results: Vec<Result<VertexChunk>> = parallel_map(threads, nchunks, |k| {
            let _t = DecodeTimer::start("vertex");
            let ids = codec::decode_u64_chunk(&fs::read(ldir.join(format!("ids.{k}")))?)?;
            let mut cols = Vec::with_capacity(nprops);
            for pi in 0..nprops {
                let c = codec::decode_column(&fs::read(ldir.join(format!("p{pi}.{k}")))?)?;
                cols.push(c);
            }
            Ok((ids, cols))
        });
        let mut batch = VertexBatch {
            label: LabelId(li as u16),
            ..Default::default()
        };
        for r in chunk_results {
            let (ids, cols) = r?;
            for (row, &ext) in ids.iter().enumerate() {
                batch.external_ids.push(ext);
                batch
                    .properties
                    .push(cols.iter().map(|c| c[row].clone()).collect());
            }
        }
        out.vertices[li] = batch;
    }

    // ---- edges ----
    for (li, ldef) in schema.edge_labels().iter().enumerate() {
        let ldir = edir(dir, li);
        let src_n = meta.vertex_counts[ldef.src.index()];
        let nchunks = src_n.div_ceil(meta.vertex_chunk).max(1);
        let src_ids = &out.vertices[ldef.src.index()].external_ids;
        let dst_ids = &out.vertices[ldef.dst.index()].external_ids;
        let nprops = ldef.properties.len();
        // edge property chunks decoded up front (parallel)
        let m = meta.edge_counts[li];
        let epchunks = m.div_ceil(meta.edge_chunk).max(1);
        let prop_chunks: Vec<Result<Vec<Vec<Value>>>> = parallel_map(threads, epchunks, |k| {
            let _t = DecodeTimer::start("edge_prop");
            let mut cols = Vec::with_capacity(nprops);
            for pi in 0..nprops {
                cols.push(codec::decode_column(&fs::read(
                    ldir.join(format!("p{pi}.{k}")),
                )?)?);
            }
            Ok(cols)
        });
        let mut prop_cols: Vec<Vec<Value>> = vec![Vec::new(); nprops];
        for r in prop_chunks {
            let cols = r?;
            for (pi, c) in cols.into_iter().enumerate() {
                prop_cols[pi].extend(c);
            }
        }

        let adj_chunks: Vec<Result<AdjChunk>> = parallel_map(threads, nchunks, |k| {
            let _t = DecodeTimer::start("adjacency");
            let offs = codec::decode_u64_chunk(&fs::read(ldir.join(format!("out_offsets.{k}")))?)?;
            let tgts = codec::decode_u64_chunk(&fs::read(ldir.join(format!("out_targets.{k}")))?)?;
            let eids = codec::decode_u64_chunk(&fs::read(ldir.join(format!("out_eids.{k}")))?)?;
            Ok((offs, tgts, eids))
        });
        let mut batch = EdgeBatch {
            label: LabelId(li as u16),
            ..Default::default()
        };
        for (k, r) in adj_chunks.into_iter().enumerate() {
            let (offs, tgts, eids) = r?;
            let lo_v = k * meta.vertex_chunk;
            for local_v in 0..offs.len() - 1 {
                let src_ext = src_ids[lo_v + local_v];
                for i in offs[local_v] as usize..offs[local_v + 1] as usize {
                    let dst_ext = dst_ids[tgts[i] as usize];
                    batch.endpoints.push((src_ext, dst_ext));
                    batch.properties.push(
                        (0..nprops)
                            .map(|pi| prop_cols[pi][eids[i] as usize].clone())
                            .collect(),
                    );
                }
            }
        }
        out.edges[li] = batch;
    }

    out.validate()?;
    Ok(out)
}

/// Times one chunk's read+decode into `graphar.chunk_decode_ns{kind=..}`.
struct DecodeTimer {
    kind: &'static str,
    start: Option<std::time::Instant>,
}

impl DecodeTimer {
    fn start(kind: &'static str) -> Self {
        Self {
            kind,
            start: gs_telemetry::enabled().then(std::time::Instant::now),
        }
    }
}

impl Drop for DecodeTimer {
    fn drop(&mut self) {
        if let Some(t) = self.start {
            gs_telemetry::observe!("graphar.chunk_decode_ns", kind = self.kind;
                t.elapsed().as_nanos() as u64);
        }
    }
}

/// Runs `f(0..n)` across up to `threads` scoped workers, preserving order.
pub(crate) fn parallel_map<T: Send>(
    threads: usize,
    n: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        // hand each worker disjoint &mut cells through a channel of indices:
        // simplest safe pattern is to let each worker produce (i, value)
        // pairs and collect them on the scope's main thread.
        let (tx, rx) = crossbeam::channel::unbounded::<(usize, T)>();
        let f = &f;
        let next = &next;
        for _ in 0..threads {
            let tx = tx.clone();
            s.spawn(move |_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let v = f(i);
                if tx.send((i, v)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, v) in rx {
            out[i] = Some(v);
        }
    })
    .expect("parallel_map worker panicked");
    out.into_iter().map(|o| o.unwrap()).collect()
}
