//! The SNB storage backend abstraction and its two implementations.
//!
//! All interactive queries (IC/IS/IU) are written once against
//! [`SnbBackend`]; the benchmark then runs them on:
//!
//! * [`FlexBackend`] — GraphScope Flex's OLTP stack: GART snapshots with
//!   label/property ids resolved **once at startup** (like compiled stored
//!   procedures), dense adjacency, no per-query string work;
//! * [`TuBackend`] — the TuGraph-like baseline: B-tree adjacency,
//!   string-keyed property maps, every hop re-resolving names — the
//!   interpreted profile behind Fig. 7(f)'s latency gap.

use gs_baselines::tugraph::{TuGraphDb, VKey};
use gs_datagen::snb::{SnbGraph, SnbSchema};
use gs_gart::GartStore;
use gs_graph::{GraphError, Result, Value};
use gs_grin::{Direction, GrinGraph, LabelId, PropId};
use std::collections::HashMap;
use std::sync::Arc;

/// Storage operations the SNB interactive queries need.
pub trait SnbBackend: Send + Sync {
    fn person_ids(&self) -> Vec<u64>;
    fn person_prop(&self, id: u64, prop: &str) -> Value;
    /// KNOWS neighbours (the relation is stored symmetrically).
    fn friends(&self, id: u64) -> Vec<u64>;
    fn knows_date(&self, a: u64, b: u64) -> Option<i64>;
    fn posts_by(&self, person: u64) -> Vec<u64>;
    fn comments_by(&self, person: u64) -> Vec<u64>;
    fn post_prop(&self, id: u64, prop: &str) -> Value;
    fn comment_prop(&self, id: u64, prop: &str) -> Value;
    fn post_creator(&self, post: u64) -> Option<u64>;
    fn comment_creator(&self, comment: u64) -> Option<u64>;
    /// (liker person, like date) pairs for a post.
    fn likes_of_post(&self, post: u64) -> Vec<(u64, i64)>;
    fn replies_of_post(&self, post: u64) -> Vec<u64>;
    fn reply_target(&self, comment: u64) -> Option<u64>;
    fn forum_of_post(&self, post: u64) -> Option<u64>;
    fn posts_in_forum(&self, forum: u64) -> Vec<u64>;
    fn forum_prop(&self, id: u64, prop: &str) -> Value;
    /// (forum, joinDate) memberships of a person.
    fn forums_of_member(&self, person: u64) -> Vec<(u64, i64)>;
    /// (person, joinDate) members of a forum.
    fn members(&self, forum: u64) -> Vec<(u64, i64)>;
    fn tags_of_post(&self, post: u64) -> Vec<u64>;
    fn tag_name(&self, tag: u64) -> String;
    fn interests(&self, person: u64) -> Vec<u64>;

    // ---- updates (IU1–IU8) ----
    fn add_person(
        &self,
        id: u64,
        first: &str,
        last: &str,
        birthday: i64,
        creation: i64,
    ) -> Result<()>;
    fn add_knows(&self, a: u64, b: u64, date: i64) -> Result<()>;
    fn add_forum(&self, id: u64, title: &str, date: i64) -> Result<()>;
    fn add_member(&self, forum: u64, person: u64, date: i64) -> Result<()>;
    fn add_post(
        &self,
        id: u64,
        creator: u64,
        forum: u64,
        content: &str,
        date: i64,
        length: i64,
    ) -> Result<()>;
    fn add_comment(
        &self,
        id: u64,
        creator: u64,
        reply_of: u64,
        date: i64,
        length: i64,
    ) -> Result<()>;
    fn add_like(&self, person: u64, post: u64, date: i64) -> Result<()>;
    fn add_interest(&self, person: u64, tag: u64) -> Result<()>;
}

// ===================================================================== Flex

/// GraphScope Flex's backend: GART + pre-resolved ids.
pub struct FlexBackend {
    store: Arc<GartStore>,
    l: SnbSchema,
    /// Pre-resolved property ids: (label, name) → PropId.
    props: HashMap<(LabelId, &'static str), PropId>,
}

const PERSON_PROPS: &[&str] = &[
    "firstName",
    "lastName",
    "birthday",
    "creationDate",
    "locationIP",
    "browserUsed",
];
const CONTENT_PROPS: &[&str] = &["content", "creationDate", "length"];
const FORUM_PROPS: &[&str] = &["title", "creationDate"];

impl FlexBackend {
    /// Loads the generated graph into a fresh GART store.
    pub fn load(graph: &SnbGraph) -> Result<Self> {
        let store = GartStore::from_data(&graph.data)?;
        Ok(Self::over(store, graph.labels))
    }

    /// Wraps an existing GART store (shared with an updating writer).
    pub fn over(store: Arc<GartStore>, l: SnbSchema) -> Self {
        let snap = store.snapshot();
        let schema = snap.schema().clone();
        let mut props = HashMap::new();
        for &(label, names) in &[
            (l.person, PERSON_PROPS),
            (l.post, CONTENT_PROPS),
            (l.comment, CONTENT_PROPS),
            (l.forum, FORUM_PROPS),
        ] {
            for &name in names {
                if let Some(p) = schema.vertex_property(label, name) {
                    props.insert((label, name), p.id);
                }
            }
        }
        props.insert(
            (l.tag, "name"),
            schema.vertex_property(l.tag, "name").unwrap().id,
        );
        Self { store, l, props }
    }

    /// The underlying store (e.g. for committing update batches).
    pub fn store(&self) -> &Arc<GartStore> {
        &self.store
    }

    fn vprop(&self, label: LabelId, ext: u64, name: &str) -> Value {
        let snap = self.store.snapshot();
        let Some(v) = snap.internal_id(label, ext) else {
            return Value::Null;
        };
        match self
            .props
            .iter()
            .find(|((l, n), _)| *l == label && *n == name)
        {
            Some((_, &pid)) => snap.vertex_property(label, v, pid),
            None => Value::Null,
        }
    }

    /// Out/in adjacency by external ids.
    fn adj(
        &self,
        src_label: LabelId,
        dst_label: LabelId,
        elabel: LabelId,
        ext: u64,
        dir: Direction,
    ) -> Vec<u64> {
        let snap = self.store.snapshot();
        let Some(v) = snap.internal_id(src_label, ext) else {
            return Vec::new();
        };
        snap.adjacent(v, src_label, elabel, dir)
            .filter_map(|a| snap.external_id(dst_label, a.nbr))
            .collect()
    }

    /// Adjacency with one edge date property.
    fn adj_dated(
        &self,
        src_label: LabelId,
        dst_label: LabelId,
        elabel: LabelId,
        ext: u64,
        dir: Direction,
    ) -> Vec<(u64, i64)> {
        let snap = self.store.snapshot();
        let Some(v) = snap.internal_id(src_label, ext) else {
            return Vec::new();
        };
        snap.adjacent(v, src_label, elabel, dir)
            .filter_map(|a| {
                let ext = snap.external_id(dst_label, a.nbr)?;
                let d = snap
                    .edge_property(elabel, a.edge, PropId(0))
                    .as_int()
                    .unwrap_or(0);
                Some((ext, d))
            })
            .collect()
    }
}

impl SnbBackend for FlexBackend {
    fn person_ids(&self) -> Vec<u64> {
        let snap = self.store.snapshot();
        snap.vertices(self.l.person)
            .filter_map(|v| snap.external_id(self.l.person, v))
            .collect()
    }

    fn person_prop(&self, id: u64, prop: &str) -> Value {
        self.vprop(self.l.person, id, prop)
    }

    fn friends(&self, id: u64) -> Vec<u64> {
        self.adj(
            self.l.person,
            self.l.person,
            self.l.knows,
            id,
            Direction::Out,
        )
    }

    fn knows_date(&self, a: u64, b: u64) -> Option<i64> {
        self.adj_dated(
            self.l.person,
            self.l.person,
            self.l.knows,
            a,
            Direction::Out,
        )
        .into_iter()
        .find(|&(x, _)| x == b)
        .map(|(_, d)| d)
    }

    fn posts_by(&self, person: u64) -> Vec<u64> {
        self.adj(
            self.l.person,
            self.l.post,
            self.l.has_creator_post,
            person,
            Direction::In,
        )
    }

    fn comments_by(&self, person: u64) -> Vec<u64> {
        self.adj(
            self.l.person,
            self.l.comment,
            self.l.has_creator_comment,
            person,
            Direction::In,
        )
    }

    fn post_prop(&self, id: u64, prop: &str) -> Value {
        self.vprop(self.l.post, id, prop)
    }

    fn comment_prop(&self, id: u64, prop: &str) -> Value {
        self.vprop(self.l.comment, id, prop)
    }

    fn post_creator(&self, post: u64) -> Option<u64> {
        self.adj(
            self.l.post,
            self.l.person,
            self.l.has_creator_post,
            post,
            Direction::Out,
        )
        .into_iter()
        .next()
    }

    fn comment_creator(&self, comment: u64) -> Option<u64> {
        self.adj(
            self.l.comment,
            self.l.person,
            self.l.has_creator_comment,
            comment,
            Direction::Out,
        )
        .into_iter()
        .next()
    }

    fn likes_of_post(&self, post: u64) -> Vec<(u64, i64)> {
        self.adj_dated(
            self.l.post,
            self.l.person,
            self.l.likes_post,
            post,
            Direction::In,
        )
    }

    fn replies_of_post(&self, post: u64) -> Vec<u64> {
        self.adj(
            self.l.post,
            self.l.comment,
            self.l.reply_of,
            post,
            Direction::In,
        )
    }

    fn reply_target(&self, comment: u64) -> Option<u64> {
        self.adj(
            self.l.comment,
            self.l.post,
            self.l.reply_of,
            comment,
            Direction::Out,
        )
        .into_iter()
        .next()
    }

    fn forum_of_post(&self, post: u64) -> Option<u64> {
        self.adj(
            self.l.post,
            self.l.forum,
            self.l.container_of,
            post,
            Direction::In,
        )
        .into_iter()
        .next()
    }

    fn posts_in_forum(&self, forum: u64) -> Vec<u64> {
        self.adj(
            self.l.forum,
            self.l.post,
            self.l.container_of,
            forum,
            Direction::Out,
        )
    }

    fn forum_prop(&self, id: u64, prop: &str) -> Value {
        self.vprop(self.l.forum, id, prop)
    }

    fn forums_of_member(&self, person: u64) -> Vec<(u64, i64)> {
        self.adj_dated(
            self.l.person,
            self.l.forum,
            self.l.has_member,
            person,
            Direction::In,
        )
    }

    fn members(&self, forum: u64) -> Vec<(u64, i64)> {
        self.adj_dated(
            self.l.forum,
            self.l.person,
            self.l.has_member,
            forum,
            Direction::Out,
        )
    }

    fn tags_of_post(&self, post: u64) -> Vec<u64> {
        self.adj(
            self.l.post,
            self.l.tag,
            self.l.has_tag_post,
            post,
            Direction::Out,
        )
    }

    fn tag_name(&self, tag: u64) -> String {
        self.vprop(self.l.tag, tag, "name")
            .as_str()
            .unwrap_or("")
            .to_string()
    }

    fn interests(&self, person: u64) -> Vec<u64> {
        self.adj(
            self.l.person,
            self.l.tag,
            self.l.has_interest,
            person,
            Direction::Out,
        )
    }

    fn add_person(
        &self,
        id: u64,
        first: &str,
        last: &str,
        birthday: i64,
        creation: i64,
    ) -> Result<()> {
        self.store.add_vertex(
            self.l.person,
            id,
            vec![
                Value::Str(first.into()),
                Value::Str(last.into()),
                Value::Date(birthday),
                Value::Date(creation),
                Value::Str("0.0.0.0".into()),
                Value::Str("Firefox".into()),
            ],
        )?;
        self.store.commit();
        Ok(())
    }

    fn add_knows(&self, a: u64, b: u64, date: i64) -> Result<()> {
        self.store
            .add_edge(self.l.knows, a, b, vec![Value::Date(date)])?;
        self.store
            .add_edge(self.l.knows, b, a, vec![Value::Date(date)])?;
        self.store.commit();
        Ok(())
    }

    fn add_forum(&self, id: u64, title: &str, date: i64) -> Result<()> {
        self.store.add_vertex(
            self.l.forum,
            id,
            vec![Value::Str(title.into()), Value::Date(date)],
        )?;
        self.store.commit();
        Ok(())
    }

    fn add_member(&self, forum: u64, person: u64, date: i64) -> Result<()> {
        self.store
            .add_edge(self.l.has_member, forum, person, vec![Value::Date(date)])?;
        self.store.commit();
        Ok(())
    }

    fn add_post(
        &self,
        id: u64,
        creator: u64,
        forum: u64,
        content: &str,
        date: i64,
        length: i64,
    ) -> Result<()> {
        self.store.add_vertex(
            self.l.post,
            id,
            vec![
                Value::Str(content.into()),
                Value::Date(date),
                Value::Int(length),
            ],
        )?;
        self.store
            .add_edge(self.l.has_creator_post, id, creator, vec![])?;
        self.store
            .add_edge(self.l.container_of, forum, id, vec![])?;
        self.store.commit();
        Ok(())
    }

    fn add_comment(
        &self,
        id: u64,
        creator: u64,
        reply_of: u64,
        date: i64,
        length: i64,
    ) -> Result<()> {
        self.store.add_vertex(
            self.l.comment,
            id,
            vec![
                Value::Str(format!("re: {reply_of}")),
                Value::Date(date),
                Value::Int(length),
            ],
        )?;
        self.store
            .add_edge(self.l.has_creator_comment, id, creator, vec![])?;
        self.store.add_edge(self.l.reply_of, id, reply_of, vec![])?;
        self.store.commit();
        Ok(())
    }

    fn add_like(&self, person: u64, post: u64, date: i64) -> Result<()> {
        self.store
            .add_edge(self.l.likes_post, person, post, vec![Value::Date(date)])?;
        self.store.commit();
        Ok(())
    }

    fn add_interest(&self, person: u64, tag: u64) -> Result<()> {
        self.store
            .add_edge(self.l.has_interest, person, tag, vec![])?;
        self.store.commit();
        Ok(())
    }
}

// ================================================================== TuGraph

/// The TuGraph-like baseline backend.
pub struct TuBackend {
    db: TuGraphDb,
}

fn key(label: &str, id: u64) -> VKey {
    (label.to_string(), id)
}

impl TuBackend {
    /// Loads the generated graph into the baseline database.
    pub fn load(graph: &SnbGraph) -> Result<Self> {
        let db = TuGraphDb::new();
        let data = &graph.data;
        let schema = &data.schema;
        for batch in &data.vertices {
            let ldef = schema.vertex_label(batch.label)?;
            for (ext, props) in batch.external_ids.iter().zip(&batch.properties) {
                let map: HashMap<String, Value> = ldef
                    .properties
                    .iter()
                    .zip(props)
                    .map(|(d, v)| (d.name.clone(), v.clone()))
                    .collect();
                db.add_vertex(&ldef.name, *ext, map);
            }
        }
        for batch in &data.edges {
            let ldef = schema.edge_label(batch.label)?;
            let src_name = &schema.vertex_label(ldef.src)?.name;
            let dst_name = &schema.vertex_label(ldef.dst)?.name;
            for (&(s, d), props) in batch.endpoints.iter().zip(&batch.properties) {
                let map: HashMap<String, Value> = ldef
                    .properties
                    .iter()
                    .zip(props)
                    .map(|(p, v)| (p.name.clone(), v.clone()))
                    .collect();
                db.add_edge(&ldef.name, key(src_name, s), key(dst_name, d), map)?;
            }
        }
        Ok(Self { db })
    }

    fn date_of(props: &HashMap<String, Value>, name: &str) -> i64 {
        props.get(name).and_then(|v| v.as_int()).unwrap_or(0)
    }
}

impl SnbBackend for TuBackend {
    fn person_ids(&self) -> Vec<u64> {
        self.db.scan_vertices("Person", |_, _| true)
    }

    fn person_prop(&self, id: u64, prop: &str) -> Value {
        self.db
            .vertex_prop(&key("Person", id), prop)
            .unwrap_or(Value::Null)
    }

    fn friends(&self, id: u64) -> Vec<u64> {
        self.db
            .out_neighbors(&key("Person", id), "KNOWS")
            .into_iter()
            .map(|(k, _)| k.1)
            .collect()
    }

    fn knows_date(&self, a: u64, b: u64) -> Option<i64> {
        self.db
            .out_neighbors(&key("Person", a), "KNOWS")
            .into_iter()
            .find(|(k, _)| k.1 == b)
            .map(|(_, p)| Self::date_of(&p, "creationDate"))
    }

    fn posts_by(&self, person: u64) -> Vec<u64> {
        self.db
            .in_neighbors(&key("Person", person), "POST_HAS_CREATOR")
            .into_iter()
            .map(|(k, _)| k.1)
            .collect()
    }

    fn comments_by(&self, person: u64) -> Vec<u64> {
        self.db
            .in_neighbors(&key("Person", person), "COMMENT_HAS_CREATOR")
            .into_iter()
            .map(|(k, _)| k.1)
            .collect()
    }

    fn post_prop(&self, id: u64, prop: &str) -> Value {
        self.db
            .vertex_prop(&key("Post", id), prop)
            .unwrap_or(Value::Null)
    }

    fn comment_prop(&self, id: u64, prop: &str) -> Value {
        self.db
            .vertex_prop(&key("Comment", id), prop)
            .unwrap_or(Value::Null)
    }

    fn post_creator(&self, post: u64) -> Option<u64> {
        self.db
            .out_neighbors(&key("Post", post), "POST_HAS_CREATOR")
            .first()
            .map(|(k, _)| k.1)
    }

    fn comment_creator(&self, comment: u64) -> Option<u64> {
        self.db
            .out_neighbors(&key("Comment", comment), "COMMENT_HAS_CREATOR")
            .first()
            .map(|(k, _)| k.1)
    }

    fn likes_of_post(&self, post: u64) -> Vec<(u64, i64)> {
        self.db
            .in_neighbors(&key("Post", post), "LIKES")
            .into_iter()
            .map(|(k, p)| (k.1, Self::date_of(&p, "creationDate")))
            .collect()
    }

    fn replies_of_post(&self, post: u64) -> Vec<u64> {
        self.db
            .in_neighbors(&key("Post", post), "REPLY_OF")
            .into_iter()
            .map(|(k, _)| k.1)
            .collect()
    }

    fn reply_target(&self, comment: u64) -> Option<u64> {
        self.db
            .out_neighbors(&key("Comment", comment), "REPLY_OF")
            .first()
            .map(|(k, _)| k.1)
    }

    fn forum_of_post(&self, post: u64) -> Option<u64> {
        self.db
            .in_neighbors(&key("Post", post), "CONTAINER_OF")
            .first()
            .map(|(k, _)| k.1)
    }

    fn posts_in_forum(&self, forum: u64) -> Vec<u64> {
        self.db
            .out_neighbors(&key("Forum", forum), "CONTAINER_OF")
            .into_iter()
            .map(|(k, _)| k.1)
            .collect()
    }

    fn forum_prop(&self, id: u64, prop: &str) -> Value {
        self.db
            .vertex_prop(&key("Forum", id), prop)
            .unwrap_or(Value::Null)
    }

    fn forums_of_member(&self, person: u64) -> Vec<(u64, i64)> {
        self.db
            .in_neighbors(&key("Person", person), "HAS_MEMBER")
            .into_iter()
            .map(|(k, p)| (k.1, Self::date_of(&p, "joinDate")))
            .collect()
    }

    fn members(&self, forum: u64) -> Vec<(u64, i64)> {
        self.db
            .out_neighbors(&key("Forum", forum), "HAS_MEMBER")
            .into_iter()
            .map(|(k, p)| (k.1, Self::date_of(&p, "joinDate")))
            .collect()
    }

    fn tags_of_post(&self, post: u64) -> Vec<u64> {
        self.db
            .out_neighbors(&key("Post", post), "HAS_TAG")
            .into_iter()
            .map(|(k, _)| k.1)
            .collect()
    }

    fn tag_name(&self, tag: u64) -> String {
        self.db
            .vertex_prop(&key("Tag", tag), "name")
            .and_then(|v| v.as_str().map(str::to_string))
            .unwrap_or_default()
    }

    fn interests(&self, person: u64) -> Vec<u64> {
        self.db
            .out_neighbors(&key("Person", person), "HAS_INTEREST")
            .into_iter()
            .map(|(k, _)| k.1)
            .collect()
    }

    fn add_person(
        &self,
        id: u64,
        first: &str,
        last: &str,
        birthday: i64,
        creation: i64,
    ) -> Result<()> {
        self.db.add_vertex(
            "Person",
            id,
            HashMap::from([
                ("firstName".to_string(), Value::Str(first.into())),
                ("lastName".to_string(), Value::Str(last.into())),
                ("birthday".to_string(), Value::Date(birthday)),
                ("creationDate".to_string(), Value::Date(creation)),
            ]),
        );
        Ok(())
    }

    fn add_knows(&self, a: u64, b: u64, date: i64) -> Result<()> {
        let props = HashMap::from([("creationDate".to_string(), Value::Date(date))]);
        self.db
            .add_edge("KNOWS", key("Person", a), key("Person", b), props.clone())?;
        self.db
            .add_edge("KNOWS", key("Person", b), key("Person", a), props)?;
        Ok(())
    }

    fn add_forum(&self, id: u64, title: &str, date: i64) -> Result<()> {
        self.db.add_vertex(
            "Forum",
            id,
            HashMap::from([
                ("title".to_string(), Value::Str(title.into())),
                ("creationDate".to_string(), Value::Date(date)),
            ]),
        );
        Ok(())
    }

    fn add_member(&self, forum: u64, person: u64, date: i64) -> Result<()> {
        self.db.add_edge(
            "HAS_MEMBER",
            key("Forum", forum),
            key("Person", person),
            HashMap::from([("joinDate".to_string(), Value::Date(date))]),
        )
    }

    fn add_post(
        &self,
        id: u64,
        creator: u64,
        forum: u64,
        content: &str,
        date: i64,
        length: i64,
    ) -> Result<()> {
        self.db.add_vertex(
            "Post",
            id,
            HashMap::from([
                ("content".to_string(), Value::Str(content.into())),
                ("creationDate".to_string(), Value::Date(date)),
                ("length".to_string(), Value::Int(length)),
            ]),
        );
        self.db.add_edge(
            "POST_HAS_CREATOR",
            key("Post", id),
            key("Person", creator),
            HashMap::new(),
        )?;
        self.db.add_edge(
            "CONTAINER_OF",
            key("Forum", forum),
            key("Post", id),
            HashMap::new(),
        )
    }

    fn add_comment(
        &self,
        id: u64,
        creator: u64,
        reply_of: u64,
        date: i64,
        length: i64,
    ) -> Result<()> {
        self.db.add_vertex(
            "Comment",
            id,
            HashMap::from([
                ("content".to_string(), Value::Str(format!("re: {reply_of}"))),
                ("creationDate".to_string(), Value::Date(date)),
                ("length".to_string(), Value::Int(length)),
            ]),
        );
        self.db.add_edge(
            "COMMENT_HAS_CREATOR",
            key("Comment", id),
            key("Person", creator),
            HashMap::new(),
        )?;
        self.db.add_edge(
            "REPLY_OF",
            key("Comment", id),
            key("Post", reply_of),
            HashMap::new(),
        )
    }

    fn add_like(&self, person: u64, post: u64, date: i64) -> Result<()> {
        self.db.add_edge(
            "LIKES",
            key("Person", person),
            key("Post", post),
            HashMap::from([("creationDate".to_string(), Value::Date(date))]),
        )
    }

    fn add_interest(&self, person: u64, tag: u64) -> Result<()> {
        self.db.add_edge(
            "HAS_INTEREST",
            key("Person", person),
            key("Tag", tag),
            HashMap::new(),
        )
    }
}

/// Guards against schema drift between datagen and the backends.
pub fn validate_backend_pair(flex: &FlexBackend, tu: &TuBackend) -> Result<()> {
    let (a, b) = (flex.person_ids().len(), tu.person_ids().len());
    if a != b {
        return Err(GraphError::Schema(format!(
            "backend person counts diverge: flex {a} vs tu {b}"
        )));
    }
    Ok(())
}
