//! Stack-wide tracing and metrics for the Flex stack.
//!
//! Every layer of the stack — Gaia, HiActor, GRAPE, GART, GraphAr,
//! gs-learn — reports into one process-global [`Registry`] through three
//! macros:
//!
//! - [`span!`] — an RAII wall-time span, nested per thread into a tree
//!   (`gaia.query/gaia.segment/gaia.barrier`);
//! - [`counter!`] — a monotonic counter;
//! - [`observe!`] — a log-bucket histogram observation (p50/p95/p99).
//!
//! All three take optional `key = value` fields that become part of the
//! metric name (`counter!("gaia.records", op = "Scan"; n)` increments
//! `gaia.records{op=Scan}`).
//!
//! **Cost when off.** No registry installed means every macro reduces to a
//! single relaxed atomic load and a branch; field arguments are not even
//! evaluated. There is no feature flag to compile telemetry out — it is
//! cheap enough to leave in release builds, which is the point: the paper's
//! figures are produced by flipping `--telemetry` on an already-built
//! binary.
//!
//! ```
//! let registry = gs_telemetry::Registry::new();
//! gs_telemetry::install(registry.clone());
//! {
//!     let _span = gs_telemetry::span!("demo.work", worker = 0);
//!     gs_telemetry::counter!("demo.records"; 128);
//!     gs_telemetry::observe!("demo.latency_ns"; 1500);
//! }
//! assert_eq!(registry.counter_value("demo.records"), 128);
//! gs_telemetry::uninstall();
//! ```

mod histogram;
mod registry;
mod span;

pub use histogram::{Histogram, BUCKETS};
pub use registry::{Registry, SpanStat, StaticCounter, StaticHistogram};
pub use span::{current_path, SpanGuard};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed registry. `OnceLock<Mutex<..>>` rather than a plain
/// `OnceLock<Registry>` so `install` can swap registries across
/// experiments; `ENABLED` is the hot-path gate, the mutex is only taken
/// on install/global calls (which hot paths cache via [`StaticCounter`]).
/// Non-poisoning so a panic between install and use cannot wedge the slot.
static GLOBAL: OnceLock<parking_lot::Mutex<Registry>> = OnceLock::new();

fn slot() -> &'static parking_lot::Mutex<Registry> {
    GLOBAL.get_or_init(|| parking_lot::Mutex::new(Registry::new()))
}

/// Installs `registry` as the process-global sink and enables collection.
pub fn install(registry: Registry) {
    *slot().lock() = registry;
    ENABLED.store(true, Ordering::Release);
}

/// Disables collection. The previously installed registry keeps its data.
pub fn uninstall() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether a registry is installed and collecting.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// A clone of the installed registry (an empty disconnected one if
/// nothing was ever installed).
pub fn global() -> Registry {
    slot().lock().clone()
}

#[doc(hidden)]
pub fn __counter_add(key: &str, n: u64) {
    global().counter(key).fetch_add(n, Ordering::Relaxed);
}

#[doc(hidden)]
pub fn __observe(key: &str, v: u64) {
    global().histogram(key).record(v);
}

/// Builds a metric key `name{k=v,...}` from a base name and fields.
/// Internal to the macros below.
#[doc(hidden)]
#[macro_export]
macro_rules! __key {
    ($name:expr) => { ::std::borrow::Cow::Borrowed($name) };
    ($name:expr, $($k:ident = $v:expr),+) => {{
        use ::std::fmt::Write as _;
        let mut __s = ::std::string::String::from($name);
        __s.push('{');
        let mut __first = true;
        $(
            if !__first { __s.push(','); }
            __first = false;
            let _ = ::core::write!(__s, concat!(stringify!($k), "={}"), $v);
        )+
        let _ = __first;
        __s.push('}');
        ::std::borrow::Cow::<str>::Owned(__s)
    }};
}

/// Enters a wall-time span; returns a guard that records on drop.
///
/// `span!("gaia.segment", idx = i)` times the enclosing scope under the
/// key `gaia.segment{idx=0}`, nested beneath whatever span is active on
/// this thread. When telemetry is disabled the fields are not evaluated
/// and a no-op guard is returned.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::SpanGuard::enter($crate::global(), &$crate::__key!($name $(, $k = $v)*))
        } else {
            $crate::SpanGuard::noop()
        }
    };
}

/// Adds to a monotonic counter: `counter!("gaia.records", op = name; n)`.
/// The amount after `;` defaults to 1 when omitted.
#[macro_export]
macro_rules! counter {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        $crate::counter!($name $(, $k = $v)*; 1u64)
    };
    ($name:expr $(, $k:ident = $v:expr)*; $n:expr) => {
        if $crate::enabled() {
            $crate::__counter_add(&$crate::__key!($name $(, $k = $v)*), $n);
        }
    };
}

/// Records a histogram observation: `observe!("gaia.op_ns", op = name; ns)`.
#[macro_export]
macro_rules! observe {
    ($name:expr $(, $k:ident = $v:expr)*; $v_:expr) => {
        if $crate::enabled() {
            $crate::__observe(&$crate::__key!($name $(, $k = $v)*), $v_);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global state is shared across the test binary, so everything that
    // exercises install/uninstall lives in this one serial test.
    #[test]
    fn macros_roundtrip_through_global_registry() {
        let r = Registry::new();
        install(r.clone());
        assert!(enabled());

        {
            let _q = span!("test.query", id = 7);
            let _s = span!("test.stage");
            counter!("test.hits");
            counter!("test.records", op = "Scan"; 41);
            counter!("test.records", op = "Scan"; 1);
            observe!("test.lat_ns", op = "Scan"; 1234);
        }

        assert_eq!(r.counter_value("test.hits"), 1);
        assert_eq!(r.counter_value("test.records{op=Scan}"), 42);
        let names = r.span_names();
        assert!(names.contains(&"test.query{id=7}".to_string()), "{names:?}");
        assert!(
            names.contains(&"test.query{id=7}/test.stage".to_string()),
            "{names:?}"
        );
        assert_eq!(r.span_stat("test.query{id=7}/test.stage").count(), 1);

        let report = r.text_report();
        assert!(report.contains("test.records{op=Scan} = 42"));
        assert!(report.contains("test.lat_ns{op=Scan}"));

        // disabled: nothing is recorded, side effects are not evaluated
        uninstall();
        assert!(!enabled());
        let mut evaluated = false;
        counter!(
            "test.hits",
            flag = {
                evaluated = true;
                1
            }
        );
        {
            let _g = span!("test.ghost");
        }
        assert!(!evaluated, "field args must not run when disabled");
        assert_eq!(r.counter_value("test.hits"), 1);
        assert!(!r.span_names().contains(&"test.ghost".to_string()));

        // swapping registries: the new one receives subsequent metrics
        let r2 = Registry::new();
        install(r2.clone());
        counter!("test.hits"; 3);
        assert_eq!(r2.counter_value("test.hits"), 3);
        assert_eq!(r.counter_value("test.hits"), 1);
        uninstall();
    }

    #[test]
    fn static_handles_gate_on_enabled() {
        static C: StaticCounter = StaticCounter::new("static.test.c");
        static H: StaticHistogram = StaticHistogram::new("static.test.h");
        // not installed-for-this-counter yet: with telemetry off these are free
        C.add(1);
        H.record(1);
        // they bind to whatever registry is global at first *enabled* use;
        // correctness under install/uninstall is covered by the serial test
        // above — here we only check the disabled path doesn't panic.
    }
}
