/root/repo/target/debug/deps/gs_gart-b63fb4f8e54cb3d7.d: crates/gs-gart/src/lib.rs

/root/repo/target/debug/deps/gs_gart-b63fb4f8e54cb3d7: crates/gs-gart/src/lib.rs

crates/gs-gart/src/lib.rs:
