//! Compressed sparse row topology.
//!
//! CSR (and its transpose, CSC) is the workhorse representation for the
//! immutable Vineyard store, the static baseline in Fig. 7(c), and the
//! fragment-local topology used by GRAPE and the learning stack. The builder
//! uses a counting-sort pass, so construction is O(V + E) with no comparison
//! sort.

use crate::ids::{EId, VId};

/// Immutable CSR adjacency: `offsets[v]..offsets[v+1]` indexes into
/// `targets` (neighbor vertex ids) and `edge_ids` (dense edge identifiers).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Csr {
    offsets: Vec<u64>,
    targets: Vec<VId>,
    edge_ids: Vec<EId>,
}

impl Csr {
    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VId) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Neighbor slice of `v` (array-like GRIN access trait).
    #[inline]
    pub fn neighbors(&self, v: VId) -> &[VId] {
        let i = v.index();
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Edge-id slice parallel to [`Csr::neighbors`].
    #[inline]
    pub fn edge_ids(&self, v: VId) -> &[EId] {
        let i = v.index();
        &self.edge_ids[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterates `(neighbor, edge_id)` pairs of `v` (iterator-based GRIN
    /// access trait).
    #[inline]
    pub fn adj(&self, v: VId) -> impl Iterator<Item = (VId, EId)> + '_ {
        self.neighbors(v)
            .iter()
            .copied()
            .zip(self.edge_ids(v).iter().copied())
    }

    /// Raw offset array (used by Graphalytics-style scan kernels).
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Raw target array.
    #[inline]
    pub fn targets(&self) -> &[VId] {
        &self.targets
    }

    /// Membership test for an edge `v -> w`; neighbor lists are sorted by
    /// the builder, enabling O(log d) binary search (used by triangle
    /// counting / LCC and the pattern matcher). Tiny adjacency lists
    /// (below [`crate::layout::HAS_EDGE_BINARY_THRESHOLD`]) take a linear
    /// pass instead — for short lists the branchy binary search loses to a
    /// straight scan.
    pub fn has_edge(&self, v: VId, w: VId) -> bool {
        crate::layout::sorted_contains(self.neighbors(v), w)
    }

    /// Builds a CSR (and dense edge-id assignment) from an edge list.
    ///
    /// `n` is the vertex count; edges reference vertices `< n`. Edge ids are
    /// assigned in CSR order: edge `i` of the concatenated adjacency arrays
    /// gets id `i`, so a parallel edge-property array can be indexed by
    /// [`EId`] directly.
    pub fn from_edges(n: usize, edges: &[(VId, VId)]) -> Csr {
        let mut b = CsrBuilder::new(n);
        for &(s, _) in edges {
            b.add_degree(s);
        }
        b.finish_degrees();
        for &(s, d) in edges {
            b.push_edge(s, d);
        }
        let mut csr = b.build();
        csr.sort_neighbors();
        csr
    }

    /// Assembles a CSR from raw parts. `offsets` must be a monotone prefix
    /// array with `offsets[n] == targets.len() == edge_ids.len()`; callers
    /// (e.g. the cross-label transpose in Vineyard) are responsible for
    /// neighbor-sortedness if they rely on [`Csr::has_edge`].
    pub fn from_parts(offsets: Vec<u64>, targets: Vec<VId>, edge_ids: Vec<EId>) -> Csr {
        debug_assert_eq!(*offsets.last().unwrap_or(&0) as usize, targets.len());
        debug_assert_eq!(targets.len(), edge_ids.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        Csr {
            offsets,
            targets,
            edge_ids,
        }
    }

    /// Builds the transpose (CSC if `self` is CSR): edge ids are preserved so
    /// edge properties resolved through either direction agree.
    pub fn transpose(&self) -> Csr {
        let n = self.vertex_count();
        let mut degree = vec![0u64; n];
        for &t in &self.targets {
            degree[t.index()] += 1;
        }
        let mut offsets = vec![0u64; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![VId(0); self.targets.len()];
        let mut edge_ids = vec![EId(0); self.targets.len()];
        for v in 0..n {
            let vid = VId(v as u64);
            for (w, e) in self.adj(vid) {
                let c = &mut cursor[w.index()];
                targets[*c as usize] = vid;
                edge_ids[*c as usize] = e;
                *c += 1;
            }
        }
        let mut t = Csr {
            offsets,
            targets,
            edge_ids,
        };
        t.sort_neighbors();
        t
    }

    /// Sorts each adjacency list by neighbor id, keeping edge ids aligned.
    fn sort_neighbors(&mut self) {
        for v in 0..self.vertex_count() {
            let lo = self.offsets[v] as usize;
            let hi = self.offsets[v + 1] as usize;
            let mut pairs: Vec<(VId, EId)> = self.targets[lo..hi]
                .iter()
                .copied()
                .zip(self.edge_ids[lo..hi].iter().copied())
                .collect();
            pairs.sort_unstable_by_key(|p| p.0);
            for (i, (t, e)) in pairs.into_iter().enumerate() {
                self.targets[lo + i] = t;
                self.edge_ids[lo + i] = e;
            }
        }
    }
}

/// Two-pass counting-sort CSR builder.
///
/// Usage: `add_degree` for every edge, `finish_degrees`, then `push_edge`
/// for every edge, then `build`.
#[derive(Debug)]
pub struct CsrBuilder {
    offsets: Vec<u64>,
    cursor: Vec<u64>,
    targets: Vec<VId>,
    edge_ids: Vec<EId>,
    next_eid: u64,
    phase2: bool,
}

impl CsrBuilder {
    /// Builder for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            offsets: vec![0; n + 1],
            cursor: Vec::new(),
            targets: Vec::new(),
            edge_ids: Vec::new(),
            next_eid: 0,
            phase2: false,
        }
    }

    /// Phase-1: count one out-edge at `src`.
    #[inline]
    pub fn add_degree(&mut self, src: VId) {
        debug_assert!(!self.phase2, "add_degree after finish_degrees");
        self.offsets[src.index() + 1] += 1;
    }

    /// Ends phase 1: prefix-sums the degree counts into offsets.
    pub fn finish_degrees(&mut self) {
        for i in 1..self.offsets.len() {
            self.offsets[i] += self.offsets[i - 1];
        }
        self.cursor = self.offsets[..self.offsets.len() - 1].to_vec();
        let m = *self.offsets.last().unwrap() as usize;
        self.targets = vec![VId(0); m];
        self.edge_ids = vec![EId(0); m];
        self.phase2 = true;
    }

    /// Phase-2: place an edge; edge ids are assigned in call order.
    #[inline]
    pub fn push_edge(&mut self, src: VId, dst: VId) {
        debug_assert!(self.phase2, "push_edge before finish_degrees");
        let c = &mut self.cursor[src.index()];
        self.targets[*c as usize] = dst;
        self.edge_ids[*c as usize] = EId(self.next_eid);
        self.next_eid += 1;
        *c += 1;
    }

    /// Finalises the CSR.
    pub fn build(self) -> Csr {
        debug_assert!(self.phase2);
        Csr {
            offsets: self.offsets,
            targets: self.targets,
            edge_ids: self.edge_ids,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // 0 -> 1, 0 -> 2, 1 -> 2, 2 -> 0, 3 isolated
        Csr::from_edges(
            4,
            &[
                (VId(0), VId(2)),
                (VId(0), VId(1)),
                (VId(1), VId(2)),
                (VId(2), VId(0)),
            ],
        )
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = sample();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(VId(0)), 2);
        assert_eq!(g.neighbors(VId(0)), &[VId(1), VId(2)]); // sorted
        assert_eq!(g.degree(VId(3)), 0);
        assert!(g.neighbors(VId(3)).is_empty());
    }

    #[test]
    fn edge_ids_are_dense_and_aligned() {
        let g = sample();
        let mut seen: Vec<u64> = Vec::new();
        for v in 0..g.vertex_count() {
            for (_, e) in g.adj(VId(v as u64)) {
                seen.push(e.0);
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn has_edge_membership() {
        let g = sample();
        assert!(g.has_edge(VId(0), VId(2)));
        assert!(!g.has_edge(VId(2), VId(1)));
    }

    #[test]
    fn transpose_preserves_edges() {
        let g = sample();
        let t = g.transpose();
        assert_eq!(t.edge_count(), g.edge_count());
        // each edge (s,d,e) in g appears as (d,s,e) in t
        for v in 0..g.vertex_count() {
            for (w, e) in g.adj(VId(v as u64)) {
                let found = t.adj(w).any(|(x, f)| x == VId(v as u64) && f == e);
                assert!(found, "missing transposed edge {v}->{w:?}");
            }
        }
        // double transpose equals original
        assert_eq!(t.transpose(), g);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]);
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn self_loops_and_parallel_edges_kept() {
        let g = Csr::from_edges(2, &[(VId(0), VId(0)), (VId(0), VId(1)), (VId(0), VId(1))]);
        assert_eq!(g.degree(VId(0)), 3);
        assert_eq!(g.neighbors(VId(0)), &[VId(0), VId(1), VId(1)]);
    }
}
