//! Business-intelligence analytics over an LDBC SNB-lite social network:
//! the OLAP brick selection — Cypher-compatible GraphIR plans, the
//! GLogue-backed optimizer, and the Gaia data-parallel engine over
//! Vineyard.
//!
//! ```text
//! cargo run --release --example snb_analytics
//! ```

use graphscope_flex::prelude::*;
use gs_flex::snb::{bi_plan, BiParams};
use gs_ir::exec::execute;
use gs_ir::physical::lower_naive;
use std::time::Instant;

fn main() -> gs_graph::Result<()> {
    let social = generate_snb(&SnbConfig::lite(1_500));
    println!(
        "SNB-lite: {} persons, {} posts, {} comments, {} forums\n",
        social.persons, social.posts, social.comments, social.forums
    );
    let store = VineyardGraph::build(&social.data)?;
    let schema = social.data.schema.clone();

    let catalog = GlogueCatalog::build(&store, 500);
    let optimizer = Optimizer::new(catalog);
    let gaia = GaiaEngine::new(4);
    let params = BiParams::default();

    // run a few headline BI queries and show the engine/optimizer effect
    for (n, title) in [
        (2usize, "tag usage ranking"),
        (6, "authoritative users (likes received)"),
        (14, "dialog pairs (who replies to whom)"),
        (19, "tag co-occurrence"),
    ] {
        let plan = bi_plan(n, &schema, &social.labels, &params)?;
        let optimized = optimizer.optimize(&plan)?;
        let t0 = Instant::now();
        let rows = gaia.execute(&optimized, &store)?;
        let fast = t0.elapsed();
        let t1 = Instant::now();
        let baseline = execute(&lower_naive(&plan)?, &store)?;
        let slow = t1.elapsed();
        assert_eq!(rows.len(), baseline.len());
        println!("BI{n} — {title}");
        println!("  optimized+parallel {fast:?} vs naive single-thread {slow:?}");
        for r in rows.iter().take(3) {
            let cells: Vec<String> = r.iter().map(|v| v.to_string()).collect();
            println!("    {}", cells.join(" | "));
        }
        println!();
    }
    Ok(())
}
