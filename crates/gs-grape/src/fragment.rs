//! Fragments: the per-worker piece of an edge-cut-partitioned graph.
//!
//! A fragment owns its *inner* vertices and all edges sourced at them;
//! destination vertices owned elsewhere appear as *outer* mirrors. Local
//! dense ids place inner vertices first (`0..inner_count`) and outer
//! mirrors after, so per-vertex state is a flat array — the layout GRAPE's
//! "highly optimized core operators for fragment management" rely on.

use gs_graph::csr::Csr;
use gs_graph::partition::{EdgeCutPartitioner, PartitionId};
use gs_graph::VId;
use std::collections::HashMap;

/// One fragment of a partitioned (optionally weighted) graph.
pub struct Fragment {
    pub id: PartitionId,
    pub total_fragments: usize,
    /// Total vertex count of the global graph.
    pub global_n: usize,
    /// Partitioner used to route messages to owners.
    pub router: EdgeCutPartitioner,
    /// local id → global id (inner first, then outer).
    pub l2g: Vec<VId>,
    /// global id → local id.
    g2l: HashMap<VId, u32>,
    /// Number of inner (owned) vertices.
    pub inner_count: usize,
    /// Local CSR over local ids (edges sourced at inner vertices).
    pub out: Csr,
    /// Local reverse CSR (in-edges of local vertices, from local sources).
    pub inn: Csr,
    /// Optional edge weights parallel to `out` edge ids.
    pub weights: Option<Vec<f64>>,
}

impl Fragment {
    /// Partitions a global edge list into `k` fragments.
    pub fn partition_edges(n: usize, edges: &[(VId, VId)], k: usize) -> Vec<Fragment> {
        Self::partition_weighted(n, edges, None, k)
    }

    /// Partitions with optional per-edge weights (parallel to `edges`).
    ///
    /// Routing is a single sequential pass (inner vertices in ascending
    /// global order, edges and their weights in global order, keyed by the
    /// source's owner); the per-fragment CSR/CSC construction then runs in
    /// parallel, one thread per fragment.
    pub fn partition_weighted(
        n: usize,
        edges: &[(VId, VId)],
        weights: Option<&[f64]>,
        k: usize,
    ) -> Vec<Fragment> {
        let router = EdgeCutPartitioner::new(k);
        let mut inner: Vec<Vec<VId>> = vec![Vec::new(); k];
        for v in 0..n as u64 {
            inner[router.owner(VId(v)).index()].push(VId(v));
        }
        let mut frag_edges: Vec<Vec<(VId, VId)>> = vec![Vec::new(); k];
        let mut frag_weights: Vec<Vec<f64>> = vec![Vec::new(); k];
        for (i, &(s, d)) in edges.iter().enumerate() {
            let f = router.owner(s).index();
            frag_edges[f].push((s, d));
            if let Some(ws) = weights {
                frag_weights[f].push(ws[i]);
            }
        }
        // one fragment's routed share: (index, owned vertices, edges, weights)
        type RoutedShare = (usize, Vec<VId>, Vec<(VId, VId)>, Option<Vec<f64>>);
        let mut parts: Vec<RoutedShare> = inner
            .into_iter()
            .zip(frag_edges)
            .zip(frag_weights)
            .enumerate()
            .map(|(i, ((inn, e), w))| (i, inn, e, weights.is_some().then_some(w)))
            .collect();
        let mut frags: Vec<Option<Fragment>> = (0..k).map(|_| None).collect();
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(k);
            for (i, inn, e, w) in parts.drain(..) {
                handles.push(
                    scope.spawn(move |_| Self::build(PartitionId(i as u32), router, n, inn, &e, w)),
                );
            }
            for (slot, h) in frags.iter_mut().zip(handles) {
                *slot = Some(h.join().expect("fragment build panicked"));
            }
        })
        .expect("fragment build scope");
        frags.into_iter().map(|f| f.unwrap()).collect()
    }

    /// Builds one fragment from its routed share: owned vertices (ascending
    /// global order), edges sourced at them (global order), and weights
    /// parallel to those edges.
    fn build(
        id: PartitionId,
        router: EdgeCutPartitioner,
        n: usize,
        inner: Vec<VId>,
        edges: &[(VId, VId)],
        weights: Option<Vec<f64>>,
    ) -> Fragment {
        let mut outer: Vec<VId> = Vec::new();
        {
            let mut seen = std::collections::HashSet::new();
            for &(_, d) in edges {
                if router.owner(d) != id && seen.insert(d) {
                    outer.push(d);
                }
            }
        }
        outer.sort_unstable();
        let inner_count = inner.len();
        let mut l2g = inner;
        l2g.extend(outer);
        let g2l: HashMap<VId, u32> = l2g
            .iter()
            .enumerate()
            .map(|(i, &g)| (g, i as u32))
            .collect();
        let local_edges: Vec<(VId, VId)> = edges
            .iter()
            .map(|&(s, d)| (VId(g2l[&s] as u64), VId(g2l[&d] as u64)))
            .collect();
        // Csr::from_edges assigns edge id i to the i-th pushed pair, so the
        // routed weight vector is already in edge-id order.
        let out = Csr::from_edges(l2g.len(), &local_edges);
        let inn = out.transpose();
        Fragment {
            id,
            total_fragments: router.partition_count(),
            global_n: n,
            router,
            l2g,
            g2l,
            inner_count,
            out,
            inn,
            weights,
        }
    }

    /// Local id of a global vertex, if present on this fragment.
    #[inline]
    pub fn local(&self, g: VId) -> Option<u32> {
        self.g2l.get(&g).copied()
    }

    /// Global id of a local vertex.
    #[inline]
    pub fn global(&self, l: u32) -> VId {
        self.l2g[l as usize]
    }

    /// Whether a local id is an inner (owned) vertex.
    #[inline]
    pub fn is_inner(&self, l: u32) -> bool {
        (l as usize) < self.inner_count
    }

    /// Owner fragment of a global vertex.
    #[inline]
    pub fn owner(&self, g: VId) -> PartitionId {
        self.router.owner(g)
    }

    /// Local vertex count (inner + outer).
    #[inline]
    pub fn local_count(&self) -> usize {
        self.l2g.len()
    }

    /// Out-neighbors (local ids) of a local vertex.
    #[inline]
    pub fn out_neighbors(&self, l: u32) -> &[VId] {
        self.out.neighbors(VId(l as u64))
    }

    /// Edge ids parallel to [`Fragment::out_neighbors`] (index `weights`).
    #[inline]
    pub fn out_edge_ids(&self, l: u32) -> &[gs_graph::EId] {
        self.out.edge_ids(VId(l as u64))
    }

    /// Local edge count.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out.edge_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Vec<(VId, VId)> {
        (0..n as u64)
            .map(|i| (VId(i), VId((i + 1) % n as u64)))
            .collect()
    }

    #[test]
    fn fragments_cover_graph() {
        let edges = ring(100);
        let frags = Fragment::partition_edges(100, &edges, 4);
        let inner_total: usize = frags.iter().map(|f| f.inner_count).sum();
        let edge_total: usize = frags.iter().map(|f| f.edge_count()).sum();
        assert_eq!(inner_total, 100);
        assert_eq!(edge_total, 100);
    }

    #[test]
    fn local_global_round_trip() {
        let edges = ring(50);
        let frags = Fragment::partition_edges(50, &edges, 3);
        for f in &frags {
            for l in 0..f.local_count() as u32 {
                let g = f.global(l);
                assert_eq!(f.local(g), Some(l));
                if f.is_inner(l) {
                    assert_eq!(f.owner(g), f.id);
                }
            }
        }
    }

    #[test]
    fn edges_point_to_valid_locals() {
        let edges = ring(64);
        let frags = Fragment::partition_edges(64, &edges, 4);
        for f in &frags {
            for l in 0..f.inner_count as u32 {
                for &nbr in f.out_neighbors(l) {
                    assert!((nbr.index()) < f.local_count());
                }
            }
        }
    }

    #[test]
    fn weights_follow_edges() {
        let edges = vec![(VId(0), VId(1)), (VId(1), VId(2)), (VId(2), VId(0))];
        let weights = vec![0.1, 0.2, 0.3];
        let frags = Fragment::partition_weighted(3, &edges, Some(&weights), 2);
        let mut seen: Vec<f64> = Vec::new();
        for f in &frags {
            if let Some(ws) = &f.weights {
                for l in 0..f.inner_count as u32 {
                    for (&nbr, &eid) in f.out_neighbors(l).iter().zip(f.out_edge_ids(l)) {
                        let _ = nbr;
                        seen.push(ws[eid.index()]);
                    }
                }
            }
        }
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(seen, weights);
    }

    #[test]
    fn weights_align_exactly_even_with_parallel_edges() {
        // duplicate (0,1) edges with distinct weights: alignment must follow
        // the global edge order, not a multiset match
        let edges = vec![
            (VId(0), VId(1)),
            (VId(0), VId(1)),
            (VId(1), VId(0)),
            (VId(2), VId(1)),
        ];
        let weights = vec![10.0, 20.0, 30.0, 40.0];
        let frags = Fragment::partition_weighted(3, &edges, Some(&weights), 2);
        let mut recovered: Vec<(u64, u64, f64)> = Vec::new();
        for f in &frags {
            let ws = f.weights.as_ref().unwrap();
            for l in 0..f.inner_count as u32 {
                for (&nbr, &eid) in f.out_neighbors(l).iter().zip(f.out_edge_ids(l)) {
                    recovered.push((f.global(l).0, f.global(nbr.0 as u32).0, ws[eid.index()]));
                }
            }
        }
        recovered.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(
            recovered,
            vec![(0, 1, 10.0), (0, 1, 20.0), (1, 0, 30.0), (2, 1, 40.0)]
        );
    }

    #[test]
    fn single_fragment_has_everything_inner() {
        let edges = ring(10);
        let frags = Fragment::partition_edges(10, &edges, 1);
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0].inner_count, 10);
        assert_eq!(frags[0].local_count(), 10);
    }
}
