//! Real-time fraud detection (paper §8): the OLTP brick selection —
//! HiActor over GART — ingesting an order stream and flagging suspicious
//! co-purchases against known fraud seeds.
//!
//! ```text
//! cargo run --release --example fraud_detection
//! ```

use gs_datagen::apps::fraud_graph;
use gs_flex::{FraudApp, FraudConfig};
use std::sync::Arc;
use std::time::Instant;

fn main() -> gs_graph::Result<()> {
    // a transaction graph: accounts, items, historical BUY and KNOWS edges,
    // a seed list of known-fraud accounts, and an incoming order stream
    let workload = fraud_graph(2_000, 800, 10_000, 2_000, 42);
    println!(
        "transaction graph: {} accounts, {} items, {} historical orders, {} fraud seeds",
        workload.accounts,
        workload.items,
        workload.data.edges[workload.labels.buy.index()]
            .endpoints
            .len(),
        workload.seeds.len(),
    );

    // sanity: the stored procedure and the Cypher query agree
    let probe_app = FraudApp::new(&workload, FraudConfig::default(), 2)?;
    let probe = workload.seeds[0];
    assert_eq!(
        probe_app.check_order(probe, 15_350)?,
        probe_app.check_order_cypher(probe)?,
        "stored procedure must match the Cypher semantics"
    );

    // drive the online stream through concurrent clients (each order is a
    // GART insert + commit + co-purchase check); a fresh deployment per
    // configuration keeps the ingested graph identical across runs
    for threads in [1usize, 2, 4, 8] {
        let app = Arc::new(FraudApp::new(&workload, FraudConfig::default(), threads)?);
        let t0 = Instant::now();
        let qps = app.run_throughput(&workload.order_stream, threads);
        println!(
            "{threads} client threads: {qps:.0} checks/s ({} alerts, wall {:?})",
            app.alerts(),
            t0.elapsed()
        );
    }
    Ok(())
}
