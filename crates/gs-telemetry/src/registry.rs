//! The metric registry: named counters, histograms, and span stats.
//!
//! A [`Registry`] is a cheap clone (one `Arc`). Handles returned by
//! [`Registry::counter`] / [`Registry::histogram`] stay valid across
//! [`Registry::reset`] — reset zeroes values in place rather than dropping
//! entries, so hot paths may cache a handle once (see [`StaticCounter`])
//! and never touch the lock again.

use crate::histogram::Histogram;
use gs_sanitizer::TrackedRwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Aggregate statistics for one span path: invocation count + wall-time
/// histogram.
pub struct SpanStat {
    hist: Histogram,
}

impl SpanStat {
    fn new() -> Self {
        Self {
            hist: Histogram::new(),
        }
    }

    /// Records one completed span of `ns` nanoseconds.
    pub fn record(&self, ns: u64) {
        self.hist.record(ns);
    }

    /// Number of completed spans.
    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    /// Total wall time across completed spans, in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.hist.sum()
    }

    /// The underlying wall-time histogram (nanoseconds).
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }
}

/// The three metric maps behind non-poisoning tracked locks: a thread that
/// panics mid-record (e.g. a span guard unwinding) must never wedge the
/// registry for everyone else, so these deliberately avoid `std::sync`'s
/// lock poisoning.
struct Inner {
    counters: TrackedRwLock<HashMap<String, Arc<AtomicU64>>>,
    histograms: TrackedRwLock<HashMap<String, Arc<Histogram>>>,
    spans: TrackedRwLock<HashMap<String, Arc<SpanStat>>>,
}

impl Default for Inner {
    fn default() -> Self {
        Self {
            counters: TrackedRwLock::new("telemetry.counters", HashMap::new()),
            histograms: TrackedRwLock::new("telemetry.histograms", HashMap::new()),
            spans: TrackedRwLock::new("telemetry.spans", HashMap::new()),
        }
    }
}

/// A thread-safe collection of named metrics.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

fn get_or_insert<V, F: FnOnce() -> V>(
    map: &TrackedRwLock<HashMap<String, Arc<V>>>,
    name: &str,
    make: F,
) -> Arc<V> {
    if let Some(v) = map.read().get(name) {
        return Arc::clone(v);
    }
    let mut w = map.write();
    Arc::clone(
        w.entry(name.to_string())
            .or_insert_with(|| Arc::new(make())),
    )
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        get_or_insert(&self.inner.counters, name, || AtomicU64::new(0))
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.inner.histograms, name, Histogram::new)
    }

    /// The span stat for the nested path `path`, created on first use.
    pub fn span_stat(&self, path: &str) -> Arc<SpanStat> {
        get_or_insert(&self.inner.spans, path, SpanStat::new)
    }

    /// Current value of a counter, 0 if it was never touched.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .counters
            .read()
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// All span paths currently registered, sorted.
    pub fn span_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.spans.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// All counter names currently registered, sorted.
    pub fn counter_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.counters.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Zeroes every metric **in place**. Entries (and any cached handles to
    /// them) survive; only the values are cleared.
    pub fn reset(&self) {
        for c in self.inner.counters.read().values() {
            c.store(0, Ordering::Relaxed);
        }
        for h in self.inner.histograms.read().values() {
            h.reset();
        }
        for s in self.inner.spans.read().values() {
            s.hist.reset();
        }
    }

    /// Human-readable report: span tree (indented by nesting), then
    /// counters, then histograms, all sorted by name. Metrics whose value
    /// is still zero after [`reset`](Registry::reset) are skipped.
    pub fn text_report(&self) -> String {
        let mut out = String::new();
        out.push_str("== telemetry report ==\n");

        let spans = self.inner.spans.read();
        let mut paths: Vec<&String> = spans.keys().collect();
        paths.sort();
        if !paths.is_empty() {
            out.push_str("-- spans --\n");
            for path in paths {
                let s = &spans[path];
                if s.count() == 0 {
                    continue;
                }
                let depth = path.matches('/').count();
                let leaf = path.rsplit('/').next().unwrap_or(path);
                let h = s.histogram();
                out.push_str(&format!(
                    "{:indent$}{leaf}  count={} total={} mean={} p50={} p95={} p99={} max={}\n",
                    "",
                    s.count(),
                    fmt_ns(s.total_ns()),
                    fmt_ns(h.mean() as u64),
                    fmt_ns(h.value_at_quantile(0.5)),
                    fmt_ns(h.value_at_quantile(0.95)),
                    fmt_ns(h.value_at_quantile(0.99)),
                    fmt_ns(h.max()),
                    indent = depth * 2,
                ));
            }
        }
        drop(spans);

        let counters = self.inner.counters.read();
        let mut names: Vec<&String> = counters.keys().collect();
        names.sort();
        if !names.is_empty() {
            out.push_str("-- counters --\n");
            for name in names {
                let v = counters[name].load(Ordering::Relaxed);
                if v != 0 {
                    out.push_str(&format!("{name} = {v}\n"));
                }
            }
        }
        drop(counters);

        let hists = self.inner.histograms.read();
        let mut names: Vec<&String> = hists.keys().collect();
        names.sort();
        if !names.is_empty() {
            out.push_str("-- histograms --\n");
            for name in names {
                let h = &hists[name];
                if h.count() == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "{name}  count={} mean={:.1} p50={} p95={} p99={} max={}\n",
                    h.count(),
                    h.mean(),
                    h.value_at_quantile(0.5),
                    h.value_at_quantile(0.95),
                    h.value_at_quantile(0.99),
                    h.max(),
                ));
            }
        }
        out
    }

    /// Machine-readable report: one JSON object with `spans`, `counters`,
    /// and `histograms` maps, rendered by hand to keep the crate
    /// dependency-free.
    pub fn json_report(&self) -> String {
        let mut out = String::from("{\"spans\":{");
        let spans = self.inner.spans.read();
        let mut paths: Vec<&String> = spans.keys().collect();
        paths.sort();
        let mut first = true;
        for path in paths {
            let s = &spans[path];
            if s.count() == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let h = s.histogram();
            out.push_str(&format!(
                "{}:{{\"count\":{},\"total_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
                json_str(path),
                s.count(),
                s.total_ns(),
                h.value_at_quantile(0.5),
                h.value_at_quantile(0.95),
                h.value_at_quantile(0.99),
                h.max(),
            ));
        }
        drop(spans);

        out.push_str("},\"counters\":{");
        let counters = self.inner.counters.read();
        let mut names: Vec<&String> = counters.keys().collect();
        names.sort();
        let mut first = true;
        for name in names {
            let v = counters[name].load(Ordering::Relaxed);
            if v == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{}:{v}", json_str(name)));
        }
        drop(counters);

        out.push_str("},\"histograms\":{");
        let hists = self.inner.histograms.read();
        let mut names: Vec<&String> = hists.keys().collect();
        names.sort();
        let mut first = true;
        for name in names {
            let h = &hists[name];
            if h.count() == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{}:{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
                json_str(name),
                h.count(),
                h.sum(),
                h.value_at_quantile(0.5),
                h.value_at_quantile(0.95),
                h.value_at_quantile(0.99),
                h.max(),
            ));
        }
        out.push_str("}}");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats nanoseconds with a unit suffix for the text report.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// A counter handle for hot paths, resolved against the global registry
/// once and cached. Safe across [`Registry::reset`] because reset zeroes
/// in place. When telemetry is disabled the cost is one relaxed load.
pub struct StaticCounter {
    key: &'static str,
    handle: OnceLock<Arc<AtomicU64>>,
}

impl StaticCounter {
    /// A counter bound to `key` in the global registry.
    pub const fn new(key: &'static str) -> Self {
        Self {
            key,
            handle: OnceLock::new(),
        }
    }

    /// Adds `n` if telemetry is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.handle
                .get_or_init(|| crate::global().counter(self.key))
                .fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// A histogram handle for hot paths; see [`StaticCounter`].
pub struct StaticHistogram {
    key: &'static str,
    handle: OnceLock<Arc<Histogram>>,
}

impl StaticHistogram {
    /// A histogram bound to `key` in the global registry.
    pub const fn new(key: &'static str) -> Self {
        Self {
            key,
            handle: OnceLock::new(),
        }
    }

    /// Records `v` if telemetry is enabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if crate::enabled() {
            self.handle
                .get_or_init(|| crate::global().histogram(self.key))
                .record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_survive_reset() {
        let r = Registry::new();
        let c = r.counter("x");
        c.fetch_add(5, Ordering::Relaxed);
        assert_eq!(r.counter_value("x"), 5);
        r.reset();
        assert_eq!(r.counter_value("x"), 0);
        // the cached handle still points at the live entry
        c.fetch_add(2, Ordering::Relaxed);
        assert_eq!(r.counter_value("x"), 2);
    }

    #[test]
    fn concurrent_counter_increments() {
        let r = Registry::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let r = r.clone();
                s.spawn(move || {
                    let c = r.counter("hits");
                    for _ in 0..10_000 {
                        c.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(r.counter_value("hits"), 80_000);
    }

    #[test]
    fn reports_skip_zero_entries() {
        let r = Registry::new();
        r.counter("zero");
        r.counter("one").fetch_add(1, Ordering::Relaxed);
        r.histogram("lat").record(42);
        r.span_stat("root").record(1_000);
        let text = r.text_report();
        assert!(text.contains("one = 1"));
        assert!(!text.contains("zero"));
        assert!(text.contains("lat"));
        assert!(text.contains("root"));
        let json = r.json_report();
        assert!(json.contains("\"one\":1"));
        assert!(!json.contains("zero"));
        assert!(json.contains("\"root\""));
    }

    #[test]
    fn json_report_escapes_keys() {
        let r = Registry::new();
        r.counter("weird\"key").fetch_add(1, Ordering::Relaxed);
        assert!(r.json_report().contains("\"weird\\\"key\":1"));
    }

    /// Regression: the registry's locks must not poison. A guard recording
    /// during a panic unwind (exactly what [`crate::SpanGuard`] does) used
    /// to risk wedging every later record behind `std::sync::RwLock`
    /// poisoning; with the non-poisoning tracked locks the registry keeps
    /// working after the panic is caught.
    #[test]
    fn records_after_caught_panic() {
        let r = Registry::new();
        struct RecordOnDrop(Registry);
        impl Drop for RecordOnDrop {
            fn drop(&mut self) {
                // runs mid-unwind, touching all three maps
                self.0.counter("panic.drop").fetch_add(1, Ordering::Relaxed);
                self.0.histogram("panic.hist").record(7);
                self.0.span_stat("panic.span").record(1_000);
            }
        }
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = RecordOnDrop(r.clone());
            panic!("worker dies mid-record");
        }));
        std::panic::set_hook(prev);
        assert!(caught.is_err());
        assert_eq!(r.counter_value("panic.drop"), 1);
        // and the registry still records fresh metrics afterwards
        r.counter("after").fetch_add(2, Ordering::Relaxed);
        assert_eq!(r.counter_value("after"), 2);
        assert_eq!(r.span_stat("panic.span").count(), 1);
        assert!(r.text_report().contains("after = 2"));
    }
}
