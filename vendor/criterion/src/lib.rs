//! Minimal in-tree replacement for the `criterion` benchmark harness.
//!
//! Keeps the source-level API the workspace benches use — groups,
//! `bench_function`, `BenchmarkId`, `Throughput`, the `criterion_group!`
//! / `criterion_main!` macros — and measures with a simple
//! warmup-then-sample loop, reporting mean time per iteration (and
//! throughput when configured). No statistics, plotting, or comparison
//! with saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn final_summary(&self) {}
}

/// Identifies one benchmark within a group, optionally parameterised.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Units processed per iteration, for derived rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A named set of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iterations: 0,
            elapsed: Duration::ZERO,
            mode: Mode::WarmUp,
            budget: self.criterion.warm_up_time,
        };
        f(&mut bencher);
        bencher.iterations = 0;
        bencher.elapsed = Duration::ZERO;
        bencher.mode = Mode::Measure {
            samples: self.criterion.sample_size,
        };
        bencher.budget = self.criterion.measurement_time;
        f(&mut bencher);
        let per_iter = if bencher.iterations == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / bencher.iterations as u32
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                format!("  {:.1} Melem/s", n as f64 / per_iter.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
                format!(
                    "  {:.1} MiB/s",
                    n as f64 / per_iter.as_secs_f64() / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: {:?}/iter over {} iters{}",
            self.name, id.id, per_iter, bencher.iterations, rate
        );
        self
    }

    pub fn finish(self) {}
}

enum Mode {
    WarmUp,
    Measure { samples: usize },
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
    mode: Mode,
    budget: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let reps = match self.mode {
            Mode::WarmUp => 1,
            Mode::Measure { samples } => samples as u64,
        };
        let start = Instant::now();
        for _ in 0..reps {
            black_box(f());
            self.iterations += 1;
            if start.elapsed() > self.budget {
                break;
            }
        }
        self.elapsed += start.elapsed();
    }
}

/// Opaque value sink preventing the optimiser from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function. Supports both the positional form
/// `criterion_group!(benches, f, g)` and the configured form with
/// `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_function(BenchmarkId::new("param", 42), |b| b.iter(|| 2 * 2));
        group.finish();
    }

    #[test]
    fn harness_runs_benchmarks() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1));
        trivial(&mut c);
    }

    criterion_group!(positional, trivial);
    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(10));
        targets = trivial
    }

    #[test]
    fn macros_compose() {
        positional();
        configured();
    }
}
