//! Gremlin front-end: parses a practical subset of the Gremlin traversal
//! language into the *same* GraphIR the Cypher front-end targets — the
//! paper's central interactive-stack claim (§5.1).
//!
//! Supported steps:
//!
//! ```text
//! g.V().hasLabel('L')                       source + label filter (required)
//! .has('prop', v) / .has('prop', gt(v))     property filters (eq/neq/gt/gte/lt/lte/within([..]))
//! .out('E') / .in('E') / .both('E')         fused neighbour expansion
//! .outE('E') / .inE('E')                    edge expansion
//! .inV() / .outV() / .otherV()              edge → endpoint
//! .as('x')  .select('x')                    tagging / re-selection
//! .values('prop')                           property projection
//! .where(__.out('E').hasId(x)) — not supported; use has() forms
//! .count() .dedup() .limit(n)
//! .order().by('prop') / .by('prop', decr)
//! .groupCount().by('prop')
//! .path() — not supported
//! ```

use crate::lexer::{tokenize, Cursor, Token};
use gs_graph::schema::GraphSchema;
use gs_graph::{GraphError, Result, Value};
use gs_grin::Direction;
use gs_ir::logical::ProjectItem;
use gs_ir::{AggFunc, BinOp, Expr, LogicalPlan, PlanBuilder};

/// Parses a Gremlin traversal into a logical plan.
pub fn parse_gremlin(src: &str, schema: &GraphSchema) -> Result<LogicalPlan> {
    let mut cur = Cursor::new(tokenize(src)?);
    // g.V()
    let g = cur.ident()?;
    if g != "g" {
        return Err(GraphError::Query("traversal must start with g".into()));
    }
    cur.expect(&Token::Dot)?;
    let v = cur.ident()?;
    if v != "V" {
        return Err(GraphError::Query("only g.V() sources are supported".into()));
    }
    cur.expect(&Token::LParen)?;
    cur.expect(&Token::RParen)?;

    let mut state = Traversal::new(schema);
    while cur.eat(&Token::Dot) {
        let step = cur.ident()?;
        cur.expect(&Token::LParen)?;
        state.apply_step(&step, &mut cur)?;
    }
    if !cur.at_eof() {
        return Err(GraphError::Query(format!(
            "trailing tokens: {:?}",
            cur.peek()
        )));
    }
    let plan = state.finish()?;
    // Frontend boundary check, mirroring the Cypher frontend: verifier
    // errors are frontend bugs and must not escape; warnings pass.
    gs_ir::verify_logical(&plan, schema).check("gremlin frontend")?;
    Ok(plan)
}

/// Builder-driving state: tracks the "current" element alias like the
/// Gremlin traverser does.
struct Traversal {
    builder: Option<PlanBuilder>,
    /// The alias holding the traverser's current element.
    head: String,
    /// Source label filter seen (hasLabel) — scans are deferred until the
    /// label is known.
    scanned: bool,
    fresh: usize,
    /// Set by terminal projection steps (values/count/groupCount): the
    /// layout already IS the result shape.
    terminal: bool,
}

impl Traversal {
    fn new(schema: &GraphSchema) -> Self {
        Self {
            builder: Some(PlanBuilder::new(schema)),
            head: String::new(),
            scanned: false,
            fresh: 0,
            terminal: false,
        }
    }

    fn b(&mut self) -> PlanBuilder {
        self.builder.take().expect("builder present")
    }

    fn put(&mut self, b: PlanBuilder) {
        self.builder = Some(b);
    }

    fn fresh_alias(&mut self, prefix: &str) -> String {
        self.fresh += 1;
        format!("__{prefix}{}", self.fresh)
    }

    fn need_scan(&self) -> Result<()> {
        if !self.scanned {
            return Err(GraphError::Query(
                "traversal must start with g.V().hasLabel('...')".into(),
            ));
        }
        Ok(())
    }

    fn apply_step(&mut self, step: &str, cur: &mut Cursor) -> Result<()> {
        match step {
            "hasLabel" => {
                let label = expect_str(cur)?;
                cur.expect(&Token::RParen)?;
                if self.scanned {
                    return Err(GraphError::Query("hasLabel() after traversal start".into()));
                }
                let alias = self.fresh_alias("v");
                let b = self.b().scan(&alias, &label)?;
                self.put(b);
                self.head = alias;
                self.scanned = true;
            }
            "has" => {
                self.need_scan()?;
                let prop = expect_str(cur)?;
                cur.expect(&Token::Comma)?;
                let (op, value) = parse_gremlin_predicate(cur)?;
                cur.expect(&Token::RParen)?;
                let b = self.b();
                let lhs = b.prop(&self.head, &prop)?;
                let pred = match op {
                    GremlinOp::Within(list) => Expr::In {
                        expr: Box::new(lhs),
                        list,
                    },
                    GremlinOp::Cmp(op) => Expr::bin(op, lhs, Expr::Const(value)),
                };
                self.put(b.select(pred));
            }
            "hasId" => {
                self.need_scan()?;
                let v = parse_value_token(cur)?;
                cur.expect(&Token::RParen)?;
                let b = self.b();
                let lhs = b.prop(&self.head, "id")?;
                self.put(b.select(Expr::bin(BinOp::Eq, lhs, Expr::Const(v))));
            }
            "out" | "in" | "both" => {
                self.need_scan()?;
                let elabel = expect_str(cur)?;
                cur.expect(&Token::RParen)?;
                let dir = match step {
                    "out" => Direction::Out,
                    "in" => Direction::In,
                    _ => Direction::Both,
                };
                let e = self.fresh_alias("e");
                let v = self.fresh_alias("v");
                let b = self
                    .b()
                    .expand_edge(&self.head, &elabel, dir, &e)?
                    .get_vertex(&e, &v)?;
                self.put(b);
                self.head = v;
            }
            "outE" | "inE" => {
                self.need_scan()?;
                let elabel = expect_str(cur)?;
                cur.expect(&Token::RParen)?;
                let dir = if step == "outE" {
                    Direction::Out
                } else {
                    Direction::In
                };
                let e = self.fresh_alias("e");
                let b = self.b().expand_edge(&self.head, &elabel, dir, &e)?;
                self.put(b);
                self.head = e;
            }
            "inV" | "outV" | "otherV" => {
                // our edges are traversal-oriented: otherV == far endpoint
                cur.expect(&Token::RParen)?;
                let v = self.fresh_alias("v");
                let b = self.b().get_vertex(&self.head, &v)?;
                self.put(b);
                self.head = v;
            }
            "as" => {
                self.need_scan()?;
                let name = expect_str(cur)?;
                cur.expect(&Token::RParen)?;
                // re-alias the head column by projecting? cheaper: remember
                // the mapping — we instead project all existing columns and
                // rename head. Simpler approach: keep a tag map.
                // We implement as() by projecting identity with the new name
                // appended via dedup-free rename: retain all columns.
                let b = self.b();
                let layout = b.layout().clone();
                let mut items: Vec<(ProjectItem, String)> = Vec::new();
                for (i, a) in layout.aliases().enumerate() {
                    items.push((ProjectItem::Expr(Expr::Column(i)), a.to_string()));
                }
                items.push((
                    ProjectItem::Expr(Expr::Column(layout.require(&self.head)?)),
                    name.clone(),
                ));
                let b = b.project(
                    items
                        .iter()
                        .map(|(it, n)| (it.clone(), n.as_str()))
                        .collect(),
                )?;
                self.put(b);
                self.head = name;
            }
            "select" => {
                self.need_scan()?;
                let name = expect_str(cur)?;
                cur.expect(&Token::RParen)?;
                let b = self.b();
                b.layout().require(&name)?;
                self.put(b);
                self.head = name;
            }
            "values" => {
                self.need_scan()?;
                let prop = expect_str(cur)?;
                cur.expect(&Token::RParen)?;
                let b = self.b();
                let e = b.prop(&self.head, &prop)?;
                let alias = self.fresh_alias("s");
                let b = b.project(vec![(ProjectItem::Expr(e), alias.as_str())])?;
                self.put(b);
                self.head = alias;
                self.terminal = true;
            }
            "count" => {
                cur.expect(&Token::RParen)?;
                let b = self.b();
                let col = b.col(&self.head)?;
                let b = b.project(vec![(ProjectItem::Agg(AggFunc::Count, col), "count")])?;
                self.put(b);
                self.head = "count".into();
                self.terminal = true;
            }
            "groupCount" => {
                cur.expect(&Token::RParen)?;
                // must be followed by .by('prop')
                cur.expect(&Token::Dot)?;
                let by = cur.ident()?;
                if by != "by" {
                    return Err(GraphError::Query("groupCount() requires .by()".into()));
                }
                cur.expect(&Token::LParen)?;
                let prop = expect_str(cur)?;
                cur.expect(&Token::RParen)?;
                let b = self.b();
                let key = b.prop(&self.head, &prop)?;
                let cnt = b.col(&self.head)?;
                let b = b.project(vec![
                    (ProjectItem::Expr(key), "key"),
                    (ProjectItem::Agg(AggFunc::Count, cnt), "count"),
                ])?;
                self.put(b);
                self.head = "key".into();
                self.terminal = true;
            }
            "order" => {
                cur.expect(&Token::RParen)?;
                let mut keys = Vec::new();
                let mut limit = None;
                while cur.peek() == &Token::Dot {
                    // look ahead for by(...) / limit(n)
                    let save_head = self.head.clone();
                    let _ = save_head;
                    if !matches!(cur.peek2(), Token::Ident(s) if s == "by" || s == "limit") {
                        break;
                    }
                    cur.next(); // dot
                    let word = cur.ident()?;
                    cur.expect(&Token::LParen)?;
                    if word == "by" {
                        let prop = expect_str(cur)?;
                        let desc = if cur.eat(&Token::Comma) {
                            let ord = cur.ident()?;
                            ord == "decr" || ord == "desc"
                        } else {
                            false
                        };
                        cur.expect(&Token::RParen)?;
                        let b = self.builder.as_ref().unwrap();
                        keys.push((b.prop(&self.head, &prop)?, !desc));
                    } else {
                        limit = Some(match cur.next() {
                            Token::Int(n) if n >= 0 => n as usize,
                            t => return Err(GraphError::Query(format!("bad limit {t:?}"))),
                        });
                        cur.expect(&Token::RParen)?;
                        break;
                    }
                }
                if keys.is_empty() {
                    let b = self.builder.as_ref().unwrap();
                    keys.push((b.col(&self.head)?, true));
                }
                let b = self.b().order(keys, limit);
                self.put(b);
            }
            "limit" => {
                let n = match cur.next() {
                    Token::Int(n) if n >= 0 => n as usize,
                    t => return Err(GraphError::Query(format!("bad limit {t:?}"))),
                };
                cur.expect(&Token::RParen)?;
                let b = self.b().limit(n);
                self.put(b);
            }
            "dedup" => {
                cur.expect(&Token::RParen)?;
                let head = self.head.clone();
                let b = self.b().dedup(&[head.as_str()])?;
                self.put(b);
            }
            other => {
                return Err(GraphError::Query(format!(
                    "unsupported Gremlin step `{other}`"
                )))
            }
        }
        Ok(())
    }

    fn finish(mut self) -> Result<LogicalPlan> {
        self.need_scan()?;
        // project down to the head element unless the last op already
        // projected (count/values/groupCount leave a scalar layout)
        let b = self.b();
        let layout = b.layout().clone();
        let plan = if self.terminal || layout.width() == 1 {
            b.build()
        } else {
            let head = self.head.clone();
            let col = layout.require(&head)?;
            b.project(vec![(ProjectItem::Expr(Expr::Column(col)), head.as_str())])?
                .build()
        };
        Ok(plan)
    }
}

enum GremlinOp {
    Cmp(BinOp),
    Within(Vec<Value>),
}

fn expect_str(cur: &mut Cursor) -> Result<String> {
    match cur.next() {
        Token::Str(s) => Ok(s),
        t => Err(GraphError::Query(format!("expected string, found {t:?}"))),
    }
}

fn parse_value_token(cur: &mut Cursor) -> Result<Value> {
    match cur.next() {
        Token::Int(i) => Ok(Value::Int(i)),
        Token::Float(f) => Ok(Value::Float(f)),
        Token::Str(s) => Ok(Value::Str(s)),
        Token::Ident(s) if s == "true" => Ok(Value::Bool(true)),
        Token::Ident(s) if s == "false" => Ok(Value::Bool(false)),
        Token::Minus => match cur.next() {
            Token::Int(i) => Ok(Value::Int(-i)),
            Token::Float(f) => Ok(Value::Float(-f)),
            t => Err(GraphError::Query(format!("bad literal {t:?}"))),
        },
        t => Err(GraphError::Query(format!("expected value, found {t:?}"))),
    }
}

/// Parses `5`, `eq(5)`, `gt(5)`, `within([1,2])`-style predicates.
fn parse_gremlin_predicate(cur: &mut Cursor) -> Result<(GremlinOp, Value)> {
    if let Token::Ident(f) = cur.peek().clone() {
        if cur.peek2() == &Token::LParen {
            cur.next();
            cur.next();
            if f == "within" {
                let mut list = Vec::new();
                let bracketed = cur.eat(&Token::LBracket);
                loop {
                    list.push(parse_value_token(cur)?);
                    if !cur.eat(&Token::Comma) {
                        break;
                    }
                }
                if bracketed {
                    cur.expect(&Token::RBracket)?;
                }
                cur.expect(&Token::RParen)?;
                return Ok((GremlinOp::Within(list), Value::Null));
            }
            let op = match f.as_str() {
                "eq" => BinOp::Eq,
                "neq" => BinOp::Ne,
                "gt" => BinOp::Gt,
                "gte" => BinOp::Ge,
                "lt" => BinOp::Lt,
                "lte" => BinOp::Le,
                other => {
                    return Err(GraphError::Query(format!(
                        "unsupported predicate `{other}`"
                    )))
                }
            };
            let v = parse_value_token(cur)?;
            cur.expect(&Token::RParen)?;
            return Ok((GremlinOp::Cmp(op), v));
        }
    }
    let v = parse_value_token(cur)?;
    Ok((GremlinOp::Cmp(BinOp::Eq), v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_graph::ValueType;

    fn schema() -> GraphSchema {
        let mut s = GraphSchema::new();
        let person = s.add_vertex_label("Person", &[("age", ValueType::Int)]);
        let item = s.add_vertex_label("Item", &[("price", ValueType::Float)]);
        s.add_edge_label("BUY", person, item, &[("date", ValueType::Date)]);
        s.add_edge_label("KNOWS", person, person, &[]);
        s
    }

    #[test]
    fn basic_traversal() {
        let plan = parse_gremlin(
            "g.V().hasLabel('Person').out('KNOWS').out('BUY').values('price')",
            &schema(),
        )
        .unwrap();
        assert_eq!(plan.output_layout().width(), 1);
    }

    #[test]
    fn has_with_predicates() {
        for q in [
            "g.V().hasLabel('Person').has('age', 30).count()",
            "g.V().hasLabel('Person').has('age', gt(18)).count()",
            "g.V().hasLabel('Person').has('age', within([18, 21])).count()",
        ] {
            let plan = parse_gremlin(q, &schema()).unwrap();
            assert!(plan.ops.len() >= 3, "{q}");
        }
    }

    #[test]
    fn out_e_in_v_pair() {
        let plan = parse_gremlin(
            "g.V().hasLabel('Person').outE('BUY').inV().values('price')",
            &schema(),
        )
        .unwrap();
        // scan + expand + getvertex + project
        assert_eq!(plan.ops.len(), 4);
    }

    #[test]
    fn as_select_round_trip() {
        let plan = parse_gremlin(
            "g.V().hasLabel('Person').as('p').out('KNOWS').select('p')",
            &schema(),
        )
        .unwrap();
        assert_eq!(plan.output_layout().index_of("p"), Some(0));
    }

    #[test]
    fn order_by_desc_with_limit() {
        let plan = parse_gremlin(
            "g.V().hasLabel('Item').order().by('price', decr).limit(3)",
            &schema(),
        )
        .unwrap();
        let has_order = plan
            .ops
            .iter()
            .any(|op| matches!(op, gs_ir::LogicalOp::Order { limit: Some(3), .. }));
        assert!(has_order, "{:?}", plan.ops);
    }

    #[test]
    fn group_count() {
        let plan =
            parse_gremlin("g.V().hasLabel('Person').groupCount().by('age')", &schema()).unwrap();
        match plan.ops.last().unwrap() {
            gs_ir::LogicalOp::Project { items } => {
                assert_eq!(items.len(), 2);
                assert!(matches!(items[1].0, ProjectItem::Agg(AggFunc::Count, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors() {
        assert!(parse_gremlin("h.V()", &schema()).is_err());
        assert!(parse_gremlin("g.V().out('KNOWS')", &schema()).is_err()); // no hasLabel
        assert!(parse_gremlin("g.V().hasLabel('Person').teleport()", &schema()).is_err());
        assert!(parse_gremlin("g.V().hasLabel('Nope')", &schema()).is_err());
    }
}
