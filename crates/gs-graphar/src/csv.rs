//! CSV loader/writer — the graph-construction *baseline* of Fig. 7(d).
//!
//! The paper compares building graphs from GraphAr archives against CSV
//! inputs. This module provides the CSV side: one file per label, header
//! row, schema-driven parsing. Parsing is intentionally the straightforward
//! row-by-row implementation real pipelines use, which is exactly why the
//! chunked/encoded archive wins.

use gs_graph::data::PropertyGraphData;
use gs_graph::json::Json;
use gs_graph::schema::GraphSchema;
use gs_graph::{GraphError, LabelId, Result, Value, ValueType};
use std::fs;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Writes a payload as a directory of CSV files (`v_<label>.csv`,
/// `e_<label>.csv`) plus the schema as JSON.
pub fn write_csv(dir: &Path, data: &PropertyGraphData) -> Result<()> {
    data.validate()?;
    fs::create_dir_all(dir)?;
    fs::write(dir.join("schema.json"), data.schema.to_json().render())?;
    for batch in &data.vertices {
        let ldef = data.schema.vertex_label(batch.label)?;
        let mut w = BufWriter::new(fs::File::create(dir.join(format!("v_{}.csv", ldef.name)))?);
        write!(w, "id")?;
        for p in &ldef.properties {
            write!(w, ",{}", p.name)?;
        }
        writeln!(w)?;
        for (ext, props) in batch.external_ids.iter().zip(&batch.properties) {
            write!(w, "{ext}")?;
            for p in props {
                write!(w, ",{}", escape(p))?;
            }
            writeln!(w)?;
        }
    }
    for batch in &data.edges {
        let ldef = data.schema.edge_label(batch.label)?;
        let mut w = BufWriter::new(fs::File::create(dir.join(format!("e_{}.csv", ldef.name)))?);
        write!(w, "src,dst")?;
        for p in &ldef.properties {
            write!(w, ",{}", p.name)?;
        }
        writeln!(w)?;
        for (&(s, d), props) in batch.endpoints.iter().zip(&batch.properties) {
            write!(w, "{s},{d}")?;
            for p in props {
                write!(w, ",{}", escape(p))?;
            }
            writeln!(w)?;
        }
    }
    Ok(())
}

fn escape(v: &Value) -> String {
    match v {
        Value::Null => String::new(),
        Value::Str(s) => {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        }
        Value::Date(d) => d.to_string(),
        other => other.to_string(),
    }
}

/// Loads a CSV directory written by [`write_csv`] back into interchange
/// form: text parse, field split, per-value type conversion — the row-wise
/// cost profile the archive format avoids.
pub fn read_csv(dir: &Path) -> Result<PropertyGraphData> {
    let schema =
        GraphSchema::from_json(&Json::parse(&fs::read_to_string(dir.join("schema.json"))?)?)?;
    let mut out = PropertyGraphData::new(schema.clone());
    for (li, ldef) in schema.vertex_labels().iter().enumerate() {
        let f = fs::File::open(dir.join(format!("v_{}.csv", ldef.name)))?;
        let mut lines = BufReader::new(f).lines();
        let _header = lines.next().transpose()?;
        for line in lines {
            let line = line?;
            let fields = split_csv(&line);
            if fields.is_empty() {
                continue;
            }
            let ext: u64 = fields[0]
                .parse()
                .map_err(|_| GraphError::Corrupt(format!("bad id {}", fields[0])))?;
            let mut props = Vec::with_capacity(ldef.properties.len());
            for (pi, pdef) in ldef.properties.iter().enumerate() {
                props.push(parse_value(
                    fields.get(pi + 1).map_or("", |s| s),
                    pdef.value_type,
                )?);
            }
            out.add_vertex(LabelId(li as u16), ext, props);
        }
    }
    for (li, ldef) in schema.edge_labels().iter().enumerate() {
        let f = fs::File::open(dir.join(format!("e_{}.csv", ldef.name)))?;
        let mut lines = BufReader::new(f).lines();
        let _header = lines.next().transpose()?;
        for line in lines {
            let line = line?;
            let fields = split_csv(&line);
            if fields.len() < 2 {
                continue;
            }
            let s: u64 = fields[0]
                .parse()
                .map_err(|_| GraphError::Corrupt("bad src".into()))?;
            let d: u64 = fields[1]
                .parse()
                .map_err(|_| GraphError::Corrupt("bad dst".into()))?;
            let mut props = Vec::with_capacity(ldef.properties.len());
            for (pi, pdef) in ldef.properties.iter().enumerate() {
                props.push(parse_value(
                    fields.get(pi + 2).map_or("", |s| s),
                    pdef.value_type,
                )?);
            }
            out.add_edge(LabelId(li as u16), s, d, props);
        }
    }
    out.validate()?;
    Ok(out)
}

fn parse_value(field: &str, vt: ValueType) -> Result<Value> {
    if field.is_empty() {
        return Ok(Value::Null);
    }
    Ok(match vt {
        ValueType::Int => Value::Int(
            field
                .parse()
                .map_err(|_| GraphError::Corrupt(format!("bad int {field}")))?,
        ),
        ValueType::Date => Value::Date(
            field
                .parse()
                .map_err(|_| GraphError::Corrupt(format!("bad date {field}")))?,
        ),
        ValueType::Float => Value::Float(
            field
                .parse()
                .map_err(|_| GraphError::Corrupt(format!("bad float {field}")))?,
        ),
        ValueType::Bool => Value::Bool(field == "true"),
        ValueType::Str => Value::Str(field.to_string()),
        other => {
            return Err(GraphError::Schema(format!(
                "unsupported csv type {other:?}"
            )))
        }
    })
}

/// Splits one CSV line honouring double-quoted fields.
fn split_csv(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                out.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    out.push(cur);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_handles_quotes_and_commas() {
        assert_eq!(split_csv("a,b,c"), vec!["a", "b", "c"]);
        assert_eq!(split_csv(r#""a,b",c"#), vec!["a,b", "c"]);
        assert_eq!(split_csv(r#""say ""hi""",x"#), vec![r#"say "hi""#, "x"]);
        assert_eq!(split_csv(""), vec![""]);
    }

    #[test]
    fn parse_value_types() {
        assert_eq!(parse_value("5", ValueType::Int).unwrap(), Value::Int(5));
        assert_eq!(
            parse_value("2.5", ValueType::Float).unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(parse_value("", ValueType::Int).unwrap(), Value::Null);
        assert!(parse_value("x", ValueType::Int).is_err());
    }
}
