/root/repo/target/debug/deps/bytes-7c88b33a64ed4211.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-7c88b33a64ed4211: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
