/root/repo/target/debug/deps/gs_hiactor-dbc1a45de4aefa06.d: crates/gs-hiactor/src/lib.rs

/root/repo/target/debug/deps/libgs_hiactor-dbc1a45de4aefa06.rlib: crates/gs-hiactor/src/lib.rs

/root/repo/target/debug/deps/libgs_hiactor-dbc1a45de4aefa06.rmeta: crates/gs-hiactor/src/lib.rs

crates/gs-hiactor/src/lib.rs:
