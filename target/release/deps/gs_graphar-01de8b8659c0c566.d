/root/repo/target/release/deps/gs_graphar-01de8b8659c0c566.d: crates/gs-graphar/src/lib.rs crates/gs-graphar/src/codec.rs crates/gs-graphar/src/csv.rs crates/gs-graphar/src/format.rs crates/gs-graphar/src/store.rs

/root/repo/target/release/deps/libgs_graphar-01de8b8659c0c566.rlib: crates/gs-graphar/src/lib.rs crates/gs-graphar/src/codec.rs crates/gs-graphar/src/csv.rs crates/gs-graphar/src/format.rs crates/gs-graphar/src/store.rs

/root/repo/target/release/deps/libgs_graphar-01de8b8659c0c566.rmeta: crates/gs-graphar/src/lib.rs crates/gs-graphar/src/codec.rs crates/gs-graphar/src/csv.rs crates/gs-graphar/src/format.rs crates/gs-graphar/src/store.rs

crates/gs-graphar/src/lib.rs:
crates/gs-graphar/src/codec.rs:
crates/gs-graphar/src/csv.rs:
crates/gs-graphar/src/format.rs:
crates/gs-graphar/src/store.rs:
