/root/repo/target/debug/deps/crossbeam-7fe1a0376480838b.d: vendor/crossbeam/src/lib.rs vendor/crossbeam/src/channel.rs vendor/crossbeam/src/deque.rs vendor/crossbeam/src/thread.rs

/root/repo/target/debug/deps/crossbeam-7fe1a0376480838b: vendor/crossbeam/src/lib.rs vendor/crossbeam/src/channel.rs vendor/crossbeam/src/deque.rs vendor/crossbeam/src/thread.rs

vendor/crossbeam/src/lib.rs:
vendor/crossbeam/src/channel.rs:
vendor/crossbeam/src/deque.rs:
vendor/crossbeam/src/thread.rs:
