/root/repo/target/debug/deps/figures-9bbfbba7a6fe668c.d: crates/gs-bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-9bbfbba7a6fe668c: crates/gs-bench/src/bin/figures.rs

crates/gs-bench/src/bin/figures.rs:
