/root/repo/target/debug/examples/gnn_training-efe7eba68233def4.d: examples/gnn_training.rs

/root/repo/target/debug/examples/gnn_training-efe7eba68233def4: examples/gnn_training.rs

examples/gnn_training.rs:
