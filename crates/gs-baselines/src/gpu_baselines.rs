//! Groute and Gunrock design replicas on the simulated-GPU substrate
//! (Fig. 7j/7k comparators).
//!
//! * **Gunrock** [PPoPP'16-style]: bulk-synchronous frontier
//!   *advance/filter* kernels. Its reproduced costs vs GRAPE-GPU: thread
//!   mapping is **vertex-balanced** (equal vertex ranges per lane, so
//!   power-law skew stalls lanes) and each iteration runs separate advance
//!   and filter passes over dense frontier arrays.
//! * **Groute** [PPoPP'17]: *asynchronous* fine-grained worklists — no
//!   superstep barriers, but every work item is an individual queue
//!   operation, so per-item scheduling overhead dominates on cheap items.

use crossbeam::deque::{Injector, Steal};
use gs_graph::csr::Csr;
use gs_graph::VId;
use std::sync::atomic::{AtomicU64, Ordering};

fn atomic_f64_add(cell: &AtomicU64, add: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f64::from_bits(cur) + add;
        match cell.compare_exchange_weak(cur, next.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(v) => cur = v,
        }
    }
}

// ---------------------------------------------------------------- Gunrock

/// Gunrock-like BSP frontier engine.
pub struct GunrockEngine {
    pub lanes: usize,
}

impl GunrockEngine {
    pub fn new(devices: usize, lanes_per_device: usize) -> Self {
        Self {
            lanes: (devices * lanes_per_device).max(1),
        }
    }

    /// Vertex-balanced parallel for (the skew-prone mapping).
    fn parallel_ranges(&self, n: usize, f: impl Fn(usize, usize) + Sync) {
        let chunk = n.div_ceil(self.lanes).max(1);
        crossbeam::thread::scope(|s| {
            for lane in 0..self.lanes {
                let f = &f;
                s.spawn(move |_| {
                    let lo = lane * chunk;
                    let hi = ((lane + 1) * chunk).min(n);
                    if lo < hi {
                        f(lo, hi);
                    }
                });
            }
        })
        .expect("gunrock scope");
    }

    /// BSP PageRank: advance kernel pushes shares, filter kernel rebuilds
    /// the (always-full) frontier.
    // kernel-style index loops over [lo, hi) vertex ranges mirror the
    // CUDA grid-stride idiom this engine simulates
    #[allow(clippy::needless_range_loop)]
    pub fn pagerank(&self, n: usize, csr: &Csr, damping: f64, iters: usize) -> Vec<f64> {
        let mut rank = vec![1.0 / n as f64; n];
        for _ in 0..iters {
            let next: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            let dangling = AtomicU64::new(0);
            {
                let rank = &rank;
                let next = &next;
                let dangling = &dangling;
                self.parallel_ranges(n, move |lo, hi| {
                    for v in lo..hi {
                        let d = csr.degree(VId(v as u64));
                        if d == 0 {
                            atomic_f64_add(dangling, rank[v]);
                            continue;
                        }
                        let share = rank[v] / d as f64;
                        for &w in csr.neighbors(VId(v as u64)) {
                            atomic_f64_add(&next[w.index()], share);
                        }
                    }
                });
            }
            let dangling = f64::from_bits(dangling.load(Ordering::Relaxed));
            let base = (1.0 - damping) / n as f64 + damping * dangling / n as f64;
            for (r, nx) in rank.iter_mut().zip(&next) {
                *r = base + damping * f64::from_bits(nx.load(Ordering::Relaxed));
            }
        }
        rank
    }

    /// BSP BFS with advance + filter passes over dense frontier flags.
    #[allow(clippy::needless_range_loop)] // see pagerank above
    pub fn bfs(&self, n: usize, csr: &Csr, src: VId) -> Vec<u64> {
        let depth: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
        depth[src.index()].store(0, Ordering::Relaxed);
        let mut frontier = vec![false; n];
        frontier[src.index()] = true;
        let mut level = 0u64;
        loop {
            let next: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            // advance pass
            {
                let frontier = &frontier;
                let depth = &depth;
                let next = &next;
                self.parallel_ranges(n, move |lo, hi| {
                    for v in lo..hi {
                        if !frontier[v] {
                            continue;
                        }
                        for &w in csr.neighbors(VId(v as u64)) {
                            if depth[w.index()]
                                .compare_exchange(
                                    u64::MAX,
                                    level + 1,
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                )
                                .is_ok()
                            {
                                next[w.index()].store(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
            // filter pass: rebuild the frontier flags (a full O(V) sweep —
            // the per-iteration overhead this design carries)
            let mut any = false;
            for v in 0..n {
                let f = next[v].load(Ordering::Relaxed) == 1;
                frontier[v] = f;
                any |= f;
            }
            if !any {
                break;
            }
            level += 1;
        }
        depth.into_iter().map(|d| d.into_inner()).collect()
    }
}

// ----------------------------------------------------------------- Groute

/// Groute-like asynchronous worklist engine.
pub struct GrouteEngine {
    pub lanes: usize,
}

impl GrouteEngine {
    pub fn new(devices: usize, lanes_per_device: usize) -> Self {
        Self {
            lanes: (devices * lanes_per_device).max(1),
        }
    }

    /// Asynchronous delta-PageRank: residuals propagate through a
    /// fine-grained per-vertex worklist (one queue item per activation).
    pub fn pagerank(&self, n: usize, csr: &Csr, damping: f64, epsilon: f64) -> Vec<f64> {
        // delta-PageRank: rank accumulates absorbed residual; the initial
        // residual (1-d)/n seeds the teleport term.
        let rank: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0f64.to_bits())).collect();
        let residual: Vec<AtomicU64> = (0..n)
            .map(|_| AtomicU64::new(((1.0 - damping) / n as f64).to_bits()))
            .collect();
        let queue: Injector<u32> = Injector::new();
        for v in 0..n {
            queue.push(v as u32);
        }
        let in_queue: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(1)).collect();
        crossbeam::thread::scope(|s| {
            for _ in 0..self.lanes {
                let queue = &queue;
                let rank = &rank;
                let residual = &residual;
                let in_queue = &in_queue;
                s.spawn(move |_| loop {
                    let v = match queue.steal() {
                        Steal::Success(v) => v as usize,
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    };
                    in_queue[v].store(0, Ordering::Relaxed);
                    let r = f64::from_bits(residual[v].swap(0, Ordering::Relaxed));
                    if r == 0.0 {
                        continue;
                    }
                    atomic_f64_add(&rank[v], r);
                    let d = csr.degree(VId(v as u64));
                    if d == 0 {
                        continue;
                    }
                    let push = damping * r / d as f64;
                    for &w in csr.neighbors(VId(v as u64)) {
                        atomic_f64_add(&residual[w.index()], push);
                        let new_res = f64::from_bits(residual[w.index()].load(Ordering::Relaxed));
                        if new_res > epsilon
                            && in_queue[w.index()]
                                .compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed)
                                .is_ok()
                        {
                            queue.push(w.0 as u32);
                        }
                    }
                });
            }
        })
        .expect("groute scope");
        rank.into_iter()
            .map(|r| f64::from_bits(r.into_inner()))
            .collect()
    }

    /// Asynchronous label-correcting BFS over a fine-grained worklist.
    pub fn bfs(&self, n: usize, csr: &Csr, src: VId) -> Vec<u64> {
        let depth: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
        depth[src.index()].store(0, Ordering::Relaxed);
        let queue: Injector<u32> = Injector::new();
        queue.push(src.0 as u32);
        crossbeam::thread::scope(|s| {
            for _ in 0..self.lanes {
                let queue = &queue;
                let depth = &depth;
                s.spawn(move |_| {
                    let mut idle_spins = 0;
                    loop {
                        match queue.steal() {
                            Steal::Success(v) => {
                                idle_spins = 0;
                                let v = v as usize;
                                let dv = depth[v].load(Ordering::Relaxed);
                                for &w in csr.neighbors(VId(v as u64)) {
                                    // label correction: accept any improvement
                                    let mut cur = depth[w.index()].load(Ordering::Relaxed);
                                    while dv + 1 < cur {
                                        match depth[w.index()].compare_exchange_weak(
                                            cur,
                                            dv + 1,
                                            Ordering::Relaxed,
                                            Ordering::Relaxed,
                                        ) {
                                            Ok(_) => {
                                                queue.push(w.0 as u32);
                                                break;
                                            }
                                            Err(c) => cur = c,
                                        }
                                    }
                                }
                            }
                            Steal::Empty => {
                                idle_spins += 1;
                                if idle_spins > 100 {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                            Steal::Retry => {}
                        }
                    }
                });
            }
        })
        .expect("groute bfs scope");
        depth.into_iter().map(|d| d.into_inner()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_edges(n: u64, m: usize, seed: u64) -> Vec<(VId, VId)> {
        use rand::Rng;
        let mut rng = rand_pcg::Pcg64Mcg::new(seed as u128);
        (0..m)
            .map(|_| (VId(rng.gen_range(0..n)), VId(rng.gen_range(0..n))))
            .collect()
    }

    fn reference_bfs(n: usize, edges: &[(VId, VId)], src: VId) -> Vec<u64> {
        let g = Csr::from_edges(n, edges);
        let mut depth = vec![u64::MAX; n];
        let mut q = std::collections::VecDeque::new();
        depth[src.index()] = 0;
        q.push_back(src);
        while let Some(v) = q.pop_front() {
            for &w in g.neighbors(v) {
                if depth[w.index()] == u64::MAX {
                    depth[w.index()] = depth[v.index()] + 1;
                    q.push_back(w);
                }
            }
        }
        depth
    }

    #[test]
    fn gunrock_bfs_matches_reference() {
        let edges = random_edges(200, 800, 5);
        let csr = Csr::from_edges(200, &edges);
        let gr = GunrockEngine::new(2, 3);
        assert_eq!(
            gr.bfs(200, &csr, VId(0)),
            reference_bfs(200, &edges, VId(0))
        );
    }

    #[test]
    fn groute_bfs_matches_reference() {
        let edges = random_edges(200, 800, 6);
        let csr = Csr::from_edges(200, &edges);
        let gr = GrouteEngine::new(2, 3);
        assert_eq!(
            gr.bfs(200, &csr, VId(0)),
            reference_bfs(200, &edges, VId(0))
        );
    }

    #[test]
    fn gunrock_pagerank_sums_to_one() {
        let edges = random_edges(100, 500, 7);
        let csr = Csr::from_edges(100, &edges);
        let pr = GunrockEngine::new(1, 4).pagerank(100, &csr, 0.85, 20);
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "{sum}");
    }

    #[test]
    fn groute_async_pagerank_approximates_synchronous() {
        // ring edges guarantee no dangling vertices (delta-PageRank's
        // fixpoint has no dangling-redistribution term)
        let mut edges = random_edges(100, 500, 8);
        edges.extend((0..100u64).map(|i| (VId(i), VId((i + 1) % 100))));
        let csr = Csr::from_edges(100, &edges);
        let async_pr = GrouteEngine::new(2, 2).pagerank(100, &csr, 0.85, 1e-12);
        let sync_pr = GunrockEngine::new(1, 4).pagerank(100, &csr, 0.85, 60);
        // delta-PageRank converges to the same fixpoint
        for (a, b) in async_pr.iter().zip(&sync_pr) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }
}
