//! Criterion microbenchmarks for the storage layer (Fig. 7c/7d at
//! statistical rigor; the `figures` binary prints the paper-style tables).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gs_baselines::LiveGraphStore;
use gs_datagen::catalog::Dataset;
use gs_gart::GartStore;
use gs_graph::{Csr, LabelId, PropertyGraphData, VId};

fn edge_scan(c: &mut Criterion) {
    let el = Dataset::by_abbr("TW").unwrap().edges(0.03);
    let n = el.vertex_count();
    let edges = el.edges().to_vec();
    let m = edges.len() as u64;

    let csr = Csr::from_edges(n, &edges);
    let pairs: Vec<(u64, u64)> = edges.iter().map(|&(s, d)| (s.0, d.0)).collect();
    let gart = GartStore::from_data(&PropertyGraphData::from_edge_list(n, &pairs)).unwrap();
    let gv = gart.committed_version();
    let lg = LiveGraphStore::from_edges(n, &edges);
    let lv = lg.committed_version();

    let mut group = c.benchmark_group("edge_scan");
    group.throughput(Throughput::Elements(m));
    group.bench_function(BenchmarkId::new("csr_static", m), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in 0..n {
                for &w in csr.neighbors(VId(v as u64)) {
                    acc = acc.wrapping_add(w.0);
                }
            }
            acc
        })
    });
    group.bench_function(BenchmarkId::new("gart", m), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            gart.scan_edges(LabelId(0), gv, &mut |_, d, _| acc = acc.wrapping_add(d.0));
            acc
        })
    });
    group.bench_function(BenchmarkId::new("livegraph", m), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            lg.scan_edges(lv, &mut |_, d, _| acc = acc.wrapping_add(d.0));
            acc
        })
    });
    group.finish();
}

fn graphar_codec(c: &mut Criterion) {
    use gs_graph::{Value, ValueType};
    let ints: Vec<Value> = (0..50_000i64).map(Value::Int).collect();
    let chunk = gs_graphar::codec::encode_column(&ints, ValueType::Int).unwrap();
    let mut group = c.benchmark_group("graphar_codec");
    group.throughput(Throughput::Elements(ints.len() as u64));
    group.bench_function("encode_int_column", |b| {
        b.iter(|| gs_graphar::codec::encode_column(&ints, ValueType::Int).unwrap())
    });
    group.bench_function("decode_int_column", |b| {
        b.iter(|| gs_graphar::codec::decode_column(&chunk).unwrap())
    });
    group.finish();
}

fn gart_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("gart_ingest");
    group.bench_function("add_edge_1k", |b| {
        b.iter(|| {
            let schema = gs_graph::GraphSchema::homogeneous(false);
            let store = GartStore::new(schema);
            for v in 0..100u64 {
                store.add_vertex(LabelId(0), v, vec![]).unwrap();
            }
            for i in 0..1000u64 {
                store
                    .add_edge(LabelId(0), i % 100, (i * 7 + 1) % 100, vec![])
                    .unwrap();
            }
            store.commit()
        })
    });
    group.bench_function("add_edges_batched_1k", |b| {
        b.iter(|| {
            let schema = gs_graph::GraphSchema::homogeneous(false);
            let store = GartStore::new(schema);
            for v in 0..100u64 {
                store.add_vertex(LabelId(0), v, vec![]).unwrap();
            }
            let batch: Vec<(u64, u64, Vec<gs_graph::Value>)> = (0..1000u64)
                .map(|i| (i % 100, (i * 7 + 1) % 100, vec![]))
                .collect();
            store.add_edges(LabelId(0), &batch).unwrap();
            store.commit()
        })
    });
    group.finish();
}

fn bench_config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = bench_config();
    targets = edge_scan, graphar_codec, gart_ingest
}
criterion_main!(benches);
