/root/repo/target/debug/examples/fraud_detection-bdb4de74d21ab53f.d: examples/fraud_detection.rs

/root/repo/target/debug/examples/fraud_detection-bdb4de74d21ab53f: examples/fraud_detection.rs

examples/fraud_detection.rs:
