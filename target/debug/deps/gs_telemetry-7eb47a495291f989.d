/root/repo/target/debug/deps/gs_telemetry-7eb47a495291f989.d: crates/gs-telemetry/src/lib.rs crates/gs-telemetry/src/histogram.rs crates/gs-telemetry/src/registry.rs crates/gs-telemetry/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libgs_telemetry-7eb47a495291f989.rmeta: crates/gs-telemetry/src/lib.rs crates/gs-telemetry/src/histogram.rs crates/gs-telemetry/src/registry.rs crates/gs-telemetry/src/span.rs Cargo.toml

crates/gs-telemetry/src/lib.rs:
crates/gs-telemetry/src/histogram.rs:
crates/gs-telemetry/src/registry.rs:
crates/gs-telemetry/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
