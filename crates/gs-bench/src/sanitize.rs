//! `gs-bench sanitize` — run a workload corpus under the concurrency
//! sanitizer and print a diagnostic table, mirroring `irlint` one layer
//! down: the same stack paths the benchmarks exercise (GRAPE BSP
//! supersteps, a HiActor procedure storm, the pipelined sampler) run with
//! every tracked lock, channel, barrier, and shared cell recording, and
//! any `S`-code finding is a defect in the simulated cluster's
//! synchronization.
//!
//! Only meaningful when built with `--features sanitize`; a pass-through
//! build prints a note and exits 0 so the subcommand is safe to script.

use crate::util::TablePrinter;
use gs_graph::VId;
use gs_grin::graph::mock::MockGraph;
use gs_grin::GrinGraph;
use gs_ir::Value;
use gs_sanitizer::{Report, Severity};
use rand::Rng;
use std::collections::HashMap;
use std::sync::Arc;

/// One sanitized workload: its name and the sanitizer's findings.
pub struct SanitizeResult {
    pub workload: &'static str,
    pub report: Report,
}

/// A seeded random digraph for the BSP workloads.
fn random_edges(seed: u64, n: usize, degree: usize) -> Vec<(VId, VId)> {
    let mut rng = rand_pcg::Pcg64Mcg::new(seed as u128);
    (0..n * degree)
        .map(|_| {
            (
                VId(rng.gen_range(0..n as u64)),
                VId(rng.gen_range(0..n as u64)),
            )
        })
        .collect()
}

/// BSP PageRank over 4 fragments: the double-buffered aggregator, tracked
/// barriers, and the all-to-all exchange channels all under load.
fn bsp_pagerank(seed: u64) -> Report {
    let n = 400;
    let edges = random_edges(seed, n, 6);
    let (ranks, report) = gs_sanitizer::with_sanitizer(seed, || {
        let engine = gs_grape::GrapeEngine::from_edges(n, &edges, 4);
        gs_grape::algorithms::pagerank(&engine, 0.85, 10)
    });
    assert_eq!(ranks.len(), n, "pagerank must rank every vertex");
    let total: f64 = ranks.iter().sum();
    assert!(
        (total - 1.0).abs() < 0.05,
        "pagerank mass should stay normalized, got {total}"
    );
    report
}

/// BSP WCC over a symmetrized graph: label propagation to fixpoint.
fn bsp_wcc(seed: u64) -> Report {
    let n = 400;
    let mut edges = random_edges(seed.wrapping_add(1), n, 4);
    let back: Vec<(VId, VId)> = edges.iter().map(|&(a, b)| (b, a)).collect();
    edges.extend(back);
    let (labels, report) = gs_sanitizer::with_sanitizer(seed, || {
        let engine = gs_grape::GrapeEngine::from_edges(n, &edges, 4);
        gs_grape::algorithms::wcc(&engine)
    });
    assert_eq!(labels.len(), n);
    report
}

/// HiActor procedure storm: concurrent `call`s across 4 shard actors
/// hammering the shared procedure registry, result channels, and shard
/// mailboxes.
fn hiactor_storm(seed: u64) -> Report {
    let n = 200;
    let edges: Vec<(u64, u64, f64)> = random_edges(seed.wrapping_add(2), n, 5)
        .into_iter()
        .map(|(a, b)| (a.0, b.0, 1.0))
        .collect();
    let ((), report) = gs_sanitizer::with_sanitizer(seed, || {
        let graph = Arc::new(MockGraph::new(n, &edges));
        let svc = gs_hiactor::QueryService::new(4);
        let g = Arc::clone(&graph);
        svc.register(
            "degree_of",
            Arc::new(move |params| {
                let id = params.get("id").and_then(|v| v.as_int()).unwrap_or(0) as u64;
                let d = g.degree(
                    VId(id),
                    gs_graph::LabelId(0),
                    gs_graph::LabelId(0),
                    gs_grin::Direction::Out,
                );
                Ok(vec![vec![Value::Int(d as i64)]])
            }),
        );
        svc.register("noop", Arc::new(|_| Ok(vec![])));
        let rxs: Vec<_> = (0..400)
            .map(|i| {
                let name = if i % 3 == 0 { "noop" } else { "degree_of" };
                let mut p = HashMap::new();
                p.insert("id".to_string(), Value::Int((i % n) as i64));
                svc.call(name, p)
            })
            .collect();
        for rx in rxs {
            // gs-lint: allow(L003 corpus harness must abort loudly if a shard dies; a missing reply here is a harness bug, not a recoverable condition)
            rx.recv().expect("shard replied").expect("procedure ok");
        }
        svc.runtime().quiesce();
        // drop the service before the report: idle shards legitimately
        // block on their mailboxes, which would read as S004 otherwise
        drop(svc);
    });
    report
}

/// The decoupled sampling/training pipeline: bounded batch channel plus
/// the tracked busy-time accumulators.
fn learn_pipeline(seed: u64) -> Report {
    let n = 150;
    let edges: Vec<(u64, u64, f64)> = random_edges(seed.wrapping_add(3), n, 6)
        .into_iter()
        .map(|(a, b)| (a.0, b.0, 1.0))
        .collect();
    let (stats, report) = gs_sanitizer::with_sanitizer(seed, || {
        let graph = MockGraph::new(n, &edges);
        let cfg = gs_learn::PipelineConfig {
            samplers: 2,
            trainers: 2,
            batch_size: 16,
            fanouts: vec![4, 3],
            feature_dim: 8,
            hidden: 16,
            classes: 4,
            batches_per_epoch: 8,
            seed,
            ..Default::default()
        };
        let (stats, _model) =
            gs_learn::train_epoch(&graph, gs_graph::LabelId(0), gs_graph::LabelId(0), &cfg);
        stats
    });
    assert_eq!(stats.batches, 8, "pipeline must not lose batches");
    report
}

/// Runs the whole corpus, one exclusive sanitized run per workload so
/// findings attribute cleanly.
pub fn run_corpus(seed: u64) -> Vec<SanitizeResult> {
    vec![
        SanitizeResult {
            workload: "bsp-pagerank",
            report: bsp_pagerank(seed),
        },
        SanitizeResult {
            workload: "bsp-wcc",
            report: bsp_wcc(seed),
        },
        SanitizeResult {
            workload: "hiactor-storm",
            report: hiactor_storm(seed),
        },
        SanitizeResult {
            workload: "learn-pipeline",
            report: learn_pipeline(seed),
        },
    ]
}

/// Runs the corpus and prints the diagnostic table. With `deny`, any
/// `S`-code finding makes the exit code non-zero (the CI bar).
pub fn run(deny: bool, seed: u64) -> i32 {
    if !gs_sanitizer::COMPILED {
        println!(
            "sanitize: built without the `sanitize` feature — nothing to check \
             (rebuild with `--features sanitize`)"
        );
        return 0;
    }
    let results = run_corpus(seed);
    let mut table = TablePrinter::new(&["workload", "code", "severity", "sites", "message"]);
    let (mut errors, mut warnings) = (0usize, 0usize);
    for r in &results {
        for d in &r.report.diagnostics {
            match d.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
            }
            table.row(vec![
                r.workload.to_string(),
                d.code.to_string(),
                d.severity.to_string(),
                d.sites.join(", "),
                d.message.clone(),
            ]);
        }
    }
    if errors + warnings > 0 {
        table.print();
    }
    println!(
        "sanitize: {} workloads checked (seed {seed}), {errors} errors, {warnings} warnings",
        results.len()
    );
    if deny && errors > 0 {
        1
    } else {
        0
    }
}

#[cfg(test)]
#[cfg(feature = "sanitize")]
mod tests {
    use super::*;

    /// The acceptance gate: the whole corpus runs clean under the
    /// sanitizer — the `gs-bench sanitize --deny` CI bar.
    #[test]
    fn corpus_is_clean() {
        for r in run_corpus(42) {
            assert!(
                r.report.is_clean(),
                "{} found defects:\n{}",
                r.workload,
                r.report.render()
            );
        }
    }
}
