//! # gs-graph — graph model substrate for GraphScope Flex
//!
//! This crate provides the shared building blocks every other layer of the
//! stack is assembled from:
//!
//! * strongly-typed identifiers ([`VId`], [`EId`], [`LabelId`], [`PropId`]),
//! * the property [`Value`] model used by the labeled-property-graph (LPG)
//!   data model and by GraphIR records,
//! * [`schema::GraphSchema`] describing vertex/edge labels and their
//!   properties,
//! * compressed sparse row/column topology ([`csr::Csr`]) with builders,
//! * columnar property storage ([`props::PropertyColumn`]),
//! * edge-cut [`partition`]ing used by the distributed engines, and
//! * the [`varint`] codec shared by GRAPE's message manager and GraphAr.
//!
//! Nothing in this crate knows about storage backends or engines; those live
//! in `gs-vineyard`/`gs-gart`/`gs-graphar` and `gs-gaia`/`gs-hiactor`/
//! `gs-grape` respectively, glued together through `gs-grin`.

pub mod csr;
pub mod data;
pub mod edgelist;
pub mod error;
pub mod ids;
pub mod json;
pub mod layout;
pub mod partition;
pub mod props;
pub mod schema;
pub mod value;
pub mod varint;

pub use csr::{Csr, CsrBuilder};
pub use data::{EdgeBatch, PropertyGraphData, VertexBatch};
pub use edgelist::EdgeList;
pub use error::{GraphError, Result};
pub use ids::{EId, IdMap, LabelId, PropId, VId};
pub use json::Json;
pub use layout::{CompressedCsr, GraphLayout, LayoutKind, SortedCsr, TopologyLayout};
pub use partition::{EdgeCutPartitioner, FragmentSpec, PartitionId};
pub use props::{PropertyColumn, PropertyTable};
pub use schema::{EdgeLabelDef, GraphSchema, PropertyDef, VertexLabelDef};
pub use value::{Value, ValueType};
