//! GLogue-style statistics catalog for cost-based optimization.
//!
//! The paper's CBO (§5.2, building on GLogS) tracks pattern frequencies up
//! to k vertices. We build the degenerate-but-effective core of that: exact
//! label cardinalities, per-edge-label average degrees (the frequency of
//! 2-vertex patterns), and sampled property-value distinct counts for
//! selectivity estimation. Plan cost = the sum of estimated intermediate
//! result sizes, exactly as the paper defines it; [`cbo_order`] picks the
//! greedy minimum-cost expansion order.

use gs_graph::{LabelId, PropId};
use gs_grin::{Direction, GrinGraph};
use gs_ir::cost::{CostStats, EdgeCostStats};
use gs_ir::expr::{BinOp, Expr};
use gs_ir::Pattern;
use std::collections::BTreeMap;

/// Seed used by [`GlogueCatalog::build`]; `build_seeded` takes any.
pub const DEFAULT_SAMPLE_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// splitmix64 — the dependency-free PRNG step used for sampling, so two
/// builds over the same graph are bit-identical for the same seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-edge-label statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EdgeStats {
    pub count: u64,
    /// Average out-degree over *source-label* vertices.
    pub avg_out_degree: f64,
    /// Average in-degree over *destination-label* vertices.
    pub avg_in_degree: f64,
    /// Maximum out-degree over source-label vertices (sound expansion
    /// bound for `gs-ir::cost`).
    pub max_out_degree: u64,
    /// Maximum in-degree over destination-label vertices.
    pub max_in_degree: u64,
}

/// The statistics catalog.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GlogueCatalog {
    /// Vertex count per label.
    pub vertex_counts: Vec<u64>,
    /// Edge stats per edge label.
    pub edge_stats: Vec<EdgeStats>,
    /// Sampled distinct-value counts: (vertex label, prop) → estimated
    /// number of distinct values. Ordered map so accumulation and any
    /// later iteration are independent of hash order (gs-lint L002).
    pub distinct_values: BTreeMap<(u16, u16), u64>,
}

impl GlogueCatalog {
    /// Builds the catalog by scanning counts and sampling up to
    /// `sample_per_label` vertices per label for property statistics,
    /// with the default sampling seed. Deterministic: two builds over the
    /// same graph are equal.
    pub fn build(graph: &dyn GrinGraph, sample_per_label: usize) -> Self {
        Self::build_seeded(graph, sample_per_label, DEFAULT_SAMPLE_SEED)
    }

    /// [`build`](Self::build) with an explicit sampling seed. Sample
    /// positions come from a seeded splitmix64 stream over the label's
    /// id range — never from map iteration order — so the result is a
    /// pure function of `(graph, sample_per_label, seed)`.
    pub fn build_seeded(graph: &dyn GrinGraph, sample_per_label: usize, seed: u64) -> Self {
        let schema = graph.schema();
        let vertex_counts: Vec<u64> = schema
            .vertex_labels()
            .iter()
            .map(|l| graph.vertex_count(l.id) as u64)
            .collect();
        let edge_stats: Vec<EdgeStats> = schema
            .edge_labels()
            .iter()
            .map(|l| {
                let m = graph.edge_count(l.id) as u64;
                let src_n = graph.vertex_count(l.src).max(1) as f64;
                let dst_n = graph.vertex_count(l.dst).max(1) as f64;
                let max_out = graph
                    .vertices(l.src)
                    .map(|v| graph.degree(v, l.src, l.id, Direction::Out))
                    .max()
                    .unwrap_or(0) as u64;
                let max_in = graph
                    .vertices(l.dst)
                    .map(|v| graph.degree(v, l.dst, l.id, Direction::In))
                    .max()
                    .unwrap_or(0) as u64;
                EdgeStats {
                    count: m,
                    avg_out_degree: m as f64 / src_n,
                    avg_in_degree: m as f64 / dst_n,
                    max_out_degree: max_out,
                    max_in_degree: max_in,
                }
            })
            .collect();
        let mut distinct_values = BTreeMap::new();
        for l in schema.vertex_labels() {
            let n = graph.vertex_count(l.id);
            if n == 0 {
                continue;
            }
            let samples = sample_per_label.max(1).min(n);
            for p in &l.properties {
                // per-(label, prop) stream so adding a property never
                // shifts the samples drawn for another
                let mut rng = seed ^ ((l.id.0 as u64) << 32) ^ (p.id.0 as u64);
                let mut seen = std::collections::BTreeSet::new();
                let mut sampled = 0u64;
                for _ in 0..samples {
                    let i = splitmix64(&mut rng) % n as u64;
                    let v = graph.vertex_property(l.id, gs_graph::VId(i), p.id);
                    if !v.is_null() {
                        seen.insert(format!("{v}"));
                    }
                    sampled += 1;
                }
                // scale distinct count up when the sample looks unsaturated
                let distinct = if (seen.len() as u64) < sampled / 2 {
                    seen.len() as u64
                } else {
                    ((seen.len() as f64) * (n.max(1) as f64 / sampled.max(1) as f64)) as u64
                };
                distinct_values.insert((l.id.0, p.id.0), distinct.max(1));
            }
        }
        Self {
            vertex_counts,
            edge_stats,
            distinct_values,
        }
    }

    /// Converts into the dependency-free statistics form `gs-ir::cost`
    /// consumes (gs-ir cannot depend on this crate).
    pub fn to_cost_stats(&self) -> CostStats {
        CostStats {
            vertex_counts: self.vertex_counts.clone(),
            edge_stats: self
                .edge_stats
                .iter()
                .map(|s| EdgeCostStats {
                    count: s.count,
                    avg_out_degree: s.avg_out_degree,
                    avg_in_degree: s.avg_in_degree,
                    max_out_degree: s.max_out_degree,
                    max_in_degree: s.max_in_degree,
                })
                .collect(),
            distinct_values: self.distinct_values.clone(),
        }
    }

    /// Cardinality of a vertex label.
    pub fn label_count(&self, l: LabelId) -> f64 {
        self.vertex_counts.get(l.index()).copied().unwrap_or(1) as f64
    }

    /// Estimated selectivity (0..1] of a pushed-down vertex predicate.
    pub fn vertex_selectivity(&self, label: LabelId, pred: &Expr) -> f64 {
        match pred {
            Expr::Binary { op, lhs, rhs } => match op {
                BinOp::And => {
                    self.vertex_selectivity(label, lhs) * self.vertex_selectivity(label, rhs)
                }
                BinOp::Or => (self.vertex_selectivity(label, lhs)
                    + self.vertex_selectivity(label, rhs))
                .min(1.0),
                BinOp::Eq => {
                    if let Expr::VertexProp { prop, .. } = &**lhs {
                        1.0 / self.distinct(label, *prop) as f64
                    } else if matches!(&**lhs, Expr::VertexId { .. }) {
                        1.0 / self.label_count(label).max(1.0)
                    } else {
                        0.1
                    }
                }
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 0.33,
                BinOp::Ne => 0.9,
                _ => 0.5,
            },
            Expr::In { list, .. } => {
                (list.len() as f64 / self.label_count(label).max(1.0)).min(1.0)
            }
            _ => 0.5,
        }
    }

    fn distinct(&self, label: LabelId, prop: PropId) -> u64 {
        self.distinct_values
            .get(&(label.0, prop.0))
            .copied()
            .unwrap_or(10)
            .max(1)
    }

    /// Expansion factor of traversing an edge label in a direction.
    pub fn expansion_factor(&self, elabel: LabelId, dir: Direction) -> f64 {
        let s = match self.edge_stats.get(elabel.index()) {
            Some(s) => s,
            None => return 1.0,
        };
        match dir {
            Direction::Out => s.avg_out_degree,
            Direction::In => s.avg_in_degree,
            Direction::Both => s.avg_out_degree + s.avg_in_degree,
        }
    }
}

fn vertex_base_cost(pattern: &Pattern, catalog: &GlogueCatalog, vi: usize) -> f64 {
    let pv = &pattern.vertices[vi];
    let sel = pv
        .predicate
        .as_ref()
        .map(|p| catalog.vertex_selectivity(pv.label, p))
        .unwrap_or(1.0);
    catalog.label_count(pv.label) * sel
}

/// Estimated cost of visiting a pattern in a given `order`: the sum of
/// intermediate frontier sizes, exactly the objective [`cbo_order`]
/// greedily minimises step by step (the paper's plan cost). Shared by the
/// greedy-vs-exhaustive comparison test.
pub fn order_cost(pattern: &Pattern, order: &[usize], catalog: &GlogueCatalog) -> f64 {
    let mut visited = vec![false; pattern.vertices.len()];
    let mut frontier = 1.0f64;
    let mut total = 0.0f64;
    for &vi in order {
        let sel = pattern.vertices[vi]
            .predicate
            .as_ref()
            .map(|p| catalog.vertex_selectivity(pattern.vertices[vi].label, p))
            .unwrap_or(1.0);
        // cheapest edge connecting vi to the visited frontier, if any
        let fanout = pattern
            .incident(vi)
            .into_iter()
            .filter(|&(_, _, other)| visited[other])
            .map(|(ei, dir_from_vi, _)| {
                let dir = match dir_from_vi {
                    Direction::Out => Direction::In,
                    Direction::In => Direction::Out,
                    Direction::Both => Direction::Both,
                };
                catalog
                    .expansion_factor(pattern.edges[ei].label, dir)
                    .max(0.01)
            })
            .min_by(f64::total_cmp);
        frontier = match fanout {
            Some(f) => (frontier * f * sel).max(1.0),
            // disconnected (or anchor): cross-product with a fresh scan
            None => (frontier * vertex_base_cost(pattern, catalog, vi).max(1.0)).max(1.0),
        };
        visited[vi] = true;
        total += frontier;
    }
    total
}

/// Picks a pattern visit order by greedy cost minimisation: the anchor is
/// the vertex with the smallest (cardinality × selectivity); each step
/// extends with the incident edge minimising the running intermediate size;
/// closing edges (to already-visited vertices) are free wins and applied
/// implicitly by `compile_pattern`.
pub fn cbo_order(pattern: &Pattern, catalog: &GlogueCatalog) -> Vec<usize> {
    let n = pattern.vertices.len();
    if n == 0 {
        return Vec::new();
    }
    let base_cost = |vi: usize| vertex_base_cost(pattern, catalog, vi);
    let anchor = (0..n)
        .min_by(|&a, &b| base_cost(a).partial_cmp(&base_cost(b)).unwrap())
        .unwrap();
    let mut order = vec![anchor];
    let mut visited = vec![false; n];
    visited[anchor] = true;
    let mut frontier_size = base_cost(anchor).max(1.0);

    while order.len() < n {
        // candidate extensions: unvisited vertices adjacent to visited ones
        let mut best: Option<(usize, f64)> = None;
        for vi in 0..n {
            if visited[vi] {
                continue;
            }
            for (ei, dir_from_vi, other) in pattern.incident(vi) {
                if !visited[other] {
                    continue;
                }
                let pe = &pattern.edges[ei];
                // expanding from `other` to `vi`: invert direction
                let dir = match dir_from_vi {
                    Direction::Out => Direction::In,
                    Direction::In => Direction::Out,
                    Direction::Both => Direction::Both,
                };
                let fanout = catalog.expansion_factor(pe.label, dir).max(0.01);
                let sel = pattern.vertices[vi]
                    .predicate
                    .as_ref()
                    .map(|p| catalog.vertex_selectivity(pattern.vertices[vi].label, p))
                    .unwrap_or(1.0);
                let est = frontier_size * fanout * sel;
                if best.is_none_or(|(_, c)| est < c) {
                    best = Some((vi, est));
                }
            }
        }
        match best {
            Some((vi, est)) => {
                visited[vi] = true;
                order.push(vi);
                frontier_size = est.max(1.0);
            }
            None => {
                // disconnected remainder: anchor the cheapest unvisited
                let vi = (0..n)
                    .filter(|&v| !visited[v])
                    .min_by(|&a, &b| base_cost(a).partial_cmp(&base_cost(b)).unwrap())
                    .unwrap();
                visited[vi] = true;
                order.push(vi);
                frontier_size *= base_cost(vi).max(1.0);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_graph::Value;
    use gs_grin::graph::mock::MockGraph;

    fn catalog() -> GlogueCatalog {
        // star: vertex 0 has high out-degree
        let edges: Vec<(u64, u64, f64)> = (1..100).map(|i| (0u64, i, 1.0)).collect();
        let g = MockGraph::new(100, &edges);
        GlogueCatalog::build(&g, 50)
    }

    #[test]
    fn catalog_counts() {
        let c = catalog();
        assert_eq!(c.vertex_counts, vec![100]);
        assert_eq!(c.edge_stats[0].count, 99);
        assert!((c.edge_stats[0].avg_out_degree - 0.99).abs() < 1e-9);
    }

    #[test]
    fn eq_predicate_is_selective() {
        let c = catalog();
        let pred = Expr::bin(
            BinOp::Eq,
            Expr::VertexId {
                col: 0,
                label: LabelId(0),
            },
            Expr::Const(Value::Int(5)),
        );
        let sel = c.vertex_selectivity(LabelId(0), &pred);
        assert!(sel <= 0.011, "{sel}");
        let range = Expr::bin(
            BinOp::Gt,
            Expr::VertexId {
                col: 0,
                label: LabelId(0),
            },
            Expr::Const(Value::Int(5)),
        );
        assert!(c.vertex_selectivity(LabelId(0), &range) > sel);
    }

    #[test]
    fn cbo_anchors_on_selective_vertex() {
        let c = catalog();
        // pattern: (a)-->(b) with an id-equality predicate on b
        let mut p = Pattern::new();
        let a = p.add_vertex("a", LabelId(0));
        let b = p.add_vertex("b", LabelId(0));
        p.add_edge(None, LabelId(0), a, b);
        p.and_vertex_predicate(
            b,
            Expr::bin(
                BinOp::Eq,
                Expr::VertexId {
                    col: 0,
                    label: LabelId(0),
                },
                Expr::Const(Value::Int(7)),
            ),
        );
        let order = cbo_order(&p, &c);
        assert_eq!(order, vec![b, a], "anchor should be the selective vertex");
    }

    #[test]
    fn build_is_deterministic() {
        // same graph, two builds → bit-identical catalogs; a different
        // seed may differ only in the sampled distinct counts
        let edges: Vec<(u64, u64, f64)> = (1..100).map(|i| (0u64, i, 1.0)).collect();
        let mut g = MockGraph::new(100, &edges);
        for i in 0..100 {
            g.set_tag(gs_graph::VId(i), (i % 7) as i64);
        }
        let a = GlogueCatalog::build(&g, 50);
        let b = GlogueCatalog::build(&g, 50);
        assert_eq!(a, b);
        let c = GlogueCatalog::build_seeded(&g, 50, 1);
        let d = GlogueCatalog::build_seeded(&g, 50, 1);
        assert_eq!(c, d);
        assert_eq!(a.vertex_counts, c.vertex_counts);
        assert_eq!(a.edge_stats, c.edge_stats);
    }

    #[test]
    fn catalog_records_max_degrees() {
        let c = catalog();
        // star: the hub has out-degree 99, every spoke in-degree 1
        assert_eq!(c.edge_stats[0].max_out_degree, 99);
        assert_eq!(c.edge_stats[0].max_in_degree, 1);
        let cs = c.to_cost_stats();
        assert_eq!(cs.edge_stats[0].max_out_degree, 99);
        assert_eq!(cs.vertex_counts, c.vertex_counts);
    }

    fn permutations(n: usize) -> Vec<Vec<usize>> {
        if n == 0 {
            return vec![Vec::new()];
        }
        let mut out = Vec::new();
        for p in permutations(n - 1) {
            for i in 0..=p.len() {
                let mut q = p.clone();
                q.insert(i, n - 1);
                out.push(q);
            }
        }
        out
    }

    #[test]
    fn greedy_order_is_near_optimal_on_small_patterns() {
        let c = catalog();
        let selective = |p: &mut Pattern, v: usize| {
            p.and_vertex_predicate(
                v,
                Expr::bin(
                    BinOp::Eq,
                    Expr::VertexId {
                        col: 0,
                        label: LabelId(0),
                    },
                    Expr::Const(Value::Int(7)),
                ),
            )
        };
        // a small zoo of ≤4-vertex patterns: chain, triangle, star, square
        let mut patterns = Vec::new();
        let mut chain = Pattern::new();
        let (a, b, d) = (
            chain.add_vertex("a", LabelId(0)),
            chain.add_vertex("b", LabelId(0)),
            chain.add_vertex("c", LabelId(0)),
        );
        chain.add_edge(None, LabelId(0), a, b);
        chain.add_edge(None, LabelId(0), b, d);
        selective(&mut chain, d);
        patterns.push(chain);
        let mut tri = Pattern::new();
        let (a, b, d) = (
            tri.add_vertex("a", LabelId(0)),
            tri.add_vertex("b", LabelId(0)),
            tri.add_vertex("c", LabelId(0)),
        );
        tri.add_edge(None, LabelId(0), a, b);
        tri.add_edge(None, LabelId(0), b, d);
        tri.add_edge(None, LabelId(0), a, d);
        patterns.push(tri);
        let mut star = Pattern::new();
        let hub = star.add_vertex("h", LabelId(0));
        for name in ["x", "y", "z"] {
            let v = star.add_vertex(name, LabelId(0));
            star.add_edge(None, LabelId(0), hub, v);
        }
        selective(&mut star, hub);
        patterns.push(star);
        let mut square = Pattern::new();
        let vs: Vec<usize> = ["a", "b", "c", "d"]
            .iter()
            .map(|n| square.add_vertex(n, LabelId(0)))
            .collect();
        for i in 0..4 {
            square.add_edge(None, LabelId(0), vs[i], vs[(i + 1) % 4]);
        }
        selective(&mut square, vs[2]);
        patterns.push(square);

        for p in &patterns {
            let greedy = cbo_order(p, &c);
            let greedy_cost = order_cost(p, &greedy, &c);
            let best = permutations(p.vertices.len())
                .iter()
                .map(|o| order_cost(p, o, &c))
                .fold(f64::INFINITY, f64::min);
            assert!(
                greedy_cost <= 2.0 * best,
                "greedy {greedy_cost} vs optimal {best} on {:?}",
                p.vertices.iter().map(|v| &v.alias).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn cbo_order_is_a_permutation() {
        let c = catalog();
        let mut p = Pattern::new();
        let a = p.add_vertex("a", LabelId(0));
        let b = p.add_vertex("b", LabelId(0));
        let d = p.add_vertex("d", LabelId(0));
        p.add_edge(None, LabelId(0), a, b);
        p.add_edge(None, LabelId(0), b, d);
        p.add_edge(None, LabelId(0), a, d);
        let mut order = cbo_order(&p, &c);
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2]);
    }
}
