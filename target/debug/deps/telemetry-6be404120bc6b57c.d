/root/repo/target/debug/deps/telemetry-6be404120bc6b57c.d: tests/telemetry.rs

/root/repo/target/debug/deps/telemetry-6be404120bc6b57c: tests/telemetry.rs

tests/telemetry.rs:
