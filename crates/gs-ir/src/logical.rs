//! The logical stage: a semantic representation of the query, independent
//! of execution order (paper §5.1).

use crate::expr::{AggFunc, Expr};
use crate::pattern::Pattern;
use crate::record::Layout;
use gs_graph::LabelId;
use gs_grin::Direction;

/// One projection item: a plain expression or an aggregate.
#[derive(Clone, Debug, PartialEq)]
pub enum ProjectItem {
    Expr(Expr),
    Agg(AggFunc, Expr),
}

/// Logical operators. Graph operators (`ScanVertex`, `ExpandEdge`,
/// `GetVertex`, `Match`) and relational operators (`Select`, `Project`,
/// `Order`, `Dedup`, `Limit`) compose into a pipeline.
#[derive(Clone, Debug, PartialEq)]
pub enum LogicalOp {
    /// Bind all vertices of `label` to a new column.
    ScanVertex {
        alias: String,
        label: LabelId,
        /// Predicate over the scanned vertex (column 0 = the vertex).
        predicate: Option<Expr>,
    },
    /// Expand adjacent *edges* of a bound vertex column.
    ExpandEdge {
        src: String,
        elabel: LabelId,
        dir: Direction,
        alias: String,
        /// Predicate over the expanded edge (column 0 = the edge).
        predicate: Option<Expr>,
    },
    /// Retrieve the far endpoint of a bound edge column.
    GetVertex {
        edge: String,
        alias: String,
        /// Predicate over the retrieved vertex (column 0 = the vertex).
        predicate: Option<Expr>,
    },
    /// Declarative pattern matching (MATCH_START .. MATCH_END).
    Match { pattern: Pattern },
    /// Relational filter over the full record.
    Select { predicate: Expr },
    /// Projection; when any item is an aggregate, non-aggregate items become
    /// grouping keys (Cypher `WITH`/`RETURN` semantics).
    Project { items: Vec<(ProjectItem, String)> },
    /// Sort (with optional top-k limit fused in).
    Order {
        keys: Vec<(Expr, bool)>,
        limit: Option<usize>,
    },
    /// Distinct over the listed columns (empty = whole record).
    Dedup { columns: Vec<String> },
    /// Row-count limit.
    Limit { n: usize },
}

/// A logical plan: the op pipeline plus the record [`Layout`] *after* each
/// op (index `i+1` is the layout after `ops[i]`; index 0 is the empty
/// source layout).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LogicalPlan {
    pub ops: Vec<LogicalOp>,
    pub layouts: Vec<Layout>,
}

impl LogicalPlan {
    /// The layout of records flowing out of the plan.
    pub fn output_layout(&self) -> &Layout {
        self.layouts
            .last()
            .expect("plan has at least the source layout")
    }

    /// The layout feeding op `i`.
    pub fn input_layout(&self, i: usize) -> &Layout {
        &self.layouts[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_has_source_layout() {
        let p = LogicalPlan {
            ops: vec![],
            layouts: vec![Layout::new()],
        };
        assert_eq!(p.output_layout().width(), 0);
    }
}
