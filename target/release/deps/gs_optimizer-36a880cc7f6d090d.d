/root/repo/target/release/deps/gs_optimizer-36a880cc7f6d090d.d: crates/gs-optimizer/src/lib.rs crates/gs-optimizer/src/glogue.rs crates/gs-optimizer/src/rbo.rs

/root/repo/target/release/deps/libgs_optimizer-36a880cc7f6d090d.rlib: crates/gs-optimizer/src/lib.rs crates/gs-optimizer/src/glogue.rs crates/gs-optimizer/src/rbo.rs

/root/repo/target/release/deps/libgs_optimizer-36a880cc7f6d090d.rmeta: crates/gs-optimizer/src/lib.rs crates/gs-optimizer/src/glogue.rs crates/gs-optimizer/src/rbo.rs

crates/gs-optimizer/src/lib.rs:
crates/gs-optimizer/src/glogue.rs:
crates/gs-optimizer/src/rbo.rs:
