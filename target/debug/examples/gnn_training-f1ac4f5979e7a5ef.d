/root/repo/target/debug/examples/gnn_training-f1ac4f5979e7a5ef.d: examples/gnn_training.rs

/root/repo/target/debug/examples/gnn_training-f1ac4f5979e7a5ef: examples/gnn_training.rs

examples/gnn_training.rs:
